// Pipelining: many requests in flight on one connection, completing
// out of order via the kRequestIdFlag extension. Covers the raw wire
// contract (tagged replies echo their id), the RemoteHam pipelined
// mode (a slow call does not head-of-line-block a fast one), id
// wraparound, the batch operations' per-item statuses, the downgrade
// against a pre-pipelining server, and the poll(2) poller fallback.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/coding.h"
#include "common/metrics.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"
#include "rpc/wire.h"

namespace neptune {
namespace rpc {
namespace {

using ham::Context;

// Forwards everything to a real Ham, with an adjustable delay injected
// into GetNodeTimeStamp — the "slow op" the pipelining tests race
// against a fast OpenNode.
class SlowTimeStampHam final : public ham::HamInterface {
 public:
  explicit SlowTimeStampHam(ham::HamInterface* base) : base_(base) {}

  std::atomic<int> time_stamp_delay_ms{0};

  Result<ham::CreateGraphResult> CreateGraph(const std::string& directory,
                                             uint32_t protections) override {
    return base_->CreateGraph(directory, protections);
  }
  Status DestroyGraph(ham::ProjectId project,
                      const std::string& directory) override {
    return base_->DestroyGraph(project, directory);
  }
  Result<Context> OpenGraph(ham::ProjectId project, const std::string& machine,
                            const std::string& directory) override {
    return base_->OpenGraph(project, machine, directory);
  }
  Status CloseGraph(Context ctx) override { return base_->CloseGraph(ctx); }

  Status BeginTransaction(Context ctx) override {
    return base_->BeginTransaction(ctx);
  }
  Status CommitTransaction(Context ctx) override {
    return base_->CommitTransaction(ctx);
  }
  Status AbortTransaction(Context ctx) override {
    return base_->AbortTransaction(ctx);
  }

  Result<ham::AddNodeResult> AddNode(Context ctx, bool keep_history) override {
    return base_->AddNode(ctx, keep_history);
  }
  Status DeleteNode(Context ctx, ham::NodeIndex node) override {
    return base_->DeleteNode(ctx, node);
  }
  Result<ham::AddLinkResult> AddLink(Context ctx, const ham::LinkPt& from,
                                     const ham::LinkPt& to) override {
    return base_->AddLink(ctx, from, to);
  }
  Result<ham::AddLinkResult> CopyLink(Context ctx, ham::LinkIndex link,
                                      ham::Time time, bool copy_source,
                                      const ham::LinkPt& other) override {
    return base_->CopyLink(ctx, link, time, copy_source, other);
  }
  Status DeleteLink(Context ctx, ham::LinkIndex link) override {
    return base_->DeleteLink(ctx, link);
  }

  Result<ham::SubGraph> LinearizeGraph(
      Context ctx, ham::NodeIndex start, ham::Time time,
      const std::string& node_pred, const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs) override {
    return base_->LinearizeGraph(ctx, start, time, node_pred, link_pred,
                                 node_attrs, link_attrs);
  }
  Result<ham::SubGraph> GetGraphQuery(
      Context ctx, ham::Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs) override {
    return base_->GetGraphQuery(ctx, time, node_pred, link_pred, node_attrs,
                                link_attrs);
  }

  Result<ham::OpenNodeResult> OpenNode(
      Context ctx, ham::NodeIndex node, ham::Time time,
      const std::vector<ham::AttributeIndex>& attrs) override {
    return base_->OpenNode(ctx, node, time, attrs);
  }
  Status ModifyNode(Context ctx, ham::NodeIndex node, ham::Time expected_time,
                    const std::string& contents,
                    const std::vector<ham::AttachmentUpdate>& attachments,
                    const std::string& explanation) override {
    return base_->ModifyNode(ctx, node, expected_time, contents, attachments,
                             explanation);
  }
  Result<ham::Time> GetNodeTimeStamp(Context ctx,
                                     ham::NodeIndex node) override {
    const int delay = time_stamp_delay_ms.load();
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    return base_->GetNodeTimeStamp(ctx, node);
  }
  Status ChangeNodeProtection(Context ctx, ham::NodeIndex node,
                              uint32_t protections) override {
    return base_->ChangeNodeProtection(ctx, node, protections);
  }
  Result<ham::NodeVersions> GetNodeVersions(Context ctx,
                                            ham::NodeIndex node) override {
    return base_->GetNodeVersions(ctx, node);
  }
  Result<std::vector<delta::Difference>> GetNodeDifferences(
      Context ctx, ham::NodeIndex node, ham::Time t1, ham::Time t2) override {
    return base_->GetNodeDifferences(ctx, node, t1, t2);
  }

  Result<ham::LinkEndResult> GetToNode(Context ctx, ham::LinkIndex link,
                                       ham::Time time) override {
    return base_->GetToNode(ctx, link, time);
  }
  Result<ham::LinkEndResult> GetFromNode(Context ctx, ham::LinkIndex link,
                                         ham::Time time) override {
    return base_->GetFromNode(ctx, link, time);
  }

  Result<std::vector<ham::AttributeEntry>> GetAttributes(
      Context ctx, ham::Time time) override {
    return base_->GetAttributes(ctx, time);
  }
  Result<std::vector<std::string>> GetAttributeValues(
      Context ctx, ham::AttributeIndex attr, ham::Time time) override {
    return base_->GetAttributeValues(ctx, attr, time);
  }
  Result<ham::AttributeIndex> GetAttributeIndex(
      Context ctx, const std::string& name) override {
    return base_->GetAttributeIndex(ctx, name);
  }

  Status SetNodeAttributeValue(Context ctx, ham::NodeIndex node,
                               ham::AttributeIndex attr,
                               const std::string& value) override {
    return base_->SetNodeAttributeValue(ctx, node, attr, value);
  }
  Status DeleteNodeAttribute(Context ctx, ham::NodeIndex node,
                             ham::AttributeIndex attr) override {
    return base_->DeleteNodeAttribute(ctx, node, attr);
  }
  Result<std::string> GetNodeAttributeValue(Context ctx, ham::NodeIndex node,
                                            ham::AttributeIndex attr,
                                            ham::Time time) override {
    return base_->GetNodeAttributeValue(ctx, node, attr, time);
  }
  Result<std::vector<ham::AttributeValueEntry>> GetNodeAttributes(
      Context ctx, ham::NodeIndex node, ham::Time time) override {
    return base_->GetNodeAttributes(ctx, node, time);
  }

  Status SetLinkAttributeValue(Context ctx, ham::LinkIndex link,
                               ham::AttributeIndex attr,
                               const std::string& value) override {
    return base_->SetLinkAttributeValue(ctx, link, attr, value);
  }
  Status DeleteLinkAttribute(Context ctx, ham::LinkIndex link,
                             ham::AttributeIndex attr) override {
    return base_->DeleteLinkAttribute(ctx, link, attr);
  }
  Result<std::string> GetLinkAttributeValue(Context ctx, ham::LinkIndex link,
                                            ham::AttributeIndex attr,
                                            ham::Time time) override {
    return base_->GetLinkAttributeValue(ctx, link, attr, time);
  }
  Result<std::vector<ham::AttributeValueEntry>> GetLinkAttributes(
      Context ctx, ham::LinkIndex link, ham::Time time) override {
    return base_->GetLinkAttributes(ctx, link, time);
  }

  Status SetGraphDemonValue(Context ctx, ham::Event event,
                            const std::string& demon) override {
    return base_->SetGraphDemonValue(ctx, event, demon);
  }
  Result<std::vector<ham::DemonEntry>> GetGraphDemons(
      Context ctx, ham::Time time) override {
    return base_->GetGraphDemons(ctx, time);
  }
  Status SetNodeDemon(Context ctx, ham::NodeIndex node, ham::Event event,
                      const std::string& demon) override {
    return base_->SetNodeDemon(ctx, node, event, demon);
  }
  Result<std::vector<ham::DemonEntry>> GetNodeDemons(
      Context ctx, ham::NodeIndex node, ham::Time time) override {
    return base_->GetNodeDemons(ctx, node, time);
  }

  Result<ham::ContextInfo> CreateContext(Context ctx,
                                         const std::string& name) override {
    return base_->CreateContext(ctx, name);
  }
  Result<Context> OpenContext(Context ctx, ham::ThreadId thread) override {
    return base_->OpenContext(ctx, thread);
  }
  Status MergeContext(Context ctx, ham::ThreadId source, bool force) override {
    return base_->MergeContext(ctx, source, force);
  }
  Result<std::vector<ham::ContextInfo>> ListContexts(Context ctx) override {
    return base_->ListContexts(ctx);
  }

  Status Checkpoint(Context ctx) override { return base_->Checkpoint(ctx); }
  Result<ham::GraphStats> GetStats(Context ctx) override {
    return base_->GetStats(ctx);
  }
  Result<ham::ThreadId> ContextThread(Context ctx) override {
    return base_->ContextThread(ctx);
  }

 private:
  ham::HamInterface* base_;
};

class RpcPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_pipeline_" + name))
               .string();
    env_->RemoveDirRecursive(dir_);
    ham::HamOptions options;
    options.sync_commits = false;
    engine_ = std::make_unique<ham::Ham>(env_, options);
    slow_ = std::make_unique<SlowTimeStampHam>(engine_.get());
  }

  void StartServer(Server::Options options) {
    server_ = std::make_unique<Server>(slow_.get(), options);
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  // Connects a pipelined RemoteHam and opens a graph.
  void ConnectPipelined(uint32_t max_inflight = 64) {
    RemoteHam::Options options;
    options.pipeline = true;
    options.max_inflight = max_inflight;
    auto client = RemoteHam::Connect("localhost", port_, options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);
    auto created = client_->CreateGraph(dir_, 0755);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto ctx = client_->OpenGraph(created->project, "localhost", dir_);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = *ctx;
  }

  void TearDown() override {
    client_.reset();
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    slow_.reset();
    engine_.reset();
    env_->RemoveDirRecursive(dir_);
  }

  uint64_t CounterValue(const std::string& name) {
    return MetricsRegistry::Instance().GetCounter(name)->Value();
  }

  Env* env_ = nullptr;
  std::string dir_;
  std::unique_ptr<ham::Ham> engine_;
  std::unique_ptr<SlowTimeStampHam> slow_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
  std::unique_ptr<RemoteHam> client_;
  Context ctx_;
};

// Raw wire: two tagged pings with chosen ids; both replies come back
// carrying their ids.
TEST_F(RpcPipelineTest, TaggedRepliesEchoTheirRequestIds) {
  StartServer(Server::Options());
  auto stream = FrameStream::Connect("localhost", port_, 2000);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  for (uint64_t id : {7u, 9u}) {
    std::string request;
    request.push_back(static_cast<char>(
        static_cast<uint8_t>(Method::kPing) | kRequestIdFlag));
    PutVarint64(&request, id);
    request += "echo-" + std::to_string(id);
    ASSERT_TRUE((*stream)->SendFrame(request).ok());
  }
  std::set<uint64_t> seen;
  for (int i = 0; i < 2; ++i) {
    auto reply = (*stream)->RecvFrame();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    std::string_view in = *reply;
    uint64_t id = 0;
    ASSERT_TRUE(GetVarint64(&in, &id));
    Status status;
    ASSERT_TRUE(DecodeStatusFrom(&in, &status));
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(in, "echo-" + std::to_string(id));
    seen.insert(id);
  }
  EXPECT_EQ(seen, (std::set<uint64_t>{7, 9}));
}

// Raw wire: a zero request id is malformed, answered with a framed
// (untagged) error.
TEST_F(RpcPipelineTest, ZeroRequestIdIsRejected) {
  StartServer(Server::Options());
  auto stream = FrameStream::Connect("localhost", port_, 2000);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::string request;
  request.push_back(static_cast<char>(
      static_cast<uint8_t>(Method::kPing) | kRequestIdFlag));
  PutVarint64(&request, 0);
  ASSERT_TRUE((*stream)->SendFrame(request).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  std::string_view in = *reply;
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

// A slow tagged request must not delay a fast tagged request sent
// after it on the same connection: replies complete out of order.
TEST_F(RpcPipelineTest, SlowOpDoesNotHeadOfLineBlockFastOp) {
  Server::Options options;
  options.worker_threads = 4;
  StartServer(options);
  ConnectPipelined();
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok()) << added.status().ToString();

  slow_->time_stamp_delay_ms.store(300);
  std::atomic<int64_t> slow_done_us{0};
  std::atomic<int64_t> fast_done_us{0};
  const auto now_us = [] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  std::thread slow_call([&] {
    auto r = client_->GetNodeTimeStamp(ctx_, added->node);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    slow_done_us.store(now_us());
  });
  // Give the slow call time to be enqueued first.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto fast = client_->OpenNode(ctx_, added->node, 0, {});
  fast_done_us.store(now_us());
  EXPECT_TRUE(fast.ok()) << fast.status().ToString();
  slow_call.join();
  ASSERT_GT(slow_done_us.load(), 0);
  ASSERT_GT(fast_done_us.load(), 0);
  EXPECT_LT(fast_done_us.load(), slow_done_us.load())
      << "fast op waited behind the slow op on the same connection";
}

// CallAsync keeps several requests in flight at once; all complete.
TEST_F(RpcPipelineTest, ManyAsyncCallsInFlight) {
  StartServer(Server::Options());
  ConnectPipelined();
  std::vector<RemoteHam::PendingCall> calls;
  for (int i = 0; i < 32; ++i) {
    std::string args = "burst-" + std::to_string(i);
    calls.push_back(client_->CallAsync(Method::kPing, args));
  }
  for (int i = 0; i < 32; ++i) {
    auto reply = calls[i].Wait();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "burst-" + std::to_string(i));
  }
  EXPECT_GE(CounterValue("rpc.server.pipelined"), 32u);
}

// Ids wrap around 2^64 (skipping 0) without confusing completion.
TEST_F(RpcPipelineTest, RequestIdWraparound) {
  StartServer(Server::Options());
  ConnectPipelined();
  client_->set_next_request_id_for_test(~uint64_t{0});
  for (int i = 0; i < 4; ++i) {
    std::string args = "wrap-" + std::to_string(i);
    auto reply = client_->CallAsync(Method::kPing, args).Wait();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, args);
  }
}

// openNodes: one bad node in the batch fails only its own slot.
TEST_F(RpcPipelineTest, OpenNodesReportsPerItemStatus) {
  StartServer(Server::Options());
  ConnectPipelined();
  auto a = client_->AddNode(ctx_, true);
  auto b = client_->AddNode(ctx_, true);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, a->node, a->creation_time, "alpha", {},
                                  "init")
                  .ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, b->node, b->creation_time, "beta", {},
                                  "init")
                  .ok());

  auto batch = client_->OpenNodes(ctx_, {a->node, 999999, b->node}, 0, {});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_TRUE((*batch)[0].status.ok());
  EXPECT_EQ((*batch)[0].result.contents, "alpha");
  EXPECT_FALSE((*batch)[1].status.ok());
  EXPECT_TRUE((*batch)[2].status.ok());
  EXPECT_EQ((*batch)[2].result.contents, "beta");
}

// getAttributeValuesBatch mixes node and link targets in one trip.
TEST_F(RpcPipelineTest, AttributeValuesBatchMixesNodesAndLinks) {
  StartServer(Server::Options());
  ConnectPipelined();
  auto node = client_->AddNode(ctx_, true);
  ASSERT_TRUE(node.ok());
  auto attr = client_->GetAttributeIndex(ctx_, "color");
  ASSERT_TRUE(attr.ok());
  ASSERT_TRUE(
      client_->SetNodeAttributeValue(ctx_, node->node, *attr, "teal").ok());

  std::vector<RemoteHam::AttributeFetch> fetches(2);
  fetches[0] = {/*is_link=*/false, node->node, *attr};
  fetches[1] = {/*is_link=*/false, 424242, *attr};  // absent node
  auto batch = client_->GetAttributeValuesBatch(ctx_, 0, fetches);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_TRUE((*batch)[0].status.ok());
  EXPECT_EQ((*batch)[0].value, "teal");
  EXPECT_FALSE((*batch)[1].status.ok());
}

// linearizeAndFetch returns the subgraph plus every node's contents.
TEST_F(RpcPipelineTest, LinearizeAndFetchReturnsContents) {
  StartServer(Server::Options());
  ConnectPipelined();
  auto a = client_->AddNode(ctx_, true);
  auto b = client_->AddNode(ctx_, true);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, a->node, a->creation_time, "root", {},
                                  "init")
                  .ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, b->node, b->creation_time, "leaf", {},
                                  "init")
                  .ok());
  auto link = client_->AddLink(ctx_, ham::LinkPt{a->node, 0},
                               ham::LinkPt{b->node, 0});
  ASSERT_TRUE(link.ok()) << link.status().ToString();

  auto fetched = client_->LinearizeAndFetch(ctx_, a->node, 0, "", "", {}, {});
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  ASSERT_EQ(fetched->graph.nodes.size(), fetched->contents.size());
  ASSERT_GE(fetched->graph.nodes.size(), 2u);
  std::set<std::string> contents;
  for (size_t i = 0; i < fetched->contents.size(); ++i) {
    ASSERT_TRUE(fetched->contents[i].status.ok())
        << fetched->contents[i].status.ToString();
    contents.insert(fetched->contents[i].contents);
  }
  EXPECT_TRUE(contents.count("root"));
  EXPECT_TRUE(contents.count("leaf"));
}

// Against a server that predates request ids, the pipelined client
// downgrades to one-in-flight sync calls — and everything still works,
// including mutations.
TEST_F(RpcPipelineTest, DowngradesAgainstPrePipeliningServer) {
  Server::Options options;
  options.accept_request_ids = false;
  StartServer(options);
  const uint64_t downgrades_before =
      CounterValue("rpc.client.pipeline_downgrades");
  ConnectPipelined();
  EXPECT_GE(CounterValue("rpc.client.pipeline_downgrades"),
            downgrades_before + 1);
  // The fixture already created a graph and opened it (mutations
  // through the downgraded path); prove reads work too.
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  auto opened = client_->OpenNode(ctx_, added->node, 0, {});
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
}

// The whole stack works over the poll(2) fallback poller.
TEST_F(RpcPipelineTest, PollBackendServesPipelinedClients) {
  ::setenv("NEPTUNE_RPC_FORCE_POLL", "1", 1);
  Server::Options options;
  options.io_threads = 2;
  StartServer(options);
  ::unsetenv("NEPTUNE_RPC_FORCE_POLL");
  ConnectPipelined();
  std::vector<RemoteHam::PendingCall> calls;
  for (int i = 0; i < 16; ++i) {
    calls.push_back(client_->CallAsync(Method::kPing, "poll"));
  }
  for (auto& call : calls) {
    auto reply = call.Wait();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "poll");
  }
}

// Several pipelined clients against a multi-loop, multi-worker server;
// plain (untagged) clients mix in on the same server.
TEST_F(RpcPipelineTest, MixedClientsOnMultiLoopServer) {
  Server::Options options;
  options.io_threads = 2;
  options.worker_threads = 4;
  StartServer(options);
  ConnectPipelined();
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      RemoteHam::Options copts;
      copts.pipeline = (t % 2 == 0);
      auto client = RemoteHam::Connect("localhost", port_, copts);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 50; ++i) {
        auto r = (*client)->OpenNode(ctx_, added->node, 0, {});
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

// Server robustness: malformed requests, wire garbage, hostile frame
// lengths, overload, and abrupt disconnects must never take the server
// down or corrupt other clients' sessions.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/coding.h"
#include "common/metrics.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace rpc {
namespace {

class ServerRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_robust_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name())))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
    ham::HamOptions options;
    options.sync_commits = false;
    engine_ = std::make_unique<ham::Ham>(Env::Default(), options);
    server_ = std::make_unique<Server>(engine_.get());
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok());
    port_ = *port;
  }

  void TearDown() override {
    server_->Stop();
    server_.reset();
    engine_.reset();
    Env::Default()->RemoveDirRecursive(dir_);
  }

  std::string dir_;
  std::unique_ptr<ham::Ham> engine_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
};

TEST_F(ServerRobustnessTest, UnknownMethodGetsErrorReplyConnectionSurvives) {
  auto stream = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(stream.ok());
  std::string request;
  request.push_back('\xEE');  // no such method
  ASSERT_TRUE((*stream)->SendFrame(request).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  std::string_view in = *reply;
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsCorruption());

  // The same connection still answers a valid ping.
  std::string ping;
  ping.push_back(static_cast<char>(Method::kPing));
  ping += "ok?";
  ASSERT_TRUE((*stream)->SendFrame(ping).ok());
  auto pong = (*stream)->RecvFrame();
  ASSERT_TRUE(pong.ok());
}

TEST_F(ServerRobustnessTest, TruncatedRequestBodyGetsErrorReply) {
  auto stream = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(stream.ok());
  std::string request;
  request.push_back(static_cast<char>(Method::kOpenNode));
  request.push_back('\x05');  // a lone varint where 4 fields belong
  ASSERT_TRUE((*stream)->SendFrame(request).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok());
  std::string_view in = *reply;
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(ServerRobustnessTest, WireGarbageDropsThatClientOnly) {
  // Client A misbehaves: raw garbage that fails the frame CRC.
  auto bad = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(bad.ok());
  std::string garbage = "this is definitely not a frame";
  ASSERT_TRUE((*bad)->SendFrame(std::string(1, char(Method::kPing))).ok());
  auto first = (*bad)->RecvFrame();
  ASSERT_TRUE(first.ok());
  // Now poison the stream.
  ASSERT_TRUE((*bad)->SendFrame(garbage).ok());  // valid frame, bad method
  auto second = (*bad)->RecvFrame();
  ASSERT_TRUE(second.ok());  // server replies with an error status

  // Meanwhile client B does real work unharmed.
  auto good = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(good.ok());
  auto created = (*good)->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = (*good)->OpenGraph(created->project, "localhost", dir_);
  ASSERT_TRUE(ctx.ok());
  EXPECT_TRUE((*good)->AddNode(*ctx, true).ok());
  EXPECT_TRUE((*good)->CloseGraph(*ctx).ok());
}

TEST_F(ServerRobustnessTest, ManySequentialConnections) {
  for (int i = 0; i < 25; ++i) {
    auto client = RemoteHam::Connect("localhost", port_);
    ASSERT_TRUE(client.ok()) << i;
    EXPECT_TRUE((*client)->Ping().ok()) << i;
  }
}

// Opens a bare TCP connection to the server, bypassing FrameStream so
// the test can put bytes on the wire that the client library would
// itself refuse to send.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(ServerRobustnessTest, HostileLengthPrefixGetsErrorReplyThenClose) {
  int fd = RawConnect(port_);
  ASSERT_GE(fd, 0);
  // A 1 GiB length prefix. The server must reject it from the 8-byte
  // header alone — before buffering (let alone allocating) a body.
  std::string header;
  PutFixed32(&header, 1u << 30);
  PutFixed32(&header, 0);  // CRC is never consulted; length fails first
  ASSERT_EQ(::send(fd, header.data(), header.size(), 0),
            static_cast<ssize_t>(header.size()));

  // The server answers with one framed error status, then closes.
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  FrameDecoder decoder;
  std::vector<std::string> frames;
  ASSERT_TRUE(decoder.Feed(raw, &frames).ok());
  ASSERT_EQ(frames.size(), 1u);
  std::string_view in = frames[0];
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();

  // The rest of the server is unharmed.
  auto good = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE((*good)->Ping().ok());
}

TEST_F(ServerRobustnessTest, WriterSlotFreedOnAbruptDisconnectMidTransaction) {
  auto a = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(a.ok());
  auto created = (*a)->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx_a = (*a)->OpenGraph(created->project, "localhost", dir_);
  ASSERT_TRUE(ctx_a.ok());
  ASSERT_TRUE((*a)->BeginTransaction(*ctx_a).ok());
  ASSERT_TRUE((*a)->AddNode(*ctx_a, true).ok());
  // Client A vanishes mid-transaction with neither commit nor abort.
  // Leases are disabled in this fixture, so the writer slot must come
  // back from the server's disconnect cleanup alone — B's
  // BeginTransaction below would hang forever on a leak.
  (*a).reset();

  auto b = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(b.ok());
  auto ctx_b = (*b)->OpenGraph(created->project, "localhost", dir_);
  ASSERT_TRUE(ctx_b.ok());
  ASSERT_TRUE((*b)->BeginTransaction(*ctx_b).ok());
  EXPECT_TRUE((*b)->AddNode(*ctx_b, true).ok());
  EXPECT_TRUE((*b)->CommitTransaction(*ctx_b).ok());
  EXPECT_TRUE((*b)->CloseGraph(*ctx_b).ok());
}

TEST_F(ServerRobustnessTest, OverloadShedsReadsWithRetryHint) {
  // Rebuild the server with a zero soft threshold so every request
  // sees the server as overloaded.
  server_->Stop();
  Server::Options opts;
  opts.shed_inflight_requests = 0;
  opts.max_inflight_requests = 1000;
  opts.retry_after_ms = 7;
  server_ = std::make_unique<Server>(engine_.get(), opts);
  auto port = server_->Start(0);
  ASSERT_TRUE(port.ok());
  port_ = *port;

  uint64_t shed_before =
      MetricsRegistry::Instance().Snapshot().CounterValue("server.shed");

  auto stream = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(stream.ok());
  // An idempotent read is refused with kUnavailable plus a
  // retry-after-ms hint — without ever reaching the engine, so the
  // nonsense empty body is irrelevant.
  std::string request;
  request.push_back(static_cast<char>(Method::kGetNodeTimeStamp));
  ASSERT_TRUE((*stream)->SendFrame(request).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok());
  std::string_view in = *reply;
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  uint32_t retry_after = 0;
  ASSERT_TRUE(GetVarint32(&in, &retry_after));
  EXPECT_EQ(retry_after, 7u);
  EXPECT_GT(MetricsRegistry::Instance().Snapshot().CounterValue("server.shed"),
            shed_before);

  // Pings are always admitted (operators must be able to look).
  std::string ping;
  ping.push_back(static_cast<char>(Method::kPing));
  ASSERT_TRUE((*stream)->SendFrame(ping).ok());
  auto pong = (*stream)->RecvFrame();
  ASSERT_TRUE(pong.ok());
  std::string_view pin = *pong;
  Status pstatus;
  ASSERT_TRUE(DecodeStatusFrom(&pin, &pstatus));
  EXPECT_TRUE(pstatus.ok()) << pstatus.ToString();

  // Mutations stay admitted below the hard cap: real work still lands.
  auto client = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client.ok());
  auto created = (*client)->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = (*client)->OpenGraph(created->project, "localhost", dir_);
  ASSERT_TRUE(ctx.ok());
  EXPECT_TRUE((*client)->AddNode(*ctx, true).ok());
  EXPECT_TRUE((*client)->CloseGraph(*ctx).ok());
}

TEST_F(ServerRobustnessTest, ResourceLimitsRejectOversizedWork) {
  // A second engine with deliberately tight caps, served over RPC so
  // the rejections are observed exactly as a hostile client would.
  ham::HamOptions tight;
  tight.sync_commits = false;
  tight.max_node_content_bytes = 64;
  tight.max_attribute_name_bytes = 8;
  tight.max_attribute_value_bytes = 16;
  tight.max_attrs_per_entity = 2;
  auto engine = std::make_unique<ham::Ham>(Env::Default(), tight);
  auto server = std::make_unique<Server>(engine.get());
  auto port = server->Start(0);
  ASSERT_TRUE(port.ok());

  std::string dir = dir_ + "-tight";
  Env::Default()->RemoveDirRecursive(dir);
  auto client = RemoteHam::Connect("localhost", *port);
  ASSERT_TRUE(client.ok());
  auto created = (*client)->CreateGraph(dir, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = (*client)->OpenGraph(created->project, "localhost", dir);
  ASSERT_TRUE(ctx.ok());
  auto node = (*client)->AddNode(*ctx, true);
  ASSERT_TRUE(node.ok());

  // Node contents over the cap are refused before any WAL write...
  Status big = (*client)->ModifyNode(*ctx, node->node, node->creation_time,
                                     std::string(65, 'x'), {}, "too big");
  EXPECT_TRUE(big.IsInvalidArgument()) << big.ToString();
  // ...while contents at exactly the cap are fine (limit, not limit-1).
  EXPECT_TRUE((*client)
                  ->ModifyNode(*ctx, node->node, node->creation_time,
                               std::string(64, 'x'), {}, "fits")
                  .ok());

  // Attribute names are bounded (interning is permanent, so the check
  // runs before the name could be committed).
  EXPECT_TRUE((*client)
                  ->GetAttributeIndex(*ctx, "far-too-long-a-name")
                  .status()
                  .IsInvalidArgument());
  auto kind = (*client)->GetAttributeIndex(*ctx, "kind");
  ASSERT_TRUE(kind.ok());

  // Attribute values are bounded.
  EXPECT_TRUE((*client)
                  ->SetNodeAttributeValue(*ctx, node->node, *kind,
                                          std::string(17, 'v'))
                  .IsInvalidArgument());
  ASSERT_TRUE(
      (*client)->SetNodeAttributeValue(*ctx, node->node, *kind, "a").ok());

  // At most two attributes per entity: a third distinct attribute is
  // refused, but replacing an attached one still works.
  auto shape = (*client)->GetAttributeIndex(*ctx, "shape");
  ASSERT_TRUE(shape.ok());
  ASSERT_TRUE(
      (*client)->SetNodeAttributeValue(*ctx, node->node, *shape, "b").ok());
  auto color = (*client)->GetAttributeIndex(*ctx, "color");
  ASSERT_TRUE(color.ok());
  EXPECT_TRUE((*client)
                  ->SetNodeAttributeValue(*ctx, node->node, *color, "c")
                  .IsInvalidArgument());
  EXPECT_TRUE(
      (*client)->SetNodeAttributeValue(*ctx, node->node, *kind, "new").ok());

  EXPECT_TRUE((*client)->CloseGraph(*ctx).ok());
  server->Stop();
  server.reset();
  engine.reset();
  Env::Default()->RemoveDirRecursive(dir);
}

TEST_F(ServerRobustnessTest, IdleConnectionsAreReaped) {
  server_->Stop();
  Server::Options opts;
  opts.idle_timeout_ms = 100;
  server_ = std::make_unique<Server>(engine_.get(), opts);
  auto port = server_->Start(0);
  ASSERT_TRUE(port.ok());
  port_ = *port;

  uint64_t reaped_before = MetricsRegistry::Instance().Snapshot().CounterValue(
      "server.connections.reaped");

  auto client = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ping().ok());

  // Go silent past the idle timeout; the server drops the connection.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (MetricsRegistry::Instance().Snapshot().CounterValue(
             "server.connections.reaped") <= reaped_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(MetricsRegistry::Instance().Snapshot().CounterValue(
                "server.connections.reaped"),
            reaped_before);

  // Ping is idempotent, so the stub transparently reconnects.
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(ServerRobustnessTest, StopUnblocksAndRejectsFurtherWork) {
  auto client = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client.ok());
  server_->Stop();
  // After stop, the client sees a network error rather than a hang.
  Status st = (*client)->Ping();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

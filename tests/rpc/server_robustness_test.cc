// Server robustness: malformed requests and wire garbage must never
// take the server down or corrupt other clients' sessions.

#include <gtest/gtest.h>

#include <filesystem>

#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace rpc {
namespace {

class ServerRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_robust_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name())))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
    ham::HamOptions options;
    options.sync_commits = false;
    engine_ = std::make_unique<ham::Ham>(Env::Default(), options);
    server_ = std::make_unique<Server>(engine_.get());
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok());
    port_ = *port;
  }

  void TearDown() override {
    server_->Stop();
    server_.reset();
    engine_.reset();
    Env::Default()->RemoveDirRecursive(dir_);
  }

  std::string dir_;
  std::unique_ptr<ham::Ham> engine_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
};

TEST_F(ServerRobustnessTest, UnknownMethodGetsErrorReplyConnectionSurvives) {
  auto stream = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(stream.ok());
  std::string request;
  request.push_back('\xEE');  // no such method
  ASSERT_TRUE((*stream)->SendFrame(request).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  std::string_view in = *reply;
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsCorruption());

  // The same connection still answers a valid ping.
  std::string ping;
  ping.push_back(static_cast<char>(Method::kPing));
  ping += "ok?";
  ASSERT_TRUE((*stream)->SendFrame(ping).ok());
  auto pong = (*stream)->RecvFrame();
  ASSERT_TRUE(pong.ok());
}

TEST_F(ServerRobustnessTest, TruncatedRequestBodyGetsErrorReply) {
  auto stream = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(stream.ok());
  std::string request;
  request.push_back(static_cast<char>(Method::kOpenNode));
  request.push_back('\x05');  // a lone varint where 4 fields belong
  ASSERT_TRUE((*stream)->SendFrame(request).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok());
  std::string_view in = *reply;
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(ServerRobustnessTest, WireGarbageDropsThatClientOnly) {
  // Client A misbehaves: raw garbage that fails the frame CRC.
  auto bad = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(bad.ok());
  std::string garbage = "this is definitely not a frame";
  ASSERT_TRUE((*bad)->SendFrame(std::string(1, char(Method::kPing))).ok());
  auto first = (*bad)->RecvFrame();
  ASSERT_TRUE(first.ok());
  // Now poison the stream.
  ASSERT_TRUE((*bad)->SendFrame(garbage).ok());  // valid frame, bad method
  auto second = (*bad)->RecvFrame();
  ASSERT_TRUE(second.ok());  // server replies with an error status

  // Meanwhile client B does real work unharmed.
  auto good = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(good.ok());
  auto created = (*good)->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = (*good)->OpenGraph(created->project, "localhost", dir_);
  ASSERT_TRUE(ctx.ok());
  EXPECT_TRUE((*good)->AddNode(*ctx, true).ok());
  EXPECT_TRUE((*good)->CloseGraph(*ctx).ok());
}

TEST_F(ServerRobustnessTest, ManySequentialConnections) {
  for (int i = 0; i < 25; ++i) {
    auto client = RemoteHam::Connect("localhost", port_);
    ASSERT_TRUE(client.ok()) << i;
    EXPECT_TRUE((*client)->Ping().ok()) << i;
  }
}

TEST_F(ServerRobustnessTest, StopUnblocksAndRejectsFurtherWork) {
  auto client = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client.ok());
  server_->Stop();
  // After stop, the client sees a network error rather than a hang.
  Status st = (*client)->Ping();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

// WAL-shipping replication end to end: codec round-trips, snapshot
// bootstrap, steady-state tailing, checkpoint rolls, far-behind
// re-snapshot, corrupt-chunk recovery, term fencing, follower read
// routing from the client, and promotion.
//
// Topology per test: a real primary Server over TCP, a follower Ham in
// follower mode fed by a Replicator, and (where needed) a second
// Server exposing the follower.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/replicator.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "storage/durable_store.h"

namespace neptune {
namespace rpc {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t CounterNow(const std::string& name) {
  return MetricsRegistry::Instance().Snapshot().CounterValue(name);
}

int64_t GaugeNow(const std::string& name) {
  auto snapshot = MetricsRegistry::Instance().Snapshot();
  auto it = snapshot.gauges.find(name);
  return it == snapshot.gauges.end() ? 0 : it->second;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 20000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ------------------------------------------------------------- codecs

TEST(ReplicationWireTest, FetchRequestRoundTrip) {
  ham::ReplFetchRequest in;
  in.directory = "/data/projects/alpha";
  in.follower_id = "follower-2";
  in.term = 7;
  in.epoch = 12;
  in.offset = 987654321;
  in.max_bytes = 65536;
  in.wait_ms = 450;
  std::string wire;
  EncodeReplFetchRequestTo(in, &wire);
  std::string_view view = wire;
  ham::ReplFetchRequest out;
  ASSERT_TRUE(DecodeReplFetchRequestFrom(&view, &out));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(out.directory, in.directory);
  EXPECT_EQ(out.follower_id, in.follower_id);
  EXPECT_EQ(out.term, in.term);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.offset, in.offset);
  EXPECT_EQ(out.max_bytes, in.max_bytes);
  EXPECT_EQ(out.wait_ms, in.wait_ms);

  // Every truncation of the wire form must fail cleanly, not misparse.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::string_view partial(wire.data(), cut);
    ham::ReplFetchRequest scratch;
    EXPECT_FALSE(DecodeReplFetchRequestFrom(&partial, &scratch))
        << "decoded from a " << cut << "-byte prefix";
  }
}

TEST(ReplicationWireTest, FetchResultRoundTrip) {
  for (auto action : {ham::ReplFetchResult::Action::kTail,
                      ham::ReplFetchResult::Action::kSnapshot,
                      ham::ReplFetchResult::Action::kStaleTerm}) {
    ham::ReplFetchResult in;
    in.action = action;
    in.term = 3;
    in.epoch = 9;
    in.offset = 1 << 20;
    in.epoch_end = action == ham::ReplFetchResult::Action::kTail;
    in.epoch_bytes = (1 << 20) + 512;
    in.meta = std::string("meta\x00with nul", 13);
    in.payload = std::string(1024, '\xAB');
    std::string wire;
    EncodeReplFetchResultTo(in, &wire);
    std::string_view view = wire;
    ham::ReplFetchResult out;
    ASSERT_TRUE(DecodeReplFetchResultFrom(&view, &out));
    EXPECT_TRUE(view.empty());
    EXPECT_EQ(out.action, in.action);
    EXPECT_EQ(out.term, in.term);
    EXPECT_EQ(out.epoch, in.epoch);
    EXPECT_EQ(out.offset, in.offset);
    EXPECT_EQ(out.epoch_end, in.epoch_end);
    EXPECT_EQ(out.epoch_bytes, in.epoch_bytes);
    EXPECT_EQ(out.meta, in.meta);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(ReplicationWireTest, NodeStatusRoundTrip) {
  ham::ReplNodeStatus in;
  in.term = 5;
  in.follower = true;
  in.epoch = 2;
  in.wal_bytes = 4096;
  in.lag_bytes = 128;
  in.behind_ms = ~0ull;  // "never caught up" must survive the wire
  std::string wire;
  EncodeReplNodeStatusTo(in, &wire);
  std::string_view view = wire;
  ham::ReplNodeStatus out;
  ASSERT_TRUE(DecodeReplNodeStatusFrom(&view, &out));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(out.term, in.term);
  EXPECT_EQ(out.follower, in.follower);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.wal_bytes, in.wal_bytes);
  EXPECT_EQ(out.lag_bytes, in.lag_bytes);
  EXPECT_EQ(out.behind_ms, in.behind_ms);
}

// ------------------------------------------------------------ fixture

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    base_ = (std::filesystem::temp_directory_path() / ("neptune_repl_" + name))
                .string();
    Env::Default()->RemoveDirRecursive(base_);
    Env::Default()->CreateDir(base_);
    primary_dir_ = base_ + "/primary";
    follower_dir_ = base_ + "/follower";

    ham::HamOptions primary_options;
    primary_options.sync_commits = false;
    // No surprise auto-rolls; roll tests checkpoint explicitly.
    primary_options.checkpoint_wal_bytes = 64ull << 20;
    primary_ = std::make_unique<ham::Ham>(Env::Default(), primary_options);
    server_ = std::make_unique<Server>(primary_.get());
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;

    auto created = primary_->CreateGraph(primary_dir_, 0755);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    project_ = created->project;
    auto ctx = primary_->OpenGraph(project_, "local", primary_dir_);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    pctx_ = *ctx;

    ham::HamOptions follower_options;
    follower_options.sync_commits = false;
    follower_options.follower_mode = true;
    follower_ = std::make_unique<ham::Ham>(Env::Default(), follower_options);
  }

  void TearDown() override {
    replicator_.reset();
    repl_client_.reset();
    server_.reset();
    follower_.reset();
    primary_.reset();
    Env::Default()->RemoveDirRecursive(base_);
  }

  Replicator::Options FastReplicatorOptions() const {
    Replicator::Options options;
    options.primary_root = primary_dir_;
    options.local_root = follower_dir_;
    options.poll_wait_ms = 25;
    options.list_refresh_ms = 50;
    options.backoff_initial_ms = 5;
    options.backoff_max_ms = 100;
    options.seed = 7;
    return options;
  }

  void StartReplicator() {
    auto client = RemoteHam::Connect("localhost", port_);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    repl_client_ = std::move(*client);
    replicator_ = std::make_unique<Replicator>(
        follower_.get(), repl_client_.get(), FastReplicatorOptions());
    replicator_->Start();
  }

  // One committed node with deterministic contents on the primary.
  ham::NodeIndex WriteNode(const std::string& contents) {
    auto added = primary_->AddNode(pctx_, true);
    EXPECT_TRUE(added.ok()) << added.status().ToString();
    if (!added.ok()) return 0;
    Status modified = primary_->ModifyNode(pctx_, added->node,
                                           added->creation_time, contents, {},
                                           "repl-test");
    EXPECT_TRUE(modified.ok()) << modified.ToString();
    return added->node;
  }

  // Reads node contents through the follower engine (local reads on
  // the replica — the consistency the protocol promises).
  std::string FollowerContents(ham::Context fctx, ham::NodeIndex node) {
    auto opened = follower_->OpenNode(fctx, node, 0, {});
    if (!opened.ok()) return "<error: " + opened.status().ToString() + ">";
    return opened->contents;
  }

  uint64_t FollowerNodeCount(ham::Context fctx) {
    auto stats = follower_->GetStats(fctx);
    return stats.ok() ? stats->node_count : 0;
  }

  std::string base_;
  std::string primary_dir_;
  std::string follower_dir_;
  std::unique_ptr<ham::Ham> primary_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
  ham::ProjectId project_ = 0;
  ham::Context pctx_;
  std::unique_ptr<ham::Ham> follower_;
  std::unique_ptr<RemoteHam> repl_client_;
  std::unique_ptr<Replicator> replicator_;
};

// A brand-new follower bootstraps with a snapshot, converges, serves
// identical reads locally, and refuses every mutation with kReadOnly.
TEST_F(ReplicationTest, BootstrapSnapshotThenReadOnlyFollower) {
  const uint64_t snapshots_before =
      CounterNow("repl.follower.snapshots_installed");
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(WriteNode("bootstrap contents #" + std::to_string(i)));
  }
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }))
      << "follower never caught up; error_cycles="
      << replicator_->error_cycles();
  EXPECT_GE(CounterNow("repl.follower.snapshots_installed"),
            snapshots_before + 1);
  EXPECT_EQ(replicator_->progress("").resyncs, 1u);

  auto fctx = follower_->OpenGraph(project_, "local", follower_dir_);
  ASSERT_TRUE(fctx.ok()) << fctx.status().ToString();
  EXPECT_EQ(FollowerNodeCount(*fctx), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(FollowerContents(*fctx, nodes[i]),
              "bootstrap contents #" + std::to_string(i));
  }

  // Every mutation path is fenced off on a follower.
  EXPECT_TRUE(follower_->AddNode(*fctx, true).status().IsReadOnly());
  EXPECT_TRUE(follower_->BeginTransaction(*fctx).IsReadOnly());
  EXPECT_TRUE(follower_->Checkpoint(*fctx).IsReadOnly());
  EXPECT_TRUE(
      follower_->CreateGraph(base_ + "/rogue", 0755).status().IsReadOnly());
  EXPECT_TRUE(follower_->CloseGraph(*fctx).ok());
}

// Steady state: commits made after bootstrap stream over as WAL chunks
// (no further snapshots) and become readable on the follower.
TEST_F(ReplicationTest, SteadyStateTailShipsCommits) {
  WriteNode("seed");
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));

  const uint64_t fetches_before = CounterNow("repl.primary.fetches");
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < 20; ++i) {
    nodes.push_back(WriteNode("tail contents #" + std::to_string(i)));
  }
  auto fctx = follower_->OpenGraph(project_, "local", follower_dir_);
  ASSERT_TRUE(fctx.ok()) << fctx.status().ToString();
  ASSERT_TRUE(WaitFor([&] { return FollowerNodeCount(*fctx) == 21u; }))
      << "follower stuck at " << FollowerNodeCount(*fctx) << " nodes";
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(FollowerContents(*fctx, nodes[i]),
              "tail contents #" + std::to_string(i));
  }
  EXPECT_EQ(replicator_->progress("").resyncs, 1u)
      << "steady-state tailing must not re-snapshot";
  EXPECT_GT(replicator_->progress("").chunks_applied, 0u);
  EXPECT_GT(CounterNow("repl.primary.fetches"), fetches_before);
  // The follower drained, so the primary's lag gauge settles at zero.
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));
  auto status = primary_->ReplStatus(primary_dir_);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_FALSE(status->follower);
  ASSERT_TRUE(WaitFor([&] { return GaugeNow("repl.lag_bytes") == 0; }));
}

// A primary checkpoint rolls the WAL generation; a caught-up follower
// follows it with a local roll, not a snapshot resync.
TEST_F(ReplicationTest, CheckpointRollsFollowerWithoutResync) {
  WriteNode("before roll");
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));

  ASSERT_TRUE(primary_->Checkpoint(pctx_).ok());
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(WriteNode("after roll #" + std::to_string(i)));
  }
  ASSERT_TRUE(WaitFor([&] {
    return replicator_->progress("").rolls >= 1 && replicator_->AllCaughtUp();
  })) << "rolls=" << replicator_->progress("").rolls;
  EXPECT_EQ(replicator_->progress("").resyncs, 1u)
      << "the roll must not force a snapshot";

  auto fctx = follower_->OpenGraph(project_, "local", follower_dir_);
  ASSERT_TRUE(fctx.ok()) << fctx.status().ToString();
  EXPECT_EQ(FollowerNodeCount(*fctx), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(FollowerContents(*fctx, nodes[i]),
              "after roll #" + std::to_string(i));
  }
  // Both sides agree on the generation.
  auto pstatus = primary_->ReplStatus(primary_dir_);
  auto fstatus = follower_->ReplStatus(follower_dir_);
  ASSERT_TRUE(pstatus.ok() && fstatus.ok());
  EXPECT_EQ(pstatus->epoch, fstatus->epoch);
}

// A follower that stalls long enough for its WAL generation to be
// retired (two checkpoints with keep=1) re-snapshots instead of dying.
TEST_F(ReplicationTest, FarBehindFollowerResnapshots) {
  WriteNode("generation 1");
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));
  replicator_->Stop();

  WriteNode("generation 2");
  ASSERT_TRUE(primary_->Checkpoint(pctx_).ok());
  WriteNode("generation 3");
  ASSERT_TRUE(primary_->Checkpoint(pctx_).ok());
  auto last = WriteNode("generation 4");

  // The follower's old cursor now points at a WAL file the primary
  // deleted; the fetch must come back kSnapshot and converge anyway.
  const uint64_t snapshots_before =
      CounterNow("repl.follower.snapshots_installed");
  replicator_ = std::make_unique<Replicator>(
      follower_.get(), repl_client_.get(), FastReplicatorOptions());
  replicator_->Start();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));
  EXPECT_GE(replicator_->progress("").resyncs, 1u);
  EXPECT_GT(CounterNow("repl.follower.snapshots_installed"), snapshots_before)
      << "expected a second snapshot bootstrap";

  auto fctx = follower_->OpenGraph(project_, "local", follower_dir_);
  ASSERT_TRUE(fctx.ok()) << fctx.status().ToString();
  EXPECT_EQ(FollowerNodeCount(*fctx), 4u);
  EXPECT_EQ(FollowerContents(*fctx, last), "generation 4");
}

// Corruption on the wire: every shipped chunk is bit-flipped until the
// follower gives up on the stream and forces a snapshot resync; once
// the link heals it converges to identical state.
TEST_F(ReplicationTest, CorruptChunkTruncatesThenResyncs) {
  WriteNode("pre-corruption");
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));

  const uint64_t corrupt_before = CounterNow("repl.follower.corrupt_chunks");
  const uint64_t forced_before = CounterNow("repl.follower.forced_resyncs");
  std::atomic<bool> corrupt{true};
  replicator_->chunk_mutator_for_test = [&](std::string* payload) {
    if (corrupt.load() && !payload->empty()) {
      (*payload)[payload->size() / 2] ^= 0x5A;
    }
  };
  std::vector<ham::NodeIndex> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(WriteNode("corrupted in flight #" + std::to_string(i)));
  }
  // The follower must reject the garbage (CRC) and, after repeated
  // zero-progress strikes at the same offset, demand a snapshot.
  ASSERT_TRUE(WaitFor([&] {
    return CounterNow("repl.follower.forced_resyncs") > forced_before ||
           replicator_->progress("").resyncs >= 2;
  })) << "follower never gave up on the corrupt stream";
  EXPECT_GT(CounterNow("repl.follower.corrupt_chunks"), corrupt_before);
  corrupt.store(false);

  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));
  auto fctx = follower_->OpenGraph(project_, "local", follower_dir_);
  ASSERT_TRUE(fctx.ok()) << fctx.status().ToString();
  EXPECT_EQ(FollowerNodeCount(*fctx), 5u)
      << "corrupt chunks must never half-apply";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(FollowerContents(*fctx, nodes[i]),
              "corrupted in flight #" + std::to_string(i));
  }
  auto problems = follower_->VerifyGraph(*fctx);
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty());
}

// Fencing: a promoted follower carries a higher term, and a deposed
// primary may not feed it (nor any follower that has seen the new
// term) a single byte.
TEST_F(ReplicationTest, TermFencingRejectsDeposedPrimary) {
  WriteNode("from the old primary");
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));
  replicator_->Stop();

  // Promote the follower: term bumps and writes open up.
  auto term = follower_->Promote();
  ASSERT_TRUE(term.ok()) << term.status().ToString();
  EXPECT_GE(*term, 1u);
  EXPECT_FALSE(follower_->follower());
  auto fctx = follower_->OpenGraph(project_, "local", follower_dir_);
  ASSERT_TRUE(fctx.ok()) << fctx.status().ToString();
  EXPECT_TRUE(follower_->AddNode(*fctx, true).ok());

  // A second follower syncs from the *new* primary and learns its term.
  Server follower_server(follower_.get());
  auto fport = follower_server.Start(0);
  ASSERT_TRUE(fport.ok()) << fport.status().ToString();
  ham::HamOptions f2_options;
  f2_options.sync_commits = false;
  f2_options.follower_mode = true;
  ham::Ham f2(Env::Default(), f2_options);
  auto f2_client = RemoteHam::Connect("localhost", *fport);
  ASSERT_TRUE(f2_client.ok());
  const std::string f2_dir = base_ + "/follower2";
  Replicator::Options f2_opts = FastReplicatorOptions();
  f2_opts.primary_root = follower_dir_;
  f2_opts.local_root = f2_dir;
  {
    Replicator f2_repl(&f2, f2_client->get(), f2_opts);
    f2_repl.Start();
    ASSERT_TRUE(WaitFor([&] { return f2_repl.AllCaughtUp(); }));
    EXPECT_EQ(f2_repl.progress("").term, *term);
  }

  // Re-point the synced follower at the deposed primary: both sides
  // must refuse — the primary self-fences on the higher request term,
  // the follower rejects the stale reply term.
  const uint64_t primary_rejects_before =
      CounterNow("repl.primary.stale_term_rejects");
  const uint64_t follower_rejects_before =
      CounterNow("repl.follower.stale_primary_rejects");
  const ham::NodeIndex late = WriteNode("late append on deposed primary");
  ASSERT_NE(late, 0u);
  Replicator::Options stale_opts = FastReplicatorOptions();
  stale_opts.local_root = f2_dir;
  Replicator stale_repl(&f2, repl_client_.get(), stale_opts);
  stale_repl.Start();
  ASSERT_TRUE(WaitFor([&] {
    return CounterNow("repl.follower.stale_primary_rejects") >
           follower_rejects_before;
  })) << "stale primary was never rejected";
  stale_repl.Stop();
  EXPECT_GT(CounterNow("repl.primary.stale_term_rejects"),
            primary_rejects_before);
  EXPECT_FALSE(stale_repl.AllCaughtUp());

  // Nothing from the deposed primary's late write landed on f2. (Node
  // indices collide across the diverged histories — the new primary
  // allocated the same id — so the check is on contents, not presence.)
  auto f2_ctx = f2.OpenGraph(project_, "local", f2_dir);
  ASSERT_TRUE(f2_ctx.ok()) << f2_ctx.status().ToString();
  auto diverged = f2.OpenNode(*f2_ctx, late, 0, {});
  if (diverged.ok()) {
    EXPECT_NE(diverged->contents, "late append on deposed primary");
  }
  auto problems = f2.VerifyGraph(*f2_ctx);
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty());
}

// Client-side read routing: a RemoteHam configured with a follower
// endpoint serves idempotent reads from the fresh follower, falls back
// to the primary when the follower dies, and never routes in-txn reads.
TEST_F(ReplicationTest, FollowerReadRoutingAndFallback) {
  const ham::NodeIndex node = WriteNode("routed read contents");
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));

  auto follower_server = std::make_unique<Server>(follower_.get());
  auto fport = follower_server->Start(0);
  ASSERT_TRUE(fport.ok()) << fport.status().ToString();

  RemoteHam::Options options;
  options.follower_host = "localhost";
  options.follower_port = *fport;
  options.follower_status_ttl_ms = 50;
  // The test replica lives beside the primary, so remap its root.
  options.follower_remap_from = primary_dir_;
  options.follower_remap_to = follower_dir_;
  auto client = RemoteHam::Connect("localhost", port_, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->has_follower());
  auto ctx = (*client)->OpenGraph(project_, "localhost", primary_dir_);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  const uint64_t routed_before = CounterNow("repl.client.follower_reads");
  auto opened = (*client)->OpenNode(*ctx, node, 0, {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->contents, "routed read contents");
  EXPECT_GT(CounterNow("repl.client.follower_reads"), routed_before)
      << "read was not served by the follower";

  // In-transaction reads must stay on the primary (the follower has no
  // view of uncommitted state).
  const uint64_t routed_mid = CounterNow("repl.client.follower_reads");
  ASSERT_TRUE((*client)->BeginTransaction(*ctx).ok());
  auto txn_added = (*client)->AddNode(*ctx, true);
  ASSERT_TRUE(txn_added.ok());
  auto txn_read = (*client)->OpenNode(*ctx, txn_added->node, 0, {});
  EXPECT_TRUE(txn_read.ok()) << txn_read.status().ToString();
  ASSERT_TRUE((*client)->CommitTransaction(*ctx).ok());
  EXPECT_EQ(CounterNow("repl.client.follower_reads"), routed_mid)
      << "an in-transaction read leaked to the follower";

  // Kill the follower entirely: reads keep succeeding off the primary.
  replicator_->Stop();
  follower_server.reset();
  const uint64_t fell_back_before =
      CounterNow("repl.client.fallback_to_primary") +
      CounterNow("repl.client.stale_follower");
  ASSERT_TRUE(WaitFor([&] {
    auto reread = (*client)->OpenNode(*ctx, node, 0, {});
    EXPECT_TRUE(reread.ok()) << reread.status().ToString();
    return CounterNow("repl.client.fallback_to_primary") +
               CounterNow("repl.client.stale_follower") >
           fell_back_before;
  })) << "client never noticed the dead follower";
  auto reread = (*client)->OpenNode(*ctx, node, 0, {});
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread->contents, "routed read contents");
  EXPECT_TRUE((*client)->CloseGraph(*ctx).ok());
}

// Promotion over the wire: the ctl path — primary dies, the operator
// promotes the follower through its server, and writes move over.
TEST_F(ReplicationTest, PromoteOverRpcTakesWrites) {
  const ham::NodeIndex acked = WriteNode("must survive failover");
  StartReplicator();
  ASSERT_TRUE(WaitFor([&] { return replicator_->AllCaughtUp(); }));

  Server follower_server(follower_.get());
  auto fport = follower_server.Start(0);
  ASSERT_TRUE(fport.ok()) << fport.status().ToString();

  // Primary dies.
  server_.reset();

  auto ctl = RemoteHam::Connect("localhost", *fport);
  ASSERT_TRUE(ctl.ok()) << ctl.status().ToString();
  auto term = (*ctl)->Promote();
  ASSERT_TRUE(term.ok()) << term.status().ToString();
  EXPECT_GE(*term, 1u);

  // The promoted node serves the acked history and takes new writes.
  auto ctx = (*ctl)->OpenGraph(project_, "localhost", follower_dir_);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  auto survived = (*ctl)->OpenNode(*ctx, acked, 0, {});
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ(survived->contents, "must survive failover");
  auto added = (*ctl)->AddNode(*ctx, true);
  EXPECT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_TRUE((*ctl)->CloseGraph(*ctx).ok());

  // Promote is idempotent from the operator's point of view: a second
  // promote must not bump the fencing term again.
  auto again = (*ctl)->Promote();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *term);
}

// replListGraphs walks a tree of stores; the replicator mirrors all of
// them under one root.
TEST_F(ReplicationTest, MultiGraphTreeReplicates) {
  const std::string tree = base_ + "/tree";
  ASSERT_TRUE(Env::Default()->CreateDir(tree).ok());
  auto a = primary_->CreateGraph(tree + "/alpha", 0755);
  auto b = primary_->CreateGraph(tree + "/beta", 0755);
  ASSERT_TRUE(a.ok() && b.ok());
  auto actx = primary_->OpenGraph(a->project, "local", tree + "/alpha");
  auto bctx = primary_->OpenGraph(b->project, "local", tree + "/beta");
  ASSERT_TRUE(actx.ok() && bctx.ok());
  ASSERT_TRUE(primary_->AddNode(*actx, true).ok());
  ASSERT_TRUE(primary_->AddNode(*bctx, true).ok());
  ASSERT_TRUE(primary_->AddNode(*bctx, true).ok());

  auto listed = primary_->ReplListGraphs(tree);
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  EXPECT_EQ(*listed, (std::vector<std::string>{"alpha", "beta"}));

  auto client = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client.ok());
  Replicator::Options options = FastReplicatorOptions();
  options.primary_root = tree;
  options.local_root = base_ + "/tree_replica";
  Replicator replicator(follower_.get(), client->get(), options);
  replicator.Start();
  ASSERT_TRUE(WaitFor([&] { return replicator.AllCaughtUp(); }));

  auto fa = follower_->OpenGraph(a->project, "local",
                                 base_ + "/tree_replica/alpha");
  auto fb = follower_->OpenGraph(b->project, "local",
                                 base_ + "/tree_replica/beta");
  ASSERT_TRUE(fa.ok() && fb.ok());
  EXPECT_EQ(follower_->GetStats(*fa)->node_count, 1u);
  EXPECT_EQ(follower_->GetStats(*fb)->node_count, 2u);
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

// Multi-client chaos soak: one well-behaved client makes steady
// progress while hostile peers flood, stall and vanish around it. The
// test asserts the server's self-protection story end to end:
//
//  * the well-behaved client completes 100% of its operations,
//  * abandoned transactions are reclaimed by the lease watchdog
//    (ham.txn.aborted_by_lease > 0),
//  * every chaos session is gone afterwards (server.sessions.active
//    returns to zero before the verification session opens),
//  * the graph passes a structural fsck.
//
// Runs in its own binary so it can ResetForTest() the process-global
// metrics registry per seed without disturbing other suites.
//
// Environment knobs (used by the CI soak step):
//   NEPTUNE_CHAOS_SECONDS  wall-clock per seed (default 2)
//   NEPTUNE_CHAOS_SEEDS    comma-separated seed list (default "1")

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/metrics.h"
#include "common/random.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace rpc {
namespace {

using Clock = std::chrono::steady_clock;

int ChaosSeconds() {
  const char* s = std::getenv("NEPTUNE_CHAOS_SECONDS");
  int v = (s != nullptr) ? std::atoi(s) : 0;
  return v > 0 ? v : 2;
}

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* s = std::getenv("NEPTUNE_CHAOS_SEEDS");
  if (s != nullptr) {
    uint64_t cur = 0;
    bool in_number = false;
    for (const char* p = s;; ++p) {
      if (*p >= '0' && *p <= '9') {
        cur = cur * 10 + static_cast<uint64_t>(*p - '0');
        in_number = true;
      } else {
        if (in_number) seeds.push_back(cur);
        cur = 0;
        in_number = false;
        if (*p == '\0') break;
      }
    }
  }
  if (seeds.empty()) seeds.push_back(1);
  return seeds;
}

uint64_t CounterNow(const std::string& name) {
  return MetricsRegistry::Instance().Snapshot().CounterValue(name);
}

int64_t GaugeNow(const std::string& name) {
  auto snapshot = MetricsRegistry::Instance().Snapshot();
  auto it = snapshot.gauges.find(name);
  return it == snapshot.gauges.end() ? 0 : it->second;
}

// The well-behaved citizen: transactional writes plus reads, all of
// which must succeed no matter what the other clients are doing.
void WellBehavedLoop(uint16_t port, ham::ProjectId project,
                     const std::string& dir, uint64_t seed,
                     std::atomic<bool>* stop, std::atomic<uint64_t>* ops,
                     std::atomic<uint64_t>* failures,
                     std::string* first_failure) {
  RemoteHam::Options options;
  options.max_retries = 8;
  options.recv_timeout_ms = 20000;  // rides out writer-slot waits
  options.retry_seed = seed + 1;
  auto client = RemoteHam::Connect("localhost", port, options);
  if (!client.ok()) {
    failures->fetch_add(1);
    *first_failure = "connect: " + client.status().ToString();
    return;
  }
  auto check = [&](const Status& status, const char* what) {
    if (status.ok()) {
      ops->fetch_add(1);
      return true;
    }
    if (failures->fetch_add(1) == 0) {
      *first_failure = std::string(what) + ": " + status.ToString();
    }
    return false;
  };
  auto ctx = (*client)->OpenGraph(project, "localhost", dir);
  if (!check(ctx.status(), "openGraph")) return;
  auto attr = (*client)->GetAttributeIndex(*ctx, "chaos");
  if (!check(attr.status(), "getAttributeIndex")) return;
  Random rng(seed + 17);
  while (!stop->load(std::memory_order_relaxed)) {
    if (!check((*client)->BeginTransaction(*ctx), "begin")) break;
    auto node = (*client)->AddNode(*ctx, true);
    if (!check(node.status(), "addNode")) break;
    if (!check((*client)->SetNodeAttributeValue(*ctx, node->node, *attr,
                                                "v" + std::to_string(rng.Next())),
               "setAttr")) {
      break;
    }
    if (!check((*client)->CommitTransaction(*ctx), "commit")) break;
    if (!check((*client)->GetNodeTimeStamp(*ctx, node->node).status(),
               "timestamp")) {
      break;
    }
    if (rng.OneIn(4) &&
        !check((*client)->GetStats(*ctx).status(), "getStats")) {
      break;
    }
  }
  check((*client)->CloseGraph(*ctx), "closeGraph");
}

// Sends `bytes` on a bare TCP connection — wire abuse the FrameStream
// client would refuse to produce — and drains whatever comes back.
void RawBlast(uint16_t port, std::string_view bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    timeval tv{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::send(fd, bytes.data(), bytes.size(), 0);
    char buf[1024];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
  }
  ::close(fd);
}

// The flooder: hostile length prefixes, CRC garbage and ping storms on
// fresh connections, as fast as the server will take them.
void FlooderLoop(uint16_t port, uint64_t seed, std::atomic<bool>* stop) {
  Random rng(seed + 31);
  while (!stop->load(std::memory_order_relaxed)) {
    switch (rng.Uniform(4)) {
      case 0: {
        // Hostile length prefix claiming a 1 GiB body.
        std::string header;
        PutFixed32(&header, 1u << 30);
        PutFixed32(&header, 0);
        RawBlast(port, header);
        continue;
      }
      case 1: {
        // Raw garbage that never parses as a frame header + body.
        RawBlast(port, rng.NextBytes(64));
        continue;
      }
      default:
        break;
    }
    auto stream = FrameStream::Connect("localhost", port);
    if (!stream.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    (*stream)->SetTimeouts(1000, 1000);
    if (rng.OneIn(2)) {
      std::string ping;
      ping.push_back(static_cast<char>(Method::kPing));
      ping += "flood";
      for (int i = 0; i < 16 && !stop->load(); ++i) {
        if (!(*stream)->SendFrame(ping).ok()) break;
        if (!(*stream)->RecvFrame().ok()) break;
      }
    } else {
      // Truncated request body for a real method.
      std::string request;
      request.push_back(static_cast<char>(Method::kOpenNode));
      request.push_back('\x02');
      (void)(*stream)->SendFrame(request);
      (void)(*stream)->RecvFrame();
    }
    // Half the time vanish without closing politely.
    if (rng.OneIn(2)) (*stream)->Close();
  }
}

// The staller: opens a transaction and goes silent past the lease, so
// the watchdog must reclaim the writer slot.
void StallerLoop(uint16_t port, ham::ProjectId project,
                 const std::string& dir, uint64_t seed,
                 std::atomic<bool>* stop, int hold_ms) {
  Random rng(seed + 47);
  while (!stop->load(std::memory_order_relaxed)) {
    RemoteHam::Options options;
    options.recv_timeout_ms = 5000;
    options.max_retries = 0;
    options.retry_seed = seed + 53;
    auto client = RemoteHam::Connect("localhost", port, options);
    if (client.ok()) {
      auto ctx = (*client)->OpenGraph(project, "localhost", dir);
      if (ctx.ok() && (*client)->BeginTransaction(*ctx).ok()) {
        (void)(*client)->AddNode(*ctx, true);
        // Silence. The lease watchdog must abort this transaction and
        // free the writer slot long before hold_ms elapses.
        for (int waited = 0; waited < hold_ms && !stop->load(); waited += 20) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        // Whatever happens now is fine — commit is refused with
        // kAborted, or the connection was already reaped.
        (void)(*client)->CommitTransaction(*ctx);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(rng.Uniform(30)));
  }
}

// The vanisher: starts real transactional work, then disappears
// abruptly mid-transaction.
void VanisherLoop(uint16_t port, ham::ProjectId project,
                  const std::string& dir, uint64_t seed,
                  std::atomic<bool>* stop) {
  Random rng(seed + 71);
  while (!stop->load(std::memory_order_relaxed)) {
    RemoteHam::Options options;
    options.recv_timeout_ms = 5000;
    options.max_retries = 0;
    options.retry_seed = seed + 83;
    auto client = RemoteHam::Connect("localhost", port, options);
    if (client.ok()) {
      auto ctx = (*client)->OpenGraph(project, "localhost", dir);
      if (ctx.ok() && (*client)->BeginTransaction(*ctx).ok()) {
        (void)(*client)->AddNode(*ctx, true);
      }
      // Drop the stub — no abort, no closeGraph, no FIN courtesy.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(rng.Uniform(50)));
  }
}

TEST(ChaosSoakTest, WellBehavedClientSurvivesHostileLoad) {
  const int seconds = ChaosSeconds();
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    MetricsRegistry::Instance().ResetForTest();
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("neptune_chaos_" + std::to_string(seed)))
            .string();
    Env::Default()->RemoveDirRecursive(dir);

    ham::HamOptions ham_options;
    ham_options.sync_commits = false;
    ham_options.txn_lease_ms = 250;
    auto engine = std::make_unique<ham::Ham>(Env::Default(), ham_options);

    Server::Options server_options;
    server_options.max_frame_bytes = 1u << 20;
    server_options.idle_timeout_ms = 600;
    auto server = std::make_unique<Server>(engine.get(), server_options);
    auto port = server->Start(0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();

    auto created = engine->CreateGraph(dir, 0755);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    const ham::ProjectId project = created->project;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> good_ops{0};
    std::atomic<uint64_t> good_failures{0};
    std::string first_failure;
    std::vector<std::thread> chaos;
    chaos.emplace_back(WellBehavedLoop, *port, project, dir, seed, &stop,
                       &good_ops, &good_failures, &first_failure);
    chaos.emplace_back(FlooderLoop, *port, seed, &stop);
    chaos.emplace_back(StallerLoop, *port, project, dir, seed, &stop,
                       /*hold_ms=*/700);
    chaos.emplace_back(VanisherLoop, *port, project, dir, seed, &stop);
    chaos.emplace_back(VanisherLoop, *port, project, dir, seed + 1000, &stop);

    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    stop.store(true);
    for (auto& t : chaos) t.join();

    // The well-behaved client completed every operation it attempted.
    EXPECT_EQ(good_failures.load(), 0u) << first_failure;
    EXPECT_GT(good_ops.load(), 0u);

    // The stallers guaranteed at least one lease-reclaimed transaction.
    EXPECT_GE(CounterNow("ham.txn.aborted_by_lease"), 1u);

    // Every chaos session must drain: vanished connections get their
    // sessions closed, reaped connections likewise. Poll briefly — the
    // last EOFs are still being processed when join() returns.
    const auto deadline = Clock::now() + std::chrono::seconds(20);
    while ((GaugeNow("server.sessions.active") != 0 ||
            GaugeNow("rpc.connections.active") != 0) &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(GaugeNow("rpc.connections.active"), 0);
    EXPECT_EQ(GaugeNow("server.sessions.active"), 0);

    // Structural fsck over everything the melee committed; with the
    // verification session open, exactly one session is active.
    auto ctx = engine->OpenGraph(project, "localhost", dir);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    EXPECT_EQ(GaugeNow("server.sessions.active"), 1);
    auto problems = engine->VerifyGraph(*ctx);
    ASSERT_TRUE(problems.ok()) << problems.status().ToString();
    EXPECT_TRUE(problems->empty())
        << problems->size() << " problems, first: " << problems->front();
    auto stats = engine->GetStats(*ctx);
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(engine->CloseGraph(*ctx).ok());

    auto snapshot = MetricsRegistry::Instance().Snapshot();
    std::printf(
        "[chaos] seed=%llu seconds=%d good_ops=%llu nodes=%llu "
        "lease_aborts=%llu shed=%llu reaped=%llu limit_rejections=%llu "
        "accepted=%llu\n",
        static_cast<unsigned long long>(seed), seconds,
        static_cast<unsigned long long>(good_ops.load()),
        static_cast<unsigned long long>(stats->node_count),
        static_cast<unsigned long long>(
            snapshot.CounterValue("ham.txn.aborted_by_lease")),
        static_cast<unsigned long long>(snapshot.CounterValue("server.shed")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("server.connections.reaped")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("ham.limits.rejected")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("rpc.connections.accepted")));

    server->Stop();
    server.reset();
    engine.reset();
    Env::Default()->RemoveDirRecursive(dir);
  }
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

// The trace-context wire extension: a flagged method byte carries
// (trace_id, parent_span_id, sampled) ahead of the normal request so
// the server's spans parent under the client's. Both compatibility
// directions are covered — an old client against this server (plain
// requests self-root) and this client against an old server (the
// flagged request is answered "unknown method" and the client
// downgrades, permanently, to plain requests) — plus the end-to-end
// guarantee: one remote versioned read produces one connected trace.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "common/coding.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"
#include "rpc/wire.h"

namespace neptune {
namespace rpc {
namespace {

class TraceWireTest : public ::testing::Test {
 protected:
  // Builds engine + server with the given tracing knobs. The Ham
  // constructor applies trace_* to the process-global tracer, so the
  // in-process "client side" of these tests records spans too — which
  // is exactly the deployment shape of neptune_server + neptune_ctl.
  void StartServer(uint32_t sample_n, uint64_t slow_us,
                   bool accept_trace_context) {
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_trace_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
    ham::HamOptions options;
    options.sync_commits = false;
    options.trace_sample_n = sample_n;
    options.trace_slow_us = slow_us;
    engine_ = std::make_unique<ham::Ham>(Env::Default(), options);
    Tracer::Instance().ResetForTest();
    Server::Options server_options;
    server_options.accept_trace_context = accept_trace_context;
    server_ = std::make_unique<Server>(engine_.get(), server_options);
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  void ConnectClient() {
    auto client = RemoteHam::Connect("localhost", port_);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);
  }

  void CreateAndOpenGraph() {
    auto created = client_->CreateGraph(dir_, 0755);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto ctx = client_->OpenGraph(created->project, "localhost", dir_);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = *ctx;
  }

  void TearDown() override {
    client_.reset();
    if (server_) server_->Stop();
    server_.reset();
    engine_.reset();
    Tracer::Instance().Configure(0, 0);
    Tracer::Instance().ResetForTest();
    Env::Default()->RemoveDirRecursive(dir_);
  }

  std::string dir_;
  std::unique_ptr<ham::Ham> engine_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
  std::unique_ptr<RemoteHam> client_;
  ham::Context ctx_;
};

TEST_F(TraceWireTest, ContextCodecRoundTrips) {
  TraceContext ctx;
  ctx.trace_id = 0xDEADBEEFCAFE;
  ctx.parent_span_id = 42;
  ctx.sampled = true;

  std::string encoded;
  EncodeTraceContextTo(ctx, &encoded);
  EXPECT_EQ(encoded.size(), 17u);  // fixed64 + fixed64 + flags byte

  std::string_view in = encoded;
  TraceContext decoded;
  ASSERT_TRUE(DecodeTraceContextFrom(&in, &decoded));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.trace_id, ctx.trace_id);
  EXPECT_EQ(decoded.parent_span_id, ctx.parent_span_id);
  EXPECT_TRUE(decoded.sampled);

  in = std::string_view(encoded.data(), 10);  // truncated
  EXPECT_FALSE(DecodeTraceContextFrom(&in, &decoded));
}

// An old client sends plain method bytes. The server must serve them
// exactly as before and self-root its trace.
TEST_F(TraceWireTest, PlainRequestSelfRootsOnServer) {
  StartServer(/*sample_n=*/1, /*slow_us=*/0, /*accept_trace_context=*/true);
  auto stream = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(stream.ok());

  std::string ping;
  ping.push_back(static_cast<char>(Method::kPing));
  ping += "hello";
  ASSERT_TRUE((*stream)->SendFrame(ping).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  auto traces = Tracer::Instance().RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  bool found = false;
  for (const auto& span : traces[0].spans) {
    if (span.name == "rpc.server.ping") {
      EXPECT_EQ(span.parent_id, 0u) << "plain request must self-root";
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// A flagged byte whose trace context is garbage must be refused
// without executing anything, and the connection must survive.
TEST_F(TraceWireTest, TruncatedContextIsRejected) {
  StartServer(1, 0, true);
  auto stream = FrameStream::Connect("localhost", port_);
  ASSERT_TRUE(stream.ok());

  std::string request;
  request.push_back(
      static_cast<char>(static_cast<uint8_t>(Method::kPing) |
                        kTraceContextFlag));
  request += "xyz";  // far short of the 17-byte context
  ASSERT_TRUE((*stream)->SendFrame(request).ok());
  auto reply = (*stream)->RecvFrame();
  ASSERT_TRUE(reply.ok());
  std::string_view in = *reply;
  Status status;
  ASSERT_TRUE(DecodeStatusFrom(&in, &status));
  EXPECT_TRUE(status.IsCorruption());

  std::string ping;
  ping.push_back(static_cast<char>(Method::kPing));
  ping += "ok?";
  ASSERT_TRUE((*stream)->SendFrame(ping).ok());
  EXPECT_TRUE((*stream)->RecvFrame().ok());
}

// This client against an "old" server (accept_trace_context=false
// answers flagged requests exactly like a pre-tracing build): the
// first flagged call downgrades and is resent plain; every later call
// goes out plain with no extra round trip.
TEST_F(TraceWireTest, ClientDowngradesAgainstOldServer) {
  StartServer(/*sample_n=*/1, /*slow_us=*/0, /*accept_trace_context=*/false);
  Counter* downgrades =
      MetricsRegistry::Instance().GetCounter("rpc.client.trace_downgrades");
  const uint64_t before = downgrades->Value();

  // Connect's liveness ping is already traced, so it is the flagged
  // call that triggers the one-and-only downgrade.
  ConnectClient();
  CreateAndOpenGraph();  // several traced calls, all must succeed
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "works against old servers", {}, "")
                  .ok());
  auto opened = client_->OpenNode(ctx_, added->node, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, "works against old servers");

  EXPECT_EQ(downgrades->Value(), before + 1)
      << "one downgrade, then plain requests forever";

  // The server still traced the plain requests, self-rooted.
  bool saw_server_span = false;
  for (const auto& trace : Tracer::Instance().RecentTraces()) {
    for (const auto& span : trace.spans) {
      if (span.name == "rpc.server.openNode") saw_server_span = true;
    }
  }
  EXPECT_TRUE(saw_server_span);
}

// The acceptance path: one remote versioned read yields ONE connected
// trace — client span -> server rpc span -> ham op span -> lock-wait
// and delta-reconstruction children.
TEST_F(TraceWireTest, VersionedReadIsOneConnectedTrace) {
  StartServer(/*sample_n=*/1, /*slow_us=*/0, /*accept_trace_context=*/true);
  ConnectClient();
  CreateAndOpenGraph();

  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "version 1", {}, "v1")
                  .ok());
  auto reopened = client_->OpenNode(ctx_, added->node, 0, {});
  ASSERT_TRUE(reopened.ok());
  const ham::Time v1_time = reopened->current_version_time;
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, v1_time, "version 2", {},
                                  "v2")
                  .ok());

  // The traced read: old version, reconstructed through the chain.
  Tracer::Instance().ResetForTest();
  auto old_version = client_->OpenNode(ctx_, added->node, v1_time, {});
  ASSERT_TRUE(old_version.ok());
  EXPECT_EQ(old_version->contents, "version 1");

  // Fetch over the wire, as neptune_ctl trace does.
  auto traces = client_->GetRecentTraces();
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  ASSERT_EQ(traces->size(), 1u) << "client and server halves must merge";
  const Trace& trace = (*traces)[0];

  std::map<std::string, const Span*> by_name;
  std::map<uint64_t, const Span*> by_id;
  for (const Span& span : trace.spans) {
    EXPECT_EQ(span.trace_id, trace.trace_id);
    by_name[span.name] = &span;
    by_id[span.span_id] = &span;
  }
  for (const char* needed :
       {"rpc.client.openNode", "rpc.server.openNode", "rpc.server.admission",
        "ham.openNode", "ham.lock.shared_wait", "delta.reconstruct"}) {
    ASSERT_TRUE(by_name.count(needed)) << "missing span " << needed;
  }

  // The client span is the root; everything else reaches it by
  // walking parent edges.
  EXPECT_EQ(by_name["rpc.client.openNode"]->parent_id, 0u);
  EXPECT_EQ(by_name["rpc.server.openNode"]->parent_id,
            by_name["rpc.client.openNode"]->span_id);
  for (const Span& span : trace.spans) {
    const Span* cursor = &span;
    int hops = 0;
    while (cursor->parent_id != 0 && hops++ < 64) {
      ASSERT_TRUE(by_id.count(cursor->parent_id))
          << span.name << " has a dangling parent";
      cursor = by_id[cursor->parent_id];
    }
    EXPECT_EQ(cursor->name, "rpc.client.openNode")
        << span.name << " is not connected to the client root";
  }

  // The op annotations made it across the wire.
  EXPECT_NE(by_name["ham.openNode"]->annotation.find("node="),
            std::string::npos);
  EXPECT_NE(by_name["delta.reconstruct"]->annotation.find("cache="),
            std::string::npos);

  // And the whole thing exports as Chrome JSON.
  const std::string json = TracesToChromeJson(*traces);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("rpc.client.openNode"), std::string::npos);
  EXPECT_NE(json.find("delta.reconstruct"), std::string::npos);
}

// A span past trace_slow_us lands in the slow-op ring even when its
// root lost the 1-in-N sampling lottery.
TEST_F(TraceWireTest, SlowOpsSurviveSampling) {
  // sample_n so large that (after the first root) nothing is sampled;
  // slow_us=1 so every real operation counts as slow.
  StartServer(/*sample_n=*/1u << 30, /*slow_us=*/1, /*accept=*/true);
  ConnectClient();
  CreateAndOpenGraph();

  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  auto opened = client_->OpenNode(ctx_, added->node, 0, {});
  ASSERT_TRUE(opened.ok());

  auto slow = client_->GetSlowOps();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  ASSERT_FALSE(slow->empty());
  bool saw_open_node = false;
  for (const Span& span : *slow) {
    EXPECT_GE(span.duration_us, 1u);
    if (span.name == "ham.openNode") saw_open_node = true;
  }
  EXPECT_TRUE(saw_open_node);
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

// Client/server resilience: per-call deadlines, fail-fast against dead
// peers, transparent reconnect for idempotent calls, and graceful
// server drain. Everything here is bounded — a hung test IS the bug.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/metrics.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"
#include "storage/env.h"

namespace neptune {
namespace rpc {
namespace {

using Clock = std::chrono::steady_clock;

int64_t MillisSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

class RpcResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_resil_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
    ham::HamOptions options;
    options.sync_commits = false;
    engine_ = std::make_unique<ham::Ham>(Env::Default(), options);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    engine_.reset();
    Env::Default()->RemoveDirRecursive(dir_);
  }

  void StartServer(uint16_t port = 0) {
    server_ = std::make_unique<Server>(engine_.get());
    auto bound = server_->Start(port);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    port_ = *bound;
  }

  std::string dir_;
  std::unique_ptr<ham::Ham> engine_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
};

TEST_F(RpcResilienceTest, KilledServerFailsFastNotForever) {
  StartServer();
  RemoteHam::Options options;
  options.send_timeout_ms = 500;
  options.recv_timeout_ms = 500;
  options.connect_timeout_ms = 500;
  options.max_retries = 2;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 20;
  auto client = RemoteHam::Connect("localhost", port_, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Ping().ok());

  // Kill the server out from under the client.
  server_->Stop();
  server_.reset();

  const auto start = Clock::now();
  Status st = (*client)->Ping();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable() || st.IsDeadlineExceeded())
      << st.ToString();
  // Bounded: deadlines + capped backoff, not a hang.
  EXPECT_LT(MillisSince(start), 3000) << st.ToString();
}

TEST_F(RpcResilienceTest, SilentPeerTripsTheRecvDeadline) {
  // A listener that accepts (the kernel completes the handshake for
  // the backlog) but never serves: the classic hung server.
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());

  RemoteHam::Options options;
  options.recv_timeout_ms = 200;
  options.max_retries = 0;  // isolate the deadline itself
  const auto start = Clock::now();
  auto client = RemoteHam::Connect("localhost", (*listener)->port(), options);
  // Connect() pings, so the deadline already fired during Connect.
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsDeadlineExceeded())
      << client.status().ToString();
  EXPECT_LT(MillisSince(start), 2000);
}

TEST_F(RpcResilienceTest, IdempotentCallsReconnectAcrossServerRestart) {
  StartServer();
  const uint16_t fixed_port = port_;
  RemoteHam::Options options;
  options.max_retries = 5;
  options.backoff_initial_ms = 20;
  options.backoff_max_ms = 200;
  auto client = RemoteHam::Connect("localhost", fixed_port, options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ping().ok());
  const uint64_t reconnects_before =
      MetricsRegistry::Instance().Snapshot().CounterValue(
          "rpc.client.reconnects");

  // Bounce the server on the same port.
  server_->Stop();
  server_.reset();
  StartServer(fixed_port);

  // Ping is idempotent: the stale connection dies, the client quietly
  // dials again and the call succeeds — no error escapes to the caller.
  Status st = (*client)->Ping();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(MetricsRegistry::Instance().Snapshot().CounterValue(
                "rpc.client.reconnects"),
            reconnects_before);
}

TEST_F(RpcResilienceTest, MutationsAreNeverResentAfterTheWireDies) {
  StartServer();
  auto client = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client.ok());
  auto created = (*client)->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = (*client)->OpenGraph(created->project, "localhost", dir_);
  ASSERT_TRUE(ctx.ok());

  server_->Stop();
  server_.reset();
  StartServer(port_);

  // AddNode is a mutation: after the old connection's reply is lost the
  // client must surface the transport error, not re-send (the first
  // send may have committed server-side).
  auto added = (*client)->AddNode(*ctx, true);
  ASSERT_FALSE(added.ok());
  EXPECT_TRUE(added.status().IsUnavailable() ||
              added.status().IsNetworkError())
      << added.status().ToString();
}

// An Env whose atomic writes dawdle, making a CreateGraph slow enough
// to be reliably in flight when Stop() lands.
class SlowWriteEnv final : public Env {
 public:
  explicit SlowWriteEnv(Env* base) : base_(base) {}
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    return base_->NewWritableFile(path, truncate);
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return base_->WriteFileAtomic(path, data);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RemoveDirRecursive(const std::string& path) override {
    return base_->RemoveDirRecursive(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override {
    return base_->GetChildren(dir);
  }
  Status SetPermissions(const std::string& path, uint32_t mode) override {
    return base_->SetPermissions(path, mode);
  }

 private:
  Env* base_;
};

TEST_F(RpcResilienceTest, StopDrainsTheInFlightRequest) {
  SlowWriteEnv slow_env(Env::Default());
  ham::HamOptions options;
  options.sync_commits = false;
  ham::Ham slow_engine(&slow_env, options);
  auto server = std::make_unique<Server>(&slow_engine);
  auto port = server->Start(0);
  ASSERT_TRUE(port.ok());

  auto client = RemoteHam::Connect("localhost", *port);
  ASSERT_TRUE(client.ok());

  // CreateGraph does several atomic writes => several hundred ms on the
  // slow env. Fire it, give the server time to pick it up, then Stop().
  Result<ham::CreateGraphResult> created = Status::NetworkError("not run");
  std::thread in_flight([&] { created = (*client)->CreateGraph(dir_, 0755); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();  // must block until the reply is out

  in_flight.join();
  EXPECT_TRUE(created.ok()) << created.status().ToString()
                            << " — Stop() dropped an in-flight request";
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

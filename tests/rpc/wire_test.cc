#include "rpc/wire.h"

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/random.h"

namespace neptune {
namespace rpc {
namespace {

TEST(FrameTest, RoundTripSingleFrame) {
  std::string framed = FramePayload("hello neptune");
  FrameDecoder decoder;
  std::vector<std::string> out;
  ASSERT_TRUE(decoder.Feed(framed, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "hello neptune");
}

TEST(FrameTest, MultipleFramesInOneFeed) {
  std::string bytes = FramePayload("one") + FramePayload("two") +
                      FramePayload(std::string(1000, 'x'));
  FrameDecoder decoder;
  std::vector<std::string> out;
  ASSERT_TRUE(decoder.Feed(bytes, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], "two");
  EXPECT_EQ(out[2].size(), 1000u);
}

TEST(FrameTest, ByteAtATimeFeed) {
  std::string bytes = FramePayload("drip-fed payload");
  FrameDecoder decoder;
  std::vector<std::string> out;
  for (char c : bytes) {
    ASSERT_TRUE(decoder.Feed(std::string_view(&c, 1), &out).ok());
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "drip-fed payload");
}

TEST(FrameTest, EmptyPayloadIsLegal) {
  FrameDecoder decoder;
  std::vector<std::string> out;
  ASSERT_TRUE(decoder.Feed(FramePayload(""), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "");
}

TEST(FrameTest, CorruptCrcIsRejected) {
  std::string bytes = FramePayload("payload");
  bytes.back() ^= 0x01;
  FrameDecoder decoder;
  std::vector<std::string> out;
  EXPECT_TRUE(decoder.Feed(bytes, &out).IsCorruption());
}

TEST(FrameTest, OversizedLengthIsRejected) {
  // A hostile length prefix is a policy violation (kInvalidArgument),
  // distinct from a CRC mismatch (kCorruption) — and must be detected
  // from the 8-byte header alone, before any body bytes arrive.
  std::string bytes(8, '\xff');  // length = 0xffffffff
  FrameDecoder decoder;
  std::vector<std::string> out;
  EXPECT_TRUE(decoder.Feed(bytes, &out).IsInvalidArgument());
}

TEST(FrameTest, TightenedFrameLimitApplies) {
  FrameDecoder decoder;
  decoder.set_limits(/*max_frame_bytes=*/64, /*max_buffered_bytes=*/0);
  std::vector<std::string> out;
  ASSERT_TRUE(decoder.Feed(FramePayload(std::string(64, 'x')), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(
      decoder.Feed(FramePayload(std::string(65, 'x')), &out).IsInvalidArgument());
}

TEST(FrameTest, BufferedBytesAreBounded) {
  FrameDecoder decoder;
  decoder.set_limits(/*max_frame_bytes=*/1024, /*max_buffered_bytes=*/2048);
  std::vector<std::string> out;
  // Drip-feeding garbage that never completes a frame must trip the
  // buffer cap instead of accumulating forever.
  std::string header;
  PutFixed32(&header, 1024);  // legal length, but the body never comes
  PutFixed32(&header, 0);
  ASSERT_TRUE(decoder.Feed(header, &out).ok());
  std::string drip(4096, 'z');
  EXPECT_TRUE(decoder.Feed(drip, &out).IsInvalidArgument());
}

TEST(WireValueTest, StatusRoundTrip) {
  for (const Status& s :
       {Status::OK(), Status::NotFound("node 3"), Status::Conflict("stale"),
        Status::NetworkError("down"), Status::ReadOnly("degraded"),
        Status::DeadlineExceeded("too slow"),
        Status::Unavailable("peer gone")}) {
    std::string buf;
    EncodeStatusTo(s, &buf);
    std::string_view in = buf;
    Status decoded;
    ASSERT_TRUE(DecodeStatusFrom(&in, &decoded));
    EXPECT_EQ(decoded.code(), s.code());
    EXPECT_EQ(decoded.message(), s.message());
  }
}

TEST(WireValueTest, SubGraphRoundTrip) {
  ham::SubGraph graph;
  graph.nodes.push_back(ham::SubGraphNode{
      7, {std::optional<std::string>("value"), std::nullopt}});
  graph.nodes.push_back(ham::SubGraphNode{9, {}});
  graph.links.push_back(
      ham::SubGraphLink{3, 7, 9, {std::optional<std::string>("isPartOf")}});
  std::string buf;
  EncodeSubGraphTo(graph, &buf);
  std::string_view in = buf;
  ham::SubGraph out;
  ASSERT_TRUE(DecodeSubGraphFrom(&in, &out));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(out.nodes.size(), 2u);
  EXPECT_EQ(out.nodes[0].node, 7u);
  ASSERT_EQ(out.nodes[0].attribute_values.size(), 2u);
  EXPECT_EQ(*out.nodes[0].attribute_values[0], "value");
  EXPECT_FALSE(out.nodes[0].attribute_values[1].has_value());
  ASSERT_EQ(out.links.size(), 1u);
  EXPECT_EQ(out.links[0].from, 7u);
  EXPECT_EQ(*out.links[0].attribute_values[0], "isPartOf");
}

TEST(WireValueTest, OpenNodeResultRoundTrip) {
  ham::OpenNodeResult r;
  r.contents = std::string("binary\0contents", 15);
  r.attachments.push_back(ham::Attachment{4, true, 120, true});
  r.attachments.push_back(ham::Attachment{5, false, 0, false});
  r.attribute_values = {std::optional<std::string>("x"), std::nullopt};
  r.current_version_time = 99;
  std::string buf;
  EncodeOpenNodeResultTo(r, &buf);
  std::string_view in = buf;
  ham::OpenNodeResult out;
  ASSERT_TRUE(DecodeOpenNodeResultFrom(&in, &out));
  EXPECT_EQ(out.contents, r.contents);
  ASSERT_EQ(out.attachments.size(), 2u);
  EXPECT_TRUE(out.attachments[0].is_source_end);
  EXPECT_EQ(out.attachments[0].position, 120u);
  EXPECT_FALSE(out.attachments[1].track_current);
  EXPECT_EQ(out.current_version_time, 99u);
}

TEST(WireValueTest, DifferencesRoundTrip) {
  std::vector<delta::Difference> diffs = delta::DiffLines(
      "line a\nline b\nline c\n", "line a\nCHANGED\nline c\nADDED\n");
  std::string buf;
  EncodeDifferencesTo(diffs, &buf);
  std::string_view in = buf;
  std::vector<delta::Difference> out;
  ASSERT_TRUE(DecodeDifferencesFrom(&in, &out));
  ASSERT_EQ(out.size(), diffs.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].kind, diffs[i].kind);
    EXPECT_EQ(out[i].old_lines, diffs[i].old_lines);
    EXPECT_EQ(out[i].new_lines, diffs[i].new_lines);
    EXPECT_EQ(out[i].old_begin, diffs[i].old_begin);
  }
}

TEST(WireValueTest, EntryListsRoundTrip) {
  std::vector<ham::AttributeEntry> attrs = {{"contentType", 1},
                                            {"relation", 2}};
  std::vector<ham::AttributeValueEntry> values = {
      {"contentType", 1, "text"}};
  std::vector<ham::DemonEntry> demons = {
      {ham::Event::kModifyNode, "recompile"}};
  std::vector<ham::ContextInfo> contexts = {{0, "main", 0}, {3, "fork", 55}};

  std::string buf;
  EncodeAttributeEntriesTo(attrs, &buf);
  EncodeAttributeValueEntriesTo(values, &buf);
  EncodeDemonEntriesTo(demons, &buf);
  EncodeContextInfosTo(contexts, &buf);

  std::string_view in = buf;
  std::vector<ham::AttributeEntry> attrs_out;
  std::vector<ham::AttributeValueEntry> values_out;
  std::vector<ham::DemonEntry> demons_out;
  std::vector<ham::ContextInfo> contexts_out;
  ASSERT_TRUE(DecodeAttributeEntriesFrom(&in, &attrs_out));
  ASSERT_TRUE(DecodeAttributeValueEntriesFrom(&in, &values_out));
  ASSERT_TRUE(DecodeDemonEntriesFrom(&in, &demons_out));
  ASSERT_TRUE(DecodeContextInfosFrom(&in, &contexts_out));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(attrs_out[1].name, "relation");
  EXPECT_EQ(values_out[0].value, "text");
  EXPECT_EQ(demons_out[0].demon, "recompile");
  EXPECT_EQ(contexts_out[1].branched_at, 55u);
}

TEST(WireValueTest, StatsRoundTrip) {
  ham::GraphStats stats;
  stats.node_count = 1;
  stats.link_count = 2;
  stats.total_node_records = 3;
  stats.total_link_records = 4;
  stats.thread_count = 5;
  stats.attribute_count = 6;
  stats.wal_bytes = 7;
  stats.current_time = 8;
  std::string buf;
  EncodeStatsTo(stats, &buf);
  std::string_view in = buf;
  ham::GraphStats out;
  ASSERT_TRUE(DecodeStatsFrom(&in, &out));
  EXPECT_EQ(out.node_count, 1u);
  EXPECT_EQ(out.current_time, 8u);
}

TEST(WireValueTest, DecodersRejectTruncation) {
  ham::SubGraph graph;
  graph.nodes.push_back(ham::SubGraphNode{1, {std::optional<std::string>("v")}});
  graph.links.push_back(ham::SubGraphLink{2, 1, 1, {}});
  std::string buf;
  EncodeSubGraphTo(graph, &buf);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    ham::SubGraph out;
    EXPECT_FALSE(DecodeSubGraphFrom(&in, &out)) << cut;
  }
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

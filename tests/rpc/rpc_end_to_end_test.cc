// Client/server integration: a RemoteHam driving a real Ham through a
// real TCP connection on localhost. The point is that the full
// HamInterface behaves identically across the wire (the paper's RPC
// architecture), including transactions and multi-client access.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace rpc {
namespace {

using ham::AttachmentUpdate;
using ham::Context;
using ham::LinkPt;

class RpcEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    dir_ = (std::filesystem::temp_directory_path() / ("neptune_rpc_" + name))
               .string();
    env_->RemoveDirRecursive(dir_);
    ham::HamOptions options;
    options.sync_commits = false;
    engine_ = std::make_unique<ham::Ham>(env_, options);
    server_ = std::make_unique<Server>(engine_.get());
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
    auto client = RemoteHam::Connect("localhost", port_);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);

    auto created = client_->CreateGraph(dir_, 0755);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    project_ = created->project;
    auto ctx = client_->OpenGraph(project_, "localhost", dir_);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = *ctx;
  }

  void TearDown() override {
    client_.reset();
    server_->Stop();
    server_.reset();
    engine_.reset();
    env_->RemoveDirRecursive(dir_);
  }

  Env* env_ = nullptr;
  std::string dir_;
  std::unique_ptr<ham::Ham> engine_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
  std::unique_ptr<RemoteHam> client_;
  ham::ProjectId project_ = 0;
  Context ctx_;
};

TEST_F(RpcEndToEndTest, PingWorks) { EXPECT_TRUE(client_->Ping().ok()); }

TEST_F(RpcEndToEndTest, NodeLifecycleOverTheWire) {
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "remote contents", {}, "via rpc")
                  .ok());
  auto opened = client_->OpenNode(ctx_, added->node, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, "remote contents");

  auto versions = client_->GetNodeVersions(ctx_, added->node);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->major.size(), 2u);
  EXPECT_EQ(versions->major[1].explanation, "via rpc");

  ASSERT_TRUE(client_->DeleteNode(ctx_, added->node).ok());
  EXPECT_TRUE(
      client_->OpenNode(ctx_, added->node, 0, {}).status().IsNotFound());
}

TEST_F(RpcEndToEndTest, ErrorStatusesCrossTheWireIntact) {
  EXPECT_TRUE(client_->OpenNode(ctx_, 12345, 0, {}).status().IsNotFound());
  EXPECT_TRUE(client_->OpenGraph(project_ + 1, "localhost", dir_)
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(client_->GetGraphQuery(ctx_, 0, "bad =", "", {}, {})
                  .status()
                  .IsInvalidArgument());
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "v1", {}, "")
                  .ok());
  EXPECT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "v2", {}, "")
                  .IsConflict());
}

TEST_F(RpcEndToEndTest, LinksAttributesAndQueries) {
  auto document = client_->GetAttributeIndex(ctx_, "document");
  ASSERT_TRUE(document.ok());
  auto a = client_->AddNode(ctx_, true);
  auto b = client_->AddNode(ctx_, true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(
      client_->SetNodeAttributeValue(ctx_, a->node, *document, "spec").ok());
  ASSERT_TRUE(
      client_->SetNodeAttributeValue(ctx_, b->node, *document, "spec").ok());
  auto link = client_->AddLink(ctx_, LinkPt{a->node, 3, 0, true},
                               LinkPt{b->node, 0, 0, true});
  ASSERT_TRUE(link.ok());

  auto query = client_->GetGraphQuery(ctx_, 0, "document = spec", "",
                                      {*document}, {});
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->nodes.size(), 2u);
  EXPECT_EQ(*query->nodes[0].attribute_values[0], "spec");
  ASSERT_EQ(query->links.size(), 1u);
  EXPECT_EQ(query->links[0].link, link->link);

  auto linearized =
      client_->LinearizeGraph(ctx_, a->node, 0, "", "", {}, {});
  ASSERT_TRUE(linearized.ok());
  EXPECT_EQ(linearized->nodes.size(), 2u);

  auto values = client_->GetAttributeValues(ctx_, *document, 0);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, std::vector<std::string>{"spec"});

  auto to = client_->GetToNode(ctx_, link->link, 0);
  ASSERT_TRUE(to.ok());
  EXPECT_EQ(to->node, b->node);
}

TEST_F(RpcEndToEndTest, TransactionsOverTheWire) {
  ASSERT_TRUE(client_->BeginTransaction(ctx_).ok());
  auto staged = client_->AddNode(ctx_, true);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(client_->AbortTransaction(ctx_).ok());
  EXPECT_TRUE(
      client_->OpenNode(ctx_, staged->node, 0, {}).status().IsNotFound());

  ASSERT_TRUE(client_->BeginTransaction(ctx_).ok());
  auto kept = client_->AddNode(ctx_, true);
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(client_->CommitTransaction(ctx_).ok());
  EXPECT_TRUE(client_->OpenNode(ctx_, kept->node, 0, {}).ok());
}

TEST_F(RpcEndToEndTest, TwoClientsShareOneGraph) {
  auto client2 = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client2.ok());
  auto ctx2 = (*client2)->OpenGraph(project_, "localhost", dir_);
  ASSERT_TRUE(ctx2.ok());

  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "written by client 1", {}, "")
                  .ok());
  auto seen = (*client2)->OpenNode(*ctx2, added->node, 0, {});
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->contents, "written by client 1");
  ASSERT_TRUE((*client2)->CloseGraph(*ctx2).ok());
}

TEST_F(RpcEndToEndTest, DisconnectAbortsOpenTransaction) {
  auto client2 = RemoteHam::Connect("localhost", port_);
  ASSERT_TRUE(client2.ok());
  auto ctx2 = (*client2)->OpenGraph(project_, "localhost", dir_);
  ASSERT_TRUE(ctx2.ok());
  ASSERT_TRUE((*client2)->BeginTransaction(*ctx2).ok());
  auto staged = (*client2)->AddNode(*ctx2, true);
  ASSERT_TRUE(staged.ok());
  // Client 2 "crashes" (drops the connection mid-transaction).
  client2->reset();
  // Give the server thread a moment to clean up the session.
  for (int i = 0; i < 100; ++i) {
    if (client_->OpenNode(ctx_, staged->node, 0, {}).status().IsNotFound() &&
        client_->BeginTransaction(ctx_).ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // The staged node is gone and the writer slot was released.
  EXPECT_TRUE(
      client_->OpenNode(ctx_, staged->node, 0, {}).status().IsNotFound());
  EXPECT_TRUE(client_->AbortTransaction(ctx_).ok());
}

TEST_F(RpcEndToEndTest, ContextsAndDemonsOverTheWire) {
  auto info = client_->CreateContext(ctx_, "remote-world");
  ASSERT_TRUE(info.ok());
  auto branch = client_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  EXPECT_EQ(*client_->ContextThread(*branch), info->thread);
  auto contexts = client_->ListContexts(ctx_);
  ASSERT_TRUE(contexts.ok());
  EXPECT_EQ(contexts->size(), 2u);

  auto n = client_->AddNode(*branch, true);
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(client_->OpenNode(ctx_, n->node, 0, {}).status().IsNotFound());
  ASSERT_TRUE(client_->MergeContext(ctx_, info->thread, false).ok());
  EXPECT_TRUE(client_->OpenNode(ctx_, n->node, 0, {}).ok());

  // Demon bindings round-trip (execution happens server-side).
  ASSERT_TRUE(client_->SetGraphDemonValue(ctx_, ham::Event::kAddNode,
                                          "notify-lead")
                  .ok());
  auto demons = client_->GetGraphDemons(ctx_, 0);
  ASSERT_TRUE(demons.ok());
  ASSERT_EQ(demons->size(), 1u);
  EXPECT_EQ((*demons)[0].demon, "notify-lead");
}

TEST_F(RpcEndToEndTest, DifferencesAndStatsOverTheWire) {
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "a\nb\n", {}, "")
                  .ok());
  auto t1 = client_->GetNodeTimeStamp(ctx_, added->node);
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, *t1, "a\nc\n", {}, "")
                  .ok());
  auto t2 = client_->GetNodeTimeStamp(ctx_, added->node);
  auto diffs = client_->GetNodeDifferences(ctx_, added->node, *t1, *t2);
  ASSERT_TRUE(diffs.ok());
  ASSERT_EQ(diffs->size(), 1u);
  EXPECT_EQ((*diffs)[0].kind, delta::DifferenceKind::kReplacement);

  auto stats = client_->GetStats(ctx_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, 1u);
  EXPECT_TRUE(client_->Checkpoint(ctx_).ok());
  EXPECT_EQ(client_->GetStats(ctx_)->wal_bytes, 0u);
}

TEST_F(RpcEndToEndTest, LargeContentsCrossTheWire) {
  std::string big(3 << 20, 'z');
  for (size_t i = 0; i < big.size(); i += 11) big[i] = char('a' + i % 26);
  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(
      client_->ModifyNode(ctx_, added->node, added->creation_time, big, {}, "")
          .ok());
  auto opened = client_->OpenNode(ctx_, added->node, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, big);
}

TEST_F(RpcEndToEndTest, ConnectToClosedPortFails) {
  auto bad = RemoteHam::Connect("localhost", 1);  // nothing listens there
  EXPECT_FALSE(bad.ok());
}

TEST_F(RpcEndToEndTest, ServerStatisticsAdvanceAcrossRequests) {
  // Metrics are process-wide, so assert on deltas between snapshots
  // rather than absolute values.
  auto before = client_->GetServerStatistics();
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  // The fixture itself already issued ping/createGraph/openGraph.
  EXPECT_GT(before->CounterValue("rpc.requests"), 0u);
  EXPECT_GT(before->CounterValue("rpc.request.createGraph"), 0u);

  auto added = client_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE(client_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "counted contents", {}, "metrics test")
                  .ok());

  auto after = client_->GetServerStatistics();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->CounterValue("rpc.request.addNode"),
            before->CounterValue("rpc.request.addNode") + 1);
  EXPECT_EQ(after->CounterValue("rpc.request.modifyNode"),
            before->CounterValue("rpc.request.modifyNode") + 1);
  // addNode + modifyNode + the second getServerStatistics itself.
  EXPECT_GE(after->CounterValue("rpc.requests"),
            before->CounterValue("rpc.requests") + 3);
  EXPECT_GT(after->CounterValue("rpc.bytes_in"),
            before->CounterValue("rpc.bytes_in"));
  EXPECT_GT(after->CounterValue("rpc.bytes_out"),
            before->CounterValue("rpc.bytes_out"));
  // The instrumented HAM layer underneath moved too.
  EXPECT_GE(after->CounterValue("ham.op.structure.count"),
            before->CounterValue("ham.op.structure.count") + 1);
  EXPECT_GE(after->CounterValue("ham.op.node.count"),
            before->CounterValue("ham.op.node.count") + 1);
  ASSERT_TRUE(after->histograms.count("rpc.request_latency"));
  EXPECT_GT(after->histograms.at("rpc.request_latency").count,
            before->histograms.at("rpc.request_latency").count);
  EXPECT_GT(after->gauges.at("rpc.connections.active"), 0);
}

}  // namespace
}  // namespace rpc
}  // namespace neptune

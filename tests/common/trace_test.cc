// Tests for the request tracer (common/trace.h): span trees,
// sampling, the always-keep slow path, remote-context adoption, the
// wire codec, the Chrome export, and (under TSan) concurrent safety
// of the per-thread buffers and the shared rings.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace neptune {
namespace {

// Every test owns the process-global tracer for its duration and
// leaves it disabled, so suites sharing the binary see the default
// "tracing off" world.
class TraceTest : public testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Configure(0, 0);
    Tracer::Instance().ResetForTest();
  }
  void TearDown() override {
    Tracer::Instance().Configure(0, 0);
    Tracer::Instance().ResetForTest();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  {
    NEPTUNE_TRACE_SPAN(outer, "test.outer");
    EXPECT_FALSE(outer.active());
    EXPECT_FALSE(ScopedSpan::CurrentContext().valid());
    NEPTUNE_TRACE_SPAN(inner, "test.inner");
    EXPECT_FALSE(inner.active());
  }
  EXPECT_TRUE(Tracer::Instance().RecentTraces().empty());
  EXPECT_TRUE(Tracer::Instance().SlowOps().empty());
}

TEST_F(TraceTest, RecordsParentedSpanTree) {
  Tracer::Instance().Configure(1, 0);
  {
    NEPTUNE_TRACE_SPAN(root, "test.root");
    ASSERT_TRUE(root.active());
    root.Annotate("kind=root");
    {
      NEPTUNE_TRACE_SPAN(child, "test.child");
      NEPTUNE_TRACE_SPAN(grandchild, "test.grandchild");
      (void)child;
      (void)grandchild;
    }
  }
  auto traces = Tracer::Instance().RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const auto& spans = traces[0].spans;
  ASSERT_EQ(spans.size(), 3u);

  // Spans finish innermost-first.
  const Span& grandchild = spans[0];
  const Span& child = spans[1];
  const Span& root = spans[2];
  EXPECT_EQ(root.name, "test.root");
  EXPECT_EQ(child.name, "test.child");
  EXPECT_EQ(grandchild.name, "test.grandchild");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_EQ(grandchild.parent_id, child.span_id);
  EXPECT_EQ(root.trace_id, traces[0].trace_id);
  EXPECT_EQ(root.annotation, "kind=root");
  EXPECT_NE(root.thread_id, 0u);
}

TEST_F(TraceTest, SamplesOneInN) {
  Tracer::Instance().Configure(4, 0);
  for (int i = 0; i < 8; ++i) {
    NEPTUNE_TRACE_SPAN(span, "test.sampled");
    (void)span;
  }
  EXPECT_EQ(Tracer::Instance().RecentTraces().size(), 2u);
}

TEST_F(TraceTest, SlowSpanKeptEvenWhenUnsampled) {
  // sample_n so large that only root #1 (counter 0) is sampled; the
  // slow threshold is 1ms.
  Tracer::Instance().Configure(1u << 30, 1000);
  {
    NEPTUNE_TRACE_SPAN(fast, "test.fast");
    (void)fast;
  }
  {
    NEPTUNE_TRACE_SPAN(slow, "test.slow");
    (void)slow;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto traces = Tracer::Instance().RecentTraces();
  ASSERT_EQ(traces.size(), 2u);  // the sampled root and the slow one
  EXPECT_EQ(traces[1].spans.size(), 1u);
  EXPECT_EQ(traces[1].spans[0].name, "test.slow");
  EXPECT_GE(traces[1].spans[0].duration_us, 1000u);

  auto slow_ops = Tracer::Instance().SlowOps();
  ASSERT_EQ(slow_ops.size(), 1u);
  EXPECT_EQ(slow_ops[0].name, "test.slow");
}

TEST_F(TraceTest, CurrentContextMatchesLiveSpan) {
  Tracer::Instance().Configure(1, 0);
  TraceContext ctx;
  {
    NEPTUNE_TRACE_SPAN(span, "test.ctx");
    (void)span;
    ctx = ScopedSpan::CurrentContext();
    EXPECT_TRUE(ctx.valid());
    EXPECT_TRUE(ctx.sampled);
  }
  EXPECT_FALSE(ScopedSpan::CurrentContext().valid());
  auto traces = Tracer::Instance().RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].trace_id, ctx.trace_id);
  EXPECT_EQ(traces[0].spans[0].span_id, ctx.parent_span_id);
}

TEST_F(TraceTest, RemoteContextAdoptedAndMerged) {
  Tracer::Instance().Configure(1, 0);
  TraceContext ctx;
  {
    NEPTUNE_TRACE_SPAN(client, "test.client");
    (void)client;
    ctx = ScopedSpan::CurrentContext();
  }
  {
    // The "server" half of the same request, flushed separately.
    NEPTUNE_TRACE_SPAN_REMOTE(server, "test.server", ctx);
    (void)server;
  }
  auto traces = Tracer::Instance().RecentTraces();
  ASSERT_EQ(traces.size(), 1u) << "both halves must merge by trace_id";
  ASSERT_EQ(traces[0].spans.size(), 2u);
  const Span& client = traces[0].spans[0];
  const Span& server = traces[0].spans[1];
  EXPECT_EQ(server.trace_id, client.trace_id);
  EXPECT_EQ(server.parent_id, client.span_id);
}

TEST_F(TraceTest, UnsampledRemoteContextRecordsNothing) {
  Tracer::Instance().Configure(1, 0);
  TraceContext ctx;
  ctx.trace_id = 1234;
  ctx.parent_span_id = 5678;
  ctx.sampled = false;
  {
    NEPTUNE_TRACE_SPAN_REMOTE(server, "test.server", ctx);
    (void)server;
  }
  EXPECT_TRUE(Tracer::Instance().RecentTraces().empty());
}

TEST_F(TraceTest, InternNameIsStable) {
  Tracer& tracer = Tracer::Instance();
  const uint32_t a = tracer.InternName("test.intern.a");
  const uint32_t b = tracer.InternName("test.intern.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, tracer.InternName("test.intern.a"));
  EXPECT_EQ(tracer.NameOf(a), "test.intern.a");
  EXPECT_EQ(tracer.NameOf(1u << 30), "unnamed");
}

TEST_F(TraceTest, RecentTraceRingIsBounded) {
  Tracer::Instance().Configure(1, 0);
  for (size_t i = 0; i < Tracer::kMaxRecentTraces + 10; ++i) {
    NEPTUNE_TRACE_SPAN(span, "test.ring");
    (void)span;
  }
  EXPECT_EQ(Tracer::Instance().RecentTraces().size(),
            Tracer::kMaxRecentTraces);
}

TEST_F(TraceTest, WireCodecRoundTrips) {
  Span span;
  span.trace_id = 42;
  span.span_id = 7;
  span.parent_id = 3;
  span.name = "ham.openNode";
  span.start_us = 1000000;
  span.duration_us = 250;
  span.thread_id = 99;
  span.annotation = "node=5 time=0";

  std::vector<Trace> traces(1);
  traces[0].trace_id = 42;
  traces[0].spans = {span, span};

  std::string encoded;
  EncodeTracesTo(traces, &encoded);
  std::string_view in = encoded;
  std::vector<Trace> decoded;
  ASSERT_TRUE(DecodeTracesFrom(&in, &decoded));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].trace_id, 42u);
  ASSERT_EQ(decoded[0].spans.size(), 2u);
  EXPECT_EQ(decoded[0].spans[0].name, "ham.openNode");
  EXPECT_EQ(decoded[0].spans[0].annotation, "node=5 time=0");
  EXPECT_EQ(decoded[0].spans[0].duration_us, 250u);

  std::string spans_encoded;
  EncodeSpansTo({span}, &spans_encoded);
  in = spans_encoded;
  std::vector<Span> spans_decoded;
  ASSERT_TRUE(DecodeSpansFrom(&in, &spans_decoded));
  ASSERT_EQ(spans_decoded.size(), 1u);
  EXPECT_EQ(spans_decoded[0].trace_id, 42u);
  EXPECT_EQ(spans_decoded[0].span_id, 7u);
  EXPECT_EQ(spans_decoded[0].start_us, 1000000u);

  // Truncated input must fail, not crash or fabricate spans.
  in = std::string_view(encoded.data(), encoded.size() / 2);
  decoded.clear();
  EXPECT_FALSE(DecodeTracesFrom(&in, &decoded));
}

TEST_F(TraceTest, ChromeJsonExport) {
  Tracer::Instance().Configure(1, 0);
  {
    NEPTUNE_TRACE_SPAN(root, "test.chrome.root");
    root.Annotate("k=v");
    NEPTUNE_TRACE_SPAN(child, "test.chrome.child");
    (void)child;
  }
  const std::string json =
      TracesToChromeJson(Tracer::Instance().RecentTraces());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("test.chrome.root"), std::string::npos);
  EXPECT_NE(json.find("test.chrome.child"), std::string::npos);
  EXPECT_NE(json.find("\"k=v\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
}

// Run under TSan in CI: concurrent traced writers on many threads,
// with readers snapshotting the rings mid-flight, must never corrupt
// the span rings or race on the name table.
TEST(TraceConcurrencyTest, ConcurrentSpansAndReaders) {
  Tracer::Instance().Configure(2, 200);
  Tracer::Instance().ResetForTest();

  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load()) {
      auto traces = Tracer::Instance().RecentTraces();
      for (const auto& trace : traces) {
        for (const auto& span : trace.spans) {
          ASSERT_EQ(span.trace_id, trace.trace_id);
          ASSERT_FALSE(span.name.empty());
        }
      }
      (void)Tracer::Instance().SlowOps();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < 500; ++i) {
        NEPTUNE_TRACE_SPAN(root, "test.concurrent.root");
        if (root.active()) {
          root.Annotate("writer=" + std::to_string(w));
        }
        NEPTUNE_TRACE_SPAN(child, "test.concurrent.child");
        (void)child;
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  // Roughly half the roots are sampled; the ring keeps the last 64.
  EXPECT_EQ(Tracer::Instance().RecentTraces().size(),
            Tracer::kMaxRecentTraces);
  Tracer::Instance().Configure(0, 0);
  Tracer::Instance().ResetForTest();
}

}  // namespace
}  // namespace neptune

#include "common/clock.h"

#include <gtest/gtest.h>

namespace neptune {
namespace {

TEST(LogicalClockTest, StartsAboveReservedZero) {
  LogicalClock clock;
  EXPECT_EQ(clock.Last(), 0u);
  EXPECT_EQ(clock.Tick(), 1u);  // 0 is the "current version" sentinel
}

TEST(LogicalClockTest, StrictlyIncreasing) {
  LogicalClock clock;
  uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t t = clock.Tick();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(clock.Last(), prev);
}

TEST(LogicalClockTest, AdvanceToResumesAfterRecovery) {
  LogicalClock clock;
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Tick(), 501u);
  clock.AdvanceTo(100);  // never goes backwards
  EXPECT_EQ(clock.Tick(), 502u);
}

TEST(LogicalClockTest, SeededConstructor) {
  LogicalClock clock(41);
  EXPECT_EQ(clock.Tick(), 42u);
}

TEST(WallClockTest, NowMicrosIsMonotonicEnough) {
  uint64_t a = NowMicros();
  uint64_t b = NowMicros();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 1'600'000'000'000'000ull);  // after Sep 2020: sane epoch
}

}  // namespace
}  // namespace neptune

#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace neptune {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, StringsHaveRequestedLengthAndAlphabet) {
  Random rng(3);
  std::string s = rng.NextString(256);
  EXPECT_EQ(s.size(), 256u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RandomTest, BytesCoverFullRangeEventually) {
  Random rng(11);
  std::set<unsigned char> seen;
  std::string bytes = rng.NextBytes(20000);
  for (char c : bytes) seen.insert(static_cast<unsigned char>(c));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(RandomTest, ZeroSeedStillWorks) {
  Random rng(0);
  uint64_t first = rng.Next();
  uint64_t second = rng.Next();
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace neptune

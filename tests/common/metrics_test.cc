// Tests for the process-wide metrics registry. The registry is a
// singleton shared by every test in this binary, so each test asserts
// on deltas between snapshots (or resets first) rather than absolute
// values.

#include "common/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace neptune {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter* c = registry.GetCounter("test.counter.basic");
  const uint64_t before = c->Value();
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), before + 42);
}

TEST(MetricsTest, SameNameReturnsSameCounter) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  EXPECT_EQ(registry.GetCounter("test.counter.same"),
            registry.GetCounter("test.counter.same"));
  EXPECT_NE(registry.GetCounter("test.counter.same"),
            registry.GetCounter("test.counter.other"));
}

TEST(MetricsTest, GaugeMovesBothWays) {
  Gauge* g = MetricsRegistry::Instance().GetGauge("test.gauge");
  g->Set(0);
  g->Increment();
  g->Increment();
  g->Decrement();
  EXPECT_EQ(g->Value(), 1);
  g->Set(-7);
  EXPECT_EQ(g->Value(), -7);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter* c = MetricsRegistry::Instance().GetCounter("test.counter.mt");
  const uint64_t before = c->Value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), before + kThreads * kPerThread);
}

TEST(MetricsTest, HistogramBucketing) {
  Histogram* h = MetricsRegistry::Instance().GetHistogram("test.hist.buckets");
  h->Record(0);        // below the first bound (1us): bucket 0
  h->Record(1);        // [1, 2): bucket 1
  h->Record(3);        // [2, 4): bucket 2
  h->Record(1u << 30); // beyond the last bound: overflow bucket

  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const HistogramSnapshot& hist = snap.histograms.at("test.hist.buckets");
  ASSERT_EQ(hist.buckets.size(), Histogram::kNumBuckets);
  EXPECT_EQ(hist.buckets[0], 1u);
  EXPECT_EQ(hist.buckets[1], 1u);
  EXPECT_EQ(hist.buckets[2], 1u);
  EXPECT_EQ(hist.buckets[Histogram::kNumBuckets - 1], 1u);
  EXPECT_EQ(hist.count, 4u);
  EXPECT_EQ(hist.sum, 0u + 1 + 3 + (1u << 30));
  EXPECT_EQ(hist.max, 1u << 30);
}

TEST(MetricsTest, HistogramQuantilesAndMean) {
  Histogram* h = MetricsRegistry::Instance().GetHistogram("test.hist.quant");
  for (int i = 0; i < 99; ++i) h->Record(10);  // bucket [8, 16)
  h->Record(5000);                             // the slow outlier

  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const HistogramSnapshot& hist = snap.histograms.at("test.hist.quant");
  EXPECT_DOUBLE_EQ(hist.MeanMicros(), (99 * 10 + 5000) / 100.0);
  // p50 lands in the [8, 16) bucket, reported as its upper bound.
  EXPECT_EQ(hist.QuantileMicros(0.50), 16u);
  // p999 walks past every fast sample into the outlier's bucket.
  EXPECT_GT(hist.QuantileMicros(0.999), 4000u);
  EXPECT_EQ(hist.QuantileMicros(0.0), 16u);
}

TEST(MetricsTest, SnapshotIsIsolatedFromLaterUpdates) {
  Counter* c = MetricsRegistry::Instance().GetCounter("test.counter.snap");
  c->Add(5);
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  const uint64_t at_snapshot = snap.CounterValue("test.counter.snap");
  c->Add(100);
  // The snapshot is a copy: later traffic must not leak into it.
  EXPECT_EQ(snap.CounterValue("test.counter.snap"), at_snapshot);
  MetricsSnapshot later = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(later.CounterValue("test.counter.snap"), at_snapshot + 100);
}

TEST(MetricsTest, CounterValueMissingNameIsZero) {
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(snap.CounterValue("test.counter.never-registered"), 0u);
}

TEST(MetricsTest, ScopedTimerRecordsOnce) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Histogram* h = registry.GetHistogram("test.timer.hist");
  Counter* c = registry.GetCounter("test.timer.count");
  const uint64_t hist_before =
      registry.Snapshot().histograms.at("test.timer.hist").count;
  const uint64_t count_before = c->Value();
  { ScopedTimer timer(h, c); }
  EXPECT_EQ(registry.Snapshot().histograms.at("test.timer.hist").count,
            hist_before + 1);
  EXPECT_EQ(c->Value(), count_before + 1);
}

TEST(MetricsTest, WireCodecRoundTrips) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.wire.counter")->Add(1234);
  registry.GetGauge("test.wire.gauge")->Set(-3);
  registry.GetHistogram("test.wire.hist")->Record(77);
  MetricsSnapshot snap = registry.Snapshot();

  std::string encoded;
  snap.EncodeTo(&encoded);
  std::string_view in = encoded;
  MetricsSnapshot decoded;
  ASSERT_TRUE(MetricsSnapshot::DecodeFrom(&in, &decoded));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.counters, snap.counters);
  EXPECT_EQ(decoded.gauges, snap.gauges);
  ASSERT_EQ(decoded.histograms.size(), snap.histograms.size());
  const HistogramSnapshot& hist = decoded.histograms.at("test.wire.hist");
  const HistogramSnapshot& orig = snap.histograms.at("test.wire.hist");
  EXPECT_EQ(hist.count, orig.count);
  EXPECT_EQ(hist.sum, orig.sum);
  EXPECT_EQ(hist.max, orig.max);
  EXPECT_EQ(hist.buckets, orig.buckets);
}

TEST(MetricsTest, DecodeRejectsTruncatedInput) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.wire.trunc")->Add(9);
  std::string encoded;
  registry.Snapshot().EncodeTo(&encoded);
  // Every strict prefix must fail cleanly, never crash or accept.
  for (size_t len = 0; len < encoded.size(); ++len) {
    std::string_view in(encoded.data(), len);
    MetricsSnapshot out;
    if (MetricsSnapshot::DecodeFrom(&in, &out)) {
      // A prefix may parse iff it ends exactly on a section boundary
      // with zero remaining declared entries — but then nothing of the
      // truncated tail may have been consumed as data.
      EXPECT_TRUE(in.empty());
    }
  }
}

TEST(MetricsTest, ResetForTestZeroesEverything) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.reset.counter")->Add(10);
  registry.GetGauge("test.reset.gauge")->Set(10);
  registry.GetHistogram("test.reset.hist")->Record(10);
  registry.ResetForTest();
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("test.reset.counter"), 0u);
  EXPECT_EQ(snap.gauges.at("test.reset.gauge"), 0);
  EXPECT_EQ(snap.histograms.at("test.reset.hist").count, 0u);
  EXPECT_EQ(snap.histograms.at("test.reset.hist").max, 0u);
}

TEST(MetricsTest, ToTableMentionsEveryMetric) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.render.counter")->Add(3);
  registry.GetGauge("test.render.gauge")->Set(2);
  registry.GetHistogram("test.render.hist")->Record(50);
  const std::string table = registry.Snapshot().ToTable();
  EXPECT_NE(table.find("test.render.counter"), std::string::npos);
  EXPECT_NE(table.find("test.render.gauge"), std::string::npos);
  EXPECT_NE(table.find("test.render.hist"), std::string::npos);
}

TEST(MetricsTest, ToLogLineSkipsZeroes) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetForTest();
  registry.GetCounter("test.log.zero");  // stays 0
  registry.GetCounter("test.log.nonzero")->Add(4);
  const std::string line = registry.Snapshot().ToLogLine();
  EXPECT_EQ(line.find("test.log.zero="), std::string::npos);
  EXPECT_NE(line.find("test.log.nonzero=4"), std::string::npos);
}

TEST(MetricsTest, ToJsonRendersEverySection) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetForTest();
  registry.GetCounter("test.json.counter")->Add(7);
  registry.GetGauge("test.json.gauge")->Set(-2);
  registry.GetHistogram("test.json.hist")->Record(100);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"test.json.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": -2"), std::string::npos);
  // Histograms render as a summary object, not raw buckets.
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"max_us\": 100"), std::string::npos);
}

TEST(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  HistogramSnapshot hist;
  hist.buckets.assign(Histogram::kNumBuckets, 0);
  EXPECT_EQ(hist.QuantileMicros(0.5), 0u);
  EXPECT_EQ(hist.QuantileMicros(0.99), 0u);
}

TEST(MetricsTest, QuantileSingleBucketReportsItsBound) {
  Histogram* h =
      MetricsRegistry::Instance().GetHistogram("test.hist.single");
  for (int i = 0; i < 10; ++i) h->Record(3);  // all land in [2, 4)
  const HistogramSnapshot hist = MetricsRegistry::Instance()
                                     .Snapshot()
                                     .histograms.at("test.hist.single");
  // Every quantile collapses to the one occupied bucket's upper bound.
  EXPECT_EQ(hist.QuantileMicros(0.01), 4u);
  EXPECT_EQ(hist.QuantileMicros(0.50), 4u);
  EXPECT_EQ(hist.QuantileMicros(0.999), 4u);
}

TEST(MetricsTest, QuantileOverflowBucketReportsObservedMax) {
  Histogram* h =
      MetricsRegistry::Instance().GetHistogram("test.hist.overflow");
  h->Record(123'456'789);  // far past the last 8388608us bound
  const HistogramSnapshot hist = MetricsRegistry::Instance()
                                     .Snapshot()
                                     .histograms.at("test.hist.overflow");
  // The overflow bucket has no finite upper bound; the observed max is
  // the only honest answer.
  EXPECT_EQ(hist.QuantileMicros(0.99), 123'456'789u);
}

TEST(MetricsTest, QuantilesAreMonotonicInQ) {
  Histogram* h = MetricsRegistry::Instance().GetHistogram("test.hist.mono");
  for (int i = 0; i < 900; ++i) h->Record(10);
  for (int i = 0; i < 90; ++i) h->Record(1000);
  for (int i = 0; i < 10; ++i) h->Record(100000);
  const HistogramSnapshot hist =
      MetricsRegistry::Instance().Snapshot().histograms.at("test.hist.mono");
  const uint64_t p50 = hist.QuantileMicros(0.50);
  const uint64_t p99 = hist.QuantileMicros(0.99);
  const uint64_t p999 = hist.QuantileMicros(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_EQ(p50, 16u);       // [8, 16) bucket
  EXPECT_GE(p99, 1000u);     // into the 1ms samples
  EXPECT_GE(p999, 100000u);  // into the 100ms tail
}

// A fixed fake clock, so the timer's reading is exact rather than
// "some small number of real microseconds".
class FixedTimeSource : public TimeSource {
 public:
  uint64_t NowMicros() override { return now_; }
  void SleepMicros(uint64_t micros) override { now_ += micros; }
  uint64_t now_ = 1'000'000;
};

TEST(MetricsTest, ScopedTimerReadsTheInjectedTimeSource) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Histogram* h = registry.GetHistogram("test.timer.fake");
  const uint64_t before = registry.Snapshot()
                              .histograms.at("test.timer.fake")
                              .count;
  FixedTimeSource time;
  {
    ScopedTimer timer(h, nullptr, &time);
    time.now_ += 500;  // exactly 500us elapse on the fake clock
  }
  const HistogramSnapshot hist =
      registry.Snapshot().histograms.at("test.timer.fake");
  EXPECT_EQ(hist.count, before + 1);
  EXPECT_EQ(hist.max, 500u);
}

TEST(MetricsTest, MacrosBumpTheNamedMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  const uint64_t before =
      registry.Snapshot().CounterValue("test.macro.counter");
  NEPTUNE_METRIC_COUNT("test.macro.counter", 2);
  NEPTUNE_METRIC_COUNT("test.macro.counter", 3);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.macro.counter"),
            before + 5);

  const uint64_t timed_before =
      registry.Snapshot().CounterValue("test.macro.timed.count");
  { NEPTUNE_METRIC_TIMED(timer, "test.macro.timed"); }
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("test.macro.timed.count"), timed_before + 1);
  EXPECT_GE(snap.histograms.at("test.macro.timed").count, 1u);
}

}  // namespace
}  // namespace neptune

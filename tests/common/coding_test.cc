#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"

namespace neptune {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xFFu, 0x12345678u, 0xFFFFFFFFu}) {
    std::string buf;
    PutFixed32(&buf, v);
    ASSERT_EQ(buf.size(), 4u);
    std::string_view in = buf;
    uint32_t out = 0;
    ASSERT_TRUE(GetFixed32(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xDEADBEEF},
                     std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutFixed64(&buf, v);
    ASSERT_EQ(buf.size(), 8u);
    std::string_view in = buf;
    uint64_t out = 0;
    ASSERT_TRUE(GetFixed64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Fixed16RoundTrip) {
  for (uint32_t v = 0; v <= 0xFFFF; v += 257) {
    std::string buf;
    PutFixed16(&buf, static_cast<uint16_t>(v));
    std::string_view in = buf;
    uint16_t out = 0;
    ASSERT_TRUE(GetFixed16(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, FixedIsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodingTest, VarintBoundaries) {
  // Every power-of-two boundary where the encoded length changes.
  std::vector<uint64_t> values = {0, 1};
  for (int shift = 7; shift < 64; shift += 7) {
    values.push_back((1ull << shift) - 1);
    values.push_back(1ull << shift);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v)) << v;
    std::string_view in = buf;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, uint64_t{1} << 33);
  std::string_view in = buf;
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "cut=" << cut;
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'z'));
  std::string_view in = buf;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(300, 'z'));
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedBodyFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  std::string_view in(buf.data(), buf.size() - 1);
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(CodingTest, MixedStreamRandomized) {
  Random rng(20260705);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> ints;
    std::vector<std::string> strs;
    std::string buf;
    for (int i = 0; i < 20; ++i) {
      uint64_t v = rng.Next() >> rng.Uniform(64);
      std::string s = rng.NextBytes(rng.Uniform(100));
      ints.push_back(v);
      strs.push_back(s);
      PutVarint64(&buf, v);
      PutLengthPrefixed(&buf, s);
    }
    std::string_view in = buf;
    for (int i = 0; i < 20; ++i) {
      uint64_t v = 0;
      std::string_view s;
      ASSERT_TRUE(GetVarint64(&in, &v));
      ASSERT_TRUE(GetLengthPrefixed(&in, &s));
      EXPECT_EQ(v, ints[i]);
      EXPECT_EQ(s, strs[i]);
    }
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, EncodeDecodeFixedRawBuffers) {
  char buf8[8];
  EncodeFixed64(buf8, 0x1122334455667788ull);
  EXPECT_EQ(DecodeFixed64(buf8), 0x1122334455667788ull);
  char buf4[4];
  EncodeFixed32(buf4, 0xA1B2C3D4u);
  EXPECT_EQ(DecodeFixed32(buf4), 0xA1B2C3D4u);
}

}  // namespace
}  // namespace neptune

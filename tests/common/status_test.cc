#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace neptune {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::NetworkError("x").IsNetworkError());
  EXPECT_TRUE(Status::ReadOnly("x").IsReadOnly());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, MessageAndToString) {
  Status s = Status::NotFound("node 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "node 7");
  EXPECT_EQ(s.ToString(), "NotFound: node 7");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad crc");
  Status t = s;  // copy ctor
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.message(), "bad crc");
  Status u;
  u = t;  // copy assign
  EXPECT_TRUE(u.IsCorruption());
  // Self-independence: mutating the source must not alias.
  t = Status::OK();
  EXPECT_TRUE(u.IsCorruption());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::IOError("disk");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsIOError());
  s = Status::NotFound("later");
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, FromCode) {
  EXPECT_TRUE(Status::FromCode(StatusCode::kOk, "ignored").ok());
  Status s = Status::FromCode(StatusCode::kAborted, "why");
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.message(), "why");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    NEPTUNE_RETURN_IF_ERROR(fails());
    return Status::InvalidArgument("unreached");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto get = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Aborted("no");
  };
  auto doubled = [&](bool ok) -> Result<int> {
    NEPTUNE_ASSIGN_OR_RETURN(int v, get(ok));
    return v * 2;
  };
  ASSERT_TRUE(doubled(true).ok());
  EXPECT_EQ(*doubled(true), 10);
  EXPECT_TRUE(doubled(false).status().IsAborted());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace neptune

#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace neptune {
namespace crc32c {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / standard CRC32C test vectors.
  EXPECT_EQ(Value(""), 0x00000000u);
  EXPECT_EQ(Value("a"), 0xC1D04330u);
  EXPECT_EQ(Value("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Value(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const std::string data = "hello world, this is neptune";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = Value(std::string_view(data).substr(0, split));
    uint32_t full = Extend(partial, std::string_view(data).substr(split));
    EXPECT_EQ(full, Value(data)) << "split=" << split;
  }
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Value("abc"), Value("abd"));
  EXPECT_NE(Value("abc"), Value(std::string_view("abc\0", 4)));
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, Value("x")}) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc);  // masking must change the value
  }
}

}  // namespace
}  // namespace crc32c
}  // namespace neptune

// The documentation application layer: hierarchy building, annotate
// bundles, outlines and hardcopy extraction (paper §4.1).

#include "app/document.h"

#include <gtest/gtest.h>

#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace app {
namespace {

class DocumentModelTest : public ham::HamTestBase {
 protected:
  void SetUp() override {
    ham::HamTestBase::SetUp();
    model_ = std::make_unique<DocumentModel>(ham_.get(), ctx_);
    ASSERT_TRUE(model_->Init().ok());
  }

  // The running example: this paper as a hyperdocument.
  ham::NodeIndex BuildPaper() {
    auto root = model_->CreateDocument("sigmod-paper", "SIGMOD Paper");
    EXPECT_TRUE(root.ok());
    root_ = *root;
    intro_ = *model_->AddSection(root_, "sigmod-paper", "Introduction",
                                 "Traditional databases have certain "
                                 "weaknesses...\n",
                                 0);
    hypertext_ = *model_->AddSection(root_, "sigmod-paper", "Hypertext",
                                     "Hypertext in its essence is non-linear "
                                     "text.\n",
                                     10);
    existing_ = *model_->AddSection(hypertext_, "sigmod-paper",
                                    "Existing Systems",
                                    "Memex, Augment, Xanadu, ZOG...\n", 0);
    overview_ = *model_->AddSection(root_, "sigmod-paper", "Neptune Overview",
                                    "Neptune is a layered architecture.\n",
                                    20);
    return root_;
  }

  std::unique_ptr<DocumentModel> model_;
  ham::NodeIndex root_ = 0, intro_ = 0, hypertext_ = 0, existing_ = 0,
                 overview_ = 0;
};

TEST_F(DocumentModelTest, OutlineOrderAndNumbering) {
  BuildPaper();
  auto outline = model_->Outline(root_, 0);
  ASSERT_TRUE(outline.ok()) << outline.status().ToString();
  ASSERT_EQ(outline->size(), 5u);
  EXPECT_EQ((*outline)[0].title, "SIGMOD Paper");
  EXPECT_EQ((*outline)[0].depth, 0);
  EXPECT_EQ((*outline)[1].title, "Introduction");
  EXPECT_EQ((*outline)[1].number, "1");
  EXPECT_EQ((*outline)[2].title, "Hypertext");
  EXPECT_EQ((*outline)[2].number, "2");
  EXPECT_EQ((*outline)[3].title, "Existing Systems");
  EXPECT_EQ((*outline)[3].number, "2.1");
  EXPECT_EQ((*outline)[3].depth, 2);
  EXPECT_EQ((*outline)[4].number, "3");
}

TEST_F(DocumentModelTest, HardcopyExtraction) {
  BuildPaper();
  auto hardcopy = model_->ExtractHardcopy(root_, 0);
  ASSERT_TRUE(hardcopy.ok()) << hardcopy.status().ToString();
  // Sections appear in order, with headings and body text.
  const std::string& text = *hardcopy;
  size_t p_intro = text.find("## 1 Introduction");
  size_t p_hyper = text.find("## 2 Hypertext");
  size_t p_existing = text.find("### 2.1 Existing Systems");
  size_t p_overview = text.find("## 3 Neptune Overview");
  EXPECT_NE(p_intro, std::string::npos);
  EXPECT_NE(p_existing, std::string::npos);
  EXPECT_LT(p_intro, p_hyper);
  EXPECT_LT(p_hyper, p_existing);
  EXPECT_LT(p_existing, p_overview);
  EXPECT_NE(text.find("non-linear"), std::string::npos);
}

TEST_F(DocumentModelTest, AnnotateIsOneAtomicBundle) {
  BuildPaper();
  auto note = model_->Annotate(intro_, 12, "citation needed");
  ASSERT_TRUE(note.ok()) << note.status().ToString();

  auto annotations = model_->AnnotationsOf(intro_, 0);
  ASSERT_TRUE(annotations.ok());
  ASSERT_EQ(annotations->size(), 1u);
  EXPECT_EQ((*annotations)[0], *note);
  EXPECT_EQ(ReadNode(*note), "citation needed");
  // The annotation node is tagged so queries can exclude/select it.
  auto query = ham_->GetGraphQuery(ctx_, 0, "document = annotations", "",
                                   {}, {});
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->nodes.size(), 1u);
  EXPECT_EQ(query->nodes[0].node, *note);
}

TEST_F(DocumentModelTest, AnnotationsDontPolluteTheOutline) {
  BuildPaper();
  ASSERT_TRUE(model_->Annotate(hypertext_, 0, "is it though?").ok());
  auto outline = model_->Outline(root_, 0);
  ASSERT_TRUE(outline.ok());
  EXPECT_EQ(outline->size(), 5u);  // annotation is not an isPartOf child
}

TEST_F(DocumentModelTest, ReferencesLinkAcrossDocuments) {
  BuildPaper();
  auto other_root = model_->CreateDocument("design-doc", "Design");
  ASSERT_TRUE(other_root.ok());
  auto ref = model_->AddReference(intro_, 5, *other_root);
  ASSERT_TRUE(ref.ok());
  auto relation = ham_->GetLinkAttributeValue(ctx_, *ref,
                                              model_->relation_attr(), 0);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(*relation, Conventions::kReferences);
}

TEST_F(DocumentModelTest, EditSectionPreservesHistoryAndOutlinePast) {
  BuildPaper();
  const ham::Time before = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(model_->EditSection(intro_, "Rewritten intro.\n", "rewrite").ok());
  EXPECT_EQ(ReadNode(intro_), "Rewritten intro.\n");
  // The old hardcopy is still extractable at the old time.
  auto old_hardcopy = model_->ExtractHardcopy(root_, before);
  ASSERT_TRUE(old_hardcopy.ok());
  EXPECT_NE(old_hardcopy->find("Traditional databases"), std::string::npos);
  auto new_hardcopy = model_->ExtractHardcopy(root_, 0);
  ASSERT_TRUE(new_hardcopy.ok());
  EXPECT_NE(new_hardcopy->find("Rewritten intro."), std::string::npos);
  EXPECT_EQ(new_hardcopy->find("Traditional databases"), std::string::npos);
}

TEST_F(DocumentModelTest, TitleFallsBackToIndex) {
  BuildPaper();
  auto untitled = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(untitled.ok());
  EXPECT_EQ(model_->TitleOf(untitled->node, 0),
            "#" + std::to_string(untitled->node));
  EXPECT_EQ(model_->TitleOf(intro_, 0), "Introduction");
}

TEST_F(DocumentModelTest, OutlineAtOldTimeOmitsLaterSections) {
  BuildPaper();
  const ham::Time before = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(model_->AddSection(root_, "sigmod-paper", "Conclusions",
                                 "We have shown...\n", 30)
                  .ok());
  auto now = model_->Outline(root_, 0);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->size(), 6u);
  auto past = model_->Outline(root_, before);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past->size(), 5u);
}

}  // namespace
}  // namespace app
}  // namespace neptune

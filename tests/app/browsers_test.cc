// The UI layer: text-mode reproductions of the paper's Figures 1–3
// (graph browser, document browser, node browser + differences
// browser) plus the version/attribute/demon browsers.

#include <gtest/gtest.h>

#include "app/browsers/canvas.h"
#include "app/browsers/document_browser.h"
#include "app/browsers/graph_browser.h"
#include "app/browsers/inspect_browsers.h"
#include "app/browsers/node_browser.h"
#include "app/document.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace app {
namespace {

TEST(TextCanvasTest, PutGrowsAndToStringTrims) {
  TextCanvas canvas;
  canvas.Put(3, 1, 'x');
  canvas.DrawText(0, 0, "ab");
  std::string out = canvas.ToString();
  EXPECT_EQ(out, "ab\n   x\n");
}

TEST(TextCanvasTest, BoxShape) {
  TextCanvas canvas;
  int w = canvas.DrawBox(0, 0, "Spec");
  EXPECT_EQ(w, 8);
  EXPECT_EQ(canvas.ToString(), "+------+\n| Spec |\n+------+\n");
}

TEST(TextCanvasTest, LinesAndNegativeCoordinatesIgnored) {
  TextCanvas canvas;
  canvas.DrawHLine(0, 4, 0, '-');
  canvas.DrawVLine(0, 0, 2, '|');
  canvas.Put(-1, -5, 'x');  // must not crash or draw
  std::string out = canvas.ToString();
  EXPECT_EQ(out.substr(0, 5), "|----");
}

class BrowsersTest : public ham::HamTestBase {
 protected:
  void SetUp() override {
    ham::HamTestBase::SetUp();
    model_ = std::make_unique<DocumentModel>(ham_.get(), ctx_);
    ASSERT_TRUE(model_->Init().ok());
    root_ = *model_->CreateDocument("paper", "SIGMOD Paper");
    spec_ = *model_->AddSection(root_, "paper", "Spec",
                                "The specification text.\n", 0);
    design_ = *model_->AddSection(root_, "paper", "Design",
                                  "The design text.\n", 10);
    detail_ = *model_->AddSection(spec_, "paper", "Detail",
                                  "Nested detail.\n", 0);
  }

  std::unique_ptr<DocumentModel> model_;
  ham::NodeIndex root_ = 0, spec_ = 0, design_ = 0, detail_ = 0;
};

TEST_F(BrowsersTest, GraphBrowserDrawsBoxesAndEdges) {
  GraphBrowser browser(ham_.get(), ctx_);
  GraphBrowserOptions options;
  auto out = browser.Render(options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Every node appears as a named box (Figure 1's icons).
  EXPECT_NE(out->find("| SIGMOD Paper |"), std::string::npos);
  EXPECT_NE(out->find("| Spec |"), std::string::npos);
  EXPECT_NE(out->find("| Design |"), std::string::npos);
  EXPECT_NE(out->find("| Detail |"), std::string::npos);
  // Edges are drawn with arrowheads.
  EXPECT_NE(out->find('>'), std::string::npos);
  // The visibility-predicate panes are shown.
  EXPECT_NE(out->find("node visibility: true"), std::string::npos);
}

TEST_F(BrowsersTest, GraphBrowserHonoursVisibilityPredicates) {
  // Tag one node differently and filter it out.
  auto status_attr = Attr("status");
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, design_, status_attr, "draft").ok());
  GraphBrowser browser(ham_.get(), ctx_);
  GraphBrowserOptions options;
  options.node_predicate = "!(status = draft)";
  auto out = browser.Render(options);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("| Spec |"), std::string::npos);
  EXPECT_EQ(out->find("| Design |"), std::string::npos);
  EXPECT_NE(out->find("node visibility: !(status = draft)"),
            std::string::npos);
}

TEST_F(BrowsersTest, GraphBrowserHandlesCycles) {
  ASSERT_TRUE(model_->AddReference(detail_, 0, root_).ok());
  GraphBrowser browser(ham_.get(), ctx_);
  auto out = browser.Render(GraphBrowserOptions{});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("| SIGMOD Paper |"), std::string::npos);
}

TEST_F(BrowsersTest, DocumentBrowserShowsPanesAndDrillsDown) {
  DocumentBrowser browser(ham_.get(), ctx_);
  DocumentBrowserOptions options;
  options.query_predicate = "document = paper";
  options.selection = {0, 0};  // select root, then its first child
  auto out = browser.Render(options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Pane 1 lists the query result; pane 2 the root's children in
  // offset order; pane 3 Spec's children.
  EXPECT_NE(out->find(">SIGMOD Paper"), std::string::npos);
  EXPECT_NE(out->find(">Spec"), std::string::npos);
  EXPECT_NE(out->find("Design"), std::string::npos);
  EXPECT_NE(out->find("Detail"), std::string::npos);
  // Lower pane: node browser on the selected node (Spec).
  EXPECT_NE(out->find("Node Browser - Spec"), std::string::npos);
  EXPECT_NE(out->find("The specification text."), std::string::npos);
}

TEST_F(BrowsersTest, DocumentBrowserPaneShiftingViewsDeepHierarchies) {
  // Extend the hierarchy to depth 5: root > Spec > Detail > Deeper > Deepest.
  ham::NodeIndex deeper =
      *model_->AddSection(detail_, "paper", "Deeper", "..\n", 0);
  ASSERT_TRUE(model_->AddSection(deeper, "paper", "Deepest", ".\n", 0).ok());

  DocumentBrowser browser(ham_.get(), ctx_);
  DocumentBrowserOptions options;
  options.query_predicate = "icon = 'SIGMOD Paper'";
  options.selection = {0, 0, 0, 0};  // root > Spec > Detail > Deeper
  // Unshifted: the deepest visible pane shows Detail's children.
  auto unshifted = browser.Render(options);
  ASSERT_TRUE(unshifted.ok());
  EXPECT_NE(unshifted->find(">SIGMOD Paper"), std::string::npos);
  // Deepest is one level beyond the last visible pane (it only shows
  // up as an inline link icon in the node-browser pane below).
  EXPECT_EQ(unshifted->find("| Deepest"), std::string::npos);
  // "Commands are available to shift the panes": shifting by one
  // scrolls the root pane out and brings Deepest into a list pane.
  options.pane_offset = 1;
  auto shifted = browser.Render(options);
  ASSERT_TRUE(shifted.ok());
  EXPECT_NE(shifted->find("<<shifted 1>>"), std::string::npos);
  EXPECT_NE(shifted->find("| Deepest"), std::string::npos);
  EXPECT_NE(shifted->find(">Spec"), std::string::npos);
  EXPECT_EQ(shifted->find(">SIGMOD Paper"), std::string::npos);
}

TEST_F(BrowsersTest, DocumentBrowserWithNoSelectionShowsOnlyQueryPane) {
  DocumentBrowser browser(ham_.get(), ctx_);
  DocumentBrowserOptions options;
  options.query_predicate = "document = paper";
  auto out = browser.Render(options);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("SIGMOD Paper"), std::string::npos);
  EXPECT_EQ(out->find("Node Browser"), std::string::npos);
}

TEST_F(BrowsersTest, NodeBrowserShowsInlineLinkIcons) {
  // Figure 3: "Within a node browser, a link appears as an icon".
  NodeBrowser browser(ham_.get(), ctx_);
  auto out = browser.Render(spec_, 0);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("Node Browser - Spec"), std::string::npos);
  // The isPartOf link to Detail attaches at offset 0: its icon appears
  // inline at the start of the contents.
  EXPECT_NE(out->find("[>Detail]The specification text."),
            std::string::npos);
  // The links table shows both directions.
  EXPECT_NE(out->find("-> isPartOf Detail"), std::string::npos);
  EXPECT_NE(out->find("<- isPartOf SIGMOD Paper"), std::string::npos);
}

TEST_F(BrowsersTest, NodeDifferencesBrowserHighlightsChanges) {
  const ham::Time t1 = *ham_->GetNodeTimeStamp(ctx_, design_);
  ASSERT_TRUE(
      model_->EditSection(design_, "The improved design text.\n", "v2").ok());
  const ham::Time t2 = *ham_->GetNodeTimeStamp(ctx_, design_);

  NodeDifferencesBrowser browser(ham_.get(), ctx_);
  auto out = browser.Render(design_, t1, t2);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("Node Differences Browser"), std::string::npos);
  // The replacement line is flagged with '~' and both versions shown
  // side by side.
  EXPECT_NE(out->find("~ The design text."), std::string::npos);
  EXPECT_NE(out->find("| The improved design text."), std::string::npos);

  auto same = browser.Render(design_, t2, t2);
  ASSERT_TRUE(same.ok());
  EXPECT_NE(same->find("(versions are identical)"), std::string::npos);
}

TEST_F(BrowsersTest, VersionBrowserListsMajorAndMinor) {
  ASSERT_TRUE(model_->EditSection(spec_, "Spec v2\n", "second draft").ok());
  VersionBrowser browser(ham_.get(), ctx_);
  auto out = browser.Render(spec_);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("major versions"), std::string::npos);
  EXPECT_NE(out->find("second draft"), std::string::npos);
  EXPECT_NE(out->find("minor versions"), std::string::npos);
  EXPECT_NE(out->find("addLink"), std::string::npos);
}

TEST_F(BrowsersTest, AttributeBrowserShowsGraphNodeAndLinkViews) {
  AttributeBrowser browser(ham_.get(), ctx_);
  auto graph_view = browser.RenderGraph(0);
  ASSERT_TRUE(graph_view.ok()) << graph_view.status().ToString();
  EXPECT_NE(graph_view->find("document"), std::string::npos);
  EXPECT_NE(graph_view->find("'paper'"), std::string::npos);

  auto node_view = browser.RenderNode(spec_, 0);
  ASSERT_TRUE(node_view.ok());
  EXPECT_NE(node_view->find("icon = 'Spec'"), std::string::npos);

  auto opened = ham_->OpenNode(ctx_, detail_, 0, {});
  ASSERT_TRUE(opened.ok());
  ASSERT_FALSE(opened->attachments.empty());
  auto link_view = browser.RenderLink(opened->attachments[0].link, 0);
  ASSERT_TRUE(link_view.ok());
  EXPECT_NE(link_view->find("relation = 'isPartOf'"), std::string::npos);
}

TEST_F(BrowsersTest, DemonBrowserListsBindings) {
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, ham::Event::kAddNode, "audit-log").ok());
  ASSERT_TRUE(ham_->SetNodeDemon(ctx_, spec_, ham::Event::kModifyNode,
                                 "notify-owner")
                  .ok());
  DemonBrowser browser(ham_.get(), ctx_);
  auto out = browser.Render(spec_, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("on addNode: 'audit-log'"), std::string::npos);
  EXPECT_NE(out->find("on modifyNode: 'notify-owner'"), std::string::npos);

  auto graph_only = browser.Render(0, 0);
  ASSERT_TRUE(graph_only.ok());
  EXPECT_EQ(graph_only->find("notify-owner"), std::string::npos);
}

TEST_F(BrowsersTest, BrowsersCanViewThePast) {
  const ham::Time before = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(model_->EditSection(spec_, "changed!\n", "").ok());
  NodeBrowser browser(ham_.get(), ctx_);
  auto past = browser.Render(spec_, before);
  ASSERT_TRUE(past.ok());
  EXPECT_NE(past->find("The specification text."), std::string::npos);
  auto now = browser.Render(spec_, 0);
  ASSERT_TRUE(now.ok());
  EXPECT_NE(now->find("changed!"), std::string::npos);
}

}  // namespace
}  // namespace app
}  // namespace neptune

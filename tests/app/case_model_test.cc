// The CASE application layer (paper §4.2): Modula-2-style structure,
// imports, the simulated incremental compiler, and the §5
// auto-recompile demon.

#include "app/case_model.h"

#include <gtest/gtest.h>

#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace app {
namespace {

class CaseModelTest : public ham::HamTestBase {
 protected:
  void SetUp() override {
    ham::HamTestBase::SetUp();
    model_ = std::make_unique<CaseModel>(ham_.get(), ctx_);
    ASSERT_TRUE(model_->Init().ok());
  }

  std::unique_ptr<CaseModel> model_;
};

TEST_F(CaseModelTest, ModulesCarryTheConventionAttributes) {
  auto def = model_->AddModule("Lists", CaseConventions::kDefinitionModule,
                               "DEFINITION MODULE Lists;\nEND Lists.\n");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  auto content_type = ham_->GetNodeAttributeValue(
      ctx_, *def, model_->content_type_attr(), 0);
  ASSERT_TRUE(content_type.ok());
  EXPECT_EQ(*content_type, CaseConventions::kSourceType);
  auto code_type =
      ham_->GetNodeAttributeValue(ctx_, *def, model_->code_type_attr(), 0);
  ASSERT_TRUE(code_type.ok());
  EXPECT_EQ(*code_type, CaseConventions::kDefinitionModule);
}

TEST_F(CaseModelTest, BadCodeTypeRejected) {
  EXPECT_TRUE(model_->AddModule("X", "subroutine", "...")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CaseModelTest, ProceduresNestInModules) {
  auto impl = model_->AddModule("Lists", CaseConventions::kImplementationModule,
                                "IMPLEMENTATION MODULE Lists;\n");
  ASSERT_TRUE(impl.ok());
  auto append = model_->AddProcedure(*impl, "Append",
                                     "PROCEDURE Append(...);\n", 10);
  auto remove = model_->AddProcedure(*impl, "Remove",
                                     "PROCEDURE Remove(...);\n", 5);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(remove.ok());
  auto procedures = model_->ProceduresOf(*impl);
  ASSERT_TRUE(procedures.ok());
  // Ordered by link offset: Remove (5) before Append (10).
  EXPECT_EQ(*procedures,
            (std::vector<ham::NodeIndex>{*remove, *append}));
}

TEST_F(CaseModelTest, ImportsFormTheModuleGraph) {
  auto lists = model_->AddModule("Lists", CaseConventions::kDefinitionModule,
                                 "DEFINITION MODULE Lists;\n");
  auto queue = model_->AddModule("Queues", CaseConventions::kImplementationModule,
                                 "IMPLEMENTATION MODULE Queues;\nIMPORT Lists;\n");
  auto stack = model_->AddModule("Stacks", CaseConventions::kImplementationModule,
                                 "IMPLEMENTATION MODULE Stacks;\nIMPORT Lists;\n");
  ASSERT_TRUE(lists.ok());
  ASSERT_TRUE(queue.ok());
  ASSERT_TRUE(stack.ok());
  ASSERT_TRUE(model_->AddImport(*queue, *lists, 35).ok());
  ASSERT_TRUE(model_->AddImport(*stack, *lists, 35).ok());
  auto importers = model_->ImportersOf(*lists);
  ASSERT_TRUE(importers.ok());
  EXPECT_EQ(importers->size(), 2u);
}

TEST_F(CaseModelTest, CompileCreatesObjectNodeAndLink) {
  auto module = model_->AddModule("M", CaseConventions::kImplementationModule,
                                  "IMPLEMENTATION MODULE M;\nEND M.\n");
  ASSERT_TRUE(module.ok());
  EXPECT_TRUE(*model_->NeedsRecompile(*module));
  auto object = model_->Compile(*module);
  ASSERT_TRUE(object.ok()) << object.status().ToString();
  EXPECT_FALSE(*model_->NeedsRecompile(*module));
  EXPECT_EQ(*model_->ObjectCodeOf(*module), *object);
  // Object contents are the deterministic digest of the source.
  EXPECT_EQ(ReadNode(*object),
            CaseModel::FakeObjectCode("IMPLEMENTATION MODULE M;\nEND M.\n"));
  auto content_type = ham_->GetNodeAttributeValue(
      ctx_, *object, model_->content_type_attr(), 0);
  ASSERT_TRUE(content_type.ok());
  EXPECT_EQ(*content_type, CaseConventions::kObjectType);
}

TEST_F(CaseModelTest, CompileAllIsIncremental) {
  auto a = model_->AddModule("A", CaseConventions::kImplementationModule,
                             "MODULE A;\n");
  auto b = model_->AddModule("B", CaseConventions::kImplementationModule,
                             "MODULE B;\n");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto first = model_->CompileAll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->compiled, 2u);
  EXPECT_EQ(first->up_to_date, 0u);

  auto second = model_->CompileAll();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->compiled, 0u);
  EXPECT_EQ(second->up_to_date, 2u);

  // Edit one module: exactly that one recompiles.
  ASSERT_TRUE(model_->EditSource(*a, "MODULE A; (* changed *)\n").ok());
  auto third = model_->CompileAll();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->compiled, 1u);
  EXPECT_EQ(third->up_to_date, 1u);
  EXPECT_EQ(ReadNode(*model_->ObjectCodeOf(*a)),
            CaseModel::FakeObjectCode("MODULE A; (* changed *)\n"));
}

TEST_F(CaseModelTest, RecompileKeepsObjectHistory) {
  auto m = model_->AddModule("M", CaseConventions::kImplementationModule,
                             "v1\n");
  ASSERT_TRUE(m.ok());
  auto object = model_->Compile(*m);
  ASSERT_TRUE(object.ok());
  const ham::Time old_obj_time = *ham_->GetNodeTimeStamp(ctx_, *object);
  ASSERT_TRUE(model_->EditSource(*m, "v2\n").ok());
  ASSERT_TRUE(model_->Compile(*m).ok());
  // Old object code is still reachable at its version time.
  EXPECT_EQ(ReadNode(*object, old_obj_time), CaseModel::FakeObjectCode("v1\n"));
  EXPECT_EQ(ReadNode(*object), CaseModel::FakeObjectCode("v2\n"));
}

TEST_F(CaseModelTest, AutoCompileDemonRecompilesOnModify) {
  // Paper §5: "invoking an incremental compiler when a node which
  // contains code is modified."
  model_->InstallCompileDemonHandler(&ham_->demons());
  auto m = model_->AddModule("Hot", CaseConventions::kImplementationModule,
                             "original\n");
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(model_->Compile(*m).ok());
  ASSERT_TRUE(model_->EnableAutoCompile(*m).ok());

  ASSERT_TRUE(model_->EditSource(*m, "hot-reloaded\n").ok());
  // The demon fired synchronously after commit and recompiled.
  EXPECT_FALSE(*model_->NeedsRecompile(*m));
  EXPECT_EQ(ReadNode(*model_->ObjectCodeOf(*m)),
            CaseModel::FakeObjectCode("hot-reloaded\n"));
}

TEST_F(CaseModelTest, FakeObjectCodeIsDeterministicAndContentSensitive) {
  EXPECT_EQ(CaseModel::FakeObjectCode("abc"), CaseModel::FakeObjectCode("abc"));
  EXPECT_NE(CaseModel::FakeObjectCode("abc"), CaseModel::FakeObjectCode("abd"));
}

}  // namespace
}  // namespace app
}  // namespace neptune

// Interchange: exporting one version of a hyperdocument and importing
// it into another graph, preserving structure, contents, attributes
// and attachment offsets.

#include "app/interchange.h"

#include <gtest/gtest.h>

#include "app/document.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace app {
namespace {

class InterchangeTest : public ham::HamTestBase {
 protected:
  void SetUp() override {
    ham::HamTestBase::SetUp();
    doc_ = std::make_unique<DocumentModel>(ham_.get(), ctx_);
    ASSERT_TRUE(doc_->Init().ok());
    root_ = *doc_->CreateDocument("manual", "User Manual");
    install_ = *doc_->AddSection(root_, "manual", "Install",
                                 "Run cmake.\n", 0);
    usage_ = *doc_->AddSection(root_, "manual", "Usage",
                               "Link things together.\n", 10);
  }

  // A second, empty graph to import into.
  ham::Context SecondGraph() {
    const std::string dir2 = dir_ + "_target";
    env_->RemoveDirRecursive(dir2);
    auto created = ham_->CreateGraph(dir2, 0755);
    EXPECT_TRUE(created.ok());
    auto ctx = ham_->OpenGraph(created->project, "local", dir2);
    EXPECT_TRUE(ctx.ok());
    return *ctx;
  }

  std::unique_ptr<DocumentModel> doc_;
  ham::NodeIndex root_ = 0, install_ = 0, usage_ = 0;
};

TEST_F(InterchangeTest, ExportImportRoundTrip) {
  auto exported = ExportGraph(ham_.get(), ctx_, 0);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_NE(exported->find("NEPTUNE-INTERCHANGE 1"), std::string::npos);

  ham::Context target = SecondGraph();
  auto report = ImportGraph(ham_.get(), target, *exported);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->nodes, 3u);
  EXPECT_EQ(report->links, 2u);
  EXPECT_GE(report->attributes, 3u);  // icon, document, relation

  // The imported document reads identically through the app layer.
  DocumentModel target_doc(ham_.get(), target);
  ASSERT_TRUE(target_doc.Init().ok());
  const ham::NodeIndex new_root = report->node_mapping.at(root_);
  auto hardcopy_src = doc_->ExtractHardcopy(root_, 0);
  auto hardcopy_dst = target_doc.ExtractHardcopy(new_root, 0);
  ASSERT_TRUE(hardcopy_src.ok());
  ASSERT_TRUE(hardcopy_dst.ok());
  EXPECT_EQ(*hardcopy_src, *hardcopy_dst);
  ASSERT_TRUE(ham_->CloseGraph(target).ok());
}

TEST_F(InterchangeTest, ExportsTheRequestedVersion) {
  const ham::Time before = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(doc_->EditSection(install_, "Run ninja instead.\n", "").ok());
  auto old_export = ExportGraph(ham_.get(), ctx_, before);
  auto new_export = ExportGraph(ham_.get(), ctx_, 0);
  ASSERT_TRUE(old_export.ok());
  ASSERT_TRUE(new_export.ok());
  EXPECT_NE(old_export->find("Run cmake."), std::string::npos);
  EXPECT_EQ(old_export->find("Run ninja"), std::string::npos);
  EXPECT_NE(new_export->find("Run ninja instead."), std::string::npos);
}

TEST_F(InterchangeTest, BinaryContentsSurvive) {
  auto node = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(node.ok());
  std::string binary("\x00\x01\xff\nraw\nbytes\x7f", 15);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, node->node, node->creation_time, binary,
                               {}, "")
                  .ok());
  auto exported = ExportGraph(ham_.get(), ctx_, 0);
  ASSERT_TRUE(exported.ok());
  ham::Context target = SecondGraph();
  auto report = ImportGraph(ham_.get(), target, *exported);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto imported = ham_->OpenNode(target, report->node_mapping.at(node->node),
                                 0, {});
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported->contents, binary);
  ASSERT_TRUE(ham_->CloseGraph(target).ok());
}

TEST_F(InterchangeTest, ImportIsAtomic) {
  auto exported = ExportGraph(ham_.get(), ctx_, 0);
  ASSERT_TRUE(exported.ok());
  // Truncate mid-stream: nothing may be imported.
  std::string broken = exported->substr(0, exported->size() / 2);
  ham::Context target = SecondGraph();
  auto report = ImportGraph(ham_.get(), target, broken);
  EXPECT_FALSE(report.ok());
  auto stats = ham_->GetStats(target);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, 0u);
  ASSERT_TRUE(ham_->CloseGraph(target).ok());
}

TEST_F(InterchangeTest, RejectsForeignFormats) {
  ham::Context target = SecondGraph();
  EXPECT_TRUE(ImportGraph(ham_.get(), target, "some random text")
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(ham_->CloseGraph(target).ok());
}

TEST_F(InterchangeTest, AttachmentOffsetsArePreserved) {
  auto exported = ExportGraph(ham_.get(), ctx_, 0);
  ASSERT_TRUE(exported.ok());
  ham::Context target = SecondGraph();
  auto report = ImportGraph(ham_.get(), target, *exported);
  ASSERT_TRUE(report.ok());
  auto opened = ham_->OpenNode(target, report->node_mapping.at(root_), 0, {});
  ASSERT_TRUE(opened.ok());
  std::vector<uint64_t> positions;
  for (const auto& att : opened->attachments) {
    if (att.is_source_end) positions.push_back(att.position);
  }
  std::sort(positions.begin(), positions.end());
  EXPECT_EQ(positions, (std::vector<uint64_t>{0, 10}));
  ASSERT_TRUE(ham_->CloseGraph(target).ok());
}

}  // namespace
}  // namespace app
}  // namespace neptune

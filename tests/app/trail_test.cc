// Trails (paper §2.2's memex feature): recording, replay, resume, and
// their hypertext representation.

#include "app/trail.h"

#include <gtest/gtest.h>

#include "app/document.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace app {
namespace {

class TrailTest : public ham::HamTestBase {
 protected:
  void SetUp() override {
    ham::HamTestBase::SetUp();
    doc_ = std::make_unique<DocumentModel>(ham_.get(), ctx_);
    ASSERT_TRUE(doc_->Init().ok());
    recorder_ = std::make_unique<TrailRecorder>(ham_.get(), ctx_);
    ASSERT_TRUE(recorder_->Init().ok());
    root_ = *doc_->CreateDocument("book", "Book");
    ch1_ = *doc_->AddSection(root_, "book", "Chapter 1", "...\n", 0);
    ch2_ = *doc_->AddSection(root_, "book", "Chapter 2", "...\n", 10);
    note_ = *doc_->Annotate(ch1_, 0, "a diversion");
  }

  std::unique_ptr<DocumentModel> doc_;
  std::unique_ptr<TrailRecorder> recorder_;
  ham::NodeIndex root_ = 0, ch1_ = 0, ch2_ = 0, note_ = 0;
};

TEST_F(TrailTest, RecordAndReplay) {
  auto trail = recorder_->StartTrail("my reading");
  ASSERT_TRUE(trail.ok()) << trail.status().ToString();
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{root_, 0}).ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch1_, 1}).ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{note_, 7}).ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch2_, 2}).ok());

  auto steps = recorder_->Replay(*trail, 0);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 4u);
  EXPECT_EQ((*steps)[0].node, root_);
  EXPECT_EQ((*steps)[2].node, note_);
  EXPECT_EQ((*steps)[2].via, 7u);
  EXPECT_EQ((*steps)[3].node, ch2_);
}

TEST_F(TrailTest, ResumeReturnsLastStep) {
  auto trail = recorder_->StartTrail("resume me");
  ASSERT_TRUE(trail.ok());
  EXPECT_TRUE(recorder_->Resume(*trail).status().IsNotFound());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch1_, 0}).ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch2_, 0}).ok());
  auto resume = recorder_->Resume(*trail);
  ASSERT_TRUE(resume.ok());
  EXPECT_EQ(resume->node, ch2_);
}

TEST_F(TrailTest, TrailsAreVersionedLikeEverythingElse) {
  auto trail = recorder_->StartTrail("versioned");
  ASSERT_TRUE(trail.ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{root_, 0}).ok());
  const ham::Time after_one = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch1_, 0}).ok());
  // The trail as another reader saw it earlier.
  auto old_steps = recorder_->Replay(*trail, after_one);
  ASSERT_TRUE(old_steps.ok());
  EXPECT_EQ(old_steps->size(), 1u);
  auto new_steps = recorder_->Replay(*trail, 0);
  ASSERT_TRUE(new_steps.ok());
  EXPECT_EQ(new_steps->size(), 2u);
}

TEST_F(TrailTest, TrailIsRealHypertext) {
  auto trail = recorder_->StartTrail("linked");
  ASSERT_TRUE(trail.ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch1_, 0}).ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch2_, 0}).ok());
  // The trail node carries followsTrail links to the visited nodes.
  auto opened = ham_->OpenNode(ctx_, *trail, 0, {});
  ASSERT_TRUE(opened.ok());
  size_t outgoing = 0;
  for (const auto& att : opened->attachments) {
    if (att.is_source_end) ++outgoing;
  }
  EXPECT_EQ(outgoing, 2u);
  // And it is queryable via the trails document tag.
  auto trails = recorder_->ListTrails();
  ASSERT_TRUE(trails.ok());
  EXPECT_EQ(*trails, std::vector<ham::NodeIndex>{*trail});
}

TEST_F(TrailTest, ReplayRejectsNonTrailNodes) {
  EXPECT_TRUE(recorder_->Replay(ch1_, 0).status().IsInvalidArgument());
}

TEST_F(TrailTest, RenderShowsTitlesInOrder) {
  auto trail = recorder_->StartTrail("render me");
  ASSERT_TRUE(trail.ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{root_, 0}).ok());
  ASSERT_TRUE(recorder_->RecordStep(*trail, TrailStep{ch2_, 4}).ok());
  auto out = recorder_->Render(*trail, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("Trail - render me"), std::string::npos);
  EXPECT_NE(out->find("1. Book"), std::string::npos);
  EXPECT_NE(out->find("2. Chapter 2  (via link 4)"), std::string::npos);
}

}  // namespace
}  // namespace app
}  // namespace neptune

#include "delta/text_diff.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace neptune {
namespace delta {
namespace {

// Replays a difference list against the old lines; the result must
// equal the new lines. This is the key invariant DiffLines must hold.
std::vector<std::string> ApplyDifferences(
    const std::vector<std::string>& old_lines,
    const std::vector<Difference>& diffs) {
  std::vector<std::string> out;
  size_t old_pos = 0;
  for (const Difference& d : diffs) {
    while (old_pos < d.old_begin) out.push_back(old_lines[old_pos++]);
    old_pos = d.old_end;  // skip deleted/replaced lines
    for (const auto& line : d.new_lines) out.push_back(line);
  }
  while (old_pos < old_lines.size()) out.push_back(old_lines[old_pos++]);
  return out;
}

TEST(SplitLinesTest, BasicAndTrailingNewline) {
  EXPECT_EQ(SplitLines(""), std::vector<std::string>{});
  EXPECT_EQ(SplitLines("a"), std::vector<std::string>{"a"});
  EXPECT_EQ(SplitLines("a\n"), std::vector<std::string>{"a"});
  EXPECT_EQ(SplitLines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitLines("a\n\nb\n"), (std::vector<std::string>{"a", "", "b"}));
}

TEST(DiffLinesTest, IdenticalTextsHaveNoDifferences) {
  EXPECT_TRUE(DiffLines("a\nb\nc\n", "a\nb\nc\n").empty());
  EXPECT_TRUE(DiffLines("", "").empty());
}

TEST(DiffLinesTest, PureInsertion) {
  auto diffs = DiffLines("a\nc\n", "a\nb\nc\n");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, DifferenceKind::kInsertion);
  EXPECT_EQ(diffs[0].new_lines, std::vector<std::string>{"b"});
  EXPECT_EQ(diffs[0].old_begin, diffs[0].old_end);
}

TEST(DiffLinesTest, PureDeletion) {
  auto diffs = DiffLines("a\nb\nc\n", "a\nc\n");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, DifferenceKind::kDeletion);
  EXPECT_EQ(diffs[0].old_lines, std::vector<std::string>{"b"});
  EXPECT_EQ(diffs[0].new_begin, diffs[0].new_end);
}

TEST(DiffLinesTest, Replacement) {
  auto diffs = DiffLines("a\nOLD\nc\n", "a\nNEW\nc\n");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, DifferenceKind::kReplacement);
  EXPECT_EQ(diffs[0].old_lines, std::vector<std::string>{"OLD"});
  EXPECT_EQ(diffs[0].new_lines, std::vector<std::string>{"NEW"});
}

TEST(DiffLinesTest, EverythingChanged) {
  auto diffs = DiffLines("x\ny\n", "p\nq\nr\n");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, DifferenceKind::kReplacement);
}

TEST(DiffLinesTest, FromEmptyIsOneInsertion) {
  auto diffs = DiffLines("", "a\nb\n");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, DifferenceKind::kInsertion);
  EXPECT_EQ(diffs[0].new_lines.size(), 2u);
}

TEST(DiffLinesTest, ToEmptyIsOneDeletion) {
  auto diffs = DiffLines("a\nb\n", "");
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, DifferenceKind::kDeletion);
}

TEST(DiffLinesTest, MultipleHunks) {
  auto diffs = DiffLines("1\n2\n3\n4\n5\n6\n", "1\nTWO\n3\n4\n6\nSEVEN\n");
  // 2->TWO (replacement), 5 deleted, SEVEN appended.
  ASSERT_GE(diffs.size(), 2u);
  auto applied = ApplyDifferences(SplitLines("1\n2\n3\n4\n5\n6\n"), diffs);
  EXPECT_EQ(applied, SplitLines("1\nTWO\n3\n4\n6\nSEVEN\n"));
}

TEST(DiffLinesTest, RepeatedLinesStillReplayCorrectly) {
  const std::string old_text = "a\na\na\nb\na\n";
  const std::string new_text = "a\nb\na\na\nb\n";
  auto diffs = DiffLines(old_text, new_text);
  auto applied = ApplyDifferences(SplitLines(old_text), diffs);
  EXPECT_EQ(applied, SplitLines(new_text));
}

TEST(FormatDifferencesTest, ClassicDiffShape) {
  auto diffs = DiffLines("a\nOLD\nc\n", "a\nNEW\nc\n");
  std::string text = FormatDifferences(diffs);
  EXPECT_NE(text.find("< OLD"), std::string::npos);
  EXPECT_NE(text.find("> NEW"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_NE(text.find('c'), std::string::npos);
}

TEST(DiffLinesTest, MinimalityOnSingleChange) {
  // A one-line change in a 200-line file must produce exactly one
  // single-line hunk, not resynchronize the whole file.
  std::string old_text;
  std::string new_text;
  for (int i = 0; i < 200; ++i) {
    std::string line = "line " + std::to_string(i) + "\n";
    old_text += line;
    new_text += (i == 100) ? "CHANGED\n" : line;
  }
  auto diffs = DiffLines(old_text, new_text);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].old_lines.size(), 1u);
  EXPECT_EQ(diffs[0].new_lines.size(), 1u);
  EXPECT_EQ(diffs[0].old_begin, 100u);
}

// Property sweep: random line edits always replay.
class TextDiffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TextDiffPropertyTest, RandomEditsReplay) {
  Random rng(777 + GetParam());
  std::vector<std::string> old_lines;
  const int n = 1 + static_cast<int>(rng.Uniform(120));
  for (int i = 0; i < n; ++i) {
    // Small alphabet of line values forces repeated lines — the hard
    // case for LCS-based diffs.
    old_lines.push_back("line-" + std::to_string(rng.Uniform(10)));
  }
  std::vector<std::string> new_lines = old_lines;
  const int edits = static_cast<int>(rng.Uniform(20));
  for (int e = 0; e < edits; ++e) {
    switch (rng.Uniform(3)) {
      case 0:
        new_lines.insert(
            new_lines.begin() +
                (new_lines.empty() ? 0 : rng.Uniform(new_lines.size() + 1)),
            "new-" + std::to_string(rng.Uniform(10)));
        break;
      case 1:
        if (!new_lines.empty()) {
          new_lines.erase(new_lines.begin() + rng.Uniform(new_lines.size()));
        }
        break;
      default:
        if (!new_lines.empty()) {
          new_lines[rng.Uniform(new_lines.size())] =
              "mod-" + std::to_string(rng.Uniform(10));
        }
        break;
    }
  }
  auto join = [](const std::vector<std::string>& lines) {
    std::string out;
    for (const auto& l : lines) {
      out += l;
      out += '\n';
    }
    return out;
  };
  auto diffs = DiffLines(join(old_lines), join(new_lines));
  EXPECT_EQ(ApplyDifferences(old_lines, diffs), new_lines);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextDiffPropertyTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace delta
}  // namespace neptune

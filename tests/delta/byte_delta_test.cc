#include "delta/byte_delta.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace neptune {
namespace delta {
namespace {

void ExpectRoundTrip(std::string_view base, std::string_view target) {
  std::string script = EncodeDelta(base, target);
  auto result = ApplyDelta(base, script);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, target);
}

TEST(ByteDeltaTest, EmptyToEmpty) { ExpectRoundTrip("", ""); }

TEST(ByteDeltaTest, EmptyBase) { ExpectRoundTrip("", "brand new contents"); }

TEST(ByteDeltaTest, EmptyTarget) { ExpectRoundTrip("old stuff here", ""); }

TEST(ByteDeltaTest, IdenticalContents) {
  std::string text(5000, 'x');
  for (size_t i = 0; i < text.size(); ++i) text[i] = char('A' + i % 53);
  std::string script = EncodeDelta(text, text);
  // Identical contents must compress to (almost) nothing.
  EXPECT_LT(script.size(), 64u);
  auto result = ApplyDelta(text, script);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, text);
}

TEST(ByteDeltaTest, SmallEditOnLargeBaseIsCompact) {
  Random rng(42);
  std::string base = rng.NextBytes(64 * 1024);
  std::string target = base;
  target.insert(1000, "INSERTED TEXT");
  target.erase(30000, 50);
  std::string script = EncodeDelta(base, target);
  // The delta should be a tiny fraction of the contents size (the
  // whole point of backward deltas).
  EXPECT_LT(script.size(), base.size() / 100);
  auto result = ApplyDelta(base, script);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, target);
}

TEST(ByteDeltaTest, CompletelyDifferentContents) {
  Random rng(1);
  ExpectRoundTrip(rng.NextBytes(4096), rng.NextBytes(4096));
}

TEST(ByteDeltaTest, BaseShorterThanBlock) {
  ExpectRoundTrip("short", "also short but different");
}

TEST(ByteDeltaTest, BinaryDataWithEmbeddedNulsAndHighBytes) {
  std::string base("\x00\x01\xff\xfe", 4);
  base += std::string(100, '\0');
  std::string target = base + std::string("\xff\x00tail", 6);
  ExpectRoundTrip(base, target);
}

TEST(ByteDeltaTest, RepetitiveContentTerminates) {
  // Highly repetitive input stresses the hash-chain cap.
  std::string base(100000, 'a');
  std::string target(100001, 'a');
  target[50000] = 'b';
  ExpectRoundTrip(base, target);
}

TEST(ByteDeltaApplyTest, RejectsTruncatedScript) {
  std::string script = EncodeDelta("base contents 1234567890", "target 1234");
  for (size_t cut = 0; cut < script.size(); ++cut) {
    auto result =
        ApplyDelta("base contents 1234567890", script.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(ByteDeltaApplyTest, RejectsCopyOutOfBounds) {
  // Build a valid script against a big base, then replay it against a
  // smaller base: COPYs must be bounds-checked.
  std::string big(1000, 'r');
  for (size_t i = 0; i < big.size(); ++i) big[i] = char('a' + i % 26);
  std::string script = EncodeDelta(big, big);
  auto result = ApplyDelta("tiny", script);
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(ByteDeltaApplyTest, RejectsUnknownOpcode) {
  std::string script;
  script.push_back('\x05');  // target_len = 5 (varint)
  script.push_back('\x07');  // bogus opcode
  auto result = ApplyDelta("base", script);
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(ByteDeltaApplyTest, RejectsLengthMismatch) {
  // Header says 100 bytes; script produces 3.
  std::string script;
  script.push_back('\x64');  // varint 100
  script.push_back('\x00');  // ADD
  script.push_back('\x03');  // len 3
  script += "abc";
  auto result = ApplyDelta("", script);
  EXPECT_TRUE(result.status().IsCorruption());
}

// Property sweep: random bases with random edit scripts of varying
// aggressiveness always round-trip.
class ByteDeltaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ByteDeltaPropertyTest, RandomEditsRoundTrip) {
  Random rng(1000 + GetParam());
  std::string base = rng.NextBytes(rng.Uniform(20000));
  std::string target = base;
  const int edits = 1 + static_cast<int>(rng.Uniform(10));
  for (int e = 0; e < edits; ++e) {
    switch (rng.Uniform(3)) {
      case 0: {  // insert
        size_t pos = target.empty() ? 0 : rng.Uniform(target.size());
        target.insert(pos, rng.NextBytes(rng.Uniform(500)));
        break;
      }
      case 1: {  // delete
        if (target.empty()) break;
        size_t pos = rng.Uniform(target.size());
        size_t len = std::min<size_t>(rng.Uniform(500), target.size() - pos);
        target.erase(pos, len);
        break;
      }
      default: {  // overwrite
        if (target.empty()) break;
        size_t pos = rng.Uniform(target.size());
        size_t len = std::min<size_t>(rng.Uniform(100), target.size() - pos);
        for (size_t i = 0; i < len; ++i) {
          target[pos + i] = static_cast<char>(rng.Uniform(256));
        }
        break;
      }
    }
  }
  std::string script = EncodeDelta(base, target);
  auto result = ApplyDelta(base, script);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, target);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteDeltaPropertyTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace delta
}  // namespace neptune

#include "delta/version_chain.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "delta/recon_cache.h"

namespace neptune {
namespace delta {
namespace {

TEST(VersionChainTest, EmptyChainHasNoVersions) {
  VersionChain chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.CurrentTime(), 0u);
  EXPECT_TRUE(chain.Get(0).status().IsNotFound());
}

TEST(VersionChainTest, SingleVersion) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(5, "contents v1", "created").ok());
  EXPECT_EQ(chain.version_count(), 1u);
  EXPECT_EQ(chain.CurrentTime(), 5u);
  EXPECT_EQ(*chain.Get(0), "contents v1");
  EXPECT_EQ(*chain.Get(5), "contents v1");
  EXPECT_EQ(*chain.Get(100), "contents v1");  // still in effect later
  EXPECT_TRUE(chain.Get(4).status().IsNotFound());  // predates creation
}

TEST(VersionChainTest, TimeZeroIsReserved) {
  VersionChain chain;
  EXPECT_TRUE(chain.Append(0, "x", "").IsInvalidArgument());
}

TEST(VersionChainTest, TimesMustStrictlyIncrease) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(10, "a", "").ok());
  EXPECT_TRUE(chain.Append(10, "b", "").IsInvalidArgument());
  EXPECT_TRUE(chain.Append(9, "b", "").IsInvalidArgument());
  ASSERT_TRUE(chain.Append(11, "b", "").ok());
}

TEST(VersionChainTest, EveryHistoricalVersionIsReconstructible) {
  VersionChain chain;
  std::vector<std::string> texts;
  std::string text = "The quick brown fox\njumps over the lazy dog\n";
  for (uint64_t t = 1; t <= 50; ++t) {
    text += "edit at time " + std::to_string(t) + "\n";
    if (t % 7 == 0) text.erase(0, 10);
    texts.push_back(text);
    ASSERT_TRUE(chain.Append(t, text, "edit " + std::to_string(t)).ok());
  }
  for (uint64_t t = 1; t <= 50; ++t) {
    auto got = chain.Get(t);
    ASSERT_TRUE(got.ok()) << t;
    EXPECT_EQ(*got, texts[t - 1]) << t;
  }
  EXPECT_EQ(*chain.Get(0), texts.back());
}

TEST(VersionChainTest, GetBetweenVersionTimesReturnsVersionInEffect) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(10, "ten", "").ok());
  ASSERT_TRUE(chain.Append(20, "twenty", "").ok());
  EXPECT_EQ(*chain.Get(15), "ten");
  EXPECT_EQ(*chain.Get(20), "twenty");
  EXPECT_EQ(*chain.Get(19), "ten");
}

TEST(VersionChainTest, VersionMetadataKeepsExplanations) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(1, "a", "first write").ok());
  ASSERT_TRUE(chain.Append(2, "b", "second write").ok());
  ASSERT_EQ(chain.versions().size(), 2u);
  EXPECT_EQ(chain.versions()[0].time, 1u);
  EXPECT_EQ(chain.versions()[0].explanation, "first write");
  EXPECT_EQ(chain.versions()[1].explanation, "second write");
}

TEST(VersionChainTest, BackwardDeltaStoresLessThanFullCopy) {
  Random rng(9);
  std::string text = rng.NextString(20000);
  VersionChain delta_chain(ChainMode::kBackwardDelta);
  VersionChain copy_chain(ChainMode::kFullCopy);
  for (uint64_t t = 1; t <= 20; ++t) {
    text.insert(rng.Uniform(text.size()), "small edit");
    ASSERT_TRUE(delta_chain.Append(t, text, "").ok());
    ASSERT_TRUE(copy_chain.Append(t, text, "").ok());
  }
  // Both agree on every version...
  for (uint64_t t = 1; t <= 20; ++t) {
    EXPECT_EQ(*delta_chain.Get(t), *copy_chain.Get(t));
  }
  // ...but deltas take far less space (paper §3's design rationale).
  EXPECT_LT(delta_chain.StoredBytes(), copy_chain.StoredBytes() / 5);
}

TEST(VersionChainTest, CurrentOnlyModeKeepsNoHistory) {
  VersionChain chain(ChainMode::kCurrentOnly);
  ASSERT_TRUE(chain.Append(1, "v1", "").ok());
  ASSERT_TRUE(chain.Append(2, "v2", "").ok());
  EXPECT_EQ(chain.version_count(), 1u);  // only the latest remains
  EXPECT_EQ(*chain.Get(0), "v2");
  // File nodes ignore Time on reads.
  EXPECT_EQ(*chain.Get(1), "v2");
  EXPECT_EQ(chain.StoredBytes(), 2u);
}

TEST(VersionChainTest, ForwardDeltaReconstructsEveryVersion) {
  VersionChain chain(ChainMode::kForwardDelta);
  std::vector<std::string> texts;
  std::string text = "base contents\n";
  for (uint64_t t = 1; t <= 30; ++t) {
    text += "edit " + std::to_string(t) + "\n";
    if (t % 5 == 0) text.erase(0, 7);
    texts.push_back(text);
    ASSERT_TRUE(chain.Append(t, text, "").ok());
  }
  EXPECT_EQ(chain.Current(), texts.back());
  EXPECT_EQ(*chain.Get(0), texts.back());
  for (uint64_t t = 1; t <= 30; ++t) {
    EXPECT_EQ(*chain.Get(t), texts[t - 1]) << t;
  }
}

TEST(VersionChainTest, ForwardDeltaStoresCompactly) {
  Random rng(21);
  std::string text = rng.NextString(20000);
  VersionChain forward(ChainMode::kForwardDelta);
  VersionChain copies(ChainMode::kFullCopy);
  for (uint64_t t = 1; t <= 20; ++t) {
    text.insert(rng.Uniform(text.size()), "tiny edit");
    ASSERT_TRUE(forward.Append(t, text, "").ok());
    ASSERT_TRUE(copies.Append(t, text, "").ok());
  }
  EXPECT_LT(forward.StoredBytes(), copies.StoredBytes() / 5);
}

TEST(VersionChainTest, ForwardDeltaPruneRebases) {
  VersionChain chain(ChainMode::kForwardDelta);
  std::vector<std::string> texts;
  std::string text;
  for (uint64_t t = 1; t <= 10; ++t) {
    text += "line " + std::to_string(t) + "\n";
    texts.push_back(text);
    ASSERT_TRUE(chain.Append(t, text, "").ok());
  }
  EXPECT_GT(chain.PruneBefore(6), 0u);
  EXPECT_EQ(chain.version_count(), 5u);
  for (uint64_t t = 6; t <= 10; ++t) {
    EXPECT_EQ(*chain.Get(t), texts[t - 1]) << t;
  }
  EXPECT_TRUE(chain.Get(3).status().IsNotFound());
  EXPECT_EQ(*chain.Get(0), texts.back());
}

TEST(VersionChainTest, EncodeDecodeRoundTrip) {
  for (ChainMode mode : {ChainMode::kBackwardDelta, ChainMode::kFullCopy,
                         ChainMode::kCurrentOnly, ChainMode::kForwardDelta}) {
    VersionChain chain(mode);
    std::string text = "base\n";
    for (uint64_t t = 1; t <= 10; ++t) {
      text += "line " + std::to_string(t) + "\n";
      ASSERT_TRUE(chain.Append(t, text, "e" + std::to_string(t)).ok());
    }
    std::string encoded;
    chain.EncodeTo(&encoded);
    std::string_view in = encoded;
    auto decoded = VersionChain::DecodeFrom(&in);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded->mode(), mode);
    EXPECT_EQ(decoded->version_count(), chain.version_count());
    EXPECT_EQ(*decoded->Get(0), *chain.Get(0));
    if (mode != ChainMode::kCurrentOnly) {
      for (uint64_t t = 1; t <= 10; ++t) {
        EXPECT_EQ(*decoded->Get(t), *chain.Get(t));
      }
    }
  }
}

TEST(VersionChainTest, DecodeRejectsTruncation) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(1, "some contents here", "why").ok());
  ASSERT_TRUE(chain.Append(2, "more contents here", "why2").ok());
  std::string encoded;
  chain.EncodeTo(&encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::string_view in(encoded.data(), cut);
    auto decoded = VersionChain::DecodeFrom(&in);
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(VersionChainTest, DecodeRejectsBadMode) {
  std::string encoded;
  encoded.push_back('\x09');
  std::string_view in = encoded;
  auto decoded = VersionChain::DecodeFrom(&in);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// ------------------------------------------------------- keyframes

uint64_t DeltasAppliedCounter() {
  return MetricsRegistry::Instance()
      .GetCounter("delta.chain.deltas_applied")
      ->Value();
}

// Builds a chain of `n` versions at times 1..n with distinct contents.
VersionChain BuildChain(ChainMode mode, uint32_t interval, int n,
                        std::vector<std::string>* texts = nullptr) {
  VersionChain chain(mode);
  chain.set_keyframe_interval(interval);
  std::string text = "seed contents\n";
  for (int t = 1; t <= n; ++t) {
    text += "edit " + std::to_string(t) + "\n";
    if (t % 9 == 0) text.erase(0, 5);
    if (texts != nullptr) texts->push_back(text);
    EXPECT_TRUE(chain.Append(t, text, "").ok());
  }
  return chain;
}

TEST(VersionChainKeyframeTest, BackwardWalkIsBoundedByInterval) {
  ReconstructionCache::Instance().Clear();
  std::vector<std::string> texts;
  VersionChain chain = BuildChain(ChainMode::kBackwardDelta, 16, 256, &texts);
  EXPECT_GT(chain.keyframe_count(), 10u);  // ~ one per 16 versions
  for (uint64_t t = 1; t <= 256; ++t) {
    ReconstructionCache::Instance().Clear();  // force real reconstructions
    const uint64_t before = DeltasAppliedCounter();
    auto got = chain.Get(t);
    ASSERT_TRUE(got.ok()) << t;
    EXPECT_EQ(*got, texts[t - 1]) << t;
    EXPECT_LE(DeltasAppliedCounter() - before, 16u) << t;
  }
}

TEST(VersionChainKeyframeTest, ForwardWalkIsBoundedByInterval) {
  ReconstructionCache::Instance().Clear();
  std::vector<std::string> texts;
  VersionChain chain = BuildChain(ChainMode::kForwardDelta, 16, 256, &texts);
  EXPECT_GT(chain.keyframe_count(), 10u);
  for (uint64_t t = 1; t <= 256; ++t) {
    ReconstructionCache::Instance().Clear();
    const uint64_t before = DeltasAppliedCounter();
    auto got = chain.Get(t);
    ASSERT_TRUE(got.ok()) << t;
    EXPECT_EQ(*got, texts[t - 1]) << t;
    EXPECT_LE(DeltasAppliedCounter() - before, 16u) << t;
  }
}

TEST(VersionChainKeyframeTest, IntervalChangeMidChainStaysCorrect) {
  std::vector<std::string> texts;
  VersionChain chain(ChainMode::kBackwardDelta);
  std::string text = "x";
  for (uint64_t t = 1; t <= 60; ++t) {
    if (t == 20) chain.set_keyframe_interval(8);
    if (t == 40) chain.set_keyframe_interval(0);  // stop keyframing
    text += " v" + std::to_string(t);
    texts.push_back(text);
    ASSERT_TRUE(chain.Append(t, text, "").ok());
  }
  for (uint64_t t = 1; t <= 60; ++t) {
    ReconstructionCache::Instance().Clear();
    EXPECT_EQ(*chain.Get(t), texts[t - 1]) << t;
  }
}

TEST(VersionChainKeyframeTest, EncodeDecodeRoundTripKeepsKeyframes) {
  for (ChainMode mode :
       {ChainMode::kBackwardDelta, ChainMode::kForwardDelta}) {
    std::vector<std::string> texts;
    VersionChain chain = BuildChain(mode, 4, 20, &texts);
    ASSERT_GT(chain.keyframe_count(), 0u);
    std::string encoded;
    chain.EncodeTo(&encoded);
    // New-format blobs carry the keyframe flag bit on the mode byte.
    EXPECT_NE(static_cast<uint8_t>(encoded[0]) & 0x80, 0);
    std::string_view in = encoded;
    auto decoded = VersionChain::DecodeFrom(&in);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded->keyframe_interval(), 4u);
    EXPECT_EQ(decoded->keyframe_count(), chain.keyframe_count());
    for (uint64_t t = 1; t <= 20; ++t) {
      ReconstructionCache::Instance().Clear();
      EXPECT_EQ(*decoded->Get(t), texts[t - 1]) << t;
    }
  }
}

TEST(VersionChainKeyframeTest, ChainsWithoutKeyframesEncodeLegacyFormat) {
  VersionChain chain;  // interval 0, no keyframes
  ASSERT_TRUE(chain.Append(1, "a", "").ok());
  ASSERT_TRUE(chain.Append(2, "b", "").ok());
  std::string encoded;
  chain.EncodeTo(&encoded);
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]),
            static_cast<uint8_t>(ChainMode::kBackwardDelta));
}

TEST(VersionChainKeyframeTest, DecodeRejectsTruncatedKeyframeFormat) {
  VersionChain chain = BuildChain(ChainMode::kBackwardDelta, 4, 12);
  std::string encoded;
  chain.EncodeTo(&encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::string_view in(encoded.data(), cut);
    auto decoded = VersionChain::DecodeFrom(&in);
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(VersionChainKeyframeTest, DecodeRejectsOutOfRangeKeyframeIndex) {
  VersionChain chain = BuildChain(ChainMode::kBackwardDelta, 4, 12);
  std::string encoded;
  chain.EncodeTo(&encoded);
  // Corrupt: claim an interval/keyframe section on a chain whose last
  // keyframe index exceeds the version count. Easiest to synthesize
  // from a legit blob by chopping versions is fiddly; instead encode a
  // tiny chain and splice a bogus keyframe header in front.
  std::string bogus;
  bogus.push_back(static_cast<char>(0x80));  // kBackwardDelta | flag
  bogus.push_back(4);                        // interval
  bogus.push_back(1);                        // one keyframe
  bogus.push_back(99);                       // index 99 (out of range)
  bogus.push_back(1);                        // contents length 1
  bogus.push_back('k');
  VersionChain small;
  ASSERT_TRUE(small.Append(1, "a", "").ok());
  std::string tail;
  small.EncodeTo(&tail);
  bogus.append(tail.substr(1));  // drop the legacy mode byte
  std::string_view in = bogus;
  auto decoded = VersionChain::DecodeFrom(&in);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// ------------------------------------------------- reconstruction cache

TEST(ReconCacheTest, SecondReadOfSameVersionHits) {
  ReconstructionCache& cache = ReconstructionCache::Instance();
  cache.Clear();
  std::vector<std::string> texts;
  VersionChain chain = BuildChain(ChainMode::kBackwardDelta, 0, 50, &texts);
  Counter* hits = MetricsRegistry::Instance().GetCounter("delta.cache.hit");
  const uint64_t hits_before = hits->Value();
  EXPECT_EQ(*chain.Get(10), texts[9]);  // miss + insert
  EXPECT_GT(cache.EntryCount(), 0u);
  EXPECT_EQ(*chain.Get(10), texts[9]);  // hit
  EXPECT_GT(hits->Value(), hits_before);
  // The cached copy must be keyed by canonical time: asking for an
  // intermediate timestamp that resolves to version 10 also hits.
  std::string out;
  EXPECT_TRUE(cache.Lookup(chain.chain_id(), 10, &out));
  EXPECT_EQ(out, texts[9]);
}

TEST(ReconCacheTest, CurrentReadsBypassTheCache) {
  ReconstructionCache& cache = ReconstructionCache::Instance();
  cache.Clear();
  VersionChain chain = BuildChain(ChainMode::kBackwardDelta, 0, 10);
  EXPECT_TRUE(chain.Get(0).ok());
  EXPECT_TRUE(chain.Get(10).ok());  // newest version: served directly
  EXPECT_EQ(cache.EntryCount(), 0u);
}

TEST(ReconCacheTest, ZeroCapacityDisablesCaching) {
  ReconstructionCache& cache = ReconstructionCache::Instance();
  const size_t restore = cache.capacity_bytes();
  cache.set_capacity_bytes(0);
  cache.Clear();
  std::vector<std::string> texts;
  VersionChain chain = BuildChain(ChainMode::kBackwardDelta, 0, 20, &texts);
  EXPECT_EQ(*chain.Get(5), texts[4]);
  EXPECT_EQ(cache.EntryCount(), 0u);
  cache.set_capacity_bytes(restore);
}

TEST(ReconCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  ReconstructionCache& cache = ReconstructionCache::Instance();
  const size_t restore = cache.capacity_bytes();
  cache.set_capacity_bytes(1 << 12);  // 512 bytes per shard
  cache.Clear();
  Random rng(7);
  for (uint64_t i = 1; i <= 200; ++i) {
    cache.Insert(/*chain_id=*/1000 + i, /*version_time=*/1,
                 rng.NextString(100));
  }
  EXPECT_LE(cache.SizeBytes(), size_t{1} << 12);
  EXPECT_LT(cache.EntryCount(), 200u);
  cache.set_capacity_bytes(restore);
  cache.Clear();
}

// ----------------------------------------------------------- pruning

TEST(VersionChainPruneTest, PruneAcrossAllModesWithKeyframes) {
  for (ChainMode mode : {ChainMode::kBackwardDelta, ChainMode::kFullCopy,
                         ChainMode::kForwardDelta}) {
    SCOPED_TRACE(static_cast<int>(mode));
    std::vector<std::string> texts;
    VersionChain chain = BuildChain(mode, 8, 64, &texts);
    const uint64_t id_before = chain.chain_id();
    const size_t stored_before = chain.StoredBytes();
    EXPECT_EQ(chain.PruneBefore(40), 39u);
    EXPECT_EQ(chain.version_count(), 25u);
    // Pruning re-ids the chain so stale cache entries cannot serve.
    EXPECT_NE(chain.chain_id(), id_before);
    EXPECT_LT(chain.StoredBytes(), stored_before);
    for (uint64_t t = 40; t <= 64; ++t) {
      ReconstructionCache::Instance().Clear();
      auto got = chain.Get(t);
      ASSERT_TRUE(got.ok()) << t;
      EXPECT_EQ(*got, texts[t - 1]) << t;
    }
    EXPECT_TRUE(chain.Get(39).status().IsNotFound());
    EXPECT_EQ(*chain.Get(0), texts.back());
    // Survivor keyframes were reindexed: appends and reads still agree.
    std::string text = texts.back();
    for (uint64_t t = 65; t <= 80; ++t) {
      text += " post-prune " + std::to_string(t);
      ASSERT_TRUE(chain.Append(t, text, "").ok());
      EXPECT_EQ(*chain.Get(t), text);
    }
    EXPECT_EQ(*chain.Get(40), texts[39]);
  }
}

TEST(VersionChainPruneTest, CurrentOnlyPruneIsNoOp) {
  VersionChain chain(ChainMode::kCurrentOnly);
  ASSERT_TRUE(chain.Append(1, "v1", "").ok());
  ASSERT_TRUE(chain.Append(2, "v2", "").ok());
  EXPECT_EQ(chain.PruneBefore(2), 0u);
  EXPECT_EQ(*chain.Get(0), "v2");
}

TEST(VersionChainPruneTest, StaleCacheEntriesNotServedAfterPrune) {
  ReconstructionCache& cache = ReconstructionCache::Instance();
  cache.Clear();
  std::vector<std::string> texts;
  VersionChain chain = BuildChain(ChainMode::kBackwardDelta, 0, 30, &texts);
  EXPECT_EQ(*chain.Get(10), texts[9]);  // populates (old_id, 10)
  const uint64_t old_id = chain.chain_id();
  ASSERT_GT(chain.PruneBefore(20), 0u);
  // The pruned version is gone even though a stale entry exists for
  // the old id.
  std::string out;
  EXPECT_TRUE(cache.Lookup(old_id, 10, &out));  // stale entry, stale key
  EXPECT_TRUE(chain.Get(10).status().IsNotFound());
  // Fresh id has no entries until the next reconstruction.
  EXPECT_FALSE(cache.Lookup(chain.chain_id(), 10, &out));
}

TEST(VersionChainPruneTest, ForwardDeltaRebaseKeepsKeyframeReadsExact) {
  std::vector<std::string> texts;
  VersionChain chain = BuildChain(ChainMode::kForwardDelta, 4, 40, &texts);
  ASSERT_GT(chain.PruneBefore(25), 0u);
  for (uint64_t t = 25; t <= 40; ++t) {
    ReconstructionCache::Instance().Clear();
    auto got = chain.Get(t);
    ASSERT_TRUE(got.ok()) << t;
    EXPECT_EQ(*got, texts[t - 1]) << t;
  }
  EXPECT_EQ(chain.Current(), texts.back());
}

// Property sweep: random edit histories reconstruct exactly under all
// storage modes, including after a codec round trip.
class VersionChainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VersionChainPropertyTest, RandomHistoriesReconstruct) {
  Random rng(31337 + GetParam());
  const ChainMode modes[] = {ChainMode::kBackwardDelta, ChainMode::kFullCopy,
                             ChainMode::kForwardDelta};
  const ChainMode mode = modes[GetParam() % 3];
  VersionChain chain(mode);
  std::vector<std::pair<uint64_t, std::string>> history;
  std::string text = rng.NextBytes(rng.Uniform(2000));
  uint64_t t = 0;
  const int versions = 2 + static_cast<int>(rng.Uniform(30));
  for (int v = 0; v < versions; ++v) {
    t += 1 + rng.Uniform(5);
    if (!text.empty() && rng.OneIn(3)) {
      text.erase(rng.Uniform(text.size()),
                 std::min<size_t>(rng.Uniform(200), text.size()));
    }
    text.insert(text.empty() ? 0 : rng.Uniform(text.size()),
                rng.NextBytes(rng.Uniform(300)));
    history.emplace_back(t, text);
    ASSERT_TRUE(chain.Append(t, text, "").ok());
  }
  // Codec round trip first.
  std::string encoded;
  chain.EncodeTo(&encoded);
  std::string_view in = encoded;
  auto decoded = VersionChain::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  for (const auto& [time, contents] : history) {
    EXPECT_EQ(*decoded->Get(time), contents) << "t=" << time;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionChainPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace delta
}  // namespace neptune

#include "delta/version_chain.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace neptune {
namespace delta {
namespace {

TEST(VersionChainTest, EmptyChainHasNoVersions) {
  VersionChain chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.CurrentTime(), 0u);
  EXPECT_TRUE(chain.Get(0).status().IsNotFound());
}

TEST(VersionChainTest, SingleVersion) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(5, "contents v1", "created").ok());
  EXPECT_EQ(chain.version_count(), 1u);
  EXPECT_EQ(chain.CurrentTime(), 5u);
  EXPECT_EQ(*chain.Get(0), "contents v1");
  EXPECT_EQ(*chain.Get(5), "contents v1");
  EXPECT_EQ(*chain.Get(100), "contents v1");  // still in effect later
  EXPECT_TRUE(chain.Get(4).status().IsNotFound());  // predates creation
}

TEST(VersionChainTest, TimeZeroIsReserved) {
  VersionChain chain;
  EXPECT_TRUE(chain.Append(0, "x", "").IsInvalidArgument());
}

TEST(VersionChainTest, TimesMustStrictlyIncrease) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(10, "a", "").ok());
  EXPECT_TRUE(chain.Append(10, "b", "").IsInvalidArgument());
  EXPECT_TRUE(chain.Append(9, "b", "").IsInvalidArgument());
  ASSERT_TRUE(chain.Append(11, "b", "").ok());
}

TEST(VersionChainTest, EveryHistoricalVersionIsReconstructible) {
  VersionChain chain;
  std::vector<std::string> texts;
  std::string text = "The quick brown fox\njumps over the lazy dog\n";
  for (uint64_t t = 1; t <= 50; ++t) {
    text += "edit at time " + std::to_string(t) + "\n";
    if (t % 7 == 0) text.erase(0, 10);
    texts.push_back(text);
    ASSERT_TRUE(chain.Append(t, text, "edit " + std::to_string(t)).ok());
  }
  for (uint64_t t = 1; t <= 50; ++t) {
    auto got = chain.Get(t);
    ASSERT_TRUE(got.ok()) << t;
    EXPECT_EQ(*got, texts[t - 1]) << t;
  }
  EXPECT_EQ(*chain.Get(0), texts.back());
}

TEST(VersionChainTest, GetBetweenVersionTimesReturnsVersionInEffect) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(10, "ten", "").ok());
  ASSERT_TRUE(chain.Append(20, "twenty", "").ok());
  EXPECT_EQ(*chain.Get(15), "ten");
  EXPECT_EQ(*chain.Get(20), "twenty");
  EXPECT_EQ(*chain.Get(19), "ten");
}

TEST(VersionChainTest, VersionMetadataKeepsExplanations) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(1, "a", "first write").ok());
  ASSERT_TRUE(chain.Append(2, "b", "second write").ok());
  ASSERT_EQ(chain.versions().size(), 2u);
  EXPECT_EQ(chain.versions()[0].time, 1u);
  EXPECT_EQ(chain.versions()[0].explanation, "first write");
  EXPECT_EQ(chain.versions()[1].explanation, "second write");
}

TEST(VersionChainTest, BackwardDeltaStoresLessThanFullCopy) {
  Random rng(9);
  std::string text = rng.NextString(20000);
  VersionChain delta_chain(ChainMode::kBackwardDelta);
  VersionChain copy_chain(ChainMode::kFullCopy);
  for (uint64_t t = 1; t <= 20; ++t) {
    text.insert(rng.Uniform(text.size()), "small edit");
    ASSERT_TRUE(delta_chain.Append(t, text, "").ok());
    ASSERT_TRUE(copy_chain.Append(t, text, "").ok());
  }
  // Both agree on every version...
  for (uint64_t t = 1; t <= 20; ++t) {
    EXPECT_EQ(*delta_chain.Get(t), *copy_chain.Get(t));
  }
  // ...but deltas take far less space (paper §3's design rationale).
  EXPECT_LT(delta_chain.StoredBytes(), copy_chain.StoredBytes() / 5);
}

TEST(VersionChainTest, CurrentOnlyModeKeepsNoHistory) {
  VersionChain chain(ChainMode::kCurrentOnly);
  ASSERT_TRUE(chain.Append(1, "v1", "").ok());
  ASSERT_TRUE(chain.Append(2, "v2", "").ok());
  EXPECT_EQ(chain.version_count(), 1u);  // only the latest remains
  EXPECT_EQ(*chain.Get(0), "v2");
  // File nodes ignore Time on reads.
  EXPECT_EQ(*chain.Get(1), "v2");
  EXPECT_EQ(chain.StoredBytes(), 2u);
}

TEST(VersionChainTest, ForwardDeltaReconstructsEveryVersion) {
  VersionChain chain(ChainMode::kForwardDelta);
  std::vector<std::string> texts;
  std::string text = "base contents\n";
  for (uint64_t t = 1; t <= 30; ++t) {
    text += "edit " + std::to_string(t) + "\n";
    if (t % 5 == 0) text.erase(0, 7);
    texts.push_back(text);
    ASSERT_TRUE(chain.Append(t, text, "").ok());
  }
  EXPECT_EQ(chain.Current(), texts.back());
  EXPECT_EQ(*chain.Get(0), texts.back());
  for (uint64_t t = 1; t <= 30; ++t) {
    EXPECT_EQ(*chain.Get(t), texts[t - 1]) << t;
  }
}

TEST(VersionChainTest, ForwardDeltaStoresCompactly) {
  Random rng(21);
  std::string text = rng.NextString(20000);
  VersionChain forward(ChainMode::kForwardDelta);
  VersionChain copies(ChainMode::kFullCopy);
  for (uint64_t t = 1; t <= 20; ++t) {
    text.insert(rng.Uniform(text.size()), "tiny edit");
    ASSERT_TRUE(forward.Append(t, text, "").ok());
    ASSERT_TRUE(copies.Append(t, text, "").ok());
  }
  EXPECT_LT(forward.StoredBytes(), copies.StoredBytes() / 5);
}

TEST(VersionChainTest, ForwardDeltaPruneRebases) {
  VersionChain chain(ChainMode::kForwardDelta);
  std::vector<std::string> texts;
  std::string text;
  for (uint64_t t = 1; t <= 10; ++t) {
    text += "line " + std::to_string(t) + "\n";
    texts.push_back(text);
    ASSERT_TRUE(chain.Append(t, text, "").ok());
  }
  EXPECT_GT(chain.PruneBefore(6), 0u);
  EXPECT_EQ(chain.version_count(), 5u);
  for (uint64_t t = 6; t <= 10; ++t) {
    EXPECT_EQ(*chain.Get(t), texts[t - 1]) << t;
  }
  EXPECT_TRUE(chain.Get(3).status().IsNotFound());
  EXPECT_EQ(*chain.Get(0), texts.back());
}

TEST(VersionChainTest, EncodeDecodeRoundTrip) {
  for (ChainMode mode : {ChainMode::kBackwardDelta, ChainMode::kFullCopy,
                         ChainMode::kCurrentOnly, ChainMode::kForwardDelta}) {
    VersionChain chain(mode);
    std::string text = "base\n";
    for (uint64_t t = 1; t <= 10; ++t) {
      text += "line " + std::to_string(t) + "\n";
      ASSERT_TRUE(chain.Append(t, text, "e" + std::to_string(t)).ok());
    }
    std::string encoded;
    chain.EncodeTo(&encoded);
    std::string_view in = encoded;
    auto decoded = VersionChain::DecodeFrom(&in);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded->mode(), mode);
    EXPECT_EQ(decoded->version_count(), chain.version_count());
    EXPECT_EQ(*decoded->Get(0), *chain.Get(0));
    if (mode != ChainMode::kCurrentOnly) {
      for (uint64_t t = 1; t <= 10; ++t) {
        EXPECT_EQ(*decoded->Get(t), *chain.Get(t));
      }
    }
  }
}

TEST(VersionChainTest, DecodeRejectsTruncation) {
  VersionChain chain;
  ASSERT_TRUE(chain.Append(1, "some contents here", "why").ok());
  ASSERT_TRUE(chain.Append(2, "more contents here", "why2").ok());
  std::string encoded;
  chain.EncodeTo(&encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::string_view in(encoded.data(), cut);
    auto decoded = VersionChain::DecodeFrom(&in);
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(VersionChainTest, DecodeRejectsBadMode) {
  std::string encoded;
  encoded.push_back('\x09');
  std::string_view in = encoded;
  auto decoded = VersionChain::DecodeFrom(&in);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// Property sweep: random edit histories reconstruct exactly under all
// storage modes, including after a codec round trip.
class VersionChainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VersionChainPropertyTest, RandomHistoriesReconstruct) {
  Random rng(31337 + GetParam());
  const ChainMode modes[] = {ChainMode::kBackwardDelta, ChainMode::kFullCopy,
                             ChainMode::kForwardDelta};
  const ChainMode mode = modes[GetParam() % 3];
  VersionChain chain(mode);
  std::vector<std::pair<uint64_t, std::string>> history;
  std::string text = rng.NextBytes(rng.Uniform(2000));
  uint64_t t = 0;
  const int versions = 2 + static_cast<int>(rng.Uniform(30));
  for (int v = 0; v < versions; ++v) {
    t += 1 + rng.Uniform(5);
    if (!text.empty() && rng.OneIn(3)) {
      text.erase(rng.Uniform(text.size()),
                 std::min<size_t>(rng.Uniform(200), text.size()));
    }
    text.insert(text.empty() ? 0 : rng.Uniform(text.size()),
                rng.NextBytes(rng.Uniform(300)));
    history.emplace_back(t, text);
    ASSERT_TRUE(chain.Append(t, text, "").ok());
  }
  // Codec round trip first.
  std::string encoded;
  chain.EncodeTo(&encoded);
  std::string_view in = encoded;
  auto decoded = VersionChain::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  for (const auto& [time, contents] : history) {
    EXPECT_EQ(*decoded->Get(time), contents) << "t=" << time;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionChainPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace delta
}  // namespace neptune

#include "query/predicate.h"

#include <gtest/gtest.h>

namespace neptune {
namespace query {
namespace {

MapAttributeSource CaseNode() {
  return MapAttributeSource{{"contentType", "Modula-2 source"},
                            {"codeType", "procedure"},
                            {"document", "design"},
                            {"version", "12"},
                            {"author", "delisle"}};
}

bool Eval(std::string_view text, const AttributeSource& attrs) {
  auto p = Predicate::Parse(text);
  EXPECT_TRUE(p.ok()) << text << " -> " << p.status().ToString();
  return p.ok() && p->Evaluate(attrs);
}

TEST(PredicateParseTest, EmptyIsTrue) {
  auto p = Predicate::Parse("");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsTriviallyTrue());
  EXPECT_TRUE(p->Evaluate(MapAttributeSource{}));
  auto blank = Predicate::Parse("   \t\n ");
  ASSERT_TRUE(blank.ok());
  EXPECT_TRUE(blank->IsTriviallyTrue());
}

TEST(PredicateParseTest, Literals) {
  EXPECT_TRUE(Eval("true", MapAttributeSource{}));
  EXPECT_FALSE(Eval("false", MapAttributeSource{}));
}

TEST(PredicateTest, PaperExampleDocumentEqualsRequirements) {
  // The exact example from paper §3.
  MapAttributeSource node{{"document", "requirements"}};
  EXPECT_TRUE(Eval("document = requirements", node));
  EXPECT_FALSE(Eval("document = design", node));
}

TEST(PredicateTest, Equality) {
  auto node = CaseNode();
  EXPECT_TRUE(Eval("codeType = procedure", node));
  EXPECT_FALSE(Eval("codeType = definitionModule", node));
  EXPECT_TRUE(Eval("contentType = 'Modula-2 source'", node));
  EXPECT_TRUE(Eval("contentType = \"Modula-2 source\"", node));
}

TEST(PredicateTest, Inequality) {
  auto node = CaseNode();
  EXPECT_TRUE(Eval("codeType != module", node));
  EXPECT_FALSE(Eval("codeType != procedure", node));
}

TEST(PredicateTest, AbsentAttributeMatchesNothing) {
  auto node = CaseNode();
  EXPECT_FALSE(Eval("missing = x", node));
  EXPECT_FALSE(Eval("missing != x", node));
  EXPECT_FALSE(Eval("missing < x", node));
  EXPECT_FALSE(Eval("missing ~ x", node));
  EXPECT_TRUE(Eval("!(missing = x)", node));
}

TEST(PredicateTest, Exists) {
  auto node = CaseNode();
  EXPECT_TRUE(Eval("exists codeType", node));
  EXPECT_FALSE(Eval("exists missing", node));
  EXPECT_TRUE(Eval("!exists missing", node));
}

TEST(PredicateTest, NumericComparisons) {
  auto node = CaseNode();  // version = 12
  EXPECT_TRUE(Eval("version < 100", node));   // numeric, not lexicographic
  EXPECT_FALSE(Eval("version > 100", node));
  EXPECT_TRUE(Eval("version >= 12", node));
  EXPECT_TRUE(Eval("version <= 12", node));
  EXPECT_TRUE(Eval("version > 9", node));  // "12" < "9" lexicographically
}

TEST(PredicateTest, LexicographicComparisons) {
  MapAttributeSource node{{"name", "beta"}};
  EXPECT_TRUE(Eval("name > alpha", node));
  EXPECT_TRUE(Eval("name < gamma", node));
}

TEST(PredicateTest, ContainsOperator) {
  auto node = CaseNode();
  EXPECT_TRUE(Eval("contentType ~ 'Modula'", node));
  EXPECT_TRUE(Eval("contentType ~ source", node));
  EXPECT_FALSE(Eval("contentType ~ Pascal", node));
}

TEST(PredicateTest, BooleanCombinators) {
  auto node = CaseNode();
  EXPECT_TRUE(Eval("codeType = procedure & document = design", node));
  EXPECT_FALSE(Eval("codeType = procedure & document = spec", node));
  EXPECT_TRUE(Eval("codeType = module | document = design", node));
  EXPECT_FALSE(Eval("codeType = module | document = spec", node));
  EXPECT_TRUE(Eval("!(codeType = module)", node));
  EXPECT_TRUE(Eval("codeType = procedure and document = design", node));
  EXPECT_TRUE(Eval("codeType = module or document = design", node));
  EXPECT_TRUE(Eval("not codeType = module", node));
}

TEST(PredicateTest, PrecedenceAndBindsTighterThanOr) {
  // a | b & c  ==  a | (b & c)
  MapAttributeSource node{{"a", "0"}, {"b", "1"}, {"c", "1"}};
  EXPECT_TRUE(Eval("a = 1 | b = 1 & c = 1", node));
  MapAttributeSource node2{{"a", "0"}, {"b", "1"}, {"c", "0"}};
  EXPECT_FALSE(Eval("a = 1 | b = 1 & c = 0", CaseNode()));
  EXPECT_FALSE(Eval("a = 1 | b = 1 & c = 1", node2));
}

TEST(PredicateTest, ParenthesesOverridePrecedence) {
  MapAttributeSource node{{"a", "1"}, {"b", "0"}, {"c", "1"}};
  EXPECT_TRUE(Eval("(a = 1 | b = 1) & c = 1", node));
  MapAttributeSource node2{{"a", "1"}, {"b", "0"}, {"c", "0"}};
  EXPECT_FALSE(Eval("(a = 1 | b = 1) & c = 1", node2));
}

TEST(PredicateTest, QuotedStringsWithEscapes) {
  MapAttributeSource node{{"title", "it's \"quoted\""}};
  EXPECT_TRUE(Eval("title = 'it\\'s \"quoted\"'", node));
  EXPECT_TRUE(Eval("title ~ \"\\\"quoted\\\"\"", node));
}

TEST(PredicateTest, EmptyValueRequiresQuotes) {
  MapAttributeSource node{{"note", ""}};
  EXPECT_TRUE(Eval("note = ''", node));
  EXPECT_TRUE(Eval("exists note", node));
}

TEST(PredicateParseTest, SyntaxErrors) {
  for (const char* bad : {"=", "a =", "a = (", "(a = b", "a = b)", "a ? b",
                          "a = b extra", "& a = b", "exists", "'unterminated",
                          "a = b | ", "!", "a < "}) {
    auto p = Predicate::Parse(bad);
    EXPECT_FALSE(p.ok()) << "should reject: " << bad;
    EXPECT_TRUE(p.status().IsInvalidArgument()) << bad;
  }
}

TEST(PredicateParseTest, ErrorsCarryPosition) {
  auto p = Predicate::Parse("document = requirements ^ x");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("position"), std::string_view::npos);
}

TEST(PredicateTest, ReferencedAttributes) {
  auto p = Predicate::Parse(
      "document = spec & (codeType = procedure | document = design) & "
      "exists author");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ReferencedAttributes(),
            (std::vector<std::string>{"document", "codeType", "author"}));
  EXPECT_TRUE(Predicate::True().ReferencedAttributes().empty());
}

TEST(PredicateTest, ToStringRoundTripsSemantics) {
  const char* inputs[] = {
      "document = requirements",
      "a = 1 | b = 2 & c = 3",
      "!(x ~ 'we ird')",
      "exists author & version >= 10",
      "title = 'it\\'s'",
      "true",
  };
  MapAttributeSource sources[] = {
      CaseNode(),
      MapAttributeSource{{"a", "1"}},
      MapAttributeSource{{"x", "we ird stuff"}},
      MapAttributeSource{{"author", "x"}, {"version", "11"}},
      MapAttributeSource{{"title", "it's"}},
      MapAttributeSource{},
  };
  for (const char* text : inputs) {
    auto p = Predicate::Parse(text);
    ASSERT_TRUE(p.ok()) << text;
    auto reparsed = Predicate::Parse(p->ToString());
    ASSERT_TRUE(reparsed.ok()) << p->ToString();
    for (const auto& src : sources) {
      EXPECT_EQ(p->Evaluate(src), reparsed->Evaluate(src))
          << text << " vs " << p->ToString();
    }
  }
}

TEST(PredicateTest, CopyAndMoveSemantics) {
  auto p = Predicate::Parse("a = 1");
  ASSERT_TRUE(p.ok());
  Predicate copy = *p;
  Predicate moved = std::move(*p);
  MapAttributeSource yes{{"a", "1"}};
  MapAttributeSource no{{"a", "2"}};
  EXPECT_TRUE(copy.Evaluate(yes));
  EXPECT_TRUE(moved.Evaluate(yes));
  EXPECT_FALSE(copy.Evaluate(no));
}

TEST(PredicateTest, AttributeNamesWithDotsAndDashes) {
  MapAttributeSource node{{"project.owner", "mayer"}, {"x-flag", "on"}};
  EXPECT_TRUE(Eval("project.owner = mayer", node));
  EXPECT_TRUE(Eval("x-flag = on", node));
}

TEST(MapAttributeSourceTest, SetOverwrites) {
  MapAttributeSource src;
  src.Set("k", "v1");
  src.Set("k", "v2");
  EXPECT_EQ(*src.GetAttribute("k"), "v2");
  EXPECT_FALSE(src.GetAttribute("other").has_value());
}

}  // namespace
}  // namespace query
}  // namespace neptune

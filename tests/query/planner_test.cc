// Query-planner tests: the compiled predicate evaluator against the
// tree walker, the single index-eligibility rule, and the plans the
// engine reports through getGraphQueryExplained — including the
// incremental index maintenance counters.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ham/graph_state.h"
#include "query/predicate.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace query {
namespace {

// Adapts a plain map to the compiled program's slot protocol, the way
// CompiledRecordSource adapts an AttributeHistory in graph_state.cc.
class MapSlotSource : public CompiledPredicate::SlotSource {
 public:
  MapSlotSource(const CompiledPredicate& program,
                const std::map<std::string, std::string>& values)
      : program_(program), values_(values) {}

  std::optional<std::string_view> GetSlot(size_t slot) const override {
    auto it = values_.find(program_.slot_names()[slot]);
    if (it == values_.end()) return std::nullopt;
    return std::string_view(it->second);
  }

 private:
  const CompiledPredicate& program_;
  const std::map<std::string, std::string>& values_;
};

// Evaluates `text` both ways — tree walk and compiled program — and
// checks they agree before returning the verdict.
bool EvalBoth(std::string_view text,
              const std::map<std::string, std::string>& attrs) {
  auto parsed = Predicate::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  if (!parsed.ok()) return false;
  MapAttributeSource tree_attrs;
  for (const auto& [name, value] : attrs) tree_attrs.Set(name, value);
  const bool tree = parsed->Evaluate(tree_attrs);
  CompiledPredicate program = CompiledPredicate::Compile(*parsed);
  MapSlotSource source(program, attrs);
  const bool compiled = program.Evaluate(source);
  EXPECT_EQ(tree, compiled) << "tree and compiled diverge on: " << text;
  return compiled;
}

const std::map<std::string, std::string> kCaseNode = {
    {"contentType", "Modula-2 source"},
    {"codeType", "procedure"},
    {"document", "design"},
    {"version", "12"},
    {"author", "delisle"}};

TEST(CompiledPredicateTest, TrivialPrograms) {
  auto empty = Predicate::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(CompiledPredicate::Compile(*empty).IsTriviallyTrue());
  auto always = Predicate::Parse("true");
  ASSERT_TRUE(always.ok());
  EXPECT_TRUE(CompiledPredicate::Compile(*always).IsTriviallyTrue());
  auto never = Predicate::Parse("false");
  ASSERT_TRUE(never.ok());
  EXPECT_TRUE(CompiledPredicate::Compile(*never).IsTriviallyFalse());
}

TEST(CompiledPredicateTest, MatchesTreeEvaluator) {
  EXPECT_TRUE(EvalBoth("codeType = procedure", kCaseNode));
  EXPECT_FALSE(EvalBoth("codeType = definitionModule", kCaseNode));
  EXPECT_TRUE(EvalBoth("contentType = 'Modula-2 source'", kCaseNode));
  EXPECT_TRUE(EvalBoth("codeType != module", kCaseNode));
  EXPECT_FALSE(EvalBoth("codeType != procedure", kCaseNode));
  EXPECT_TRUE(EvalBoth("exists codeType", kCaseNode));
  EXPECT_FALSE(EvalBoth("exists missing", kCaseNode));
  EXPECT_TRUE(EvalBoth("!exists missing", kCaseNode));
  EXPECT_TRUE(EvalBoth("version < 100", kCaseNode));
  EXPECT_FALSE(EvalBoth("version > 100", kCaseNode));
  EXPECT_TRUE(EvalBoth("version >= 12", kCaseNode));
  EXPECT_TRUE(EvalBoth("version <= 12", kCaseNode));
  EXPECT_TRUE(EvalBoth("contentType ~ Modula", kCaseNode));
  EXPECT_FALSE(EvalBoth("contentType ~ Pascal", kCaseNode));
}

TEST(CompiledPredicateTest, AbsentAttributeMatchesNothing) {
  EXPECT_FALSE(EvalBoth("missing = x", kCaseNode));
  EXPECT_FALSE(EvalBoth("missing != x", kCaseNode));
  EXPECT_FALSE(EvalBoth("missing < x", kCaseNode));
  EXPECT_FALSE(EvalBoth("missing ~ x", kCaseNode));
  EXPECT_TRUE(EvalBoth("!(missing = x)", kCaseNode));
}

TEST(CompiledPredicateTest, BooleanStructure) {
  EXPECT_TRUE(EvalBoth("codeType = procedure & document = design", kCaseNode));
  EXPECT_FALSE(EvalBoth("codeType = procedure & document = spec", kCaseNode));
  EXPECT_TRUE(EvalBoth("codeType = module | document = design", kCaseNode));
  EXPECT_FALSE(EvalBoth("codeType = module | document = spec", kCaseNode));
  // Precedence: a | b & c == a | (b & c).
  const std::map<std::string, std::string> abc = {
      {"a", "0"}, {"b", "1"}, {"c", "1"}};
  EXPECT_TRUE(EvalBoth("a = 1 | b = 1 & c = 1", abc));
  EXPECT_FALSE(EvalBoth("(a = 1 | b = 1) & c = 0", abc));
  EXPECT_TRUE(EvalBoth("!(a = 1) & (b = 1 | c = 0)", abc));
  EXPECT_TRUE(EvalBoth(
      "document = spec | (codeType = procedure & version >= 10)", kCaseNode));
}

TEST(CompiledPredicateTest, SlotsAreInternedOncePerName) {
  auto parsed =
      Predicate::Parse("a = 1 & a = 1 & a != 2 & exists a & b = 3");
  ASSERT_TRUE(parsed.ok());
  CompiledPredicate program = CompiledPredicate::Compile(*parsed);
  EXPECT_EQ(program.slot_names().size(), 2u);  // "a", "b"
}

// ------------------------------------------------- eligibility rule

// The one documented predicate for "may this view be served from the
// attribute index": current time, main thread, no open transaction.
TEST(IndexEligibleTest, CurrentMainThreadNoTxnIsEligible) {
  EXPECT_TRUE(ham::GraphState::IndexEligible(ham::kMainThread, nullptr, 0));
}

TEST(IndexEligibleTest, HistoricalTimeIsNotEligible) {
  EXPECT_FALSE(ham::GraphState::IndexEligible(ham::kMainThread, nullptr, 7));
}

TEST(IndexEligibleTest, VersionThreadIsNotEligible) {
  EXPECT_FALSE(ham::GraphState::IndexEligible(1, nullptr, 0));
}

TEST(IndexEligibleTest, OpenTransactionIsNotEligible) {
  ham::GraphState::TxnOverlay txn;
  EXPECT_FALSE(ham::GraphState::IndexEligible(ham::kMainThread, &txn, 0));
}

// --------------------------------------------- end-to-end plan kinds

class PlannerExplainTest : public ham::HamTestBase {
 protected:
  void Populate(int count) {
    kind_ = Attr("kind");
    serial_ = Attr("serial");
    for (int i = 0; i < count; ++i) {
      ham::NodeIndex node = MakeNode("node " + std::to_string(i));
      ASSERT_TRUE(ham_->SetNodeAttributeValue(
                          ctx_, node, kind_, i % 5 == 0 ? "special" : "plain")
                      .ok());
      ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, node, serial_,
                                              std::to_string(i))
                      .ok());
      nodes_.push_back(node);
    }
  }

  ham::QueryExplain Explain(const std::string& pred,
                            ham::QueryOptions options = {}) {
    auto result =
        ham_->GetGraphQueryExplained(ctx_, 0, pred, "", {}, {}, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : ham::QueryExplain{};
  }

  ham::AttributeIndex kind_ = 0;
  ham::AttributeIndex serial_ = 0;
  std::vector<ham::NodeIndex> nodes_;
};

TEST_F(PlannerExplainTest, SingleEqualityUsesIndex) {
  Populate(25);
  ham::QueryExplain result = Explain("kind = special");
  EXPECT_EQ(result.plan.kind, ham::QueryPlan::Kind::kIndex);
  EXPECT_TRUE(result.plan.eligible);
  EXPECT_EQ(result.plan.conjuncts, 1u);
  EXPECT_EQ(result.graph.nodes.size(), 5u);
  EXPECT_EQ(result.plan.candidates, 5u);
  EXPECT_EQ(result.plan.nodes_matched, 5u);
}

TEST_F(PlannerExplainTest, ConjunctionIntersectsPostings) {
  Populate(25);
  ham::QueryExplain result = Explain("kind = special & serial = 10");
  EXPECT_EQ(result.plan.kind, ham::QueryPlan::Kind::kIntersect);
  EXPECT_EQ(result.plan.conjuncts, 2u);
  ASSERT_EQ(result.graph.nodes.size(), 1u);
  EXPECT_EQ(result.graph.nodes[0].node, nodes_[10]);
  // The intersection already satisfies the whole formula, but the
  // residual check still runs per candidate.
  EXPECT_EQ(result.plan.candidates, 1u);
}

TEST_F(PlannerExplainTest, NonEqualityPredicateScans) {
  Populate(25);
  ham::QueryExplain result = Explain("serial > 10");
  EXPECT_EQ(result.plan.kind, ham::QueryPlan::Kind::kScan);
  EXPECT_TRUE(result.plan.eligible);  // the view allowed the index...
  EXPECT_EQ(result.plan.conjuncts, 0u);  // ...but no conjunct to probe
}

TEST_F(PlannerExplainTest, ForceScanBypassesThePlanner) {
  Populate(25);
  ham::QueryOptions options;
  options.force_scan = true;
  ham::QueryExplain result = Explain("kind = special", options);
  EXPECT_EQ(result.plan.kind, ham::QueryPlan::Kind::kScan);
  EXPECT_FALSE(result.plan.eligible);
  EXPECT_EQ(result.graph.nodes.size(), 5u);
}

TEST_F(PlannerExplainTest, HistoricalViewIsIneligible) {
  Populate(5);
  auto stamp = ham_->GetNodeTimeStamp(ctx_, nodes_[0]);
  ASSERT_TRUE(stamp.ok());
  auto result = ham_->GetGraphQueryExplained(ctx_, *stamp, "kind = special",
                                             "", {}, {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.kind, ham::QueryPlan::Kind::kScan);
  EXPECT_FALSE(result->plan.eligible);
}

TEST_F(PlannerExplainTest, UnknownAttributeIsProvablyEmpty) {
  Populate(10);
  ham::QueryExplain result = Explain("neverInterned = x");
  EXPECT_EQ(result.plan.kind, ham::QueryPlan::Kind::kIndex);
  EXPECT_EQ(result.graph.nodes.size(), 0u);
  EXPECT_EQ(result.plan.candidates, 0u);
}

TEST_F(PlannerExplainTest, WritesApplyDeltasInsteadOfRebuilding) {
  Populate(25);
  // First indexed query builds the index from scratch.
  ham::QueryExplain first = Explain("kind = special");
  EXPECT_TRUE(first.plan.rebuilt);
  // A write stages deltas; the next query applies them incrementally.
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, nodes_[1], kind_, "special").ok());
  ham::QueryExplain second = Explain("kind = special");
  EXPECT_FALSE(second.plan.rebuilt);
  EXPECT_GT(second.plan.applied_deltas, 0u);
  EXPECT_EQ(second.graph.nodes.size(), 6u);
  // Steady state: no writes, no maintenance at all.
  ham::QueryExplain third = Explain("kind = special");
  EXPECT_FALSE(third.plan.rebuilt);
  EXPECT_EQ(third.plan.applied_deltas, 0u);
}

TEST_F(PlannerExplainTest, DeleteNodeLeavesTheIndexConsistent) {
  Populate(25);
  (void)Explain("kind = special");  // build
  ASSERT_TRUE(ham_->DeleteNode(ctx_, nodes_[5]).ok());
  ham::QueryOptions options;
  options.verify = true;
  ham::QueryExplain result = Explain("kind = special", options);
  EXPECT_FALSE(result.plan.rebuilt);
  EXPECT_EQ(result.graph.nodes.size(), 4u);
  EXPECT_TRUE(result.plan.verified);
  EXPECT_TRUE(result.plan.verify_match);
}

TEST_F(PlannerExplainTest, PruneForcesRebuild) {
  Populate(25);
  (void)Explain("kind = special");  // build
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, nodes_[0], serial_, "999").ok());
  auto current = ham_->GetNodeTimeStamp(ctx_, nodes_[0]);
  ASSERT_TRUE(current.ok());
  ASSERT_TRUE(ham_->PruneHistory(ctx_, *current).ok());
  ham::QueryExplain result = Explain("kind = special");
  EXPECT_TRUE(result.plan.rebuilt);
  EXPECT_EQ(result.graph.nodes.size(), 5u);
}

TEST_F(PlannerExplainTest, VerifyModeComparesIndexedAgainstScan) {
  Populate(30);
  ham::QueryOptions options;
  options.verify = true;
  ham::QueryExplain result = Explain("kind = special & serial = 20", options);
  EXPECT_EQ(result.plan.kind, ham::QueryPlan::Kind::kIntersect);
  EXPECT_TRUE(result.plan.verified);
  EXPECT_TRUE(result.plan.verify_match);
}

}  // namespace
}  // namespace query
}  // namespace neptune

// HamInterface conformance suite: every test here runs twice — once
// against the local engine and once against a RemoteHam talking to a
// real TCP server — asserting that the two implementations of the
// abstract machine are observationally identical (the property the
// paper's layered architecture depends on).

#include <gtest/gtest.h>

#include <filesystem>

#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/server.h"

namespace neptune {
namespace ham {
namespace {

enum class BackendKind { kLocal, kRemote };

class Backend {
 public:
  explicit Backend(BackendKind kind, const std::string& dir) {
    engine_ = std::make_unique<Ham>(Env::Default(), [] {
      HamOptions options;
      options.sync_commits = false;
      return options;
    }());
    if (kind == BackendKind::kRemote) {
      server_ = std::make_unique<rpc::Server>(engine_.get());
      auto port = server_->Start(0);
      EXPECT_TRUE(port.ok());
      auto client = rpc::RemoteHam::Connect("localhost", *port);
      EXPECT_TRUE(client.ok());
      client_ = std::move(*client);
    }
    auto created = ham()->CreateGraph(dir, 0755);
    EXPECT_TRUE(created.ok());
    project_ = created->project;
    auto ctx = ham()->OpenGraph(project_, "localhost", dir);
    EXPECT_TRUE(ctx.ok());
    ctx_ = *ctx;
  }

  ~Backend() {
    client_.reset();
    if (server_ != nullptr) server_->Stop();
  }

  HamInterface* ham() {
    return client_ != nullptr ? static_cast<HamInterface*>(client_.get())
                              : engine_.get();
  }
  Context ctx() const { return ctx_; }
  ProjectId project() const { return project_; }

 private:
  std::unique_ptr<Ham> engine_;
  std::unique_ptr<rpc::Server> server_;
  std::unique_ptr<rpc::RemoteHam> client_;
  ProjectId project_ = 0;
  Context ctx_;
};

class ConformanceTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_conf_" + name))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
    backend_ = std::make_unique<Backend>(GetParam(), dir_);
    ham_ = backend_->ham();
    ctx_ = backend_->ctx();
  }

  void TearDown() override {
    backend_.reset();
    Env::Default()->RemoveDirRecursive(dir_);
  }

  NodeIndex MakeNode(const std::string& text) {
    auto added = ham_->AddNode(ctx_, true);
    EXPECT_TRUE(added.ok());
    EXPECT_TRUE(
        ham_->ModifyNode(ctx_, added->node, added->creation_time, text, {},
                         "init")
            .ok());
    return added->node;
  }

  std::string dir_;
  std::unique_ptr<Backend> backend_;
  HamInterface* ham_ = nullptr;
  Context ctx_;
};

TEST_P(ConformanceTest, NodeContentsRoundTrip) {
  NodeIndex n = MakeNode("some contents");
  auto opened = ham_->OpenNode(ctx_, n, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, "some contents");
  EXPECT_TRUE(ham_->OpenNode(ctx_, 999, 0, {}).status().IsNotFound());
}

TEST_P(ConformanceTest, OptimisticModifyConflict) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(
      ham_->ModifyNode(ctx_, added->node, added->creation_time, "v1", {}, "")
          .ok());
  EXPECT_TRUE(
      ham_->ModifyNode(ctx_, added->node, added->creation_time, "v2", {}, "")
          .IsConflict());
}

TEST_P(ConformanceTest, VersionHistoryAndTimeTravel) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  Time expected = added->creation_time;
  std::vector<Time> times;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ham_->ModifyNode(ctx_, added->node, expected,
                                 "v" + std::to_string(i), {},
                                 "e" + std::to_string(i))
                    .ok());
    expected = *ham_->GetNodeTimeStamp(ctx_, added->node);
    times.push_back(expected);
  }
  for (int i = 0; i < 5; ++i) {
    auto opened = ham_->OpenNode(ctx_, added->node, times[i], {});
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened->contents, "v" + std::to_string(i));
  }
  auto versions = ham_->GetNodeVersions(ctx_, added->node);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->major.size(), 6u);
  EXPECT_EQ(versions->major[3].explanation, "e2");
}

TEST_P(ConformanceTest, LinkEndsAndCopyLink) {
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  NodeIndex c = MakeNode("c");
  auto link =
      ham_->AddLink(ctx_, LinkPt{a, 5, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(ham_->GetFromNode(ctx_, link->link, 0)->node, a);
  EXPECT_EQ(ham_->GetToNode(ctx_, link->link, 0)->node, b);
  auto copy = ham_->CopyLink(ctx_, link->link, 0, true, LinkPt{c, 9, 0, true});
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(ham_->GetFromNode(ctx_, copy->link, 0)->node, a);
  EXPECT_EQ(ham_->GetToNode(ctx_, copy->link, 0)->node, c);
  ASSERT_TRUE(ham_->DeleteLink(ctx_, copy->link).ok());
  EXPECT_TRUE(ham_->GetToNode(ctx_, copy->link, 0).status().IsNotFound());
}

TEST_P(ConformanceTest, AttachmentOffsetsThroughOpenNode) {
  NodeIndex a = MakeNode("0123456789");
  NodeIndex b = MakeNode("target");
  auto link =
      ham_->AddLink(ctx_, LinkPt{a, 7, 0, true}, LinkPt{b, 2, 0, true});
  ASSERT_TRUE(link.ok());
  auto opened = ham_->OpenNode(ctx_, a, 0, {});
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(opened->attachments.size(), 1u);
  EXPECT_EQ(opened->attachments[0].position, 7u);
  EXPECT_TRUE(opened->attachments[0].is_source_end);
  auto opened_b = ham_->OpenNode(ctx_, b, 0, {});
  ASSERT_TRUE(opened_b.ok());
  ASSERT_EQ(opened_b->attachments.size(), 1u);
  EXPECT_EQ(opened_b->attachments[0].position, 2u);
}

TEST_P(ConformanceTest, AttributeLifecycle) {
  auto attr = ham_->GetAttributeIndex(ctx_, "status");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(*ham_->GetAttributeIndex(ctx_, "status"), *attr);
  NodeIndex n = MakeNode("x");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, *attr, "draft").ok());
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, *attr, 0), "draft");
  auto all = ham_->GetNodeAttributes(ctx_, n, 0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].name, "status");
  auto values = ham_->GetAttributeValues(ctx_, *attr, 0);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, std::vector<std::string>{"draft"});
  ASSERT_TRUE(ham_->DeleteNodeAttribute(ctx_, n, *attr).ok());
  EXPECT_TRUE(
      ham_->GetNodeAttributeValue(ctx_, n, *attr, 0).status().IsNotFound());
  auto attrs = ham_->GetAttributes(ctx_, 0);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->back().name, "status");
}

TEST_P(ConformanceTest, LinkAttributes) {
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  auto link = ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok());
  auto rel = ham_->GetAttributeIndex(ctx_, "relation");
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(
      ham_->SetLinkAttributeValue(ctx_, link->link, *rel, "references").ok());
  EXPECT_EQ(*ham_->GetLinkAttributeValue(ctx_, link->link, *rel, 0),
            "references");
  auto all = ham_->GetLinkAttributes(ctx_, link->link, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);
  ASSERT_TRUE(ham_->DeleteLinkAttribute(ctx_, link->link, *rel).ok());
  EXPECT_TRUE(ham_->GetLinkAttributeValue(ctx_, link->link, *rel, 0)
                  .status()
                  .IsNotFound());
}

TEST_P(ConformanceTest, QueriesAndPredicates) {
  auto kind = ham_->GetAttributeIndex(ctx_, "kind");
  ASSERT_TRUE(kind.ok());
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  NodeIndex c = MakeNode("c");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, a, *kind, "x").ok());
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, b, *kind, "x").ok());
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, c, *kind, "y").ok());
  ASSERT_TRUE(
      ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{b, 0, 0, true}).ok());
  auto result = ham_->GetGraphQuery(ctx_, 0, "kind = x", "", {*kind}, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nodes.size(), 2u);
  EXPECT_EQ(*result->nodes[0].attribute_values[0], "x");
  EXPECT_EQ(result->links.size(), 1u);
  auto lin = ham_->LinearizeGraph(ctx_, a, 0, "", "", {}, {});
  ASSERT_TRUE(lin.ok());
  EXPECT_EQ(lin->nodes.size(), 2u);
}

TEST_P(ConformanceTest, TransactionsCommitAndAbort) {
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto staged = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
  EXPECT_TRUE(ham_->OpenNode(ctx_, staged->node, 0, {}).status().IsNotFound());
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto kept = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());
  EXPECT_TRUE(ham_->OpenNode(ctx_, kept->node, 0, {}).ok());
  EXPECT_TRUE(ham_->CommitTransaction(ctx_).IsFailedPrecondition());
}

TEST_P(ConformanceTest, ProtectionsAndDifferences) {
  NodeIndex n = MakeNode("line1\nline2\n");
  ASSERT_TRUE(ham_->ChangeNodeProtection(ctx_, n, 0200).ok());
  EXPECT_TRUE(ham_->OpenNode(ctx_, n, 0, {}).status().IsPermissionDenied());
  ASSERT_TRUE(ham_->ChangeNodeProtection(ctx_, n, 0644).ok());
  auto t1 = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, *t1, "line1\nlineTWO\n", {}, "").ok());
  auto t2 = ham_->GetNodeTimeStamp(ctx_, n);
  auto diffs = ham_->GetNodeDifferences(ctx_, n, *t1, *t2);
  ASSERT_TRUE(diffs.ok());
  ASSERT_EQ(diffs->size(), 1u);
  EXPECT_EQ((*diffs)[0].kind, delta::DifferenceKind::kReplacement);
  EXPECT_EQ((*diffs)[0].old_lines, std::vector<std::string>{"line2"});
}

TEST_P(ConformanceTest, DemonsBindingsVisible) {
  NodeIndex n = MakeNode("watched");
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "graph-demon").ok());
  ASSERT_TRUE(
      ham_->SetNodeDemon(ctx_, n, Event::kModifyNode, "node-demon").ok());
  auto graph_demons = ham_->GetGraphDemons(ctx_, 0);
  ASSERT_TRUE(graph_demons.ok());
  ASSERT_EQ(graph_demons->size(), 1u);
  EXPECT_EQ((*graph_demons)[0].demon, "graph-demon");
  auto node_demons = ham_->GetNodeDemons(ctx_, n, 0);
  ASSERT_TRUE(node_demons.ok());
  ASSERT_EQ(node_demons->size(), 1u);
  EXPECT_EQ((*node_demons)[0].event, Event::kModifyNode);
}

TEST_P(ConformanceTest, ContextsBranchAndMerge) {
  NodeIndex shared = MakeNode("base");
  auto info = ham_->CreateContext(ctx_, "world");
  ASSERT_TRUE(info.ok());
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  EXPECT_EQ(*ham_->ContextThread(*branch), info->thread);
  auto ts = ham_->GetNodeTimeStamp(*branch, shared);
  ASSERT_TRUE(
      ham_->ModifyNode(*branch, shared, *ts, "branched", {}, "").ok());
  EXPECT_EQ(ham_->OpenNode(ctx_, shared, 0, {})->contents, "base");
  ASSERT_TRUE(ham_->MergeContext(ctx_, info->thread, false).ok());
  EXPECT_EQ(ham_->OpenNode(ctx_, shared, 0, {})->contents, "branched");
  auto contexts = ham_->ListContexts(ctx_);
  ASSERT_TRUE(contexts.ok());
  EXPECT_EQ(contexts->size(), 2u);
  ASSERT_TRUE(ham_->CloseGraph(*branch).ok());
}

TEST_P(ConformanceTest, StatsAndCheckpoint) {
  MakeNode("one");
  MakeNode("two");
  auto stats = ham_->GetStats(ctx_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, 2u);
  EXPECT_GT(stats->wal_bytes, 0u);
  ASSERT_TRUE(ham_->Checkpoint(ctx_).ok());
  EXPECT_EQ(ham_->GetStats(ctx_)->wal_bytes, 0u);
}

TEST_P(ConformanceTest, DeleteNodeCascades) {
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  auto link = ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(ham_->DeleteNode(ctx_, b).ok());
  EXPECT_TRUE(ham_->OpenNode(ctx_, b, 0, {}).status().IsNotFound());
  EXPECT_TRUE(ham_->GetToNode(ctx_, link->link, 0).status().IsNotFound());
  // Historical reads still see both.
  EXPECT_TRUE(ham_->OpenNode(ctx_, b, link->creation_time, {}).ok());
}

TEST_P(ConformanceTest, BinaryContentsAreUninterpreted) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(ham_->ModifyNode(ctx_, added->node, added->creation_time,
                               binary, {}, "")
                  .ok());
  auto opened = ham_->OpenNode(ctx_, added->node, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, binary);
}

INSTANTIATE_TEST_SUITE_P(Backends, ConformanceTest,
                         ::testing::Values(BackendKind::kLocal,
                                           BackendKind::kRemote),
                         [](const auto& info) {
                           return info.param == BackendKind::kLocal
                                      ? "Local"
                                      : "Remote";
                         });

}  // namespace
}  // namespace ham
}  // namespace neptune

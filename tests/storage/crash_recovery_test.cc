// Randomized crash-recovery harness: run a scripted transaction
// workload, cut the power at *every* fsync point of that workload (one
// run per cut point), recover, and check the durability contract:
//
//   - every transaction whose commit was acknowledged is fully there,
//   - explicitly aborted transactions never come back,
//   - the single commit in flight at the cut is allowed to be either
//     fully present or fully absent (the crash raced its fsync), but
//     never half-applied,
//   - nothing else exists.
//
// Extra torn-write randomness comes from the FaultInjectionEnv seed;
// set NEPTUNE_CRASH_SEEDS=7,1234 to sweep additional seeds. Set
// NEPTUNE_RECOVERY_LOG=/path to append one RecoveryReport line per
// crash point (the CI crash-soak job archives this).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ham/ham.h"
#include "storage/durable_store.h"
#include "storage/fault_injection_env.h"

namespace neptune {
namespace {

constexpr int kSteps = 220;  // ~200 commits + 8 checkpoints => >200 syncs

struct Acked {
  ham::NodeIndex node;
  std::string payload;
};

// One scripted pass over the workload against `engine`. Every step is a
// transaction: most Begin/AddNode/ModifyNode/Commit a payload node,
// every 10th stages a node and aborts it, every 25th checkpoints.
// Returns as soon as the simulated machine dies. `acked` collects
// commits that were acknowledged; `in_flight` the one commit (if any)
// whose fate the crash left undecided.
void RunWorkload(ham::Ham* engine, ham::Context ctx,
                 std::vector<Acked>* acked, std::optional<Acked>* in_flight,
                 FaultInjectionEnv* env) {
  for (int i = 1; i <= kSteps && !env->down(); ++i) {
    if (!engine->BeginTransaction(ctx).ok()) continue;
    auto added = engine->AddNode(ctx, /*keep_history=*/true);
    if (!added.ok()) {
      engine->AbortTransaction(ctx);
      continue;
    }
    const std::string payload =
        (i % 10 == 0 ? "aborted-" : "payload-") + std::to_string(i);
    if (!engine
             ->ModifyNode(ctx, added->node, added->creation_time, payload, {},
                          "")
             .ok()) {
      engine->AbortTransaction(ctx);
      continue;
    }
    if (i % 10 == 0) {
      engine->AbortTransaction(ctx);
      continue;
    }
    const bool was_up = !env->down();
    if (engine->CommitTransaction(ctx).ok()) {
      acked->push_back({added->node, payload});
    } else if (was_up && env->down() && !in_flight->has_value()) {
      // The power died during *this* commit's fsync: its record bytes
      // hit the file but were never acknowledged. Recovery may keep or
      // drop it.
      *in_flight = Acked{added->node, payload};
    }
    if (i % 25 == 0) engine->Checkpoint(ctx);
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_crash_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
  }
  void TearDown() override { Env::Default()->RemoveDirRecursive(dir_); }

  std::string dir_;
};

// Counts the fsyncs a clean (fault-free) pass performs after the graph
// exists — the space of crash points.
uint64_t CleanRunSyncPoints(const std::string& dir) {
  FaultInjectionEnv env(Env::Default());
  ham::HamOptions options;
  options.sync_commits = true;
  ham::Ham engine(&env, options);
  auto created = engine.CreateGraph(dir, 0755);
  EXPECT_TRUE(created.ok());
  const uint64_t create_syncs = env.syncs();
  auto ctx = engine.OpenGraph(created->project, "local", dir);
  EXPECT_TRUE(ctx.ok());
  std::vector<Acked> acked;
  std::optional<Acked> in_flight;
  RunWorkload(&engine, *ctx, &acked, &in_flight, &env);
  EXPECT_FALSE(in_flight.has_value());
  EXPECT_EQ(acked.size(), static_cast<size_t>(kSteps - kSteps / 10));
  return env.syncs() - create_syncs;
}

void CheckOneCrashPoint(const std::string& dir, uint64_t cut, uint64_t seed,
                        std::ofstream* recovery_log) {
  SCOPED_TRACE("cut=" + std::to_string(cut) + " seed=" + std::to_string(seed));
  Env::Default()->RemoveDirRecursive(dir);
  FaultInjectionEnv env(Env::Default(), seed);
  ham::HamOptions options;
  options.sync_commits = true;

  std::vector<Acked> acked;
  std::optional<Acked> in_flight;
  ham::ProjectId project;
  {
    ham::Ham engine(&env, options);
    auto created = engine.CreateGraph(dir, 0755);
    ASSERT_TRUE(created.ok());
    project = created->project;
    auto ctx = engine.OpenGraph(project, "local", dir);
    ASSERT_TRUE(ctx.ok());
    env.PowerCutAtSync(env.syncs() + cut);
    RunWorkload(&engine, *ctx, &acked, &in_flight, &env);
    EXPECT_TRUE(env.down()) << "workload finished before the scheduled cut";
  }

  // The machine comes back; what does recovery make of the debris?
  env.Restart();
  env.Heal();
  {
    RecoveredState state;
    auto store = DurableStore::Open(&env, dir, &state);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    if (recovery_log != nullptr && recovery_log->is_open()) {
      *recovery_log << "cut=" << cut << " seed=" << seed << ' '
                    << state.report.ToString() << '\n';
    }
  }

  ham::Ham engine(&env, options);
  auto ctx = engine.OpenGraph(project, "local", dir);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  // 1) Every acknowledged commit survived, contents intact.
  for (const Acked& txn : acked) {
    auto opened = engine.OpenNode(*ctx, txn.node, 0, {});
    ASSERT_TRUE(opened.ok()) << "lost committed node " << txn.node << ": "
                             << opened.status().ToString();
    EXPECT_EQ(opened->contents, txn.payload);
  }

  // 2) The in-flight commit is all-or-nothing.
  size_t survivors = acked.size();
  if (in_flight.has_value()) {
    auto opened = engine.OpenNode(*ctx, in_flight->node, 0, {});
    if (opened.ok()) {
      EXPECT_EQ(opened->contents, in_flight->payload)
          << "in-flight commit resurrected half-applied";
      ++survivors;
    } else {
      EXPECT_TRUE(opened.status().IsNotFound())
          << opened.status().ToString();
    }
  }

  // 3) Nothing else exists — in particular no aborted transaction.
  auto stats = engine.GetStats(*ctx);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, survivors)
      << "recovery resurrected an aborted or phantom transaction";
}

TEST_F(CrashRecoveryTest, EveryFsyncPointIsSurvivable) {
  const uint64_t sync_points = CleanRunSyncPoints(dir_);
  ASSERT_GE(sync_points, 200u)
      << "workload too small to satisfy the >=200 crash-point bar";

  std::vector<uint64_t> seeds = {1};
  if (const char* extra = std::getenv("NEPTUNE_CRASH_SEEDS")) {
    std::stringstream ss(extra);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
    }
  }
  std::ofstream recovery_log;
  if (const char* path = std::getenv("NEPTUNE_RECOVERY_LOG")) {
    recovery_log.open(path, std::ios::app);
  }

  for (uint64_t seed : seeds) {
    for (uint64_t cut = 0; cut < sync_points; ++cut) {
      CheckOneCrashPoint(dir_, cut, seed, &recovery_log);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace neptune

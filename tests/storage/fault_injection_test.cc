// Fault injection: sync discipline and write-failure handling through
// the whole stack (Env -> DurableStore -> Ham).

#include <gtest/gtest.h>

#include <filesystem>

#include "ham/ham.h"
#include "tests/storage/fault_env.h"

namespace neptune {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault_env_ = std::make_unique<FaultEnv>(Env::Default());
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_fault_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
  }

  void TearDown() override { Env::Default()->RemoveDirRecursive(dir_); }

  std::unique_ptr<ham::Ham> MakeHam(bool sync_commits) {
    ham::HamOptions options;
    options.sync_commits = sync_commits;
    return std::make_unique<ham::Ham>(fault_env_.get(), options);
  }

  std::unique_ptr<FaultEnv> fault_env_;
  std::string dir_;
};

TEST_F(FaultInjectionTest, SyncedCommitsActuallySync) {
  auto engine = MakeHam(/*sync_commits=*/true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());

  const uint64_t syncs_before = fault_env_->syncs;
  ASSERT_TRUE(engine->AddNode(*ctx, true).ok());
  EXPECT_GT(fault_env_->syncs, syncs_before)
      << "a synced commit must fsync the WAL";
}

TEST_F(FaultInjectionTest, UnsyncedCommitsSkipFsync) {
  auto engine = MakeHam(/*sync_commits=*/false);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());

  const uint64_t syncs_before = fault_env_->syncs;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->AddNode(*ctx, true).ok());
  }
  EXPECT_EQ(fault_env_->syncs, syncs_before)
      << "nosync commits must not fsync per commit";
}

TEST_F(FaultInjectionTest, FailedWalAppendAbortsTheTransaction) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto survivor = engine->AddNode(*ctx, true);
  ASSERT_TRUE(survivor.ok());

  // Disk dies: the very next WAL append fails.
  fault_env_->fail_appends_after = fault_env_->appends.load();
  auto doomed = engine->AddNode(*ctx, true);
  EXPECT_FALSE(doomed.ok());
  EXPECT_TRUE(doomed.status().IsIOError()) << doomed.status().ToString();

  // The engine stays consistent: the failed commit left no trace.
  fault_env_->Heal();
  EXPECT_TRUE(engine->OpenNode(*ctx, survivor->node, 0, {}).ok());
  auto stats = engine->GetStats(*ctx);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, 1u);
  // And accepts new writes after the disk heals.
  auto recovered = engine->AddNode(*ctx, true);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(engine->GetStats(*ctx)->node_count, 2u);
}

TEST_F(FaultInjectionTest, FailedExplicitCommitReportsAndAborts) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());

  ASSERT_TRUE(engine->BeginTransaction(*ctx).ok());
  auto staged = engine->AddNode(*ctx, true);
  ASSERT_TRUE(staged.ok());
  fault_env_->fail_appends_after = fault_env_->appends.load();
  Status commit = engine->CommitTransaction(*ctx);
  EXPECT_TRUE(commit.IsIOError()) << commit.ToString();
  fault_env_->Heal();
  // Nothing of the failed transaction is visible.
  EXPECT_TRUE(
      engine->OpenNode(*ctx, staged->node, 0, {}).status().IsNotFound());
  // The writer slot was released: a new transaction can begin.
  ASSERT_TRUE(engine->BeginTransaction(*ctx).ok());
  ASSERT_TRUE(engine->AbortTransaction(*ctx).ok());
}

TEST_F(FaultInjectionTest, FailedCheckpointLeavesStoreUsable) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto node = engine->AddNode(*ctx, true);
  ASSERT_TRUE(node.ok());

  fault_env_->fail_atomic_writes = true;
  EXPECT_FALSE(engine->Checkpoint(*ctx).ok());
  fault_env_->Heal();

  // The old generation is intact; data still reads and writes.
  EXPECT_TRUE(engine->OpenNode(*ctx, node->node, 0, {}).ok());
  EXPECT_TRUE(engine->AddNode(*ctx, true).ok());
  EXPECT_TRUE(engine->Checkpoint(*ctx).ok());

  // And after a restart everything is there.
  engine.reset();
  engine = MakeHam(true);
  auto ctx2 = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx2.ok()) << ctx2.status().ToString();
  EXPECT_EQ(engine->GetStats(*ctx2)->node_count, 2u);
}

TEST_F(FaultInjectionTest, CommitsDurableAcrossCrashWithSync) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto node = engine->AddNode(*ctx, true);
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(engine->ModifyNode(*ctx, node->node, node->creation_time,
                                 "must survive", {}, "")
                  .ok());
  // Hard crash: drop the engine without CloseGraph.
  engine.reset();
  engine = MakeHam(true);
  auto ctx2 = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx2.ok());
  auto opened = engine->OpenNode(*ctx2, node->node, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, "must survive");
}

}  // namespace
}  // namespace neptune

// Fault injection: sync discipline, write-failure handling, degraded
// read-only mode and checkpoint crash-consistency through the whole
// stack (FaultInjectionEnv -> DurableStore -> Ham).

#include <gtest/gtest.h>

#include <filesystem>

#include "common/metrics.h"
#include "ham/ham.h"
#include "storage/durable_store.h"
#include "storage/fault_injection_env.h"

namespace neptune {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault_env_ = std::make_unique<FaultInjectionEnv>(Env::Default());
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_fault_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    Env::Default()->RemoveDirRecursive(dir_);
  }

  void TearDown() override { Env::Default()->RemoveDirRecursive(dir_); }

  std::unique_ptr<ham::Ham> MakeHam(bool sync_commits) {
    ham::HamOptions options;
    options.sync_commits = sync_commits;
    return std::make_unique<ham::Ham>(fault_env_.get(), options);
  }

  std::unique_ptr<FaultInjectionEnv> fault_env_;
  std::string dir_;
};

TEST_F(FaultInjectionTest, SyncedCommitsActuallySync) {
  auto engine = MakeHam(/*sync_commits=*/true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());

  const uint64_t syncs_before = fault_env_->syncs();
  ASSERT_TRUE(engine->AddNode(*ctx, true).ok());
  EXPECT_GT(fault_env_->syncs(), syncs_before)
      << "a synced commit must fsync the WAL";
}

TEST_F(FaultInjectionTest, UnsyncedCommitsSkipFsync) {
  auto engine = MakeHam(/*sync_commits=*/false);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());

  const uint64_t syncs_before = fault_env_->syncs();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->AddNode(*ctx, true).ok());
  }
  EXPECT_EQ(fault_env_->syncs(), syncs_before)
      << "nosync commits must not fsync per commit";
}

TEST_F(FaultInjectionTest, FailedWalAppendAbortsTheTransaction) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto survivor = engine->AddNode(*ctx, true);
  ASSERT_TRUE(survivor.ok());

  // Disk dies: the very next WAL append fails.
  fault_env_->FailAppendsAfter(fault_env_->appends());
  auto doomed = engine->AddNode(*ctx, true);
  EXPECT_FALSE(doomed.ok());
  EXPECT_TRUE(doomed.status().IsIOError()) << doomed.status().ToString();

  // The engine stays consistent: the failed commit left no trace.
  fault_env_->Heal();
  EXPECT_TRUE(engine->OpenNode(*ctx, survivor->node, 0, {}).ok());
  auto stats = engine->GetStats(*ctx);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, 1u);
  // And accepts new writes after the disk heals (the WAL self-repairs).
  auto recovered = engine->AddNode(*ctx, true);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(engine->GetStats(*ctx)->node_count, 2u);
}

TEST_F(FaultInjectionTest, FailedExplicitCommitReportsAndAborts) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());

  ASSERT_TRUE(engine->BeginTransaction(*ctx).ok());
  auto staged = engine->AddNode(*ctx, true);
  ASSERT_TRUE(staged.ok());
  fault_env_->FailAppendsAfter(fault_env_->appends());
  Status commit = engine->CommitTransaction(*ctx);
  EXPECT_TRUE(commit.IsIOError()) << commit.ToString();
  fault_env_->Heal();
  // Nothing of the failed transaction is visible.
  EXPECT_TRUE(
      engine->OpenNode(*ctx, staged->node, 0, {}).status().IsNotFound());
  // The writer slot was released: a new transaction can begin.
  ASSERT_TRUE(engine->BeginTransaction(*ctx).ok());
  ASSERT_TRUE(engine->AbortTransaction(*ctx).ok());
}

TEST_F(FaultInjectionTest, FailedCheckpointLeavesStoreUsable) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto node = engine->AddNode(*ctx, true);
  ASSERT_TRUE(node.ok());

  fault_env_->FailAtomicWritesAfter(fault_env_->atomic_writes());
  EXPECT_FALSE(engine->Checkpoint(*ctx).ok());
  fault_env_->Heal();

  // The old generation is intact; data still reads and writes.
  EXPECT_TRUE(engine->OpenNode(*ctx, node->node, 0, {}).ok());
  EXPECT_TRUE(engine->AddNode(*ctx, true).ok());
  EXPECT_TRUE(engine->Checkpoint(*ctx).ok());

  // And after a restart everything is there.
  engine.reset();
  engine = MakeHam(true);
  auto ctx2 = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx2.ok()) << ctx2.status().ToString();
  EXPECT_EQ(engine->GetStats(*ctx2)->node_count, 2u);
}

TEST_F(FaultInjectionTest, CommitsDurableAcrossCrashWithSync) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto node = engine->AddNode(*ctx, true);
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(engine->ModifyNode(*ctx, node->node, node->creation_time,
                                 "must survive", {}, "")
                  .ok());
  // Hard crash: drop the engine without CloseGraph.
  engine.reset();
  engine = MakeHam(true);
  auto ctx2 = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx2.ok());
  auto opened = engine->OpenNode(*ctx2, node->node, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, "must survive");
}

// A failed fsync leaves the record's bytes in the WAL file but the
// commit is reported failed. The store must truncate those orphan bytes
// before the next commit, or a restart would resurrect the aborted
// transaction.
TEST_F(FaultInjectionTest, FailedFsyncOrphanIsTruncatedBeforeNextCommit) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto survivor = engine->AddNode(*ctx, true);
  ASSERT_TRUE(survivor.ok());

  fault_env_->FailSyncsAfter(fault_env_->syncs());
  auto doomed = engine->AddNode(*ctx, true);
  EXPECT_FALSE(doomed.ok());
  EXPECT_TRUE(doomed.status().IsIOError()) << doomed.status().ToString();

  fault_env_->Heal();
  auto after = engine->AddNode(*ctx, true);
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  // Restart: the failed commit must not come back.
  engine.reset();
  engine = MakeHam(true);
  auto ctx2 = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx2.ok()) << ctx2.status().ToString();
  EXPECT_EQ(engine->GetStats(*ctx2)->node_count, 2u)
      << "the fsync-failed commit resurrected";
  EXPECT_TRUE(
      engine->OpenNode(*ctx2, doomed.ok() ? doomed->node : 2, 0, {})
          .status()
          .IsNotFound());
}

// When the WAL cannot even be repaired, later commits are rejected with
// kReadOnly while reads keep working; once the disk heals, the next
// commit repairs the log and goes through.
TEST_F(FaultInjectionTest, UnrepairableWalDegradesToReadOnly) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto survivor = engine->AddNode(*ctx, true);
  ASSERT_TRUE(survivor.ok());

  // Break fsync (leaving orphan bytes) *and* truncate, so the repair
  // path cannot clean them up.
  fault_env_->FailSyncsAfter(fault_env_->syncs());
  fault_env_->FailTruncatesAfter(fault_env_->truncates());

  auto first = engine->AddNode(*ctx, true);
  EXPECT_TRUE(first.status().IsIOError()) << first.status().ToString();
  auto second = engine->AddNode(*ctx, true);
  EXPECT_TRUE(second.status().IsReadOnly()) << second.status().ToString();

  // Reads are unaffected in degraded mode.
  EXPECT_TRUE(engine->OpenNode(*ctx, survivor->node, 0, {}).ok());
  EXPECT_EQ(engine->GetStats(*ctx)->node_count, 1u);

  fault_env_->Heal();
  auto healed = engine->AddNode(*ctx, true);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(engine->GetStats(*ctx)->node_count, 2u);
}

// Degraded read-only mode must be re-enterable. A checkpoint clears
// the flag (a fresh, empty WAL is trustworthy), so a second,
// independent WAL failure later has to degrade the store again — the
// enter/repair/clear cycle is idempotent, not one-shot.
TEST_F(FaultInjectionTest, DegradedModeReentersCleanlyAfterCheckpointClears) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  auto survivor = engine->AddNode(*ctx, true);
  ASSERT_TRUE(survivor.ok());

  const uint64_t degraded_before = MetricsRegistry::Instance()
                                       .Snapshot()
                                       .CounterValue("wal.recovery.degraded_entered");

  // First failure: fsync and truncate both broken — no repair possible.
  fault_env_->FailSyncsAfter(fault_env_->syncs());
  fault_env_->FailTruncatesAfter(fault_env_->truncates());
  EXPECT_TRUE(engine->AddNode(*ctx, true).status().IsIOError());
  EXPECT_TRUE(engine->AddNode(*ctx, true).status().IsReadOnly());
  fault_env_->Heal();

  // A checkpoint rolls to a fresh WAL generation and clears the flag.
  ASSERT_TRUE(engine->Checkpoint(*ctx).ok());
  auto writable_again = engine->AddNode(*ctx, true);
  ASSERT_TRUE(writable_again.ok()) << writable_again.status().ToString();

  // Second, independent failure: the store must degrade exactly the
  // same way, not crash and not accept the write.
  fault_env_->FailSyncsAfter(fault_env_->syncs());
  fault_env_->FailTruncatesAfter(fault_env_->truncates());
  EXPECT_TRUE(engine->AddNode(*ctx, true).status().IsIOError());
  EXPECT_TRUE(engine->AddNode(*ctx, true).status().IsReadOnly());
  EXPECT_GE(MetricsRegistry::Instance().Snapshot().CounterValue(
                "wal.recovery.degraded_entered"),
            degraded_before + 2);

  // Reads stay up in degraded mode; the failed writes left no trace.
  EXPECT_TRUE(engine->OpenNode(*ctx, survivor->node, 0, {}).ok());
  EXPECT_EQ(engine->GetStats(*ctx)->node_count, 2u);

  // Healing lets the repair path clear it a second time, too.
  fault_env_->Heal();
  auto healed = engine->AddNode(*ctx, true);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(engine->GetStats(*ctx)->node_count, 3u);

  // Restart: only the acknowledged commits are there.
  engine.reset();
  engine = MakeHam(true);
  auto ctx2 = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx2.ok()) << ctx2.status().ToString();
  EXPECT_EQ(engine->GetStats(*ctx2)->node_count, 3u);
}

// Power cut between the SNAP-<n+1> write and the CURRENT flip: the new
// generation never became live, so recovery must come up on the old
// epoch with every committed transaction and sweep the debris.
TEST_F(FaultInjectionTest, CheckpointCrashBeforeCurrentFlipRecoversOldEpoch) {
  auto engine = MakeHam(true);
  auto created = engine->CreateGraph(dir_, 0755);
  ASSERT_TRUE(created.ok());
  auto ctx = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE(engine->AddNode(*ctx, true).ok());
  ASSERT_TRUE(engine->AddNode(*ctx, true).ok());

  // Checkpoint syncs: #0 = SNAP-000002 tmp, #1 = CURRENT tmp. Cut the
  // power during the CURRENT write — SNAP-000002 is on disk, the flip
  // never happened.
  fault_env_->PowerCutAtSync(fault_env_->syncs() + 1);
  Status checkpoint = engine->Checkpoint(*ctx);
  EXPECT_FALSE(checkpoint.ok());
  EXPECT_TRUE(fault_env_->down());

  engine.reset();
  fault_env_->Restart();
  fault_env_->Heal();

  // Inspect recovery directly for the report.
  RecoveredState state;
  auto store = DurableStore::Open(fault_env_.get(), dir_, &state);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->epoch(), 1u) << "must come back on the old epoch";
  EXPECT_FALSE(state.report.snapshot_fallback);
  EXPECT_GT(state.report.orphans_removed, 0u)
      << "SNAP-000002 (and tmp debris) should have been swept";
  EXPECT_EQ(state.wal_records.size(), 2u);
  store->reset();

  // And the engine agrees.
  engine = MakeHam(true);
  auto ctx2 = engine->OpenGraph(created->project, "local", dir_);
  ASSERT_TRUE(ctx2.ok()) << ctx2.status().ToString();
  EXPECT_EQ(engine->GetStats(*ctx2)->node_count, 2u);
}

}  // namespace
}  // namespace neptune

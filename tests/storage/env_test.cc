#include "storage/env.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

namespace neptune {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_env_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  void TearDown() override { env_->RemoveDirRecursive(dir_); }

  Env* env_ = nullptr;
  std::string dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  const std::string path = JoinPath(dir_, "file.txt");
  auto file = env_->NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto contents = env_->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
  auto size = env_->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST_F(EnvTest, AppendModePreservesExisting) {
  const std::string path = JoinPath(dir_, "log");
  {
    auto f = env_->NewWritableFile(path, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("abc").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  {
    auto f = env_->NewWritableFile(path, /*truncate=*/false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("def").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  EXPECT_EQ(*env_->ReadFileToString(path), "abcdef");
}

TEST_F(EnvTest, TruncateModeDiscardsExisting) {
  const std::string path = JoinPath(dir_, "log");
  {
    auto f = env_->NewWritableFile(path, true);
    ASSERT_TRUE((*f)->Append("abcdef").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  {
    auto f = env_->NewWritableFile(path, true);
    ASSERT_TRUE((*f)->Append("xy").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  EXPECT_EQ(*env_->ReadFileToString(path), "xy");
}

TEST_F(EnvTest, ReadMissingFileIsNotFound) {
  auto r = env_->ReadFileToString(JoinPath(dir_, "nope"));
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(EnvTest, WriteFileAtomicReplaces) {
  const std::string path = JoinPath(dir_, "CURRENT");
  ASSERT_TRUE(env_->WriteFileAtomic(path, "SNAP-000001").ok());
  EXPECT_EQ(*env_->ReadFileToString(path), "SNAP-000001");
  ASSERT_TRUE(env_->WriteFileAtomic(path, "SNAP-000002").ok());
  EXPECT_EQ(*env_->ReadFileToString(path), "SNAP-000002");
  // No stray temp file left behind.
  auto children = env_->GetChildren(dir_);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->size(), 1u);
}

TEST_F(EnvTest, FileExistsAndRemove) {
  const std::string path = JoinPath(dir_, "f");
  EXPECT_FALSE(env_->FileExists(path));
  ASSERT_TRUE(env_->WriteFileAtomic(path, "x").ok());
  EXPECT_TRUE(env_->FileExists(path));
  ASSERT_TRUE(env_->RemoveFile(path).ok());
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_TRUE(env_->RemoveFile(path).IsNotFound());
}

TEST_F(EnvTest, RenameMovesContents) {
  const std::string a = JoinPath(dir_, "a");
  const std::string b = JoinPath(dir_, "b");
  ASSERT_TRUE(env_->WriteFileAtomic(a, "payload").ok());
  ASSERT_TRUE(env_->RenameFile(a, b).ok());
  EXPECT_FALSE(env_->FileExists(a));
  EXPECT_EQ(*env_->ReadFileToString(b), "payload");
}

TEST_F(EnvTest, GetChildrenListsNamesOnly) {
  ASSERT_TRUE(env_->WriteFileAtomic(JoinPath(dir_, "one"), "1").ok());
  ASSERT_TRUE(env_->WriteFileAtomic(JoinPath(dir_, "two"), "2").ok());
  auto children = env_->GetChildren(dir_);
  ASSERT_TRUE(children.ok());
  std::vector<std::string> names = *children;
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"one", "two"}));
}

TEST_F(EnvTest, CreateDirIsRecursiveAndIdempotent) {
  const std::string nested = JoinPath(dir_, "a/b/c");
  ASSERT_TRUE(env_->CreateDir(nested).ok());
  ASSERT_TRUE(env_->CreateDir(nested).ok());
  EXPECT_TRUE(env_->FileExists(nested));
}

TEST_F(EnvTest, RemoveDirRecursive) {
  const std::string nested = JoinPath(dir_, "x/y");
  ASSERT_TRUE(env_->CreateDir(nested).ok());
  ASSERT_TRUE(env_->WriteFileAtomic(JoinPath(nested, "f"), "data").ok());
  ASSERT_TRUE(env_->RemoveDirRecursive(JoinPath(dir_, "x")).ok());
  EXPECT_FALSE(env_->FileExists(JoinPath(dir_, "x")));
}

TEST_F(EnvTest, SetPermissions) {
  const std::string path = JoinPath(dir_, "locked");
  ASSERT_TRUE(env_->WriteFileAtomic(path, "secret").ok());
  EXPECT_TRUE(env_->SetPermissions(path, 0600).ok());
}

TEST(JoinPathTest, HandlesTrailingSlash) {
  EXPECT_EQ(JoinPath("/a/b", "c"), "/a/b/c");
  EXPECT_EQ(JoinPath("/a/b/", "c"), "/a/b/c");
  EXPECT_EQ(JoinPath("", "c"), "c");
}

}  // namespace
}  // namespace neptune

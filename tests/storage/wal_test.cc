#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"

namespace neptune {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';  // parameterized test names contain '/'
    }
    path_ = (std::filesystem::temp_directory_path() /
             ("neptune_wal_test_" + name))
                .string();
    env_->RemoveFile(path_);
  }

  void TearDown() override { env_->RemoveFile(path_); }

  std::unique_ptr<LogWriter> NewWriter(bool truncate = true) {
    auto file = env_->NewWritableFile(path_, truncate);
    EXPECT_TRUE(file.ok());
    return std::make_unique<LogWriter>(std::move(*file));
  }

  std::string FileImage() { return *env_->ReadFileToString(path_); }

  Env* env_ = nullptr;
  std::string path_;
};

TEST_F(WalTest, WriteThenReadBack) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("first", false).ok());
  ASSERT_TRUE(writer->AddRecord("second record", false).ok());
  ASSERT_TRUE(writer->AddRecord("", false).ok());  // empty records are legal
  ASSERT_TRUE(writer->Close().ok());

  auto result = ReadLog(FileImage());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->truncated_tail);
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0], "first");
  EXPECT_EQ(result->records[1], "second record");
  EXPECT_EQ(result->records[2], "");
  EXPECT_EQ(result->valid_bytes, FileImage().size());
}

TEST_F(WalTest, EmptyLogIsClean) {
  auto result = ReadLog("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->records.empty());
  EXPECT_FALSE(result->truncated_tail);
}

TEST_F(WalTest, TornHeaderAtTailIsTruncated) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("keep me", false).ok());
  ASSERT_TRUE(writer->Close().ok());
  std::string image = FileImage();
  const uint64_t good = image.size();
  image += "\x01\x02\x03";  // 3 stray bytes: shorter than a header

  auto result = ReadLog(image);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated_tail);
  EXPECT_FALSE(result->mid_log_corruption);
  EXPECT_EQ(result->dropped_bytes, 3u);
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0], "keep me");
  EXPECT_EQ(result->valid_bytes, good);
}

TEST_F(WalTest, TornPayloadAtTailIsTruncated) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("alpha", false).ok());
  ASSERT_TRUE(writer->AddRecord("beta-beta-beta", false).ok());
  ASSERT_TRUE(writer->Close().ok());
  std::string image = FileImage();
  // Chop the middle of the second record's payload.
  auto shortened = image.substr(0, image.size() - 5);

  auto result = ReadLog(shortened);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated_tail);
  EXPECT_FALSE(result->mid_log_corruption);
  EXPECT_EQ(result->dropped_bytes, shortened.size() - result->valid_bytes);
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0], "alpha");
}

TEST_F(WalTest, CorruptFinalCrcIsTreatedAsTornTail) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("alpha", false).ok());
  ASSERT_TRUE(writer->AddRecord("beta", false).ok());
  ASSERT_TRUE(writer->Close().ok());
  std::string image = FileImage();
  image.back() ^= 0x40;  // flip a bit in the final payload

  auto result = ReadLog(image);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated_tail);
  EXPECT_FALSE(result->mid_log_corruption);
  ASSERT_EQ(result->records.size(), 1u);
}

TEST_F(WalTest, CorruptMiddleRecordTruncatesAndFlagsIt) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("alpha", false).ok());
  ASSERT_TRUE(writer->AddRecord("beta", false).ok());
  ASSERT_TRUE(writer->Close().ok());
  std::string image = FileImage();
  image[8] ^= 0x01;  // flip a bit inside the *first* payload

  // Damage before the tail is more than a torn append: everything from
  // the bad record on is dropped, and mid_log_corruption says a later,
  // intact-looking record ("beta") went down with it.
  auto result = ReadLog(image);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated_tail);
  EXPECT_TRUE(result->mid_log_corruption);
  EXPECT_EQ(result->records.size(), 0u);
  EXPECT_EQ(result->valid_bytes, 0u);
  EXPECT_EQ(result->dropped_bytes, image.size());
}

TEST_F(WalTest, SyncedRecordsSurviveReopen) {
  {
    auto writer = NewWriter();
    ASSERT_TRUE(writer->AddRecord("durable", /*sync=*/true).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  {
    auto writer = NewWriter(/*truncate=*/false);
    ASSERT_TRUE(writer->AddRecord("appended later", true).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto result = ReadLog(FileImage());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), 2u);
  EXPECT_EQ(result->records[0], "durable");
  EXPECT_EQ(result->records[1], "appended later");
}

TEST_F(WalTest, ManyRandomRecordsRoundTrip) {
  Random rng(1234);
  std::vector<std::string> originals;
  auto writer = NewWriter();
  for (int i = 0; i < 200; ++i) {
    originals.push_back(rng.NextBytes(rng.Uniform(2000)));
    ASSERT_TRUE(writer->AddRecord(originals.back(), false).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  auto result = ReadLog(FileImage());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(result->records[i], originals[i]) << i;
  }
}

// Property sweep: cutting a valid log at *any* byte must never be
// reported as Corruption — only as a (possibly empty) torn tail.
class WalCutPointTest : public WalTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(WalCutPointTest, AnyPrefixIsRecoverable) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("rec-one", false).ok());
  ASSERT_TRUE(writer->AddRecord("rec-two!", false).ok());
  ASSERT_TRUE(writer->AddRecord("rec-three??", false).ok());
  ASSERT_TRUE(writer->Close().ok());
  std::string image = FileImage();
  const size_t cut =
      std::min(image.size(), static_cast<size_t>(GetParam()));
  auto result = ReadLog(std::string_view(image).substr(0, cut));
  ASSERT_TRUE(result.ok()) << "cut=" << cut;
  EXPECT_LE(result->records.size(), 3u);
  EXPECT_LE(result->valid_bytes, cut);
}

INSTANTIATE_TEST_SUITE_P(AllCutPoints, WalCutPointTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace neptune

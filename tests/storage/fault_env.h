// FaultEnv: an Env decorator for the fault-injection tests — counts
// appends/syncs and can be armed to fail writes after N successes,
// simulating a full disk or dying device at a precise point.

#ifndef NEPTUNE_TESTS_STORAGE_FAULT_ENV_H_
#define NEPTUNE_TESTS_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <limits>
#include <memory>

#include "storage/env.h"

namespace neptune {

class FaultEnv : public Env {
 public:
  explicit FaultEnv(Env* base) : base_(base) {}

  // Counters.
  std::atomic<uint64_t> appends{0};
  std::atomic<uint64_t> syncs{0};

  // Fault arming: the Nth append (0-based) and all later ones fail.
  std::atomic<uint64_t> fail_appends_after{
      std::numeric_limits<uint64_t>::max()};
  std::atomic<bool> fail_atomic_writes{false};

  void Heal() {
    fail_appends_after = std::numeric_limits<uint64_t>::max();
    fail_atomic_writes = false;
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             base_->NewWritableFile(path, truncate));
    return std::unique_ptr<WritableFile>(
        new CountingFile(this, std::move(file)));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override {
    if (fail_atomic_writes) {
      return Status::IOError("injected atomic-write failure for " + path);
    }
    return base_->WriteFileAtomic(path, data);
  }

  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RemoveDirRecursive(const std::string& path) override {
    return base_->RemoveDirRecursive(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override {
    return base_->GetChildren(dir);
  }
  Status SetPermissions(const std::string& path, uint32_t mode) override {
    return base_->SetPermissions(path, mode);
  }

 private:
  class CountingFile : public WritableFile {
   public:
    CountingFile(FaultEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}

    Status Append(std::string_view data) override {
      const uint64_t n = env_->appends.fetch_add(1);
      if (n >= env_->fail_appends_after) {
        return Status::IOError("injected append failure");
      }
      return base_->Append(data);
    }

    Status Sync() override {
      env_->syncs.fetch_add(1);
      return base_->Sync();
    }

    Status Close() override { return base_->Close(); }

   private:
    FaultEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  Env* base_;
};

}  // namespace neptune

#endif  // NEPTUNE_TESTS_STORAGE_FAULT_ENV_H_

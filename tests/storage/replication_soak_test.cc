// Replication soak: a primary on a fault-injected disk, two live
// followers tailing it over real TCP, a writer hammering commits —
// while the harness yanks power on the primary and kills replication
// links on a seeded schedule. After the melee one follower is promoted
// and the test asserts the replication contract end to end:
//
//  * every acked commit (commit returned OK with sync_commits=true) is
//    readable byte-for-byte on the promoted follower,
//  * both followers converge to fsck-clean state identical to the
//    primary's acked history,
//  * followers never served uncommitted or torn state (their stores
//    verify clean at every promotion),
//  * the repl.* counters account for the faults the schedule injected.
//
// Runs in its own binary so it can ResetForTest() the process-global
// metrics registry per seed without disturbing other suites.
//
// Environment knobs (used by the CI replication-soak step):
//   NEPTUNE_REPL_SOAK_SECONDS  wall-clock per seed (default 2)
//   NEPTUNE_REPL_SOAK_SEEDS    comma-separated seed list (default "1")

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"
#include "rpc/replicator.h"
#include "rpc/server.h"
#include "storage/fault_injection_env.h"

namespace neptune {
namespace {

using Clock = std::chrono::steady_clock;
using rpc::RemoteHam;
using rpc::Replicator;
using rpc::Server;

int SoakSeconds() {
  const char* s = std::getenv("NEPTUNE_REPL_SOAK_SECONDS");
  int v = (s != nullptr) ? std::atoi(s) : 0;
  return v > 0 ? v : 2;
}

std::vector<uint64_t> SoakSeeds() {
  std::vector<uint64_t> seeds;
  const char* s = std::getenv("NEPTUNE_REPL_SOAK_SEEDS");
  if (s != nullptr) {
    uint64_t cur = 0;
    bool in_number = false;
    for (const char* p = s;; ++p) {
      if (*p >= '0' && *p <= '9') {
        cur = cur * 10 + static_cast<uint64_t>(*p - '0');
        in_number = true;
      } else {
        if (in_number) seeds.push_back(cur);
        cur = 0;
        in_number = false;
        if (*p == '\0') break;
      }
    }
  }
  // One wall-clock seed by default: this binary is the threaded smoke
  // test, the seed-space sweep lives in the deterministic sim suite
  // (tests/sim, CI sim-soak job).
  if (seeds.empty()) seeds = {1};
  return seeds;
}

uint64_t CounterNow(const std::string& name) {
  return MetricsRegistry::Instance().Snapshot().CounterValue(name);
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// One acked commit: the node index and the exact bytes the client saw
// the primary acknowledge.
struct Acked {
  ham::NodeIndex node;
  std::string contents;
};

// The primary under test: engine + server on a fault-injected env,
// restartable in place (same port) after a power cut.
class PrimaryHarness {
 public:
  PrimaryHarness(const std::string& dir, uint64_t seed)
      : dir_(dir), env_(Env::Default(), seed) {}

  void FirstBoot() {
    Boot();
    auto created = ham_->CreateGraph(dir_, 0755);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    project_ = created->project;
    auto port = server_->Start(0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  // Models the machine losing power and rebooting: the engine comes
  // back through crash recovery on whatever the cut left durable.
  void PowerCutAndReboot() {
    env_.PowerCutNow();
    server_->Stop();
    server_.reset();
    ham_.reset();
    env_.Restart();
    env_.Heal();
    Boot();
    // The port frees asynchronously as the old accept loop unwinds.
    ASSERT_TRUE(WaitFor(
        [&] {
          auto port = server_->Start(port_);
          return port.ok();
        },
        10000))
        << "could not rebind the primary port after reboot";
  }

  // Final, unrecovered death.
  void Die() {
    env_.PowerCutNow();
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    ham_.reset();
  }

  uint16_t port() const { return port_; }
  ham::ProjectId project() const { return project_; }
  ham::Ham* ham() { return ham_.get(); }

 private:
  void Boot() {
    ham::HamOptions options;
    options.sync_commits = true;  // commit OK == durable == ackable
    options.checkpoint_wal_bytes = 32 << 10;  // frequent epoch rolls
    ham_ = std::make_unique<ham::Ham>(&env_, options);
    server_ = std::make_unique<Server>(ham_.get());
  }

  const std::string dir_;
  FaultInjectionEnv env_;
  std::unique_ptr<ham::Ham> ham_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
  ham::ProjectId project_ = 0;
};

// A follower whose replication link can be killed and re-established;
// the replicator resumes from the follower's durable state.
class FollowerHarness {
 public:
  FollowerHarness(const std::string& dir, const std::string& primary_dir,
                  uint64_t seed)
      : dir_(dir), primary_dir_(primary_dir), seed_(seed) {
    ham::HamOptions options;
    options.sync_commits = false;
    options.follower_mode = true;
    ham_ = std::make_unique<ham::Ham>(Env::Default(), options);
  }

  ~FollowerHarness() { KillLink(); }

  void Connect(uint16_t port) {
    RemoteHam::Options client_options;
    client_options.max_retries = 2;
    client_options.retry_seed = seed_;
    Result<std::unique_ptr<RemoteHam>> client =
        RemoteHam::Connect("localhost", port, client_options);
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (!client.ok() && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      client = RemoteHam::Connect("localhost", port, client_options);
    }
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);
    Replicator::Options options;
    options.primary_root = primary_dir_;
    options.local_root = dir_;
    options.poll_wait_ms = 25;
    options.list_refresh_ms = 100;
    options.backoff_initial_ms = 5;
    options.backoff_max_ms = 200;
    options.seed = seed_;
    options.follower_id = dir_;
    replicator_ = std::make_unique<Replicator>(ham_.get(), client_.get(),
                                               options);
    replicator_->Start();
  }

  void KillLink() {
    replicator_.reset();
    client_.reset();
  }

  bool CaughtUp() const {
    return replicator_ != nullptr && replicator_->AllCaughtUp();
  }

  ham::Ham* ham() { return ham_.get(); }
  const std::string& dir() const { return dir_; }

 private:
  const std::string dir_;
  const std::string primary_dir_;
  const uint64_t seed_;
  std::unique_ptr<ham::Ham> ham_;
  std::unique_ptr<RemoteHam> client_;
  std::unique_ptr<Replicator> replicator_;
};

// The client workload: commits nodes with deterministic contents and
// records exactly those the primary acknowledged. Survives primary
// reboots by reconnecting.
void WriterLoop(uint16_t port, ham::ProjectId project, const std::string& dir,
                uint64_t seed, std::atomic<bool>* stop, std::mutex* mu,
                std::vector<Acked>* acked) {
  uint64_t sequence = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    RemoteHam::Options options;
    options.max_retries = 0;  // reconnect explicitly instead
    options.recv_timeout_ms = 5000;
    options.retry_seed = seed + 11;
    auto client = RemoteHam::Connect("localhost", port, options);
    if (!client.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    auto ctx = (*client)->OpenGraph(project, "localhost", dir);
    if (!ctx.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    while (!stop->load(std::memory_order_relaxed)) {
      auto added = (*client)->AddNode(*ctx, true);
      if (!added.ok()) break;  // reconnect
      const std::string contents =
          "soak seed=" + std::to_string(seed) +
          " seq=" + std::to_string(sequence) +
          std::string(1 + sequence % 512, 'x');
      Status modified =
          (*client)->ModifyNode(*ctx, added->node, added->creation_time,
                                contents, {}, "soak");
      if (!modified.ok()) break;  // the AddNode may survive; not acked
      {
        std::lock_guard<std::mutex> lock(*mu);
        acked->push_back({added->node, contents});
      }
      ++sequence;
    }
  }
}

void VerifyAckedHistory(ham::Ham* engine, ham::ProjectId project,
                        const std::string& dir,
                        const std::vector<Acked>& acked, const char* who) {
  auto ctx = engine->OpenGraph(project, "local", dir);
  ASSERT_TRUE(ctx.ok()) << who << ": " << ctx.status().ToString();
  for (const Acked& commit : acked) {
    auto opened = engine->OpenNode(*ctx, commit.node, 0, {});
    ASSERT_TRUE(opened.ok())
        << who << " lost acked node " << commit.node << ": "
        << opened.status().ToString();
    ASSERT_EQ(opened->contents, commit.contents)
        << who << " diverged on acked node " << commit.node;
  }
  auto problems = engine->VerifyGraph(*ctx);
  ASSERT_TRUE(problems.ok()) << who << ": " << problems.status().ToString();
  EXPECT_TRUE(problems->empty())
      << who << ": " << problems->size()
      << " fsck problems, first: " << problems->front();
  EXPECT_TRUE(engine->CloseGraph(*ctx).ok());
}

TEST(ReplicationSoakTest, AckedCommitsSurvivePowerCutsLinkKillsAndFailover) {
  const int seconds = SoakSeconds();
  for (uint64_t seed : SoakSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    MetricsRegistry::Instance().ResetForTest();
    const std::string base =
        (std::filesystem::temp_directory_path() /
         ("neptune_repl_soak_" + std::to_string(seed)))
            .string();
    Env::Default()->RemoveDirRecursive(base);
    ASSERT_TRUE(Env::Default()->CreateDir(base).ok());
    const std::string primary_dir = base + "/primary";

    PrimaryHarness primary(primary_dir, seed);
    primary.FirstBoot();
    if (::testing::Test::HasFatalFailure()) return;

    FollowerHarness f1(base + "/f1", primary_dir, seed + 100);
    FollowerHarness f2(base + "/f2", primary_dir, seed + 200);
    f1.Connect(primary.port());
    f2.Connect(primary.port());
    if (::testing::Test::HasFatalFailure()) return;

    std::atomic<bool> stop{false};
    std::mutex acked_mu;
    std::vector<Acked> acked;
    std::thread writer(WriterLoop, primary.port(), primary.project(),
                       primary_dir, seed, &stop, &acked_mu, &acked);

    // The fault schedule: seeded, with at least one power cut and one
    // link kill per follower per run.
    Random rng(seed * 7919 + 13);
    const auto deadline = Clock::now() + std::chrono::seconds(seconds);
    int power_cuts = 0;
    int link_kills = 0;
    while (Clock::now() < deadline) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(100 + rng.Uniform(200)));
      switch (rng.Uniform(3)) {
        case 0: {
          primary.PowerCutAndReboot();
          if (::testing::Test::HasFatalFailure()) {
            stop.store(true);
            writer.join();
            return;
          }
          ++power_cuts;
          break;
        }
        case 1: {
          f1.KillLink();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(rng.Uniform(100)));
          f1.Connect(primary.port());
          ++link_kills;
          break;
        }
        case 2: {
          f2.KillLink();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(rng.Uniform(100)));
          f2.Connect(primary.port());
          ++link_kills;
          break;
        }
      }
      if (::testing::Test::HasFatalFailure()) break;
    }
    // Make the advertised schedule unconditional.
    if (power_cuts == 0) {
      primary.PowerCutAndReboot();
      ++power_cuts;
    }
    if (link_kills == 0) {
      f1.KillLink();
      f1.Connect(primary.port());
      ++link_kills;
    }
    stop.store(true);
    writer.join();
    if (::testing::Test::HasFatalFailure()) return;

    // Drain: with the writer stopped and the primary alive, both
    // followers must converge on everything that was ever acked.
    ASSERT_TRUE(WaitFor([&] { return f1.CaughtUp() && f2.CaughtUp(); }, 60000))
        << "followers never drained after the soak (f1=" << f1.CaughtUp()
        << " f2=" << f2.CaughtUp() << ")";

    // The primary is gone for good; the operator promotes f1.
    primary.Die();
    f1.KillLink();
    f2.KillLink();
    auto term = f1.ham()->Promote();
    ASSERT_TRUE(term.ok()) << term.status().ToString();
    EXPECT_GE(*term, 1u);
    EXPECT_FALSE(f1.ham()->follower());

    std::vector<Acked> history;
    {
      std::lock_guard<std::mutex> lock(acked_mu);
      history = acked;
    }
    ASSERT_GT(history.size(), 0u) << "the writer never got a commit acked";

    // Every acked commit, byte for byte, on the promoted node — and on
    // the surviving follower (its store verifies clean too: no torn or
    // uncommitted state was ever applied).
    VerifyAckedHistory(f1.ham(), primary.project(), base + "/f1", history,
                       "promoted f1");
    VerifyAckedHistory(f2.ham(), primary.project(), base + "/f2", history,
                       "follower f2");
    if (::testing::Test::HasFatalFailure()) return;

    // The promoted node accepts writes.
    auto ctx = f1.ham()->OpenGraph(primary.project(), "local", base + "/f1");
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    EXPECT_TRUE(f1.ham()->AddNode(*ctx, true).ok());
    EXPECT_TRUE(f1.ham()->CloseGraph(*ctx).ok());

    auto snapshot = MetricsRegistry::Instance().Snapshot();
    std::printf(
        "[repl-soak] seed=%llu seconds=%d acked=%zu power_cuts=%d "
        "link_kills=%d snapshots=%llu resyncs=%llu rolls=%llu "
        "backoffs=%llu corrupt_chunks=%llu bytes_applied=%llu "
        "promotions=%llu\n",
        static_cast<unsigned long long>(seed), seconds, history.size(),
        power_cuts, link_kills,
        static_cast<unsigned long long>(
            snapshot.CounterValue("repl.follower.snapshots_installed")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("repl.follower.resyncs")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("repl.follower.rolls")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("repl.follower.backoffs")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("repl.follower.corrupt_chunks")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("repl.follower.bytes_applied")),
        static_cast<unsigned long long>(
            snapshot.CounterValue("repl.promotions")));
    EXPECT_GE(CounterNow("repl.follower.snapshots_installed"), 2u)
        << "both followers bootstrap with a snapshot";
    EXPECT_GE(CounterNow("repl.promotions"), 1u);

    Env::Default()->RemoveDirRecursive(base);
  }
}

}  // namespace
}  // namespace neptune

#include "storage/durable_store.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace neptune {
namespace {

class DurableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_store_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    env_->RemoveDirRecursive(dir_);
  }

  void TearDown() override { env_->RemoveDirRecursive(dir_); }

  Env* env_ = nullptr;
  std::string dir_;
};

TEST_F(DurableStoreTest, CreateOpenRoundTrip) {
  {
    auto store = DurableStore::Create(env_, dir_, "meta-blob", "snap-blob", 0);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->epoch(), 1u);
  }
  RecoveredState state;
  auto store = DurableStore::Open(env_, dir_, &state);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(state.meta, "meta-blob");
  EXPECT_EQ(state.snapshot, "snap-blob");
  EXPECT_TRUE(state.wal_records.empty());
  EXPECT_FALSE(state.wal_tail_truncated);
}

TEST_F(DurableStoreTest, CreateTwiceFails) {
  ASSERT_TRUE(DurableStore::Create(env_, dir_, "m", "s", 0).ok());
  auto again = DurableStore::Create(env_, dir_, "m", "s", 0);
  EXPECT_TRUE(again.status().IsAlreadyExists());
}

TEST_F(DurableStoreTest, OpenMissingIsNotFound) {
  RecoveredState state;
  auto store = DurableStore::Open(env_, dir_ + "_nope", &state);
  EXPECT_TRUE(store.status().IsNotFound());
}

TEST_F(DurableStoreTest, AppendedRecordsAreRecovered) {
  {
    auto store = DurableStore::Create(env_, dir_, "m", "initial", 0);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRecord("txn-1", true).ok());
    ASSERT_TRUE((*store)->AppendRecord("txn-2", true).ok());
    // Store dropped without clean shutdown: simulates a crash after
    // the records were synced.
  }
  RecoveredState state;
  auto store = DurableStore::Open(env_, dir_, &state);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(state.snapshot, "initial");
  ASSERT_EQ(state.wal_records.size(), 2u);
  EXPECT_EQ(state.wal_records[0], "txn-1");
  EXPECT_EQ(state.wal_records[1], "txn-2");
}

TEST_F(DurableStoreTest, TornWalTailIsDroppedAndTruncatedOnDisk) {
  {
    auto store = DurableStore::Create(env_, dir_, "m", "s", 0);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRecord("committed", true).ok());
  }
  // Simulate a crash mid-append: garbage after the valid record.
  const std::string wal_path = JoinPath(dir_, "WAL-000001");
  std::string image = *env_->ReadFileToString(wal_path);
  {
    auto f = env_->NewWritableFile(wal_path, false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("\x11\x22\x33\x44\x55").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }

  RecoveredState state;
  {
    auto store = DurableStore::Open(env_, dir_, &state);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(state.wal_tail_truncated);
    ASSERT_EQ(state.wal_records.size(), 1u);
    EXPECT_EQ(state.wal_records[0], "committed");
  }
  // The tail must be gone from disk so a second recovery is clean.
  EXPECT_EQ(env_->ReadFileToString(wal_path)->size(), image.size());
  RecoveredState state2;
  auto store2 = DurableStore::Open(env_, dir_, &state2);
  ASSERT_TRUE(store2.ok());
  EXPECT_FALSE(state2.wal_tail_truncated);
  EXPECT_EQ(state2.wal_records.size(), 1u);
}

TEST_F(DurableStoreTest, AppendAfterRecoveryContinuesLog) {
  {
    auto store = DurableStore::Create(env_, dir_, "m", "s", 0);
    ASSERT_TRUE((*store)->AppendRecord("one", true).ok());
  }
  {
    RecoveredState state;
    auto store = DurableStore::Open(env_, dir_, &state);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRecord("two", true).ok());
  }
  RecoveredState state;
  auto store = DurableStore::Open(env_, dir_, &state);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(state.wal_records.size(), 2u);
  EXPECT_EQ(state.wal_records[0], "one");
  EXPECT_EQ(state.wal_records[1], "two");
}

TEST_F(DurableStoreTest, CheckpointRotatesGenerations) {
  auto store = DurableStore::Create(env_, dir_, "m", "gen1", 0);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendRecord("pre-checkpoint", true).ok());
  ASSERT_TRUE((*store)->Checkpoint("gen2").ok());
  EXPECT_EQ((*store)->epoch(), 2u);
  EXPECT_EQ((*store)->wal_bytes(), 0u);
  ASSERT_TRUE((*store)->AppendRecord("post-checkpoint", true).ok());

  RecoveredState state;
  auto reopened = DurableStore::Open(env_, dir_, &state);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(state.snapshot, "gen2");
  ASSERT_EQ(state.wal_records.size(), 1u);
  EXPECT_EQ(state.wal_records[0], "post-checkpoint");
  // Old generation files are gone.
  EXPECT_FALSE(env_->FileExists(JoinPath(dir_, "SNAP-000001")));
  EXPECT_FALSE(env_->FileExists(JoinPath(dir_, "WAL-000001")));
}

TEST_F(DurableStoreTest, CorruptSnapshotIsDetected) {
  // With a single generation there is no older epoch to fall back to,
  // so a corrupt snapshot is still a hard error.
  ASSERT_TRUE(DurableStore::Create(env_, dir_, "m", "snapshot-data", 0).ok());
  const std::string snap_path = JoinPath(dir_, "SNAP-000001");
  std::string image = *env_->ReadFileToString(snap_path);
  image[image.size() / 2] ^= 0x01;
  ASSERT_TRUE(env_->WriteFileAtomic(snap_path, image).ok());

  RecoveredState state;
  auto store = DurableStore::Open(env_, dir_, &state);
  EXPECT_TRUE(store.status().IsCorruption());
}

TEST_F(DurableStoreTest, CorruptLatestSnapshotFallsBackToPreviousEpoch) {
  ASSERT_TRUE(DurableStore::Create(env_, dir_, "m", "gen1", 0).ok());
  RecoveredState opened;
  auto store = DurableStore::Open(env_, dir_, &opened);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendRecord("pre-checkpoint", true).ok());
  // Keep images of generation 1 so we can undo the checkpoint's cleanup
  // and simulate "the old generation was still on disk".
  const std::string snap1 = *env_->ReadFileToString(JoinPath(dir_, "SNAP-000001"));
  const std::string wal1 = *env_->ReadFileToString(JoinPath(dir_, "WAL-000001"));
  ASSERT_TRUE((*store)->Checkpoint("gen2").ok());
  ASSERT_TRUE((*store)->AppendRecord("post-checkpoint", true).ok());
  store->reset();
  ASSERT_TRUE(env_->WriteFileAtomic(JoinPath(dir_, "SNAP-000001"), snap1).ok());
  {
    auto f = env_->NewWritableFile(JoinPath(dir_, "WAL-000001"), true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(wal1).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  // Rot the live snapshot.
  std::string image = *env_->ReadFileToString(JoinPath(dir_, "SNAP-000002"));
  image[image.size() / 2] ^= 0x01;
  ASSERT_TRUE(env_->WriteFileAtomic(JoinPath(dir_, "SNAP-000002"), image).ok());

  // Recovery seeds from SNAP-000001 and replays WAL-1 then WAL-2 —
  // which reproduces exactly the state SNAP-000002 + WAL-2 held,
  // because checkpoint 2 folded SNAP-1 + WAL-1.
  RecoveredState state;
  auto reopened = DurableStore::Open(env_, dir_, &state);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(state.snapshot, "gen1");
  ASSERT_EQ(state.wal_records.size(), 2u);
  EXPECT_EQ(state.wal_records[0], "pre-checkpoint");
  EXPECT_EQ(state.wal_records[1], "post-checkpoint");
  EXPECT_TRUE(state.report.snapshot_fallback);
  EXPECT_EQ(state.report.snapshot_epoch, 1u);
  EXPECT_EQ(state.report.wal_epoch, 2u);
  EXPECT_EQ(state.report.wal_files_replayed, 2u);
  EXPECT_EQ((*reopened)->epoch(), 2u);
  reopened->reset();

  // Degraded recovery must not destroy evidence: a second recovery sees
  // the same world (double-recovery idempotence).
  RecoveredState state2;
  auto again = DurableStore::Open(env_, dir_, &state2);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(state2.report.snapshot_fallback);
  EXPECT_EQ(state2.snapshot, "gen1");
  EXPECT_EQ(state2.wal_records.size(), 2u);
}

TEST_F(DurableStoreTest, MissingCurrentIsRebuiltFromNewestSnapshot) {
  {
    auto store = DurableStore::Create(env_, dir_, "m", "snap", 0);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRecord("rec", true).ok());
  }
  ASSERT_TRUE(env_->RemoveFile(JoinPath(dir_, "CURRENT")).ok());

  RecoveredState state;
  {
    auto store = DurableStore::Open(env_, dir_, &state);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(state.report.current_rewritten);
    EXPECT_EQ(state.snapshot, "snap");
    ASSERT_EQ(state.wal_records.size(), 1u);
  }
  // CURRENT is back; the next recovery is clean.
  EXPECT_TRUE(env_->FileExists(JoinPath(dir_, "CURRENT")));
  RecoveredState state2;
  auto store2 = DurableStore::Open(env_, dir_, &state2);
  ASSERT_TRUE(store2.ok());
  EXPECT_TRUE(state2.report.Clean()) << state2.report.ToString();
}

TEST_F(DurableStoreTest, MidWalCorruptionDropsSuffixAndReports) {
  {
    auto store = DurableStore::Create(env_, dir_, "m", "s", 0);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendRecord("first", true).ok());
    ASSERT_TRUE((*store)->AppendRecord("second", true).ok());
  }
  const std::string wal_path = JoinPath(dir_, "WAL-000001");
  std::string image = *env_->ReadFileToString(wal_path);
  image[8] ^= 0x01;  // corrupt the *first* record's payload
  {
    auto f = env_->NewWritableFile(wal_path, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(image).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }

  RecoveredState state;
  {
    auto store = DurableStore::Open(env_, dir_, &state);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(state.report.mid_log_corruption);
    EXPECT_TRUE(state.report.wal_tail_truncated);
    EXPECT_EQ(state.report.bytes_truncated, image.size());
    EXPECT_EQ(state.wal_records.size(), 0u);
  }
  // The damaged bytes were truncated away on disk: recovery number two
  // is clean and sees the same (empty) log.
  RecoveredState state2;
  auto store2 = DurableStore::Open(env_, dir_, &state2);
  ASSERT_TRUE(store2.ok());
  EXPECT_FALSE(state2.report.mid_log_corruption);
  EXPECT_FALSE(state2.report.wal_tail_truncated);
  EXPECT_EQ(state2.wal_records.size(), 0u);
}

TEST_F(DurableStoreTest, DestroyRemovesEverything) {
  ASSERT_TRUE(DurableStore::Create(env_, dir_, "m", "s", 0).ok());
  EXPECT_TRUE(DurableStore::Exists(env_, dir_));
  ASSERT_TRUE(DurableStore::Destroy(env_, dir_).ok());
  EXPECT_FALSE(DurableStore::Exists(env_, dir_));
  EXPECT_TRUE(DurableStore::Destroy(env_, dir_).IsNotFound());
}

TEST_F(DurableStoreTest, WalBytesTracksAppends) {
  auto store = DurableStore::Create(env_, dir_, "m", "s", 0);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->wal_bytes(), 0u);
  ASSERT_TRUE((*store)->AppendRecord("12345", false).ok());
  EXPECT_EQ((*store)->wal_bytes(), 8u + 5u);
}

TEST_F(DurableStoreTest, LargeSnapshotRoundTrip) {
  std::string big(1 << 20, 'q');
  for (size_t i = 0; i < big.size(); i += 7) big[i] = char('a' + i % 23);
  ASSERT_TRUE(DurableStore::Create(env_, dir_, "m", big, 0).ok());
  RecoveredState state;
  auto store = DurableStore::Open(env_, dir_, &state);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(state.snapshot, big);
}

}  // namespace
}  // namespace neptune

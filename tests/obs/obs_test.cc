// The observability plane: Prometheus text exposition (golden output),
// windowed rate deltas over the registry, the stats sampler under an
// injected clock, /statusz JSON, the embedded HTTP listener over a
// real socket, the getServerStatisticsDelta wire op end to end, and
// the replFetch trace hop across the replication plane.
//
// Separate binary: several tests reset the process-global metrics
// registry and trace ring, which must not race with other suites.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "ham/ham.h"
#include "obs/http.h"
#include "obs/preregister.h"
#include "obs/prometheus.h"
#include "obs/window.h"
#include "rpc/remote_ham.h"
#include "rpc/replicator.h"
#include "rpc/server.h"

namespace neptune {
namespace obs {
namespace {

// A controllable clock: NowMicros returns whatever the test set.
class FakeTimeSource : public TimeSource {
 public:
  uint64_t NowMicros() override { return now_; }
  void SleepMicros(uint64_t micros) override { now_ += micros; }
  uint64_t now_ = 1'000'000;
};

// ------------------------------------------------- exposition format

TEST(PrometheusTest, NameSanitizes) {
  EXPECT_EQ(PrometheusName("repl.apply_lag_us"), "repl_apply_lag_us");
  EXPECT_EQ(PrometheusName("server.loop.lag_us"), "server_loop_lag_us");
  EXPECT_EQ(PrometheusName("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName("already_fine:ok"), "already_fine:ok");
}

TEST(PrometheusTest, EscapeHelpText) {
  EXPECT_EQ(EscapeHelpText("plain"), "plain");
  EXPECT_EQ(EscapeHelpText("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeHelpText("line\nbreak"), "line\\nbreak");
}

TEST(PrometheusTest, GoldenExposition) {
  MetricsSnapshot snap;
  snap.counters["rpc.requests"] = 42;
  snap.gauges["repl.role"] = 1;
  HistogramSnapshot hist;
  hist.buckets = {1, 2, 0};  // le="1", le="2", then the +Inf bucket
  hist.count = 3;
  hist.sum = 10;
  hist.max = 7;
  snap.histograms["op.lat"] = hist;

  const char* want =
      "# HELP rpc_requests_total Neptune metric rpc.requests\n"
      "# TYPE rpc_requests_total counter\n"
      "rpc_requests_total 42\n"
      "# HELP repl_role Neptune metric repl.role\n"
      "# TYPE repl_role gauge\n"
      "repl_role 1\n"
      "# HELP op_lat Neptune metric op.lat\n"
      "# TYPE op_lat histogram\n"
      "op_lat_bucket{le=\"1\"} 1\n"
      "op_lat_bucket{le=\"2\"} 3\n"
      "op_lat_bucket{le=\"+Inf\"} 3\n"
      "op_lat_sum 10\n"
      "op_lat_count 3\n";
  EXPECT_EQ(RenderPrometheus(snap), want);
}

TEST(PrometheusTest, EmptyHistogramStillEmitsInfBucket) {
  MetricsSnapshot snap;
  snap.histograms["empty.hist"] = HistogramSnapshot{};
  const std::string out = RenderPrometheus(snap);
  EXPECT_NE(out.find("empty_hist_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(out.find("empty_hist_count 0\n"), std::string::npos);
}

TEST(PrometheusTest, PreregisteredFamiliesAppearAtZero) {
  MetricsRegistry::Instance().ResetForTest();
  PreregisterServerMetrics();
  const std::string out =
      RenderPrometheus(MetricsRegistry::Instance().Snapshot());
  // The families an operator alerts on must exist before any traffic.
  EXPECT_NE(out.find("# TYPE rpc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE server_loop_lag_us histogram"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE repl_apply_lag_us gauge"), std::string::npos);
  EXPECT_NE(out.find("# TYPE server_shed_total counter"), std::string::npos);
  EXPECT_NE(out.find("rpc_requests_total 0\n"), std::string::npos);
}

// ------------------------------------------------------- the window

MetricsSnapshot CounterSample(const std::string& name, uint64_t value) {
  MetricsSnapshot snap;
  snap.counters[name] = value;
  return snap;
}

TEST(MetricsWindowTest, NeedsTwoSamplesSpanningTime) {
  MetricsWindow window;
  MetricsSnapshot delta;
  uint64_t elapsed = 1;
  EXPECT_FALSE(window.Delta(1'000'000, &delta, &elapsed));
  EXPECT_EQ(elapsed, 0u);
  window.AddSample(1'000'000, CounterSample("c", 10));
  EXPECT_FALSE(window.Delta(1'000'000, &delta, &elapsed));
  window.AddSample(2'000'000, CounterSample("c", 30));
  ASSERT_TRUE(window.Delta(1'000'000, &delta, &elapsed));
  EXPECT_EQ(elapsed, 1'000'000u);
  EXPECT_EQ(delta.CounterValue("c"), 20u);
}

TEST(MetricsWindowTest, PicksTheSampleSpanningTheWindow) {
  MetricsWindow window;
  for (uint64_t s = 0; s <= 20; ++s) {
    window.AddSample(s * 1'000'000, CounterSample("c", s * 100));
  }
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  // 10s window: newest (t=20) minus the newest sample >= 10s older
  // (t=10).
  ASSERT_TRUE(window.Delta(10'000'000, &delta, &elapsed));
  EXPECT_EQ(elapsed, 10'000'000u);
  EXPECT_EQ(delta.CounterValue("c"), 1000u);
  // 1s window.
  ASSERT_TRUE(window.Delta(1'000'000, &delta, &elapsed));
  EXPECT_EQ(elapsed, 1'000'000u);
  EXPECT_EQ(delta.CounterValue("c"), 100u);
}

TEST(MetricsWindowTest, FallsBackToWidestAvailableSpan) {
  MetricsWindow window;
  window.AddSample(1'000'000, CounterSample("c", 0));
  window.AddSample(4'000'000, CounterSample("c", 60));
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  // Asking for 60s with only 3s of history answers the 3s span and
  // reports it, rather than failing or lying about the interval.
  ASSERT_TRUE(window.Delta(60'000'000, &delta, &elapsed));
  EXPECT_EQ(elapsed, 3'000'000u);
  EXPECT_EQ(delta.CounterValue("c"), 60u);
}

TEST(MetricsWindowTest, CounterRateIsPerSecond) {
  MetricsWindow window;
  window.AddSample(0, CounterSample("ops", 0));
  window.AddSample(10'000'000, CounterSample("ops", 250));
  EXPECT_DOUBLE_EQ(window.CounterRate("ops", 10'000'000), 25.0);
  EXPECT_DOUBLE_EQ(window.CounterRate("missing", 10'000'000), 0.0);
}

TEST(MetricsWindowTest, DropsNonMonotonicSamples) {
  MetricsWindow window;
  window.AddSample(5'000'000, CounterSample("c", 50));
  window.AddSample(3'000'000, CounterSample("c", 999));  // clock went back
  EXPECT_EQ(window.sample_count(), 1u);
}

TEST(MetricsWindowTest, CounterDeltaClampsAtZero) {
  MetricsWindow window;
  window.AddSample(1'000'000, CounterSample("c", 100));
  // A test-reset registry can make a "monotonic" counter shrink; the
  // delta must clamp rather than wrap to 2^64 - something.
  window.AddSample(2'000'000, CounterSample("c", 40));
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  ASSERT_TRUE(window.Delta(1'000'000, &delta, &elapsed));
  EXPECT_EQ(delta.CounterValue("c"), 0u);
}

TEST(MetricsWindowTest, GaugesPassThroughNewest) {
  MetricsWindow window;
  MetricsSnapshot s1;
  s1.gauges["g"] = 100;
  MetricsSnapshot s2;
  s2.gauges["g"] = -7;
  window.AddSample(1'000'000, s1);
  window.AddSample(2'000'000, s2);
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  ASSERT_TRUE(window.Delta(1'000'000, &delta, &elapsed));
  EXPECT_EQ(delta.gauges.at("g"), -7);
}

TEST(MetricsWindowTest, HistogramDeltaSubtractsBuckets) {
  MetricsWindow window;
  MetricsSnapshot s1;
  HistogramSnapshot h1;
  h1.buckets = {5, 0, 0};
  h1.count = 5;
  h1.sum = 5;
  h1.max = 1;
  s1.histograms["h"] = h1;
  MetricsSnapshot s2;
  HistogramSnapshot h2;
  h2.buckets = {5, 0, 3};  // three slow samples arrived in the window
  h2.count = 8;
  h2.sum = 3005;
  h2.max = 1500;
  s2.histograms["h"] = h2;
  window.AddSample(1'000'000, s1);
  window.AddSample(2'000'000, s2);
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  ASSERT_TRUE(window.Delta(1'000'000, &delta, &elapsed));
  const HistogramSnapshot& hd = delta.histograms.at("h");
  EXPECT_EQ(hd.buckets, (std::vector<uint64_t>{0, 0, 3}));
  EXPECT_EQ(hd.count, 3u);
  EXPECT_EQ(hd.sum, 3000u);
  // max carries the newest cumulative max: an upper bound, never an
  // invented per-window value.
  EXPECT_EQ(hd.max, 1500u);
}

TEST(MetricsWindowTest, RingEvictsOldestBeyondCapacity) {
  MetricsWindow window(3);
  for (uint64_t s = 1; s <= 10; ++s) {
    window.AddSample(s * 1'000'000, CounterSample("c", s));
  }
  EXPECT_EQ(window.sample_count(), 3u);
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  ASSERT_TRUE(window.Delta(60'000'000, &delta, &elapsed));
  EXPECT_EQ(elapsed, 2'000'000u);  // only t=8..10 survive
}

TEST(StatsSamplerTest, SampleOnceStampsFromInjectedClock) {
  MetricsWindow window;
  FakeTimeSource time;
  time.now_ = 42'000'000;
  StatsSampler sampler(&window, {.interval_us = 1'000'000,
                                 .time_source = &time});
  sampler.SampleOnce();
  time.now_ += 1'000'000;
  sampler.SampleOnce();
  EXPECT_EQ(window.sample_count(), 2u);
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  ASSERT_TRUE(window.Delta(1'000'000, &delta, &elapsed));
  EXPECT_EQ(elapsed, 1'000'000u);
}

// ---------------------------------------------------------- statusz

TEST(StatuszTest, ReportsRoleTermLagAndExtras) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetForTest();
  registry.GetGauge("repl.role")->Set(1);
  registry.GetGauge("repl.term")->Set(9);
  registry.GetGauge("repl.follower.lag_bytes")->Set(2048);
  registry.GetGauge("repl.apply_lag_us")->Set(1500);

  const std::string json =
      BuildStatusz(5'000'000, nullptr, {{"mode", "follow"}});
  EXPECT_NE(json.find("\"role\": \"follower\""), std::string::npos);
  EXPECT_NE(json.find("\"term\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"follower_lag_bytes\": 2048"), std::string::npos);
  EXPECT_NE(json.find("\"apply_lag_us\": 1500"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_s\": 5.0"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"follow\""), std::string::npos);
  // No window attached: no windowed rates object.
  EXPECT_EQ(json.find("\"rates\""), std::string::npos);

  registry.GetGauge("repl.role")->Set(0);
  const std::string primary = BuildStatusz(0, nullptr, {});
  EXPECT_NE(primary.find("\"role\": \"primary\""), std::string::npos);
}

TEST(StatuszTest, WindowedRatesWhenWindowAttached) {
  MetricsRegistry::Instance().ResetForTest();
  MetricsWindow window;
  window.AddSample(1'000'000, CounterSample("rpc.requests", 0));
  window.AddSample(2'000'000, CounterSample("rpc.requests", 50));
  const std::string json = BuildStatusz(2'000'000, &window, {});
  EXPECT_NE(json.find("\"rates\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc_requests_1s\": 50.0"), std::string::npos);
}

// ------------------------------------------------ the HTTP listener

// A deliberately dumb blocking client: connect, write the request,
// read to EOF (the server is Connection: close).
std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(MetricsHttpServerTest, ServesMetricsStatuszAndErrors) {
  MetricsRegistry::Instance().ResetForTest();
  PreregisterServerMetrics();
  MetricsRegistry::Instance().GetCounter("rpc.requests")->Add(5);

  MetricsHttpServer::Options options;
  options.statusz_extra = {{"mode", "test"}};
  MetricsHttpServer http(std::move(options));
  auto port = http.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::string metrics = HttpRoundTrip(
      *port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("rpc_requests_total 5\n"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE server_loop_lag_us histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE repl_apply_lag_us gauge"),
            std::string::npos);

  const std::string statusz =
      HttpRoundTrip(*port, "GET /statusz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(statusz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("application/json"), std::string::npos);
  EXPECT_NE(statusz.find("\"role\""), std::string::npos);
  EXPECT_NE(statusz.find("\"mode\": \"test\""), std::string::npos);

  // A query string routes like the bare path.
  const std::string with_query = HttpRoundTrip(
      *port, "GET /metrics?format=prometheus HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(with_query.find("HTTP/1.1 200 OK"), std::string::npos);

  const std::string missing =
      HttpRoundTrip(*port, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string post =
      HttpRoundTrip(*port, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  http.Stop();
}

// -------------------------------------------- the delta wire op

TEST(DeltaWireOpTest, WindowedDeltaOverTheWire) {
  // The wire op reads the process-wide window. Timestamps far past
  // anything another test injects keep the samples monotonic.
  const uint64_t base = 1'000'000'000'000ull;
  MetricsSnapshot s1 = CounterSample("obs.test.wire_ops", 100);
  s1.gauges["obs.test.wire_gauge"] = 11;
  MetricsSnapshot s2 = CounterSample("obs.test.wire_ops", 400);
  s2.gauges["obs.test.wire_gauge"] = 17;
  MetricsWindow::Instance().AddSample(base, s1);
  MetricsWindow::Instance().AddSample(base + 10'000'000, s2);

  ham::Ham engine(Env::Default(), ham::HamOptions());
  rpc::Server server(&engine);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  auto client = rpc::RemoteHam::Connect("localhost", *port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto delta = (*client)->GetServerStatisticsDelta(10);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->elapsed_us, 10'000'000u);
  EXPECT_EQ(delta->snapshot.CounterValue("obs.test.wire_ops"), 300u);
  EXPECT_EQ(delta->snapshot.gauges.at("obs.test.wire_gauge"), 17);

  server.Stop();
}

// ------------------------------------- the replFetch hop in traces

TEST(ReplTraceTest, ReplFetchHopAppearsInTheTraceTree) {
  Tracer::Instance().ResetForTest();
  Tracer::Instance().Configure(/*sample_n=*/1, /*slow_us=*/0);

  const std::string base =
      (std::filesystem::temp_directory_path() / "neptune_obs_repltrace")
          .string();
  Env::Default()->RemoveDirRecursive(base);
  ASSERT_TRUE(Env::Default()->CreateDir(base).ok());
  const std::string primary_dir = base + "/primary";

  // The Ham constructor applies its trace knobs to the process-wide
  // tracer (most-recent-engine-wins), so sampling must be requested
  // through the options, not only via Configure above.
  ham::HamOptions primary_options;
  primary_options.sync_commits = false;
  primary_options.trace_sample_n = 1;
  ham::Ham primary(Env::Default(), primary_options);
  rpc::Server server(&primary);
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  auto created = primary.CreateGraph(primary_dir, 0755);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto ctx = primary.OpenGraph(created->project, "local", primary_dir);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  auto added = primary.AddNode(*ctx, true);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE(primary
                  .ModifyNode(*ctx, added->node, added->creation_time,
                              "a traced commit\n", {}, "v1")
                  .ok());

  ham::HamOptions follower_options;
  follower_options.sync_commits = false;
  follower_options.follower_mode = true;
  follower_options.trace_sample_n = 1;
  ham::Ham follower(Env::Default(), follower_options);
  auto client = rpc::RemoteHam::Connect("localhost", *port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  rpc::Replicator::Options repl_options;
  repl_options.primary_root = primary_dir;
  repl_options.local_root = base + "/follower";
  repl_options.poll_wait_ms = 10;
  repl_options.list_refresh_ms = 1;
  repl_options.seed = 7;
  rpc::Replicator replicator(&follower, client->get(), repl_options);

  // Drive cycles directly on this thread — deterministic, no sleeps.
  for (int i = 0; i < 100 && !replicator.AllCaughtUp(); ++i) {
    ASSERT_GE(replicator.RunCycle(), 0);
  }
  ASSERT_TRUE(replicator.AllCaughtUp());
  EXPECT_GT(replicator.progress("").chunks_applied, 0u);

  // The follower's tail span, its client replFetch hop, and the
  // primary's server-side replFetch span must share one trace — the
  // context rode the wire.
  bool found = false;
  std::string seen;
  for (const Trace& trace : Tracer::Instance().RecentTraces()) {
    bool tail = false, client_hop = false, server_hop = false;
    seen += "trace " + std::to_string(trace.trace_id) + ":";
    for (const Span& span : trace.spans) {
      seen += " " + span.name;
      if (span.name == "repl.tail") tail = true;
      if (span.name == "rpc.client.replFetch") client_hop = true;
      if (span.name == "rpc.server.replFetch") server_hop = true;
    }
    seen += "\n";
    if (tail && client_hop && server_hop) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found)
      << "no trace tree joins repl.tail -> rpc.client.replFetch -> "
         "rpc.server.replFetch; ring contents:\n"
      << seen;

  Tracer::Instance().Configure(0, 0);
  server.Stop();
  Env::Default()->RemoveDirRecursive(base);
}

}  // namespace
}  // namespace obs
}  // namespace neptune

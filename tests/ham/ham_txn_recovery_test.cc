// Transactions, durability and crash recovery end-to-end.

#include <gtest/gtest.h>

#include <thread>

#include "ham/ham.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

class HamTxnTest : public HamTestBase {
 protected:
  HamOptions MakeOptions() override {
    HamOptions options;
    options.sync_commits = true;  // durability matters in these tests
    return options;
  }
};

TEST_F(HamTxnTest, CommitBundlesOperations) {
  // The paper's "annotate" command: several primitive operations in a
  // single transaction.
  NodeIndex target = MakeNode("the annotated text");
  AttributeIndex relation = Attr("relation");

  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto note = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(note.ok());
  ASSERT_TRUE(ham_->ModifyNode(ctx_, note->node, note->creation_time,
                               "this needs a citation", {}, "annotation")
                  .ok());
  auto link = ham_->AddLink(ctx_, LinkPt{target, 4, 0, true},
                            LinkPt{note->node, 0, 0, true});
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(
      ham_->SetLinkAttributeValue(ctx_, link->link, relation, "annotates")
          .ok());
  ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());

  EXPECT_EQ(ReadNode(note->node), "this needs a citation");
  EXPECT_EQ(*ham_->GetLinkAttributeValue(ctx_, link->link, relation, 0),
            "annotates");
}

TEST_F(HamTxnTest, AbortDiscardsEverything) {
  NodeIndex survivor = MakeNode("pre-existing");
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto doomed = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(ham_->DeleteNode(ctx_, survivor).ok());
  // Inside the transaction, its own effects are visible.
  EXPECT_TRUE(ham_->OpenNode(ctx_, survivor, 0, {}).status().IsNotFound());
  EXPECT_TRUE(ham_->OpenNode(ctx_, doomed->node, 0, {}).ok());

  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
  // "complete recovery from any aborted transaction"
  EXPECT_EQ(ReadNode(survivor), "pre-existing");
  EXPECT_TRUE(ham_->OpenNode(ctx_, doomed->node, 0, {}).status().IsNotFound());
}

TEST_F(HamTxnTest, UncommittedChangesInvisibleToOtherSessions) {
  auto other = ham_->OpenGraph(project_, "local", dir_);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto staged = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(staged.ok());
  // The second session must not see the staged node.
  EXPECT_TRUE(
      ham_->OpenNode(*other, staged->node, 0, {}).status().IsNotFound());
  ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());
  EXPECT_TRUE(ham_->OpenNode(*other, staged->node, 0, {}).ok());
  ASSERT_TRUE(ham_->CloseGraph(*other).ok());
}

TEST_F(HamTxnTest, SecondWriterBlocksUntilCommit) {
  auto other = ham_->OpenGraph(project_, "local", dir_);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto mine = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(mine.ok());

  std::atomic<bool> other_done{false};
  NodeIndex other_node = 0;
  std::thread writer([&] {
    auto added = ham_->AddNode(*other, true);  // implicit txn: must wait
    ASSERT_TRUE(added.ok());
    other_node = added->node;
    other_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(other_done) << "writer should be blocked by the open txn";
  ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());
  writer.join();
  EXPECT_TRUE(other_done);
  EXPECT_TRUE(ham_->OpenNode(ctx_, other_node, 0, {}).ok());
  ASSERT_TRUE(ham_->CloseGraph(*other).ok());
}

TEST_F(HamTxnTest, BeginTwiceFails) {
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  EXPECT_TRUE(ham_->BeginTransaction(ctx_).IsFailedPrecondition());
  EXPECT_TRUE(ham_->CommitTransaction(ctx_).ok());
  EXPECT_TRUE(ham_->CommitTransaction(ctx_).IsFailedPrecondition());
  EXPECT_TRUE(ham_->AbortTransaction(ctx_).IsFailedPrecondition());
}

TEST_F(HamTxnTest, FailedOpInsideTransactionLeavesItUsable) {
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto node = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(node.ok());
  // This op fails (missing endpoint) but the transaction survives.
  EXPECT_TRUE(ham_->AddLink(ctx_, LinkPt{node->node, 0, 0, true},
                            LinkPt{424242, 0, 0, true})
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(ham_->ModifyNode(ctx_, node->node, node->creation_time,
                               "still fine", {}, "")
                  .ok());
  ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());
  EXPECT_EQ(ReadNode(node->node), "still fine");
}

TEST_F(HamTxnTest, CloseGraphAbortsOpenTransaction) {
  auto other = ham_->OpenGraph(project_, "local", dir_);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(ham_->BeginTransaction(*other).ok());
  auto staged = ham_->AddNode(*other, true);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(ham_->CloseGraph(*other).ok());
  // The staged node is gone and the writer slot is free again.
  EXPECT_TRUE(ham_->OpenNode(ctx_, staged->node, 0, {}).status().IsNotFound());
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
}

class HamRecoveryTest : public HamTxnTest {};

TEST_F(HamRecoveryTest, CommittedStateSurvivesReopen) {
  NodeIndex n = MakeNode("durable contents");
  AttributeIndex attr = Attr("document");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, attr, "spec").ok());
  NodeIndex m = MakeNode("second node");
  auto link = ham_->AddLink(ctx_, LinkPt{n, 3, 0, true}, LinkPt{m, 0, 0, true});
  ASSERT_TRUE(link.ok());

  Reopen();  // drop the engine, recover from snapshot + WAL

  EXPECT_EQ(ReadNode(n), "durable contents");
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, attr, 0), "spec");
  auto to = ham_->GetToNode(ctx_, link->link, 0);
  ASSERT_TRUE(to.ok());
  EXPECT_EQ(to->node, m);
  // Attribute names survive too.
  EXPECT_EQ(Attr("document"), attr);
}

TEST_F(HamRecoveryTest, VersionHistorySurvivesReopen) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  const NodeIndex n = added->node;
  std::vector<Time> times{added->creation_time};
  std::string text;
  for (int i = 0; i < 10; ++i) {
    text += "line " + std::to_string(i) + "\n";
    ASSERT_TRUE(ham_->ModifyNode(ctx_, n, times.back(), text, {},
                                 "edit " + std::to_string(i))
                    .ok());
    times.push_back(*ham_->GetNodeTimeStamp(ctx_, n));
  }
  Reopen();
  for (size_t v = 1; v < times.size(); ++v) {
    std::string expected;
    for (size_t i = 0; i < v; ++i) {
      expected += "line " + std::to_string(i) + "\n";
    }
    EXPECT_EQ(ReadNode(n, times[v]), expected) << v;
  }
}

TEST_F(HamRecoveryTest, AbortedTransactionLeavesNoTraceAfterReopen) {
  NodeIndex keep = MakeNode("keep");
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  auto staged = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
  const NodeIndex staged_index = staged->node;

  Reopen();
  EXPECT_EQ(ReadNode(keep), "keep");
  EXPECT_TRUE(
      ham_->OpenNode(ctx_, staged_index, 0, {}).status().IsNotFound());
}

TEST_F(HamRecoveryTest, TornWalTailIsDroppedCleanly) {
  NodeIndex n = MakeNode("committed before crash");
  // Simulate a crash mid-commit: append garbage to the live WAL.
  ham_.reset();
  std::string wal_path;
  auto children = env_->GetChildren(dir_);
  ASSERT_TRUE(children.ok());
  for (const auto& name : *children) {
    if (name.rfind("WAL-", 0) == 0) wal_path = JoinPath(dir_, name);
  }
  ASSERT_FALSE(wal_path.empty());
  {
    auto f = env_->NewWritableFile(wal_path, /*truncate=*/false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("\xde\xad\xbe\xef garbage tail").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  Reopen();
  EXPECT_EQ(ReadNode(n), "committed before crash");
  // And the engine keeps working after the repair.
  NodeIndex m = MakeNode("post-recovery");
  EXPECT_EQ(ReadNode(m), "post-recovery");
}

TEST_F(HamRecoveryTest, CheckpointThenRecover) {
  std::vector<NodeIndex> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(MakeNode("node " + std::to_string(i)));
  }
  ASSERT_TRUE(ham_->Checkpoint(ctx_).ok());
  // Post-checkpoint mutations land in the fresh WAL.
  NodeIndex after = MakeNode("after checkpoint");
  auto stats = ham_->GetStats(ctx_);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->wal_bytes, 0u);

  Reopen();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ReadNode(nodes[i]), "node " + std::to_string(i));
  }
  EXPECT_EQ(ReadNode(after), "after checkpoint");
}

TEST_F(HamRecoveryTest, AutoCheckpointKeepsWalBounded) {
  ham_.reset();
  HamOptions options;
  options.sync_commits = false;
  options.checkpoint_wal_bytes = 4096;  // tiny threshold
  ham_ = std::make_unique<Ham>(env_, options);
  auto ctx = ham_->OpenGraph(project_, "local", dir_);
  ASSERT_TRUE(ctx.ok());
  ctx_ = *ctx;
  for (int i = 0; i < 50; ++i) {
    MakeNode(std::string(512, 'x'));
  }
  auto stats = ham_->GetStats(ctx_);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->wal_bytes, 64u * 1024u)
      << "auto-checkpoint should have rotated the WAL";
  Reopen();
  EXPECT_EQ(ham_->GetStats(ctx_)->node_count, 50u);
}

TEST_F(HamRecoveryTest, TimestampsContinueAfterReopen) {
  NodeIndex n = MakeNode("v1");
  const Time before = *ham_->GetNodeTimeStamp(ctx_, n);
  Reopen();
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, before);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, before, "v2", {}, "").ok());
  EXPECT_GT(*ham_->GetNodeTimeStamp(ctx_, n), before);
}

}  // namespace
}  // namespace ham
}  // namespace neptune

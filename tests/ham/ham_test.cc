// End-to-end tests of the A.1/A.2/A.3 operations on the local engine.

#include "ham/ham.h"

#include <gtest/gtest.h>

#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

using HamGraphTest = HamTestBase;

TEST_F(HamGraphTest, CreateGraphAssignsUniqueProjects) {
  auto second = ham_->CreateGraph(dir_ + "_b", 0755);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->project, project_);
  EXPECT_GE(second->creation_time, 1u);
  EXPECT_TRUE(ham_->DestroyGraph(second->project, dir_ + "_b").ok());
}

TEST_F(HamGraphTest, CreateGraphTwiceFails) {
  EXPECT_TRUE(ham_->CreateGraph(dir_, 0755).status().IsAlreadyExists());
}

TEST_F(HamGraphTest, OpenGraphValidatesProjectId) {
  auto bad = ham_->OpenGraph(project_ + 1, "local", dir_);
  EXPECT_TRUE(bad.status().IsPermissionDenied());
}

TEST_F(HamGraphTest, OpenMissingGraphIsNotFound) {
  auto bad = ham_->OpenGraph(project_, "local", dir_ + "_missing");
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST_F(HamGraphTest, DestroyRequiresMatchingProjectAndNoSessions) {
  EXPECT_TRUE(ham_->DestroyGraph(project_, dir_).IsFailedPrecondition());
  ASSERT_TRUE(ham_->CloseGraph(ctx_).ok());
  EXPECT_TRUE(ham_->DestroyGraph(project_ + 1, dir_).IsPermissionDenied());
  EXPECT_TRUE(ham_->DestroyGraph(project_, dir_).ok());
  EXPECT_FALSE(env_->FileExists(dir_));
}

TEST_F(HamGraphTest, ClosedContextIsRejected) {
  ASSERT_TRUE(ham_->CloseGraph(ctx_).ok());
  EXPECT_TRUE(ham_->AddNode(ctx_, true).status().IsInvalidArgument());
  EXPECT_TRUE(ham_->CloseGraph(ctx_).IsInvalidArgument());
}

using HamNodeTest = HamTestBase;

TEST_F(HamNodeTest, AddAndOpenEmptyNode) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  EXPECT_GE(added->node, 1u);
  EXPECT_GT(added->creation_time, 0u);

  auto opened = ham_->OpenNode(ctx_, added->node, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->contents, "");
  EXPECT_TRUE(opened->attachments.empty());
  EXPECT_EQ(opened->current_version_time, added->creation_time);
}

TEST_F(HamNodeTest, NodeIndicesAreUnique) {
  auto a = ham_->AddNode(ctx_, true);
  auto b = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->node, b->node);
}

TEST_F(HamNodeTest, ModifyCreatesVersionsAndTimeTravelWorks) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  const NodeIndex n = added->node;
  Time t0 = added->creation_time;

  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, t0, "version one", {}, "first").ok());
  auto ts1 = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ts1.ok());
  ASSERT_TRUE(
      ham_->ModifyNode(ctx_, n, *ts1, "version two", {}, "second").ok());
  auto ts2 = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ts2.ok());
  EXPECT_GT(*ts2, *ts1);

  EXPECT_EQ(ReadNode(n, 0), "version two");
  EXPECT_EQ(ReadNode(n, *ts1), "version one");
  EXPECT_EQ(ReadNode(n, *ts2), "version two");
  EXPECT_EQ(ReadNode(n, t0), "");

  auto versions = ham_->GetNodeVersions(ctx_, n);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->major.size(), 3u);  // created + 2 edits
  EXPECT_EQ(versions->major[1].explanation, "first");
  EXPECT_EQ(versions->major[2].explanation, "second");
}

TEST_F(HamNodeTest, ModifyWithStaleTimeIsConflict) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(ham_->ModifyNode(ctx_, added->node, added->creation_time, "v1",
                               {}, "")
                  .ok());
  // Re-using the creation time must now fail: someone else checked in.
  Status stale = ham_->ModifyNode(ctx_, added->node, added->creation_time,
                                  "v2", {}, "");
  EXPECT_TRUE(stale.IsConflict()) << stale.ToString();
  EXPECT_EQ(ReadNode(added->node), "v1");
}

TEST_F(HamNodeTest, FileNodesKeepNoHistory) {
  auto added = ham_->AddNode(ctx_, /*keep_history=*/false);
  ASSERT_TRUE(added.ok());
  const NodeIndex n = added->node;
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, added->creation_time, "v1", {}, "")
                  .ok());
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, *ts, "v2", {}, "").ok());
  // Any requested time returns the current contents for a file node.
  EXPECT_EQ(ReadNode(n, 0), "v2");
  EXPECT_EQ(ReadNode(n, *ts), "v2");
  auto versions = ham_->GetNodeVersions(ctx_, n);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->major.size(), 1u);
}

TEST_F(HamNodeTest, DeleteNodeHidesItNowButNotHistorically) {
  NodeIndex n = MakeNode("doomed");
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(ham_->DeleteNode(ctx_, n).ok());
  EXPECT_TRUE(ham_->OpenNode(ctx_, n, 0, {}).status().IsNotFound());
  EXPECT_TRUE(ham_->GetNodeTimeStamp(ctx_, n).status().IsNotFound());
  // "it is possible to see any version of the hyperdocument back to
  // its beginning":
  auto historical = ham_->OpenNode(ctx_, n, *ts, {});
  ASSERT_TRUE(historical.ok()) << historical.status().ToString();
  EXPECT_EQ(historical->contents, "doomed");
  EXPECT_TRUE(ham_->DeleteNode(ctx_, n).IsNotFound());
}

TEST_F(HamNodeTest, GetNodeDifferences) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  const NodeIndex n = added->node;
  ASSERT_TRUE(
      ham_->ModifyNode(ctx_, n, added->creation_time, "a\nb\nc\n", {}, "")
          .ok());
  auto t1 = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, *t1, "a\nB!\nc\nd\n", {}, "").ok());
  auto t2 = ham_->GetNodeTimeStamp(ctx_, n);

  auto diffs = ham_->GetNodeDifferences(ctx_, n, *t1, *t2);
  ASSERT_TRUE(diffs.ok());
  ASSERT_EQ(diffs->size(), 2u);
  EXPECT_EQ((*diffs)[0].kind, delta::DifferenceKind::kReplacement);
  EXPECT_EQ((*diffs)[0].old_lines, std::vector<std::string>{"b"});
  EXPECT_EQ((*diffs)[0].new_lines, std::vector<std::string>{"B!"});
  EXPECT_EQ((*diffs)[1].kind, delta::DifferenceKind::kInsertion);

  // Same version on both sides: no differences.
  auto none = ham_->GetNodeDifferences(ctx_, n, *t2, *t2);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(HamNodeTest, ProtectionsAreEnforced) {
  NodeIndex n = MakeNode("secret");
  ASSERT_TRUE(ham_->ChangeNodeProtection(ctx_, n, 0200).ok());  // write-only
  EXPECT_TRUE(ham_->OpenNode(ctx_, n, 0, {}).status().IsPermissionDenied());
  ASSERT_TRUE(ham_->ChangeNodeProtection(ctx_, n, 0400).ok());  // read-only
  EXPECT_EQ(ReadNode(n), "secret");
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  EXPECT_TRUE(ham_->ModifyNode(ctx_, n, *ts, "nope", {}, "")
                  .IsPermissionDenied());
  ASSERT_TRUE(ham_->ChangeNodeProtection(ctx_, n, 0644).ok());
  EXPECT_TRUE(ham_->ModifyNode(ctx_, n, *ts, "yes", {}, "").ok());
}

using HamLinkTest = HamTestBase;

TEST_F(HamLinkTest, AddLinkAndTraverseEnds) {
  NodeIndex a = MakeNode("source node");
  NodeIndex b = MakeNode("destination node");
  auto link = ham_->AddLink(ctx_, LinkPt{a, 7, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok()) << link.status().ToString();

  auto to = ham_->GetToNode(ctx_, link->link, 0);
  ASSERT_TRUE(to.ok());
  EXPECT_EQ(to->node, b);
  auto from = ham_->GetFromNode(ctx_, link->link, 0);
  ASSERT_TRUE(from.ok());
  EXPECT_EQ(from->node, a);

  auto opened = ham_->OpenNode(ctx_, a, 0, {});
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(opened->attachments.size(), 1u);
  EXPECT_EQ(opened->attachments[0].link, link->link);
  EXPECT_TRUE(opened->attachments[0].is_source_end);
  EXPECT_EQ(opened->attachments[0].position, 7u);
  EXPECT_TRUE(opened->attachments[0].track_current);

  auto opened_b = ham_->OpenNode(ctx_, b, 0, {});
  ASSERT_TRUE(opened_b.ok());
  ASSERT_EQ(opened_b->attachments.size(), 1u);
  EXPECT_FALSE(opened_b->attachments[0].is_source_end);
}

TEST_F(HamLinkTest, AddLinkToMissingNodeFails) {
  NodeIndex a = MakeNode("x");
  auto bad =
      ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{9999, 0, 0, true});
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST_F(HamLinkTest, PinnedEndRefersToSpecificVersion) {
  NodeIndex a = MakeNode("anchor");
  NodeIndex b = MakeNode("target v1");
  auto tb = ham_->GetNodeTimeStamp(ctx_, b);
  ASSERT_TRUE(tb.ok());
  // Pin the destination to b's current version.
  auto link =
      ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{b, 0, *tb, false});
  ASSERT_TRUE(link.ok());
  // b moves on.
  ASSERT_TRUE(ham_->ModifyNode(ctx_, b, *tb, "target v2", {}, "").ok());
  auto to = ham_->GetToNode(ctx_, link->link, 0);
  ASSERT_TRUE(to.ok());
  EXPECT_EQ(to->node, b);
  EXPECT_EQ(to->version_time, *tb);  // still the pinned version
  // A tracking link would report the current version instead.
  auto tracking =
      ham_->AddLink(ctx_, LinkPt{a, 1, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(tracking.ok());
  auto to2 = ham_->GetToNode(ctx_, tracking->link, 0);
  ASSERT_TRUE(to2.ok());
  EXPECT_EQ(to2->version_time, *ham_->GetNodeTimeStamp(ctx_, b));
}

TEST_F(HamLinkTest, ModifyNodeUpdatesAttachmentOffsets) {
  NodeIndex a = MakeNode("0123456789");
  NodeIndex b = MakeNode("elsewhere");
  auto link = ham_->AddLink(ctx_, LinkPt{a, 5, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok());

  auto ts = ham_->GetNodeTimeStamp(ctx_, a);
  // Text grew in front of the attachment: offset 5 -> 12.
  ASSERT_TRUE(ham_->ModifyNode(ctx_, a, *ts, "PREFIXED 0123456789",
                               {{link->link, true, 12}}, "grew")
                  .ok());
  auto now = ham_->OpenNode(ctx_, a, 0, {});
  ASSERT_TRUE(now.ok());
  ASSERT_EQ(now->attachments.size(), 1u);
  EXPECT_EQ(now->attachments[0].position, 12u);
  // "a history of link attachment offsets is saved": the old version
  // (as of the link's creation, before the edit) shows the old offset.
  auto then = ham_->OpenNode(ctx_, a, link->creation_time, {});
  ASSERT_TRUE(then.ok());
  ASSERT_EQ(then->attachments.size(), 1u);
  EXPECT_EQ(then->attachments[0].position, 5u);
}

TEST_F(HamLinkTest, ModifyNodeRequiresAllAttachments) {
  NodeIndex a = MakeNode("has links");
  NodeIndex b = MakeNode("other");
  ASSERT_TRUE(
      ham_->AddLink(ctx_, LinkPt{a, 3, 0, true}, LinkPt{b, 0, 0, true}).ok());
  auto ts = ham_->GetNodeTimeStamp(ctx_, a);
  // "There must be a LinkPt for each link associated with the current
  // version of the node."
  Status missing = ham_->ModifyNode(ctx_, a, *ts, "new", {}, "");
  EXPECT_TRUE(missing.IsInvalidArgument()) << missing.ToString();
}

TEST_F(HamLinkTest, CopyLinkCopiesChosenEnd) {
  NodeIndex a = MakeNode("from");
  NodeIndex b = MakeNode("to");
  NodeIndex c = MakeNode("third");
  auto original =
      ham_->AddLink(ctx_, LinkPt{a, 11, 0, true}, LinkPt{b, 22, 0, true});
  ASSERT_TRUE(original.ok());

  // Copy the source end; destination becomes c.
  auto copy = ham_->CopyLink(ctx_, original->link, 0, /*copy_source=*/true,
                             LinkPt{c, 33, 0, true});
  ASSERT_TRUE(copy.ok());
  EXPECT_NE(copy->link, original->link);
  auto from = ham_->GetFromNode(ctx_, copy->link, 0);
  ASSERT_TRUE(from.ok());
  EXPECT_EQ(from->node, a);
  auto to = ham_->GetToNode(ctx_, copy->link, 0);
  ASSERT_TRUE(to.ok());
  EXPECT_EQ(to->node, c);

  // Copy the destination end; source becomes c.
  auto copy2 = ham_->CopyLink(ctx_, original->link, 0, /*copy_source=*/false,
                              LinkPt{c, 44, 0, true});
  ASSERT_TRUE(copy2.ok());
  EXPECT_EQ(ham_->GetFromNode(ctx_, copy2->link, 0)->node, c);
  EXPECT_EQ(ham_->GetToNode(ctx_, copy2->link, 0)->node, b);
}

TEST_F(HamLinkTest, DeleteLinkRemovesAttachment) {
  NodeIndex a = MakeNode("one");
  NodeIndex b = MakeNode("two");
  auto link = ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(ham_->DeleteLink(ctx_, link->link).ok());
  EXPECT_TRUE(ham_->GetToNode(ctx_, link->link, 0).status().IsNotFound());
  auto opened = ham_->OpenNode(ctx_, a, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->attachments.empty());
  EXPECT_TRUE(ham_->DeleteLink(ctx_, link->link).IsNotFound());
}

TEST_F(HamLinkTest, DeleteNodeCascadesToLinks) {
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  NodeIndex c = MakeNode("c");
  auto ab = ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{b, 0, 0, true});
  auto cb = ham_->AddLink(ctx_, LinkPt{c, 0, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(cb.ok());
  ASSERT_TRUE(ham_->DeleteNode(ctx_, b).ok());
  // "All links into or out of the node are deleted."
  EXPECT_TRUE(ham_->GetToNode(ctx_, ab->link, 0).status().IsNotFound());
  EXPECT_TRUE(ham_->GetToNode(ctx_, cb->link, 0).status().IsNotFound());
  auto opened = ham_->OpenNode(ctx_, a, 0, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->attachments.empty());
}

TEST_F(HamLinkTest, HistoricalOpenShowsDeletedLinks) {
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  auto link = ham_->AddLink(ctx_, LinkPt{a, 4, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok());
  const Time before_delete = link->creation_time;
  ASSERT_TRUE(ham_->DeleteLink(ctx_, link->link).ok());
  auto then = ham_->OpenNode(ctx_, a, before_delete, {});
  ASSERT_TRUE(then.ok());
  ASSERT_EQ(then->attachments.size(), 1u);
  EXPECT_EQ(then->attachments[0].link, link->link);
}

}  // namespace
}  // namespace ham
}  // namespace neptune

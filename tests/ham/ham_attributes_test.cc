// A.4 attribute operations end-to-end, including the versioned
// attribute semantics and the CASE-style conventions from paper §4.2.

#include <gtest/gtest.h>

#include "ham/ham.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

using HamAttributeTest = HamTestBase;

TEST_F(HamAttributeTest, GetAttributeIndexInternsOnce) {
  AttributeIndex a = Attr("contentType");
  AttributeIndex b = Attr("relation");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(Attr("contentType"), a);  // idempotent
}

TEST_F(HamAttributeTest, SetAndGetNodeAttribute) {
  NodeIndex n = MakeNode("procedure foo;");
  AttributeIndex content_type = Attr("contentType");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, content_type,
                                          "Modula-2 source")
                  .ok());
  auto value = ham_->GetNodeAttributeValue(ctx_, n, content_type, 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "Modula-2 source");
}

TEST_F(HamAttributeTest, SetWithUndefinedAttributeIndexFails) {
  NodeIndex n = MakeNode("x");
  EXPECT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, n, 999, "v").IsNotFound());
}

TEST_F(HamAttributeTest, AttributeValuesAreVersionedOnArchives) {
  NodeIndex n = MakeNode("doc");
  AttributeIndex status = Attr("status");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, status, "draft").ok());
  auto stats1 = ham_->GetStats(ctx_);
  const Time t_draft = stats1->current_time;
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, status, "reviewed").ok());

  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, status, 0), "reviewed");
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, status, t_draft), "draft");
}

TEST_F(HamAttributeTest, DeleteAttributeDetachesNowNotHistorically) {
  NodeIndex n = MakeNode("doc");
  AttributeIndex status = Attr("status");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, status, "draft").ok());
  const Time t_set = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(ham_->DeleteNodeAttribute(ctx_, n, status).ok());
  EXPECT_TRUE(
      ham_->GetNodeAttributeValue(ctx_, n, status, 0).status().IsNotFound());
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, status, t_set), "draft");
}

TEST_F(HamAttributeTest, GetNodeAttributesReturnsNamesAndValues) {
  NodeIndex n = MakeNode("module M;");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, Attr("contentType"),
                                          "Modula-2 source")
                  .ok());
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, Attr("codeType"),
                                          "implementationModule")
                  .ok());
  auto all = ham_->GetNodeAttributes(ctx_, n, 0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].name, "contentType");
  EXPECT_EQ((*all)[0].value, "Modula-2 source");
  EXPECT_EQ((*all)[1].name, "codeType");
}

TEST_F(HamAttributeTest, LinkAttributesWork) {
  NodeIndex a = MakeNode("module A");
  NodeIndex b = MakeNode("module B");
  auto link = ham_->AddLink(ctx_, LinkPt{a, 0, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(link.ok());
  AttributeIndex relation = Attr("relation");
  ASSERT_TRUE(
      ham_->SetLinkAttributeValue(ctx_, link->link, relation, "imports").ok());
  EXPECT_EQ(*ham_->GetLinkAttributeValue(ctx_, link->link, relation, 0),
            "imports");
  auto all = ham_->GetLinkAttributes(ctx_, link->link, 0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].name, "relation");
  EXPECT_EQ((*all)[0].value, "imports");

  // Versioned because both endpoints are archives.
  const Time t1 = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(
      ham_->SetLinkAttributeValue(ctx_, link->link, relation, "isPartOf")
          .ok());
  EXPECT_EQ(*ham_->GetLinkAttributeValue(ctx_, link->link, relation, t1),
            "imports");
  EXPECT_EQ(*ham_->GetLinkAttributeValue(ctx_, link->link, relation, 0),
            "isPartOf");

  ASSERT_TRUE(ham_->DeleteLinkAttribute(ctx_, link->link, relation).ok());
  EXPECT_TRUE(ham_->GetLinkAttributeValue(ctx_, link->link, relation, 0)
                  .status()
                  .IsNotFound());
}

TEST_F(HamAttributeTest, GetAttributesListsDefinitionsAtTime) {
  auto before = ham_->GetAttributes(ctx_, 0);
  ASSERT_TRUE(before.ok());
  const size_t initial = before->size();
  Attr("first");
  const Time t_first = ham_->GetStats(ctx_)->current_time;
  Attr("second");
  auto at_first = ham_->GetAttributes(ctx_, t_first);
  ASSERT_TRUE(at_first.ok());
  EXPECT_EQ(at_first->size(), initial + 1);
  auto now = ham_->GetAttributes(ctx_, 0);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->size(), initial + 2);
  EXPECT_EQ(now->back().name, "second");
}

TEST_F(HamAttributeTest, GetAttributeValuesCollectsDistinctValues) {
  AttributeIndex document = Attr("document");
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  NodeIndex c = MakeNode("c");
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, a, document, "requirements").ok());
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, b, document, "design").ok());
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, c, document, "design").ok());
  auto values = ham_->GetAttributeValues(ctx_, document, 0);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values,
            (std::vector<std::string>{"design", "requirements"}));  // sorted

  EXPECT_TRUE(ham_->GetAttributeValues(ctx_, 999, 0).status().IsNotFound());
}

TEST_F(HamAttributeTest, FileNodeAttributesAreUnversioned) {
  auto added = ham_->AddNode(ctx_, /*keep_history=*/false);
  ASSERT_TRUE(added.ok());
  AttributeIndex status = Attr("status");
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, added->node, status, "v1").ok());
  const Time t1 = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, added->node, status, "v2").ok());
  // No history is kept: "v1" is unrecoverable — a read at the time it
  // was current finds nothing (only the later, unversioned entry
  // exists), and the current read sees "v2".
  EXPECT_TRUE(ham_->GetNodeAttributeValue(ctx_, added->node, status, t1)
                  .status()
                  .IsNotFound());
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, added->node, status, 0), "v2");
}

TEST_F(HamAttributeTest, AttributesOnDeletedNodeFail) {
  NodeIndex n = MakeNode("bye");
  AttributeIndex a = Attr("x");
  ASSERT_TRUE(ham_->DeleteNode(ctx_, n).ok());
  EXPECT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, a, "v").IsNotFound());
}

}  // namespace
}  // namespace ham
}  // namespace neptune

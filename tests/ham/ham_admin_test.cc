// Local administration: graph integrity checking (fsck) and history
// pruning, plus the §5 mail-notification demon built on them.

#include <gtest/gtest.h>

#include "app/notify.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

class HamAdminTest : public HamTestBase {};

TEST_F(HamAdminTest, FreshGraphIsClean) {
  auto problems = ham_->VerifyGraph(ctx_);
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty());
}

TEST_F(HamAdminTest, BusyGraphStaysClean) {
  AttributeIndex doc = Attr("document");
  std::vector<NodeIndex> nodes;
  for (int i = 0; i < 10; ++i) {
    NodeIndex n = MakeNode("node " + std::to_string(i));
    ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, doc, "x").ok());
    nodes.push_back(n);
  }
  for (int i = 1; i < 10; ++i) {
    ASSERT_TRUE(ham_->AddLink(ctx_, LinkPt{nodes[0], uint64_t(i), 0, true},
                              LinkPt{nodes[i], 0, 0, true})
                    .ok());
  }
  ASSERT_TRUE(ham_->DeleteNode(ctx_, nodes[5]).ok());
  auto info = ham_->CreateContext(ctx_, "w");
  ASSERT_TRUE(info.ok());
  auto problems = ham_->VerifyGraph(ctx_);
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty()) << (*problems)[0];
  Reopen();  // clean after recovery too
  problems = ham_->VerifyGraph(ctx_);
  ASSERT_TRUE(problems.ok());
  EXPECT_TRUE(problems->empty());
}

TEST_F(HamAdminTest, PruneHistoryDropsOldVersionsOnly) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  const NodeIndex n = added->node;
  Time expected = added->creation_time;
  std::vector<Time> times;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ham_->ModifyNode(ctx_, n, expected,
                                 "v" + std::to_string(i), {}, "")
                    .ok());
    expected = *ham_->GetNodeTimeStamp(ctx_, n);
    times.push_back(expected);
  }
  // Prune everything before version 5.
  auto pruned = ham_->PruneHistory(ctx_, times[5]);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();

  // Versions >= the horizon still read back exactly.
  for (int i = 5; i < 10; ++i) {
    EXPECT_EQ(ReadNode(n, times[i]), "v" + std::to_string(i)) << i;
  }
  // Earlier versions are gone.
  EXPECT_TRUE(ham_->OpenNode(ctx_, n, times[2], {}).status().IsNotFound());
  auto versions = ham_->GetNodeVersions(ctx_, n);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->major.size(), 5u);
  // The graph is still structurally sound and recoverable.
  EXPECT_TRUE(ham_->VerifyGraph(ctx_)->empty());
  Reopen();
  EXPECT_EQ(ReadNode(n, times[7]), "v7");
  EXPECT_EQ(ReadNode(n), "v9");
}

TEST_F(HamAdminTest, PruneShrinksStorage) {
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  Time expected = added->creation_time;
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "line " + std::to_string(i) + "\n";
    ASSERT_TRUE(ham_->ModifyNode(ctx_, added->node, expected, text, {}, "")
                    .ok());
    expected = *ham_->GetNodeTimeStamp(ctx_, added->node);
  }
  ASSERT_TRUE(ham_->Checkpoint(ctx_).ok());
  auto full = ham_->PruneHistory(ctx_, 1);  // prunes nothing (horizon = t1)
  ASSERT_TRUE(full.ok());
  auto slim = ham_->PruneHistory(ctx_, expected);  // keep only current
  ASSERT_TRUE(slim.ok());
  EXPECT_LT(*slim, *full);
}

TEST_F(HamAdminTest, PruneAlsoTrimsAttributeHistories) {
  NodeIndex n = MakeNode("x");
  AttributeIndex status = Attr("status");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, status,
                                            "v" + std::to_string(i))
                    .ok());
  }
  const Time horizon = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(ham_->PruneHistory(ctx_, horizon).ok());
  // The current value survives; history before the horizon is gone
  // but the in-effect entry still answers reads at the horizon.
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, status, 0), "v4");
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, status, horizon), "v4");
}

TEST_F(HamAdminTest, PruneRejectedInsideTransactionAndAtTimeZero) {
  EXPECT_TRUE(ham_->PruneHistory(ctx_, 0).status().IsInvalidArgument());
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  EXPECT_TRUE(ham_->PruneHistory(ctx_, 1).status().IsFailedPrecondition());
  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
}

TEST_F(HamAdminTest, MailDemonNotifiesResponsiblePerson) {
  // Paper §5: "sending mail to the person responsible for a node when
  // someone other than that person modifies the node."
  app::NotificationCenter mayer(ham_.get(), ctx_, "mayer");
  ASSERT_TRUE(mayer.Init().ok());
  mayer.Install(&ham_->demons());

  NodeIndex n = MakeNode("norm's design notes");
  ASSERT_TRUE(mayer.SetResponsible(n, "norm").ok());
  ASSERT_TRUE(mayer.Watch(n).ok());

  // mayer (not the responsible person) modifies the node.
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, *ts, "mayer was here", {}, "").ok());

  auto mail = mayer.MessagesFor("norm");
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].modified_by, "mayer");
  EXPECT_EQ(mail[0].invocation.node, n);
  EXPECT_EQ(mail[0].invocation.event, Event::kModifyNode);
  EXPECT_GT(mail[0].invocation.timestamp, 0u);
}

TEST_F(HamAdminTest, MailDemonSilentWhenOwnerModifies) {
  app::NotificationCenter norm(ham_.get(), ctx_, "norm");
  ASSERT_TRUE(norm.Init().ok());
  norm.Install(&ham_->demons());
  NodeIndex n = MakeNode("own notes");
  ASSERT_TRUE(norm.SetResponsible(n, "norm").ok());
  ASSERT_TRUE(norm.Watch(n).ok());
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, *ts, "self edit", {}, "").ok());
  EXPECT_EQ(norm.TotalMessages(), 0u);
}

}  // namespace
}  // namespace ham
}  // namespace neptune

// Concurrency: "Several persons can access a hyperdocument
// simultaneously" (paper §2.2) — multi-threaded sessions against one
// graph, serialized writers, stable readers, and multi-graph
// independence.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

class HamConcurrencyTest : public HamTestBase {};

TEST_F(HamConcurrencyTest, ParallelImplicitWritersAllCommit) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      if (!ctx.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto added = ham_->AddNode(*ctx, true);
        if (!added.ok()) {
          ++failures;
          continue;
        }
        Status st = ham_->ModifyNode(
            *ctx, added->node, added->creation_time,
            "writer " + std::to_string(w) + " op " + std::to_string(i), {},
            "");
        if (!st.ok()) ++failures;
      }
      ham_->CloseGraph(*ctx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures, 0);
  auto stats = ham_->GetStats(ctx_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, kThreads * kOpsPerThread);
  // Everything that committed survives recovery.
  Reopen();
  EXPECT_EQ(ham_->GetStats(ctx_)->node_count, kThreads * kOpsPerThread);
}

TEST_F(HamConcurrencyTest, ExplicitTransactionsSerialize) {
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 10;
  std::atomic<int> in_critical{0};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      ASSERT_TRUE(ctx.ok());
      for (int i = 0; i < kTxnsPerThread; ++i) {
        if (!ham_->BeginTransaction(*ctx).ok()) {
          ++failures;
          continue;
        }
        // Only one open transaction may exist per graph.
        if (in_critical.fetch_add(1) != 0) ++violations;
        auto added = ham_->AddNode(*ctx, true);
        if (!added.ok()) ++failures;
        std::this_thread::yield();
        in_critical.fetch_sub(1);
        if (!ham_->CommitTransaction(*ctx).ok()) ++failures;
      }
      ham_->CloseGraph(*ctx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations, 0) << "two transactions were open simultaneously";
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(ham_->GetStats(ctx_)->node_count, kThreads * kTxnsPerThread);
}

TEST_F(HamConcurrencyTest, ReadersRunAgainstActiveWriters) {
  std::vector<NodeIndex> nodes;
  for (int i = 0; i < 20; ++i) nodes.push_back(MakeNode("stable contents"));
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};

  std::thread writer([&] {
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ASSERT_TRUE(ctx.ok());
    while (!stop) {
      auto added = ham_->AddNode(*ctx, true);
      if (added.ok()) ham_->DeleteNode(*ctx, added->node);
    }
    ham_->CloseGraph(*ctx);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      ASSERT_TRUE(ctx.ok());
      for (int i = 0; i < 300; ++i) {
        auto opened = ham_->OpenNode(*ctx, nodes[i % nodes.size()], 0, {});
        if (!opened.ok() || opened->contents != "stable contents") {
          ++read_errors;
        }
        auto query = ham_->GetGraphQuery(*ctx, 0, "", "", {}, {});
        if (!query.ok()) ++read_errors;
      }
      ham_->CloseGraph(*ctx);
    });
  }
  for (auto& t : readers) t.join();
  stop = true;
  writer.join();
  EXPECT_EQ(read_errors, 0);
}

TEST_F(HamConcurrencyTest, IndependentGraphsDontInterfere) {
  // Writers on two different graphs must not serialize against each
  // other (per-graph locking), and state must stay separate.
  const std::string dir2 = dir_ + "_second";
  env_->RemoveDirRecursive(dir2);
  auto created2 = ham_->CreateGraph(dir2, 0755);
  ASSERT_TRUE(created2.ok());
  auto ctx2 = ham_->OpenGraph(created2->project, "local", dir2);
  ASSERT_TRUE(ctx2.ok());

  // Hold a transaction open on graph 1...
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  ASSERT_TRUE(ham_->AddNode(ctx_, true).ok());
  // ...and write to graph 2 without blocking.
  std::atomic<bool> done{false};
  std::thread other([&] {
    auto added = ham_->AddNode(*ctx2, true);
    EXPECT_TRUE(added.ok());
    done = true;
  });
  other.join();
  EXPECT_TRUE(done);
  ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());

  EXPECT_EQ(ham_->GetStats(ctx_)->node_count, 1u);
  EXPECT_EQ(ham_->GetStats(*ctx2)->node_count, 1u);
  ASSERT_TRUE(ham_->CloseGraph(*ctx2).ok());
  ASSERT_TRUE(ham_->DestroyGraph(created2->project, dir2).ok());
}

TEST_F(HamConcurrencyTest, SharedHandleSeesOneAnothersCommits) {
  auto ctx2 = ham_->OpenGraph(project_, "local", dir_);
  ASSERT_TRUE(ctx2.ok());
  NodeIndex n = MakeNode("from session 1");
  auto seen = ham_->OpenNode(*ctx2, n, 0, {});
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen->contents, "from session 1");
  ASSERT_TRUE(ham_->CloseGraph(*ctx2).ok());
}

}  // namespace
}  // namespace ham
}  // namespace neptune

// The §5 extensions: demons (with parameterized invocation records)
// and contexts / multiple version threads with merge.

#include <gtest/gtest.h>

#include "ham/ham.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

class HamDemonTest : public HamTestBase {
 protected:
  // Records every invocation of the "record" demon callback.
  void SetUp() override {
    HamTestBase::SetUp();
    ham_->demons().Register("record", [this](const DemonInvocation& inv) {
      invocations_.push_back(inv);
    });
  }

  std::vector<DemonInvocation> invocations_;
};

TEST_F(HamDemonTest, GraphDemonFiresOnMatchingEvent) {
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "record new-nodes")
          .ok());
  auto added = ham_->AddNode(ctx_, true);
  ASSERT_TRUE(added.ok());
  ASSERT_EQ(invocations_.size(), 1u);
  // The §5 parameterized invocation record.
  EXPECT_EQ(invocations_[0].event, Event::kAddNode);
  EXPECT_EQ(invocations_[0].node, added->node);
  EXPECT_EQ(invocations_[0].graph, project_);
  EXPECT_EQ(invocations_[0].timestamp, added->creation_time);
  EXPECT_EQ(invocations_[0].demon, "record new-nodes");
  // Unrelated events don't fire it.
  ASSERT_TRUE(ham_->DeleteNode(ctx_, added->node).ok());
  EXPECT_EQ(invocations_.size(), 1u);
}

TEST_F(HamDemonTest, NodeDemonFiresOnThatNodeOnly) {
  NodeIndex watched = MakeNode("watched");
  NodeIndex other = MakeNode("other");
  // "invoking an incremental compiler when a node which contains code
  // is modified" (paper §5).
  ASSERT_TRUE(
      ham_->SetNodeDemon(ctx_, watched, Event::kModifyNode, "record compile")
          .ok());
  auto ts = ham_->GetNodeTimeStamp(ctx_, other);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, other, *ts, "x", {}, "").ok());
  EXPECT_TRUE(invocations_.empty());
  ts = ham_->GetNodeTimeStamp(ctx_, watched);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, watched, *ts, "y", {}, "").ok());
  ASSERT_EQ(invocations_.size(), 1u);
  EXPECT_EQ(invocations_[0].node, watched);
  EXPECT_EQ(invocations_[0].event, Event::kModifyNode);
}

TEST_F(HamDemonTest, NullDemonDisables) {
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "record x").ok());
  ASSERT_TRUE(ham_->AddNode(ctx_, true).ok());
  ASSERT_EQ(invocations_.size(), 1u);
  // "If Demon is null then demon is disabled."
  ASSERT_TRUE(ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "").ok());
  ASSERT_TRUE(ham_->AddNode(ctx_, true).ok());
  EXPECT_EQ(invocations_.size(), 1u);
}

TEST_F(HamDemonTest, DemonsFireOnlyOnCommit) {
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "record x").ok());
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  ASSERT_TRUE(ham_->AddNode(ctx_, true).ok());
  EXPECT_TRUE(invocations_.empty()) << "demon fired before commit";
  ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());
  EXPECT_EQ(invocations_.size(), 1u);

  invocations_.clear();
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  ASSERT_TRUE(ham_->AddNode(ctx_, true).ok());
  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
  EXPECT_TRUE(invocations_.empty()) << "aborted txn must not fire demons";
}

TEST_F(HamDemonTest, OpenNodeDemonFires) {
  NodeIndex n = MakeNode("contents");
  ASSERT_TRUE(
      ham_->SetNodeDemon(ctx_, n, Event::kOpenNode, "record read").ok());
  ASSERT_TRUE(ham_->OpenNode(ctx_, n, 0, {}).ok());
  ASSERT_EQ(invocations_.size(), 1u);
  EXPECT_EQ(invocations_[0].event, Event::kOpenNode);
}

TEST_F(HamDemonTest, GetDemonsReturnsHistory) {
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "record a").ok());
  const Time t1 = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "record b").ok());
  auto now = ham_->GetGraphDemons(ctx_, 0);
  ASSERT_TRUE(now.ok());
  ASSERT_EQ(now->size(), 1u);
  EXPECT_EQ((*now)[0].demon, "record b");
  auto then = ham_->GetGraphDemons(ctx_, t1);
  ASSERT_TRUE(then.ok());
  ASSERT_EQ(then->size(), 1u);
  EXPECT_EQ((*then)[0].demon, "record a");

  NodeIndex n = MakeNode("x");
  ASSERT_TRUE(ham_->SetNodeDemon(ctx_, n, Event::kModifyNode, "record c").ok());
  auto node_demons = ham_->GetNodeDemons(ctx_, n, 0);
  ASSERT_TRUE(node_demons.ok());
  ASSERT_EQ(node_demons->size(), 1u);
  EXPECT_EQ((*node_demons)[0].demon, "record c");
}

TEST_F(HamDemonTest, UnregisteredDemonValueIsIgnored) {
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kAddNode, "nonexistent-callback")
          .ok());
  EXPECT_TRUE(ham_->AddNode(ctx_, true).ok());  // must not crash
  EXPECT_TRUE(invocations_.empty());
}

using HamContextTest = HamTestBase;

TEST_F(HamContextTest, PrivateWorldIsInvisibleToMain) {
  NodeIndex shared = MakeNode("shared base text");

  auto info = ham_->CreateContext(ctx_, "tentative-design");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_NE(info->thread, kMainThread);
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());

  // Work in the private world.
  auto ts = ham_->GetNodeTimeStamp(*branch, shared);
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(
      ham_->ModifyNode(*branch, shared, *ts, "tentative rewrite", {}, "try")
          .ok());
  auto extra = ham_->AddNode(*branch, true);
  ASSERT_TRUE(extra.ok());

  // The branch sees its changes; main does not.
  auto branch_view = ham_->OpenNode(*branch, shared, 0, {});
  ASSERT_TRUE(branch_view.ok());
  EXPECT_EQ(branch_view->contents, "tentative rewrite");
  EXPECT_EQ(ReadNode(shared), "shared base text");
  EXPECT_TRUE(
      ham_->OpenNode(ctx_, extra->node, 0, {}).status().IsNotFound());
  ASSERT_TRUE(ham_->CloseGraph(*branch).ok());
}

TEST_F(HamContextTest, MergeBringsChangesToMain) {
  NodeIndex shared = MakeNode("v1");
  auto info = ham_->CreateContext(ctx_, "experiment");
  ASSERT_TRUE(info.ok());
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  auto ts = ham_->GetNodeTimeStamp(*branch, shared);
  ASSERT_TRUE(ham_->ModifyNode(*branch, shared, *ts, "v2 from branch", {},
                               "branch edit")
                  .ok());
  auto extra = ham_->AddNode(*branch, true);
  ASSERT_TRUE(extra.ok());

  ASSERT_TRUE(ham_->MergeContext(ctx_, info->thread, /*force=*/false).ok());
  EXPECT_EQ(ReadNode(shared), "v2 from branch");
  EXPECT_TRUE(ham_->OpenNode(ctx_, extra->node, 0, {}).ok());
}

TEST_F(HamContextTest, ConflictingMergeIsRejectedUnlessForced) {
  NodeIndex shared = MakeNode("base");
  auto info = ham_->CreateContext(ctx_, "risky");
  ASSERT_TRUE(info.ok());
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  auto branch_ts = ham_->GetNodeTimeStamp(*branch, shared);
  ASSERT_TRUE(
      ham_->ModifyNode(*branch, shared, *branch_ts, "branch version", {}, "")
          .ok());
  // Meanwhile main moves on — a classic conflict.
  auto main_ts = ham_->GetNodeTimeStamp(ctx_, shared);
  ASSERT_TRUE(
      ham_->ModifyNode(ctx_, shared, *main_ts, "main version", {}, "").ok());

  Status conflict = ham_->MergeContext(ctx_, info->thread, false);
  EXPECT_TRUE(conflict.IsConflict()) << conflict.ToString();
  EXPECT_EQ(ReadNode(shared), "main version");

  ASSERT_TRUE(ham_->MergeContext(ctx_, info->thread, /*force=*/true).ok());
  EXPECT_EQ(ReadNode(shared), "branch version");
}

TEST_F(HamContextTest, DisjointEditsMergeCleanly) {
  NodeIndex a = MakeNode("alpha");
  NodeIndex b = MakeNode("beta");
  auto info = ham_->CreateContext(ctx_, "side");
  ASSERT_TRUE(info.ok());
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  // Branch edits a, main edits b: no conflict.
  auto ts_a = ham_->GetNodeTimeStamp(*branch, a);
  ASSERT_TRUE(ham_->ModifyNode(*branch, a, *ts_a, "alpha'", {}, "").ok());
  auto ts_b = ham_->GetNodeTimeStamp(ctx_, b);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, b, *ts_b, "beta'", {}, "").ok());

  ASSERT_TRUE(ham_->MergeContext(ctx_, info->thread, false).ok());
  EXPECT_EQ(ReadNode(a), "alpha'");
  EXPECT_EQ(ReadNode(b), "beta'");
}

TEST_F(HamContextTest, ListContextsShowsThreads) {
  auto initial = ham_->ListContexts(ctx_);
  ASSERT_TRUE(initial.ok());
  ASSERT_EQ(initial->size(), 1u);
  EXPECT_EQ((*initial)[0].thread, kMainThread);
  auto info = ham_->CreateContext(ctx_, "side-world");
  ASSERT_TRUE(info.ok());
  auto all = ham_->ListContexts(ctx_);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[1].name, "side-world");
  EXPECT_GT((*all)[1].branched_at, 0u);
}

TEST_F(HamContextTest, OpenUnknownContextFails) {
  EXPECT_TRUE(ham_->OpenContext(ctx_, 42).status().IsNotFound());
}

TEST_F(HamContextTest, ContextThreadReportsBinding) {
  EXPECT_EQ(*ham_->ContextThread(ctx_), kMainThread);
  auto info = ham_->CreateContext(ctx_, "w");
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  EXPECT_EQ(*ham_->ContextThread(*branch), info->thread);
  ASSERT_TRUE(ham_->CloseGraph(*branch).ok());
}

TEST_F(HamContextTest, ContextsSurviveReopen) {
  NodeIndex shared = MakeNode("base");
  auto info = ham_->CreateContext(ctx_, "persisted-world");
  ASSERT_TRUE(info.ok());
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  auto ts = ham_->GetNodeTimeStamp(*branch, shared);
  ASSERT_TRUE(
      ham_->ModifyNode(*branch, shared, *ts, "branch work", {}, "").ok());

  Reopen();
  auto all = ham_->ListContexts(ctx_);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[1].name, "persisted-world");
  auto branch2 = ham_->OpenContext(ctx_, (*all)[1].thread);
  ASSERT_TRUE(branch2.ok());
  auto view = ham_->OpenNode(*branch2, shared, 0, {});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->contents, "branch work");
  EXPECT_EQ(ReadNode(shared), "base");
  // Merge still works after recovery.
  ASSERT_TRUE(ham_->MergeContext(ctx_, (*all)[1].thread, false).ok());
  EXPECT_EQ(ReadNode(shared), "branch work");
}

TEST_F(HamContextTest, MergeInsideTransactionIsRejected) {
  auto info = ham_->CreateContext(ctx_, "w");
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  EXPECT_TRUE(
      ham_->MergeContext(ctx_, info->thread, false).IsFailedPrecondition());
  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
}

TEST_F(HamContextTest, QueriesInBranchSeeBranchState) {
  AttributeIndex doc = Attr("document");
  NodeIndex n = MakeNode("main doc");
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, doc, "spec").ok());
  auto info = ham_->CreateContext(ctx_, "w");
  auto branch = ham_->OpenContext(ctx_, info->thread);
  ASSERT_TRUE(branch.ok());
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(*branch, n, doc, "design").ok());

  auto main_q = ham_->GetGraphQuery(ctx_, 0, "document = spec", "", {}, {});
  ASSERT_TRUE(main_q.ok());
  EXPECT_EQ(main_q->nodes.size(), 1u);
  auto branch_q =
      ham_->GetGraphQuery(*branch, 0, "document = design", "", {}, {});
  ASSERT_TRUE(branch_q.ok());
  EXPECT_EQ(branch_q->nodes.size(), 1u);
  auto branch_q2 =
      ham_->GetGraphQuery(*branch, 0, "document = spec", "", {}, {});
  ASSERT_TRUE(branch_q2.ok());
  EXPECT_TRUE(branch_q2->nodes.empty());
}

}  // namespace
}  // namespace ham
}  // namespace neptune

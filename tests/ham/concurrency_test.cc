// Shared-lock stress tests: many reader threads against one writer on
// the same graph. Read-only operations take the per-graph lock shared
// (see GraphHandle::mu), so these tests are primarily aimed at
// ThreadSanitizer — they hammer every read path that now runs in
// parallel (opens, queries via the lazy attribute index, versioned
// reads through the reconstruction cache) while a writer stages,
// aborts and commits transactions, and assert that readers never
// observe uncommitted overlay state.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "delta/recon_cache.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

class HamSharedLockStressTest : public HamTestBase {};

// The writer stages "poison" contents inside transactions that always
// abort, interleaved with commits of values from a known set. Readers
// must only ever see initial or known-committed values: a reader that
// observes poison has read another session's open transaction overlay.
TEST_F(HamSharedLockStressTest, ReadersNeverObserveUncommittedOverlay) {
  constexpr int kReaders = 6;
  constexpr int kNodes = 4;
  // Modest round count: glibc's rwlock prefers readers, so the writer
  // makes slow progress under full reader pressure (and TSan slows
  // everything further).
  constexpr int kWriterRounds = 60;

  std::vector<NodeIndex> nodes;
  for (int i = 0; i < kNodes; ++i) nodes.push_back(MakeNode("initial"));

  std::mutex committed_mu;
  std::set<std::string> committed{"initial"};
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ASSERT_TRUE(ctx.ok());
    for (int round = 0; round < kWriterRounds; ++round) {
      const NodeIndex node = nodes[round % kNodes];
      auto stamp = ham_->GetNodeTimeStamp(*ctx, node);
      if (!stamp.ok()) {
        ++failures;
        continue;
      }
      if (!ham_->BeginTransaction(*ctx).ok()) {
        ++failures;
        continue;
      }
      // Stage poison: visible only inside this transaction.
      Status staged = ham_->ModifyNode(
          *ctx, node, *stamp, "overlay-poison-" + std::to_string(round), {},
          "staged");
      if (!staged.ok()) ++failures;
      std::this_thread::yield();
      if (round % 2 == 0) {
        if (!ham_->AbortTransaction(*ctx).ok()) ++failures;
      } else {
        // Overwrite the poison in the same transaction, then commit;
        // record the value BEFORE commit so readers can never see a
        // value the test does not yet allow.
        const std::string value = "committed-" + std::to_string(round);
        auto staged_stamp = ham_->GetNodeTimeStamp(*ctx, node);
        if (!staged_stamp.ok()) {
          ++failures;
          ham_->AbortTransaction(*ctx);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(committed_mu);
          committed.insert(value);
        }
        if (!ham_->ModifyNode(*ctx, node, *staged_stamp, value, {}, "final")
                 .ok()) {
          ++failures;
        }
        if (!ham_->CommitTransaction(*ctx).ok()) ++failures;
      }
    }
    stop = true;
    ham_->CloseGraph(*ctx);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      ASSERT_TRUE(ctx.ok());
      Random rng(1000 + r);
      for (int i = 0; !stop; ++i) {
        const NodeIndex node = nodes[rng.Uniform(nodes.size())];
        auto opened = ham_->OpenNode(*ctx, node, 0, {});
        if (!opened.ok()) {
          ++failures;
          continue;
        }
        if (opened->contents.find("poison") != std::string::npos) {
          ++violations;
        } else {
          std::lock_guard<std::mutex> lock(committed_mu);
          if (committed.count(opened->contents) == 0) ++violations;
        }
        // Exercise the other shared-lock read paths while writes
        // churn (a fraction of iterations, so the reader-preferring
        // rwlock leaves the writer room to make progress).
        if (i % 8 == 0) {
          if (!ham_->GetGraphQuery(*ctx, 0, "", "", {}, {}).ok()) ++failures;
          if (!ham_->GetNodeVersions(*ctx, node).ok()) ++failures;
          if (!ham_->GetStats(*ctx).ok()) ++failures;
        }
      }
      ham_->CloseGraph(*ctx);
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations, 0) << "a reader observed uncommitted overlay state";
  EXPECT_EQ(failures, 0);
}

// Readers replay random historical versions of a deep chain while a
// writer keeps appending new ones: keyframe walks and the shared
// reconstruction cache run concurrently and must agree exactly.
TEST_F(HamSharedLockStressTest, ConcurrentVersionedReadsAreExact) {
  constexpr int kReaders = 4;
  constexpr int kInitialVersions = 64;

  delta::ReconstructionCache::Instance().Clear();
  NodeIndex node = MakeNode("v0");
  std::vector<std::pair<Time, std::string>> history;  // (time, contents)
  std::string text = "v0";
  {
    auto opened = ham_->OpenNode(ctx_, node, 0, {});
    ASSERT_TRUE(opened.ok());
    history.emplace_back(opened->current_version_time, text);
  }
  for (int i = 1; i <= kInitialVersions; ++i) {
    text += "\nversion " + std::to_string(i);
    auto stamp = ham_->GetNodeTimeStamp(ctx_, node);
    ASSERT_TRUE(stamp.ok());
    ASSERT_TRUE(ham_->ModifyNode(ctx_, node, *stamp, text, {}, "").ok());
    auto after = ham_->GetNodeTimeStamp(ctx_, node);
    ASSERT_TRUE(after.ok());
    history.emplace_back(*after, text);
  }

  const uint64_t hits_before = MetricsRegistry::Instance()
                                   .GetCounter("delta.cache.hit")
                                   ->Value();
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};

  // The writer keeps growing the chain; readers only consult the
  // frozen prefix recorded in `history`.
  std::thread writer([&] {
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ASSERT_TRUE(ctx.ok());
    std::string tail = text;
    while (!stop) {
      tail += ".";
      auto stamp = ham_->GetNodeTimeStamp(*ctx, node);
      if (!stamp.ok() ||
          !ham_->ModifyNode(*ctx, node, *stamp, tail, {}, "").ok()) {
        ++failures;
      }
      std::this_thread::yield();
    }
    ham_->CloseGraph(*ctx);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      ASSERT_TRUE(ctx.ok());
      Random rng(7 + r);
      for (int i = 0; i < 400; ++i) {
        const auto& [time, expect] = history[rng.Uniform(history.size())];
        auto opened = ham_->OpenNode(*ctx, node, time, {});
        if (!opened.ok()) {
          ++failures;
        } else if (opened->contents != expect) {
          ++mismatches;
        }
      }
      ham_->CloseGraph(*ctx);
    });
  }
  for (auto& t : readers) t.join();
  stop = true;
  writer.join();

  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(failures, 0);
  // With 4 readers x 400 reads over 65 versions, the cache must have
  // served repeats.
  EXPECT_GT(
      MetricsRegistry::Instance().GetCounter("delta.cache.hit")->Value(),
      hits_before);
}

// Equality-predicate queries race on the lazily-rebuilt attribute
// index while a writer keeps invalidating it; results must always
// reflect a committed state.
TEST_F(HamSharedLockStressTest, IndexedQueriesRaceWithWriters) {
  constexpr int kReaders = 4;
  constexpr int kWriterNodes = 30;

  const AttributeIndex kind = Attr("kind");
  // A stable population the readers can rely on.
  for (int i = 0; i < 10; ++i) {
    NodeIndex n = MakeNode("stable");
    ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, kind, "stable").ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ASSERT_TRUE(ctx.ok());
    for (int i = 0; i < kWriterNodes && !stop; ++i) {
      auto added = ham_->AddNode(*ctx, true);
      if (!added.ok()) {
        ++failures;
        continue;
      }
      if (!ham_->SetNodeAttributeValue(*ctx, added->node, kind, "churn")
               .ok()) {
        ++failures;
      }
      std::this_thread::yield();
    }
    stop = true;
    ham_->CloseGraph(*ctx);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      ASSERT_TRUE(ctx.ok());
      while (!stop) {
        auto result =
            ham_->GetGraphQuery(*ctx, 0, "kind = stable", "", {kind}, {});
        if (!result.ok()) {
          ++failures;
          continue;
        }
        // The stable population never changes: exactly 10 matches,
        // every one carrying the queried value.
        if (result->nodes.size() != 10) ++violations;
        for (const auto& n : result->nodes) {
          if (n.attribute_values.size() != 1 ||
              !n.attribute_values[0].has_value() ||
              *n.attribute_values[0] != "stable") {
            ++violations;
          }
        }
      }
      ham_->CloseGraph(*ctx);
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(failures, 0);
}

// The incremental-maintenance stress: writers keep flipping attribute
// values (staging index deltas on every commit) while readers run
// indexed queries in verify mode, which re-executes each query as a
// scan under the same shared lock and compares. Any divergence is an
// incremental-maintenance bug, not a benign race.
TEST_F(HamSharedLockStressTest, IncrementalIndexMatchesScanUnderMutation) {
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kNodes = 24;
  constexpr int kWriterRounds = 80;

  const AttributeIndex kind = Attr("kind");
  const AttributeIndex serial = Attr("serial");
  std::vector<NodeIndex> nodes;
  for (int i = 0; i < kNodes; ++i) {
    NodeIndex n = MakeNode("node");
    ASSERT_TRUE(
        ham_->SetNodeAttributeValue(ctx_, n, kind, i % 2 ? "red" : "blue")
            .ok());
    ASSERT_TRUE(
        ham_->SetNodeAttributeValue(ctx_, n, serial, std::to_string(i % 4))
            .ok());
    nodes.push_back(n);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      ASSERT_TRUE(ctx.ok());
      Random rng(17 * (w + 1));
      for (int round = 0; round < kWriterRounds; ++round) {
        const NodeIndex node = nodes[rng.Uniform(kNodes)];
        const char* value = rng.OneIn(3)   ? "green"
                            : rng.OneIn(2) ? "red"
                                           : "blue";
        if (!ham_->SetNodeAttributeValue(*ctx, node, kind, value).ok()) {
          ++failures;
        }
        if (rng.OneIn(4) &&
            !ham_->DeleteNodeAttribute(*ctx, node, serial).ok()) {
          ++failures;
        }
        std::this_thread::yield();
      }
      ham_->CloseGraph(*ctx);
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto ctx = ham_->OpenGraph(project_, "local", dir_);
      ASSERT_TRUE(ctx.ok());
      const char* preds[] = {"kind = red", "kind = blue",
                             "kind = red & serial = 1",
                             "kind = green & serial = 0"};
      QueryOptions options;
      options.verify = true;
      int i = r;
      while (!stop) {
        auto result = ham_->GetGraphQueryExplained(
            *ctx, 0, preds[i++ % 4], "", {kind}, {}, options);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        if (!result->plan.verified || !result->plan.verify_match) {
          ++mismatches;
        }
      }
      ham_->CloseGraph(*ctx);
    });
  }
  for (auto& t : writers) t.join();
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(failures, 0);
}

}  // namespace
}  // namespace ham
}  // namespace neptune

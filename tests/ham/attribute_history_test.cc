#include "ham/attribute_history.h"

#include <gtest/gtest.h>

namespace neptune {
namespace ham {
namespace {

TEST(AttributeHistoryTest, EmptyHistory) {
  AttributeHistory h;
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Get(1, 0).has_value());
  EXPECT_TRUE(h.GetAll(0).empty());
  EXPECT_EQ(h.LastTime(), 0u);
}

TEST(AttributeHistoryTest, SetAndGetCurrent) {
  AttributeHistory h;
  h.Set(1, 10, "alpha", true);
  EXPECT_EQ(*h.Get(1, 0), "alpha");
  EXPECT_EQ(h.LastTime(), 10u);
}

TEST(AttributeHistoryTest, VersionedHistoryIsTimeTravelable) {
  AttributeHistory h;
  h.Set(1, 10, "v1", true);
  h.Set(1, 20, "v2", true);
  h.Set(1, 30, "v3", true);
  EXPECT_FALSE(h.Get(1, 9).has_value());
  EXPECT_EQ(*h.Get(1, 10), "v1");
  EXPECT_EQ(*h.Get(1, 15), "v1");
  EXPECT_EQ(*h.Get(1, 20), "v2");
  EXPECT_EQ(*h.Get(1, 29), "v2");
  EXPECT_EQ(*h.Get(1, 30), "v3");
  EXPECT_EQ(*h.Get(1, 1000), "v3");
  EXPECT_EQ(*h.Get(1, 0), "v3");
}

TEST(AttributeHistoryTest, DeleteLeavesTombstoneWhenVersioned) {
  AttributeHistory h;
  h.Set(1, 10, "v1", true);
  h.Delete(1, 20, true);
  EXPECT_FALSE(h.Get(1, 0).has_value());
  EXPECT_FALSE(h.Get(1, 25).has_value());
  EXPECT_EQ(*h.Get(1, 15), "v1");  // pre-deletion reads still work
}

TEST(AttributeHistoryTest, ReattachAfterDelete) {
  AttributeHistory h;
  h.Set(1, 10, "v1", true);
  h.Delete(1, 20, true);
  h.Set(1, 30, "v2", true);
  EXPECT_EQ(*h.Get(1, 0), "v2");
  EXPECT_FALSE(h.Get(1, 25).has_value());
  EXPECT_EQ(*h.Get(1, 12), "v1");
}

TEST(AttributeHistoryTest, UnversionedKeepsOnlyLatest) {
  AttributeHistory h;
  h.Set(1, 10, "v1", false);
  h.Set(1, 20, "v2", false);
  EXPECT_EQ(h.entry_count(), 1u);
  EXPECT_EQ(*h.Get(1, 0), "v2");
  h.Delete(1, 30, false);
  EXPECT_FALSE(h.Get(1, 0).has_value());
  EXPECT_TRUE(h.empty());
}

TEST(AttributeHistoryTest, SameTimeSetOverwrites) {
  AttributeHistory h;
  h.Set(1, 10, "first", true);
  h.Set(1, 10, "second", true);
  EXPECT_EQ(h.entry_count(), 1u);
  EXPECT_EQ(*h.Get(1, 10), "second");
}

TEST(AttributeHistoryTest, DeleteNonexistentIsNoop) {
  AttributeHistory h;
  h.Delete(42, 10, true);
  EXPECT_TRUE(h.empty());
}

TEST(AttributeHistoryTest, MultipleAttributesIndependent) {
  AttributeHistory h;
  h.Set(1, 10, "one", true);
  h.Set(2, 20, "two", true);
  h.Set(3, 30, "three", true);
  h.Delete(2, 40, true);
  auto all_35 = h.GetAll(35);
  ASSERT_EQ(all_35.size(), 3u);
  auto all_now = h.GetAll(0);
  ASSERT_EQ(all_now.size(), 2u);
  EXPECT_EQ(all_now[0].first, 1u);
  EXPECT_EQ(all_now[0].second, "one");
  EXPECT_EQ(all_now[1].first, 3u);
  auto all_early = h.GetAll(15);
  ASSERT_EQ(all_early.size(), 1u);
}

TEST(AttributeHistoryTest, CodecRoundTrip) {
  AttributeHistory h;
  h.Set(1, 10, "v1", true);
  h.Set(1, 20, "v2", true);
  h.Delete(1, 30, true);
  h.Set(7, 15, std::string("\0binary\xff", 8), true);
  std::string encoded;
  h.EncodeTo(&encoded);
  std::string_view in = encoded;
  auto decoded = AttributeHistory::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(*decoded->Get(1, 12), "v1");
  EXPECT_EQ(*decoded->Get(1, 25), "v2");
  EXPECT_FALSE(decoded->Get(1, 0).has_value());
  EXPECT_EQ(*decoded->Get(7, 0), std::string("\0binary\xff", 8));
  EXPECT_EQ(decoded->LastTime(), 30u);
}

TEST(AttributeHistoryTest, CodecRejectsTruncation) {
  AttributeHistory h;
  h.Set(1, 10, "some value", true);
  h.Set(2, 20, "other", true);
  std::string encoded;
  h.EncodeTo(&encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::string_view in(encoded.data(), cut);
    EXPECT_FALSE(AttributeHistory::DecodeFrom(&in).ok()) << cut;
  }
}

}  // namespace
}  // namespace ham
}  // namespace neptune

// Shared fixture for HAM end-to-end tests: a scratch directory, a Ham
// engine, and one open graph/session.

#ifndef NEPTUNE_TESTS_HAM_HAM_TEST_UTIL_H_
#define NEPTUNE_TESTS_HAM_HAM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "ham/ham.h"

namespace neptune {
namespace ham {

class HamTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    const std::string suite = ::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->test_suite_name();
    dir_ = (std::filesystem::temp_directory_path() /
            ("neptune_ham_" + suite + "_" + name))
               .string();
    env_->RemoveDirRecursive(dir_);
    ham_ = std::make_unique<Ham>(env_, MakeOptions());
    auto created = ham_->CreateGraph(dir_, 0755);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    project_ = created->project;
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = *ctx;
  }

  void TearDown() override {
    ham_.reset();
    env_->RemoveDirRecursive(dir_);
  }

  virtual HamOptions MakeOptions() {
    HamOptions options;
    options.sync_commits = false;  // fast tests; recovery tests override
    return options;
  }

  // Reopens the engine from disk, as after a process restart.
  void Reopen() {
    ham_ = std::make_unique<Ham>(env_, MakeOptions());
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    ctx_ = *ctx;
  }

  // Creates an archive node whose current contents are `text`.
  NodeIndex MakeNode(const std::string& text, bool archive = true) {
    auto added = ham_->AddNode(ctx_, archive);
    EXPECT_TRUE(added.ok()) << added.status().ToString();
    Status st = ham_->ModifyNode(ctx_, added->node, added->creation_time,
                                 text, {}, "initial");
    EXPECT_TRUE(st.ok()) << st.ToString();
    return added->node;
  }

  // Current contents of a node.
  std::string ReadNode(NodeIndex node, Time time = 0) {
    auto opened = ham_->OpenNode(ctx_, node, time, {});
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return opened.ok() ? opened->contents : std::string();
  }

  // Interned attribute index.
  AttributeIndex Attr(const std::string& name) {
    auto attr = ham_->GetAttributeIndex(ctx_, name);
    EXPECT_TRUE(attr.ok()) << attr.status().ToString();
    return attr.ok() ? *attr : 0;
  }

  Env* env_ = nullptr;
  std::string dir_;
  std::unique_ptr<Ham> ham_;
  ProjectId project_ = 0;
  Context ctx_;
};

}  // namespace ham
}  // namespace neptune

#endif  // NEPTUNE_TESTS_HAM_HAM_TEST_UTIL_H_

// Edge cases the main suites don't isolate: self-loops, emptied
// contents, large values, and ordering guarantees.

#include <gtest/gtest.h>

#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

using HamEdgeCaseTest = HamTestBase;

TEST_F(HamEdgeCaseTest, SelfLoopLink) {
  NodeIndex n = MakeNode("0123456789");
  auto loop = ham_->AddLink(ctx_, LinkPt{n, 2, 0, true}, LinkPt{n, 8, 0, true});
  ASSERT_TRUE(loop.ok()) << loop.status().ToString();
  auto opened = ham_->OpenNode(ctx_, n, 0, {});
  ASSERT_TRUE(opened.ok());
  // Both ends attach to the same node: two attachments.
  ASSERT_EQ(opened->attachments.size(), 2u);
  EXPECT_EQ(ham_->GetFromNode(ctx_, loop->link, 0)->node, n);
  EXPECT_EQ(ham_->GetToNode(ctx_, loop->link, 0)->node, n);
  // A modify must carry a LinkPt for each end.
  Status missing = ham_->ModifyNode(ctx_, n, opened->current_version_time,
                                    "new", {{loop->link, true, 1}}, "");
  EXPECT_TRUE(missing.IsInvalidArgument());
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, opened->current_version_time, "new",
                               {{loop->link, true, 1}, {loop->link, false, 2}},
                               "")
                  .ok());
  // Deleting the node deletes the loop exactly once.
  ASSERT_TRUE(ham_->DeleteNode(ctx_, n).ok());
  EXPECT_TRUE(ham_->GetToNode(ctx_, loop->link, 0).status().IsNotFound());
}

TEST_F(HamEdgeCaseTest, EmptyingANode) {
  NodeIndex n = MakeNode("something");
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, *ts, "", {}, "cleared").ok());
  EXPECT_EQ(ReadNode(n), "");
  EXPECT_EQ(ReadNode(n, *ts), "something");
}

TEST_F(HamEdgeCaseTest, LargeAttributeValue) {
  NodeIndex n = MakeNode("x");
  AttributeIndex attr = Attr("blob");
  std::string big(1 << 20, 'b');
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, attr, big).ok());
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, attr, 0), big);
  Reopen();
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, attr, 0), big);
}

TEST_F(HamEdgeCaseTest, AttributeValueWithEmbeddedNulBytes) {
  NodeIndex n = MakeNode("x");
  AttributeIndex attr = Attr("raw");
  std::string raw("\x00mid\x00nul", 8);
  ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, attr, raw).ok());
  EXPECT_EQ(*ham_->GetNodeAttributeValue(ctx_, n, attr, 0), raw);
}

TEST_F(HamEdgeCaseTest, GetNodeVersionsOnDeletedNodeStillWorks) {
  NodeIndex n = MakeNode("v1");
  auto ts = ham_->GetNodeTimeStamp(ctx_, n);
  ASSERT_TRUE(ham_->ModifyNode(ctx_, n, *ts, "v2", {}, "second").ok());
  ASSERT_TRUE(ham_->DeleteNode(ctx_, n).ok());
  auto versions = ham_->GetNodeVersions(ctx_, n);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->major.size(), 3u);
  EXPECT_EQ(versions->major.back().explanation, "second");
}

TEST_F(HamEdgeCaseTest, QueryResultsAreOrderedByNodeIndex) {
  AttributeIndex kind = Attr("kind");
  std::vector<NodeIndex> nodes;
  for (int i = 0; i < 12; ++i) {
    NodeIndex n = MakeNode("n");
    ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, kind, "t").ok());
    nodes.push_back(n);
  }
  auto result = ham_->GetGraphQuery(ctx_, 0, "kind = t", "", {}, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nodes.size(), nodes.size());
  for (size_t i = 1; i < result->nodes.size(); ++i) {
    EXPECT_LT(result->nodes[i - 1].node, result->nodes[i].node);
  }
}

TEST_F(HamEdgeCaseTest, ParallelLinksBetweenSameNodes) {
  NodeIndex a = MakeNode("a");
  NodeIndex b = MakeNode("b");
  auto l1 = ham_->AddLink(ctx_, LinkPt{a, 1, 0, true}, LinkPt{b, 0, 0, true});
  auto l2 = ham_->AddLink(ctx_, LinkPt{a, 2, 0, true}, LinkPt{b, 0, 0, true});
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_NE(l1->link, l2->link);
  auto result = ham_->GetGraphQuery(ctx_, 0, "", "", {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->links.size(), 2u);
  // Deleting one leaves the other.
  ASSERT_TRUE(ham_->DeleteLink(ctx_, l1->link).ok());
  EXPECT_TRUE(ham_->GetToNode(ctx_, l2->link, 0).ok());
}

TEST_F(HamEdgeCaseTest, LinearizeSingleNodeGraph) {
  NodeIndex n = MakeNode("alone");
  auto result = ham_->LinearizeGraph(ctx_, n, 0, "", "", {}, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nodes.size(), 1u);
  EXPECT_TRUE(result->links.empty());
}

TEST_F(HamEdgeCaseTest, ManyAttributesOnOneNode) {
  NodeIndex n = MakeNode("x");
  for (int i = 0; i < 64; ++i) {
    AttributeIndex attr = Attr("a" + std::to_string(i));
    ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, attr,
                                            std::to_string(i))
                    .ok());
  }
  auto all = ham_->GetNodeAttributes(ctx_, n, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 64u);
  Reopen();
  all = ham_->GetNodeAttributes(ctx_, n, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 64u);
}

TEST_F(HamEdgeCaseTest, ReuseOfContextAfterManyContextCreations) {
  for (int i = 0; i < 20; ++i) {
    auto info = ham_->CreateContext(ctx_, "w" + std::to_string(i));
    ASSERT_TRUE(info.ok());
  }
  auto contexts = ham_->ListContexts(ctx_);
  ASSERT_TRUE(contexts.ok());
  EXPECT_EQ(contexts->size(), 21u);
  Reopen();
  EXPECT_EQ(ham_->ListContexts(ctx_)->size(), 21u);
}

}  // namespace
}  // namespace ham
}  // namespace neptune

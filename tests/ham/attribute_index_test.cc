// The getGraphQuery attribute index: correctness against the scan
// path, invalidation on writes, and the planner's conjunct selection.

#include "ham/attribute_index.h"

#include <gtest/gtest.h>

#include "query/predicate.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

TEST(AttributeValueIndexTest, RebuildAndLookup) {
  std::unordered_map<NodeIndex, NodeRecord> nodes;
  for (NodeIndex i = 1; i <= 10; ++i) {
    NodeRecord node;
    node.index = i;
    node.created = 1;
    node.attributes.Set(1, 2, i % 2 == 0 ? "even" : "odd", true);
    nodes.emplace(i, std::move(node));
  }
  AttributeValueIndex index;
  EXPECT_FALSE(index.FreshAt(5));
  index.Rebuild(nodes, 5);
  EXPECT_TRUE(index.FreshAt(5));
  EXPECT_FALSE(index.FreshAt(6));
  EXPECT_EQ(index.Lookup(1, "even"),
            (std::vector<NodeIndex>{2, 4, 6, 8, 10}));
  EXPECT_EQ(index.Cardinality(1, "odd"), 5u);
  EXPECT_TRUE(index.Lookup(1, "neither").empty());
  EXPECT_TRUE(index.Lookup(9, "even").empty());
  EXPECT_EQ(index.entry_count(), 10u);
}

TEST(AttributeValueIndexTest, SkipsDeletedNodesAndDetachedValues) {
  std::unordered_map<NodeIndex, NodeRecord> nodes;
  NodeRecord alive;
  alive.index = 1;
  alive.created = 1;
  alive.attributes.Set(1, 2, "x", true);
  NodeRecord dead;
  dead.index = 2;
  dead.created = 1;
  dead.deleted = 5;
  dead.attributes.Set(1, 2, "x", true);
  NodeRecord detached;
  detached.index = 3;
  detached.created = 1;
  detached.attributes.Set(1, 2, "x", true);
  detached.attributes.Delete(1, 4, true);
  nodes.emplace(1, std::move(alive));
  nodes.emplace(2, std::move(dead));
  nodes.emplace(3, std::move(detached));

  AttributeValueIndex index;
  index.Rebuild(nodes, 1);
  EXPECT_EQ(index.Lookup(1, "x"), std::vector<NodeIndex>{1});
}

TEST(AttributeValueIndexTest, ApplyDeltaAddRemoveChange) {
  std::unordered_map<NodeIndex, NodeRecord> nodes;
  for (NodeIndex i = 1; i <= 4; ++i) {
    NodeRecord node;
    node.index = i;
    node.created = 1;
    node.attributes.Set(1, 2, "even", true);
    nodes.emplace(i, std::move(node));
  }
  AttributeValueIndex index;
  index.Rebuild(nodes, 1);
  ASSERT_EQ(index.entry_count(), 4u);

  // New value on a new node.
  index.ApplyDelta({5, 1, std::nullopt, "even"});
  EXPECT_EQ(index.Lookup(1, "even"), (std::vector<NodeIndex>{1, 2, 3, 4, 5}));
  EXPECT_EQ(index.entry_count(), 5u);

  // Value change moves the node between posting lists.
  index.ApplyDelta({3, 1, std::string("even"), std::string("odd")});
  EXPECT_EQ(index.Lookup(1, "even"), (std::vector<NodeIndex>{1, 2, 4, 5}));
  EXPECT_EQ(index.Lookup(1, "odd"), std::vector<NodeIndex>{3});
  EXPECT_EQ(index.entry_count(), 5u);

  // Removal; an emptied posting list is dropped entirely.
  index.ApplyDelta({3, 1, std::string("odd"), std::nullopt});
  EXPECT_TRUE(index.Lookup(1, "odd").empty());
  EXPECT_EQ(index.entry_count(), 4u);
  EXPECT_EQ(index.applied_delta_count(), 3u);
}

TEST(AttributeValueIndexTest, ApplyDeltaIsIdempotentAtTheEdges) {
  std::unordered_map<NodeIndex, NodeRecord> nodes;
  NodeRecord node;
  node.index = 1;
  node.created = 1;
  node.attributes.Set(1, 2, "x", true);
  nodes.emplace(1, std::move(node));
  AttributeValueIndex index;
  index.Rebuild(nodes, 1);

  // Re-inserting a present entry and removing an absent one both leave
  // the index unchanged (the dup guard in ApplyDelta).
  index.ApplyDelta({1, 1, std::nullopt, "x"});
  EXPECT_EQ(index.Lookup(1, "x"), std::vector<NodeIndex>{1});
  EXPECT_EQ(index.entry_count(), 1u);
  index.ApplyDelta({2, 1, std::string("x"), std::nullopt});
  EXPECT_EQ(index.Lookup(1, "x"), std::vector<NodeIndex>{1});
  EXPECT_EQ(index.entry_count(), 1u);
  index.ApplyDelta({9, 1, std::string("no-such-value"), std::nullopt});
  EXPECT_EQ(index.entry_count(), 1u);
}

TEST(PredicateConjunctTest, ExtractsTopLevelEqualities) {
  auto p = query::Predicate::Parse(
      "document = spec & version >= 3 & (a = 1 | b = 2) & kind = special");
  ASSERT_TRUE(p.ok());
  auto conjuncts = p->EqualityConjuncts();
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0].first, "document");
  EXPECT_EQ(conjuncts[0].second, "spec");
  EXPECT_EQ(conjuncts[1].first, "kind");
  EXPECT_EQ(conjuncts[1].second, "special");
}

TEST(PredicateConjunctTest, NoConjunctsInDisjunctionsOrNegations) {
  EXPECT_TRUE(
      query::Predicate::Parse("a = 1 | b = 2")->EqualityConjuncts().empty());
  EXPECT_TRUE(
      query::Predicate::Parse("!(a = 1)")->EqualityConjuncts().empty());
  EXPECT_TRUE(query::Predicate::Parse("a > 1")->EqualityConjuncts().empty());
  EXPECT_TRUE(query::Predicate::True().EqualityConjuncts().empty());
}

// End-to-end: indexed queries must return exactly what the scan does.
class IndexedQueryTest : public HamTestBase {
 protected:
  void Populate() {
    kind_ = Attr("kind");
    serial_ = Attr("serial");
    for (int i = 0; i < 50; ++i) {
      NodeIndex n = MakeNode("node " + std::to_string(i));
      ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, kind_,
                                              i % 5 == 0 ? "special"
                                                         : "plain")
                      .ok());
      ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, serial_,
                                              std::to_string(i))
                      .ok());
      nodes_.push_back(n);
    }
  }

  AttributeIndex kind_ = 0;
  AttributeIndex serial_ = 0;
  std::vector<NodeIndex> nodes_;
};

TEST_F(IndexedQueryTest, IndexedEqualsScan) {
  Populate();
  const char* predicates[] = {
      "kind = special",
      "kind = special & serial > 10",
      "kind = plain & serial < 20",
      "kind = special | serial = 3",  // no conjunct: scan path
      "kind = nosuchvalue",
      "nosuchattr = x",
  };
  for (const char* pred : predicates) {
    auto with_index = ham_->GetGraphQuery(ctx_, 0, pred, "", {}, {});
    ASSERT_TRUE(with_index.ok()) << pred;
    // Rerun the same query through a scan-only engine on the same data.
    ham_.reset();
    HamOptions options;
    options.sync_commits = false;
    options.use_attribute_index = false;
    ham_ = std::make_unique<Ham>(env_, options);
    auto ctx = ham_->OpenGraph(project_, "local", dir_);
    ASSERT_TRUE(ctx.ok());
    ctx_ = *ctx;
    auto with_scan = ham_->GetGraphQuery(ctx_, 0, pred, "", {}, {});
    ASSERT_TRUE(with_scan.ok()) << pred;
    ASSERT_EQ(with_index->nodes.size(), with_scan->nodes.size()) << pred;
    for (size_t i = 0; i < with_scan->nodes.size(); ++i) {
      EXPECT_EQ(with_index->nodes[i].node, with_scan->nodes[i].node) << pred;
    }
    // Restore the indexed engine for the next predicate.
    ham_.reset();
    Reopen();
  }
}

TEST_F(IndexedQueryTest, IndexSeesWritesImmediately) {
  Populate();
  auto before = ham_->GetGraphQuery(ctx_, 0, "kind = special", "", {}, {});
  ASSERT_TRUE(before.ok());
  const size_t special_count = before->nodes.size();

  // Retag a plain node: the next query must include it.
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, nodes_[1], kind_, "special").ok());
  auto after = ham_->GetGraphQuery(ctx_, 0, "kind = special", "", {}, {});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->nodes.size(), special_count + 1);

  // Delete one: it must disappear.
  ASSERT_TRUE(ham_->DeleteNode(ctx_, nodes_[0]).ok());
  auto final_result = ham_->GetGraphQuery(ctx_, 0, "kind = special", "", {}, {});
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result->nodes.size(), special_count);
}

TEST_F(IndexedQueryTest, IndexedQueryInsideTransactionSeesOwnWrites) {
  Populate();
  ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
  NodeIndex staged = MakeNode("staged");
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, staged, kind_, "special").ok());
  // In-transaction queries take the scan path and see the overlay.
  auto result = ham_->GetGraphQuery(ctx_, 0, "kind = special", "", {}, {});
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& node : result->nodes) found |= node.node == staged;
  EXPECT_TRUE(found);
  ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
}

TEST_F(IndexedQueryTest, HistoricalQueriesBypassTheIndex) {
  Populate();
  const Time before = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, nodes_[1], kind_, "special").ok());
  auto past = ham_->GetGraphQuery(ctx_, before, "kind = special", "", {}, {});
  ASSERT_TRUE(past.ok());
  auto now = ham_->GetGraphQuery(ctx_, 0, "kind = special", "", {}, {});
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->nodes.size(), past->nodes.size() + 1);
}

}  // namespace
}  // namespace ham
}  // namespace neptune

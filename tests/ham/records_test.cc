#include "ham/records.h"

#include <gtest/gtest.h>

#include "ham/attribute_table.h"
#include "ham/ops.h"

namespace neptune {
namespace ham {
namespace {

TEST(DemonHistoryTest, SetGetAndDisable) {
  DemonHistory d;
  EXPECT_EQ(d.Get(Event::kModifyNode, 0), "");
  d.Set(Event::kModifyNode, 10, "recompile");
  EXPECT_EQ(d.Get(Event::kModifyNode, 0), "recompile");
  EXPECT_EQ(d.Get(Event::kAddNode, 0), "");
  d.Set(Event::kModifyNode, 20, "");  // null demon disables
  EXPECT_EQ(d.Get(Event::kModifyNode, 0), "");
  EXPECT_EQ(d.Get(Event::kModifyNode, 15), "recompile");  // history kept
}

TEST(DemonHistoryTest, GetAllSkipsDisabled) {
  DemonHistory d;
  d.Set(Event::kAddNode, 10, "audit");
  d.Set(Event::kModifyNode, 10, "recompile");
  d.Set(Event::kAddNode, 20, "");
  auto now = d.GetAll(0);
  ASSERT_EQ(now.size(), 1u);
  EXPECT_EQ(now[0].event, Event::kModifyNode);
  auto then = d.GetAll(15);
  EXPECT_EQ(then.size(), 2u);
}

TEST(DemonHistoryTest, CodecRoundTrip) {
  DemonHistory d;
  d.Set(Event::kAddNode, 5, "a");
  d.Set(Event::kAddNode, 9, "b");
  d.Set(Event::kOpenNode, 7, "c");
  std::string encoded;
  d.EncodeTo(&encoded);
  std::string_view in = encoded;
  auto decoded = DemonHistory::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Get(Event::kAddNode, 6), "a");
  EXPECT_EQ(decoded->Get(Event::kAddNode, 0), "b");
  EXPECT_EQ(decoded->Get(Event::kOpenNode, 0), "c");
}

TEST(LinkEndTest, PositionHistory) {
  LinkEnd end;
  end.node = 3;
  end.SetPosition(10, 100, true);
  end.SetPosition(20, 200, true);
  EXPECT_EQ(end.PositionAt(0), 200u);
  EXPECT_EQ(end.PositionAt(10), 100u);
  EXPECT_EQ(end.PositionAt(15), 100u);
  EXPECT_EQ(end.PositionAt(20), 200u);
  // Before the first record, the earliest known offset applies.
  EXPECT_EQ(end.PositionAt(5), 100u);
}

TEST(LinkEndTest, UnversionedPositionOverwrites) {
  LinkEnd end;
  end.SetPosition(10, 100, false);
  end.SetPosition(20, 200, false);
  EXPECT_EQ(end.positions.size(), 1u);
  EXPECT_EQ(end.PositionAt(0), 200u);
}

TEST(NodeRecordTest, ExistsAtSemantics) {
  NodeRecord node;
  node.created = 10;
  EXPECT_TRUE(node.ExistsAt(0));
  EXPECT_TRUE(node.ExistsAt(10));
  EXPECT_TRUE(node.ExistsAt(100));
  EXPECT_FALSE(node.ExistsAt(9));
  node.deleted = 50;
  EXPECT_FALSE(node.ExistsAt(0));
  EXPECT_TRUE(node.ExistsAt(49));
  EXPECT_FALSE(node.ExistsAt(50));  // gone at its deletion instant
  EXPECT_FALSE(node.ExistsAt(60));
}

TEST(NodeRecordTest, CodecRoundTrip) {
  NodeRecord node;
  node.index = 42;
  node.is_archive = true;
  node.protections = 0640;
  node.created = 5;
  ASSERT_TRUE(node.contents.Append(5, "", "created").ok());
  ASSERT_TRUE(node.contents.Append(9, "hello world", "edit").ok());
  node.minor_versions.push_back(VersionEntry{7, "addLink"});
  node.attributes.Set(1, 6, "text", true);
  node.demons.Set(Event::kModifyNode, 8, "recompile");
  node.out_links = {1, 2, 3};
  node.in_links = {9};

  std::string encoded;
  node.EncodeTo(&encoded);
  std::string_view in = encoded;
  auto decoded = NodeRecord::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->index, 42u);
  EXPECT_TRUE(decoded->is_archive);
  EXPECT_EQ(decoded->protections, 0640u);
  EXPECT_EQ(decoded->created, 5u);
  EXPECT_EQ(*decoded->contents.Get(0), "hello world");
  EXPECT_EQ(*decoded->contents.Get(5), "");
  ASSERT_EQ(decoded->minor_versions.size(), 1u);
  EXPECT_EQ(decoded->minor_versions[0].explanation, "addLink");
  EXPECT_EQ(*decoded->attributes.Get(1, 0), "text");
  EXPECT_EQ(decoded->demons.Get(Event::kModifyNode, 0), "recompile");
  EXPECT_EQ(decoded->out_links, (std::vector<LinkIndex>{1, 2, 3}));
  EXPECT_EQ(decoded->in_links, (std::vector<LinkIndex>{9}));
}

TEST(LinkRecordTest, CodecRoundTrip) {
  LinkRecord link;
  link.index = 7;
  link.created = 11;
  link.from.node = 1;
  link.from.track_current = true;
  link.from.SetPosition(11, 120, true);
  link.to.node = 2;
  link.to.track_current = false;
  link.to.pinned_time = 9;
  link.to.SetPosition(11, 0, true);
  link.attributes.Set(3, 12, "isPartOf", true);

  std::string encoded;
  link.EncodeTo(&encoded);
  std::string_view in = encoded;
  auto decoded = LinkRecord::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->index, 7u);
  EXPECT_EQ(decoded->from.node, 1u);
  EXPECT_TRUE(decoded->from.track_current);
  EXPECT_EQ(decoded->from.PositionAt(0), 120u);
  EXPECT_FALSE(decoded->to.track_current);
  EXPECT_EQ(decoded->to.pinned_time, 9u);
  EXPECT_EQ(*decoded->attributes.Get(3, 0), "isPartOf");
}

TEST(AttributeTableTest, InternAndLookup) {
  AttributeTable table;
  EXPECT_TRUE(table.Lookup("contentType").status().IsNotFound());
  auto a = table.Intern("contentType", 5);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 1u);
  auto b = table.Intern("relation", 6);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 2u);
  // Re-interning returns the same index.
  EXPECT_EQ(*table.Intern("contentType", 9), 1u);
  EXPECT_EQ(*table.Lookup("relation"), 2u);
  EXPECT_EQ(*table.Name(1), "contentType");
  EXPECT_TRUE(table.Name(3).status().IsNotFound());
  EXPECT_TRUE(table.Name(0).status().IsNotFound());
}

TEST(AttributeTableTest, ExistedAtRespectsCreationTime) {
  AttributeTable table;
  ASSERT_TRUE(table.Intern("early", 5).ok());
  ASSERT_TRUE(table.Intern("late", 50).ok());
  EXPECT_TRUE(table.ExistedAt(1, 5));
  EXPECT_FALSE(table.ExistedAt(2, 5));
  EXPECT_TRUE(table.ExistedAt(2, 50));
  EXPECT_TRUE(table.ExistedAt(2, 0));
  EXPECT_EQ(table.AllAt(10).size(), 1u);
  EXPECT_EQ(table.AllAt(0).size(), 2u);
}

TEST(AttributeTableTest, ForcedIndexReplay) {
  AttributeTable table;
  ASSERT_TRUE(table.Intern("a", 1, 1).ok());
  ASSERT_TRUE(table.Intern("b", 2, 2).ok());
  // Wrong forced index is a corruption signal.
  EXPECT_TRUE(table.Intern("c", 3, 7).status().IsCorruption());
  EXPECT_TRUE(table.Intern("a", 3, 5).status().IsCorruption());
}

TEST(AttributeTableTest, EmptyNameRejected) {
  AttributeTable table;
  EXPECT_TRUE(table.Intern("", 1).status().IsInvalidArgument());
}

TEST(AttributeTableTest, CodecRoundTrip) {
  AttributeTable table;
  ASSERT_TRUE(table.Intern("contentType", 5).ok());
  ASSERT_TRUE(table.Intern("relation", 9).ok());
  std::string encoded;
  table.EncodeTo(&encoded);
  std::string_view in = encoded;
  auto decoded = AttributeTable::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->Lookup("contentType"), 1u);
  EXPECT_EQ(*decoded->Lookup("relation"), 2u);
  EXPECT_EQ(decoded->next_index(), 3u);
  EXPECT_FALSE(decoded->ExistedAt(2, 7));
}

TEST(OpCodecTest, AllKindsRoundTrip) {
  for (uint8_t k = 1; k <= 15; ++k) {
    Op op;
    op.kind = static_cast<OpKind>(k);
    op.time = 123456;
    op.thread = 2;
    op.node = 10;
    op.link = 20;
    op.attr = 30;
    op.arg = 0644;
    op.flag = (k % 2) == 0;
    op.event = Event::kModifyNode;
    op.value = std::string("contents with \0 nul", 19);
    op.extra = "explanation";
    op.from = LinkPt{1, 100, 0, true};
    op.to = LinkPt{2, 200, 55, false};
    op.attachments = {LinkPt{5, 7, 0, true}, LinkPt{6, 8, 9, false}};

    std::string encoded;
    EncodeOp(op, &encoded);
    std::string_view in = encoded;
    auto decoded = DecodeOp(&in);
    ASSERT_TRUE(decoded.ok()) << "kind=" << int(k);
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded->kind, op.kind);
    EXPECT_EQ(decoded->time, op.time);
    EXPECT_EQ(decoded->thread, op.thread);
    EXPECT_EQ(decoded->node, op.node);
    EXPECT_EQ(decoded->link, op.link);
    EXPECT_EQ(decoded->attr, op.attr);
    EXPECT_EQ(decoded->arg, op.arg);
    EXPECT_EQ(decoded->flag, op.flag);
    EXPECT_EQ(decoded->event, op.event);
    EXPECT_EQ(decoded->value, op.value);
    EXPECT_EQ(decoded->extra, op.extra);
    EXPECT_EQ(decoded->from.node, 1u);
    EXPECT_EQ(decoded->to.time, 55u);
    ASSERT_EQ(decoded->attachments.size(), 2u);
    EXPECT_EQ(decoded->attachments[1].position, 8u);
  }
}

TEST(OpCodecTest, TransactionRoundTrip) {
  std::vector<Op> ops(3);
  ops[0].kind = OpKind::kAddNode;
  ops[0].node = 1;
  ops[0].time = 2;
  ops[1].kind = OpKind::kModifyNode;
  ops[1].node = 1;
  ops[1].value = "body";
  ops[1].time = 3;
  ops[2].kind = OpKind::kSetNodeAttribute;
  ops[2].node = 1;
  ops[2].attr = 1;
  ops[2].value = "text";
  ops[2].time = 4;

  std::string payload = EncodeTransaction(ops);
  auto decoded = DecodeTransaction(payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[1].value, "body");
  EXPECT_EQ((*decoded)[2].attr, 1u);
}

TEST(OpCodecTest, RejectsGarbage) {
  auto r1 = DecodeTransaction("\x03garbage");
  EXPECT_FALSE(r1.ok());
  std::string_view empty;
  EXPECT_FALSE(DecodeOp(&empty).ok());
  std::string bogus_kind = "\x63";  // kind 99
  std::string_view in = bogus_kind;
  EXPECT_TRUE(DecodeOp(&in).status().IsCorruption());
}

TEST(OpCodecTest, TransactionRejectsTrailingBytes) {
  std::vector<Op> ops(1);
  ops[0].kind = OpKind::kAddNode;
  std::string payload = EncodeTransaction(ops) + "x";
  EXPECT_TRUE(DecodeTransaction(payload).status().IsCorruption());
}

}  // namespace
}  // namespace ham
}  // namespace neptune

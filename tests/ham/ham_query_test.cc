// linearizeGraph and getGraphQuery end-to-end: predicates, attribute
// projection, DFS ordering by link offsets, and historical queries.

#include <gtest/gtest.h>

#include "ham/ham.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

class HamQueryTest : public HamTestBase {
 protected:
  // Builds the paper's CASE example: nodes tagged with a `document`
  // attribute, structured by isPartOf links:
  //
  //   root -(0)-> spec -(0)-> req1
  //        |           -(5)-> req2
  //        -(9)-> design
  void SetUp() override {
    HamTestBase::SetUp();
    document_ = Attr("document");
    relation_ = Attr("relation");
    root_ = TaggedNode("root", "toc");
    spec_ = TaggedNode("spec section", "requirements");
    req1_ = TaggedNode("first requirement", "requirements");
    req2_ = TaggedNode("second requirement", "requirements");
    design_ = TaggedNode("design overview", "design");
    Link(root_, spec_, 0, "isPartOf");
    Link(root_, design_, 9, "isPartOf");
    Link(spec_, req1_, 0, "isPartOf");
    Link(spec_, req2_, 5, "isPartOf");
  }

  NodeIndex TaggedNode(const std::string& text, const std::string& document) {
    NodeIndex n = MakeNode(text);
    EXPECT_TRUE(
        ham_->SetNodeAttributeValue(ctx_, n, document_, document).ok());
    return n;
  }

  LinkIndex Link(NodeIndex from, NodeIndex to, uint64_t position,
                 const std::string& relation) {
    auto link = ham_->AddLink(ctx_, LinkPt{from, position, 0, true},
                              LinkPt{to, 0, 0, true});
    EXPECT_TRUE(link.ok());
    EXPECT_TRUE(
        ham_->SetLinkAttributeValue(ctx_, link->link, relation_, relation)
            .ok());
    return link->link;
  }

  std::vector<NodeIndex> NodeIds(const SubGraph& graph) {
    std::vector<NodeIndex> out;
    for (const auto& n : graph.nodes) out.push_back(n.node);
    return out;
  }

  AttributeIndex document_ = 0;
  AttributeIndex relation_ = 0;
  NodeIndex root_ = 0, spec_ = 0, req1_ = 0, req2_ = 0, design_ = 0;
};

TEST_F(HamQueryTest, GetGraphQueryPaperExample) {
  // The exact scenario from paper §3: "The node visibility predicate
  // 'document = requirements' could then be used in a getGraphQuery
  // operation to access only those nodes that are part of the
  // specification document."
  auto result =
      ham_->GetGraphQuery(ctx_, 0, "document = requirements", "", {}, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(NodeIds(*result), (std::vector<NodeIndex>{spec_, req1_, req2_}));
  // Only links connecting two selected nodes are returned.
  ASSERT_EQ(result->links.size(), 2u);
  for (const auto& link : result->links) {
    EXPECT_EQ(link.from, spec_);
  }
}

TEST_F(HamQueryTest, GetGraphQueryEmptyPredicateReturnsEverything) {
  auto result = ham_->GetGraphQuery(ctx_, 0, "", "", {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes.size(), 5u);
  EXPECT_EQ(result->links.size(), 4u);
}

TEST_F(HamQueryTest, GetGraphQueryLinkPredicateFiltersLinks) {
  LinkIndex annotation = Link(req1_, design_, 2, "annotates");
  auto result =
      ham_->GetGraphQuery(ctx_, 0, "", "relation = annotates", {}, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->links.size(), 1u);
  EXPECT_EQ(result->links[0].link, annotation);
}

TEST_F(HamQueryTest, GetGraphQueryProjectsRequestedAttributes) {
  auto result =
      ham_->GetGraphQuery(ctx_, 0, "document = design", "", {document_}, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nodes.size(), 1u);
  ASSERT_EQ(result->nodes[0].attribute_values.size(), 1u);
  EXPECT_EQ(*result->nodes[0].attribute_values[0], "design");
  // Unknown attribute index in the projection is rejected.
  EXPECT_TRUE(ham_->GetGraphQuery(ctx_, 0, "", "", {12345}, {})
                  .status()
                  .IsNotFound());
}

TEST_F(HamQueryTest, LinearizeFollowsOffsetsDepthFirst) {
  auto result = ham_->LinearizeGraph(ctx_, root_, 0, "", "", {}, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // DFS from root: spec (offset 0) before design (offset 9); within
  // spec: req1 (offset 0) before req2 (offset 5).
  EXPECT_EQ(NodeIds(*result),
            (std::vector<NodeIndex>{root_, spec_, req1_, req2_, design_}));
  EXPECT_EQ(result->links.size(), 4u);
}

TEST_F(HamQueryTest, LinearizePrunesByNodePredicate) {
  auto result = ham_->LinearizeGraph(ctx_, root_, 0,
                                     "document != requirements", "", {}, {});
  ASSERT_TRUE(result.ok());
  // spec fails the predicate, so req1/req2 (reachable only through it)
  // are pruned as well.
  EXPECT_EQ(NodeIds(*result), (std::vector<NodeIndex>{root_, design_}));
}

TEST_F(HamQueryTest, LinearizeFiltersByLinkPredicate) {
  Link(root_, req1_, 99, "annotates");
  auto result = ham_->LinearizeGraph(ctx_, root_, 0, "",
                                     "relation = isPartOf", {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(NodeIds(*result),
            (std::vector<NodeIndex>{root_, spec_, req1_, req2_, design_}));
  EXPECT_EQ(result->links.size(), 4u);  // the annotates link is excluded
}

TEST_F(HamQueryTest, LinearizeHandlesCycles) {
  Link(req2_, root_, 0, "references");  // cycle back to the root
  auto result = ham_->LinearizeGraph(ctx_, root_, 0, "", "", {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes.size(), 5u);  // each node exactly once
  EXPECT_EQ(result->links.size(), 5u);  // cycle link included
}

TEST_F(HamQueryTest, LinearizeFromMissingStartFails) {
  EXPECT_TRUE(
      ham_->LinearizeGraph(ctx_, 9999, 0, "", "", {}, {}).status().IsNotFound());
}

TEST_F(HamQueryTest, LinearizeStartFailingPredicateIsEmpty) {
  auto result =
      ham_->LinearizeGraph(ctx_, root_, 0, "document = nowhere", "", {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nodes.empty());
}

TEST_F(HamQueryTest, HistoricalQuerySeesThePast) {
  const Time before = ham_->GetStats(ctx_)->current_time;
  NodeIndex late = TaggedNode("late addition", "requirements");
  ASSERT_TRUE(ham_->DeleteNode(ctx_, req1_).ok());

  // Now: late is present, req1 is gone.
  auto now = ham_->GetGraphQuery(ctx_, 0, "document = requirements", "", {}, {});
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(NodeIds(*now), (std::vector<NodeIndex>{spec_, req2_, late}));

  // At `before`: req1 present, late absent — "any version ... back to
  // its beginning".
  auto past =
      ham_->GetGraphQuery(ctx_, before, "document = requirements", "", {}, {});
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(NodeIds(*past), (std::vector<NodeIndex>{spec_, req1_, req2_}));
}

TEST_F(HamQueryTest, HistoricalLinearizeUsesOldOffsets) {
  // Move spec's attachment offset within root and verify the old
  // traversal order is reproduced at the old time.
  auto opened = ham_->OpenNode(ctx_, root_, 0, {});
  ASSERT_TRUE(opened.ok());
  // A time after the links were created but before the reorder below.
  const Time before = ham_->GetStats(ctx_)->current_time;
  std::vector<AttachmentUpdate> updates;
  for (const auto& att : opened->attachments) {
    // Push spec's link beyond design's offset 9.
    uint64_t new_position = att.position == 0 ? 50 : att.position;
    updates.push_back(AttachmentUpdate{att.link, att.is_source_end,
                                       new_position});
  }
  ASSERT_TRUE(ham_->ModifyNode(ctx_, root_, opened->current_version_time,
                               "root rewritten", updates, "reorder")
                  .ok());
  auto now = ham_->LinearizeGraph(ctx_, root_, 0, "", "", {}, {});
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(NodeIds(*now),
            (std::vector<NodeIndex>{root_, design_, spec_, req1_, req2_}));
  auto past = ham_->LinearizeGraph(ctx_, root_, before, "", "", {}, {});
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(NodeIds(*past),
            (std::vector<NodeIndex>{root_, spec_, req1_, req2_, design_}));
}

TEST_F(HamQueryTest, LinkAttributeProjection) {
  auto result = ham_->GetGraphQuery(ctx_, 0, "", "", {}, {relation_});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->links.size(), 4u);
  for (const auto& link : result->links) {
    ASSERT_EQ(link.attribute_values.size(), 1u);
    ASSERT_TRUE(link.attribute_values[0].has_value());
    EXPECT_EQ(*link.attribute_values[0], "isPartOf");
  }
}

TEST_F(HamQueryTest, HistoricalAttributeProjection) {
  // Retag spec; a historical projection must return the old value.
  const Time before = ham_->GetStats(ctx_)->current_time;
  ASSERT_TRUE(
      ham_->SetNodeAttributeValue(ctx_, spec_, document_, "archive").ok());
  auto past = ham_->GetGraphQuery(ctx_, before, "document = requirements", "",
                                  {document_}, {});
  ASSERT_TRUE(past.ok());
  ASSERT_FALSE(past->nodes.empty());
  EXPECT_EQ(*past->nodes[0].attribute_values[0], "requirements");
  auto now = ham_->GetGraphQuery(ctx_, 0, "document = archive", "",
                                 {document_}, {});
  ASSERT_TRUE(now.ok());
  ASSERT_EQ(now->nodes.size(), 1u);
  EXPECT_EQ(*now->nodes[0].attribute_values[0], "archive");
}

TEST_F(HamQueryTest, OpenGraphDemonFires) {
  std::vector<DemonInvocation> fired;
  ham_->demons().Register("audit", [&](const DemonInvocation& inv) {
    fired.push_back(inv);
  });
  ASSERT_TRUE(
      ham_->SetGraphDemonValue(ctx_, Event::kOpenGraph, "audit opens").ok());
  auto another = ham_->OpenGraph(project_, "local", dir_);
  ASSERT_TRUE(another.ok());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].event, Event::kOpenGraph);
  EXPECT_EQ(fired[0].graph, project_);
  ASSERT_TRUE(ham_->CloseGraph(*another).ok());
}

TEST_F(HamQueryTest, BadPredicateSyntaxIsInvalidArgument) {
  EXPECT_TRUE(ham_->GetGraphQuery(ctx_, 0, "document =", "", {}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ham_->LinearizeGraph(ctx_, root_, 0, "", "a ? b", {}, {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ham
}  // namespace neptune

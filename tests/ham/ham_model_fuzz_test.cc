// Model-based fuzzing: random operation sequences run against the real
// engine and a trivially-correct in-memory reference model, comparing
// contents, attributes and query results at the current time AND at
// random historical times — with transactions (commit and abort) and
// full engine restarts (recovery) injected along the way.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "common/random.h"
#include "tests/ham/ham_test_util.h"

namespace neptune {
namespace ham {
namespace {

constexpr const char* kValues[] = {"alpha", "beta", "gamma"};

// ------------------------------------------------------------- model

struct ModelNode {
  Time created = 0;
  Time deleted = 0;  // 0 = alive
  // (time, contents), ascending; starts with (created, "").
  std::vector<std::pair<Time, std::string>> versions;
  // attr -> (time, value-or-tombstone), ascending.
  std::map<AttributeIndex, std::vector<std::pair<Time, std::optional<std::string>>>>
      attrs;

  bool ExistsAt(Time t) const {
    if (t == 0) return deleted == 0;
    return created <= t && (deleted == 0 || t < deleted);
  }

  // Contents at t; nullopt when no version is in effect.
  std::optional<std::string> ContentsAt(Time t) const {
    const std::string* last = nullptr;
    for (const auto& [vt, contents] : versions) {
      if (t != 0 && vt > t) break;
      last = &contents;
    }
    if (last == nullptr) return std::nullopt;
    return *last;
  }

  std::optional<std::string> AttrAt(AttributeIndex attr, Time t) const {
    auto it = attrs.find(attr);
    if (it == attrs.end()) return std::nullopt;
    std::optional<std::string> last;
    bool any = false;
    for (const auto& [at, value] : it->second) {
      if (t != 0 && at > t) break;
      last = value;
      any = true;
    }
    if (!any) return std::nullopt;
    return last;
  }
};

struct ModelLink {
  NodeIndex from = 0;
  NodeIndex to = 0;
  Time created = 0;
  Time deleted = 0;
};

// A staged model mutation (applied on commit, dropped on abort).
struct Model {
  std::map<NodeIndex, ModelNode> nodes;
  std::map<LinkIndex, ModelLink> links;
};

class HamModelFuzzTest : public HamTestBase,
                         public ::testing::WithParamInterface<int> {
 protected:
  void SetUp() override {
    HamTestBase::SetUp();
    kind_ = Attr("kind");
    owner_ = Attr("owner");
  }

  Time Now() { return ham_->GetStats(ctx_)->current_time; }

  // Live model nodes (committed view).
  std::vector<NodeIndex> LiveNodes() {
    std::vector<NodeIndex> out;
    for (const auto& [index, node] : committed_.nodes) {
      if (node.deleted == 0) out.push_back(index);
    }
    return out;
  }

  std::vector<LinkIndex> LiveLinks() {
    std::vector<LinkIndex> out;
    for (const auto& [index, link] : committed_.links) {
      if (link.deleted == 0) out.push_back(index);
    }
    return out;
  }

  // ---- operations against BOTH engine and model ------------------

  void DoAddNode(Random* rng) {
    auto added = ham_->AddNode(ctx_, true);
    ASSERT_TRUE(added.ok());
    ModelNode node;
    node.created = added->creation_time;
    node.versions.emplace_back(added->creation_time, "");
    Working().nodes.emplace(added->node, std::move(node));
    (void)rng;
  }

  void DoModifyNode(Random* rng) {
    auto live = LiveWorkingNodes();
    if (live.empty()) return;
    const NodeIndex n = live[rng->Uniform(live.size())];
    auto opened = ham_->OpenNode(ctx_, n, 0, {});
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::vector<AttachmentUpdate> updates;
    for (const auto& att : opened->attachments) {
      updates.push_back({att.link, att.is_source_end, att.position});
    }
    const std::string contents = rng->NextBytes(rng->Uniform(200));
    Status st = ham_->ModifyNode(ctx_, n, opened->current_version_time,
                                 contents, updates, "fuzz");
    ASSERT_TRUE(st.ok()) << st.ToString();
    Working().nodes[n].versions.emplace_back(Now(), contents);
  }

  void DoDeleteNode(Random* rng) {
    auto live = LiveWorkingNodes();
    if (live.empty()) return;
    const NodeIndex n = live[rng->Uniform(live.size())];
    ASSERT_TRUE(ham_->DeleteNode(ctx_, n).ok());
    const Time t = Now();
    Model& model = Working();
    model.nodes[n].deleted = t;
    for (auto& [index, link] : model.links) {
      (void)index;
      if (link.deleted == 0 && (link.from == n || link.to == n)) {
        link.deleted = t;
      }
    }
  }

  void DoAddLink(Random* rng) {
    auto live = LiveWorkingNodes();
    if (live.size() < 2) return;
    const NodeIndex a = live[rng->Uniform(live.size())];
    const NodeIndex b = live[rng->Uniform(live.size())];
    auto added = ham_->AddLink(ctx_, LinkPt{a, rng->Uniform(50), 0, true},
                               LinkPt{b, 0, 0, true});
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    Working().links.emplace(added->link,
                            ModelLink{a, b, added->creation_time, 0});
  }

  void DoDeleteLink(Random* rng) {
    auto live = LiveWorkingLinks();
    if (live.empty()) return;
    const LinkIndex l = live[rng->Uniform(live.size())];
    ASSERT_TRUE(ham_->DeleteLink(ctx_, l).ok());
    Working().links[l].deleted = Now();
  }

  void DoSetAttr(Random* rng) {
    auto live = LiveWorkingNodes();
    if (live.empty()) return;
    const NodeIndex n = live[rng->Uniform(live.size())];
    const AttributeIndex attr = rng->OneIn(2) ? kind_ : owner_;
    const std::string value = kValues[rng->Uniform(3)];
    ASSERT_TRUE(ham_->SetNodeAttributeValue(ctx_, n, attr, value).ok());
    Working().nodes[n].attrs[attr].emplace_back(Now(), value);
  }

  void DoDeleteAttr(Random* rng) {
    auto live = LiveWorkingNodes();
    if (live.empty()) return;
    const NodeIndex n = live[rng->Uniform(live.size())];
    const AttributeIndex attr = rng->OneIn(2) ? kind_ : owner_;
    ASSERT_TRUE(ham_->DeleteNodeAttribute(ctx_, n, attr).ok());
    ModelNode& node = Working().nodes[n];
    if (node.attrs.count(attr) != 0 && !node.attrs[attr].empty()) {
      node.attrs[attr].emplace_back(Now(), std::nullopt);
    }
  }

  // ---- transaction plumbing for the model -------------------------

  Model& Working() { return in_txn_ ? staged_ : committed_; }

  std::vector<NodeIndex> LiveWorkingNodes() {
    std::set<NodeIndex> out;
    for (const auto& [i, n] : committed_.nodes) {
      if (n.deleted == 0) out.insert(i);
    }
    if (in_txn_) {
      for (const auto& [i, n] : staged_.nodes) {
        if (n.deleted == 0) {
          out.insert(i);
        } else {
          out.erase(i);
        }
      }
    }
    return {out.begin(), out.end()};
  }

  std::vector<LinkIndex> LiveWorkingLinks() {
    std::set<LinkIndex> out;
    for (const auto& [i, l] : committed_.links) {
      if (l.deleted == 0) out.insert(i);
    }
    if (in_txn_) {
      for (const auto& [i, l] : staged_.links) {
        if (l.deleted == 0) {
          out.insert(i);
        } else {
          out.erase(i);
        }
      }
    }
    return {out.begin(), out.end()};
  }

  void BeginTxn() {
    ASSERT_TRUE(ham_->BeginTransaction(ctx_).ok());
    in_txn_ = true;
    staged_ = Model();
  }

  void EndTxn(bool commit) {
    if (commit) {
      ASSERT_TRUE(ham_->CommitTransaction(ctx_).ok());
      // Fold staged model state into committed state. Staged entries
      // for existing objects carry only their *new* mutations, so we
      // merge field-wise.
      for (auto& [index, staged] : staged_.nodes) {
        auto it = committed_.nodes.find(index);
        if (it == committed_.nodes.end()) {
          committed_.nodes.emplace(index, std::move(staged));
          continue;
        }
        ModelNode& base = it->second;
        if (staged.deleted != 0) base.deleted = staged.deleted;
        for (auto& v : staged.versions) {
          if (v.first > base.versions.back().first) {
            base.versions.push_back(std::move(v));
          }
        }
        for (auto& [attr, history] : staged.attrs) {
          auto& target = base.attrs[attr];
          for (auto& entry : history) {
            if (target.empty() || entry.first > target.back().first) {
              target.push_back(std::move(entry));
            }
          }
        }
      }
      for (auto& [index, staged] : staged_.links) {
        auto it = committed_.links.find(index);
        if (it == committed_.links.end()) {
          committed_.links.emplace(index, staged);
        } else if (staged.deleted != 0) {
          it->second.deleted = staged.deleted;
        }
      }
    } else {
      ASSERT_TRUE(ham_->AbortTransaction(ctx_).ok());
    }
    staged_ = Model();
    in_txn_ = false;
  }

  // But: mutations inside a txn touch the COMMITTED model copies when
  // the object pre-exists (Working() returns staged_, which lacks the
  // base entry). Stage copies on demand instead:
  void EnsureStaged(NodeIndex n) {
    if (!in_txn_) return;
    if (staged_.nodes.count(n) == 0 && committed_.nodes.count(n) != 0) {
      staged_.nodes[n] = committed_.nodes[n];
    }
  }

  void EnsureStagedLink(LinkIndex l) {
    if (!in_txn_) return;
    if (staged_.links.count(l) == 0 && committed_.links.count(l) != 0) {
      staged_.links[l] = committed_.links[l];
    }
  }

  // ---- verification ------------------------------------------------

  void VerifyAt(Random* rng, Time t) {
    ASSERT_FALSE(in_txn_);
    for (const auto& [index, model_node] : committed_.nodes) {
      if (rng->Uniform(committed_.nodes.size()) > 20) continue;  // sample
      auto opened = ham_->OpenNode(ctx_, index, t, {});
      std::optional<std::string> expected;
      if (model_node.ExistsAt(t)) expected = model_node.ContentsAt(t);
      if (!expected.has_value()) {
        EXPECT_FALSE(opened.ok())
            << "node " << index << " should not exist at t=" << t;
        continue;
      }
      ASSERT_TRUE(opened.ok())
          << "node " << index << " missing at t=" << t << ": "
          << opened.status().ToString();
      EXPECT_EQ(opened->contents, *expected) << "node " << index << " t=" << t;
      // Attributes.
      for (AttributeIndex attr : {kind_, owner_}) {
        auto value = ham_->GetNodeAttributeValue(ctx_, index, attr, t);
        std::optional<std::string> model_value = model_node.AttrAt(attr, t);
        if (model_value.has_value()) {
          ASSERT_TRUE(value.ok()) << "node " << index << " attr at t=" << t;
          EXPECT_EQ(*value, *model_value);
        } else {
          EXPECT_FALSE(value.ok()) << "node " << index << " attr at t=" << t;
        }
      }
    }
    // A query per value: exact node-set equality with the model.
    for (const char* value : kValues) {
      auto result = ham_->GetGraphQuery(
          ctx_, t, std::string("kind = ") + value, "", {}, {});
      ASSERT_TRUE(result.ok());
      std::set<NodeIndex> got;
      for (const auto& node : result->nodes) got.insert(node.node);
      std::set<NodeIndex> expected;
      for (const auto& [index, node] : committed_.nodes) {
        if (!node.ExistsAt(t)) continue;
        auto v = node.AttrAt(kind_, t);
        if (v.has_value() && *v == value) expected.insert(index);
      }
      EXPECT_EQ(got, expected) << "query kind=" << value << " at t=" << t;
    }
  }

  AttributeIndex kind_ = 0;
  AttributeIndex owner_ = 0;
  Model committed_;
  Model staged_;
  bool in_txn_ = false;
};

TEST_P(HamModelFuzzTest, RandomOperationsMatchModel) {
  Random rng(90210 + GetParam());
  std::vector<Time> interesting_times;

  for (int step = 0; step < 250; ++step) {
    // Occasionally open/close a transaction around a run of ops.
    if (!in_txn_ && rng.OneIn(12)) {
      BeginTxn();
    } else if (in_txn_ && rng.OneIn(4)) {
      EndTxn(/*commit=*/!rng.OneIn(3));
    }

    const uint64_t pick = rng.Uniform(100);
    // Pre-stage the target object copy where needed.
    if (pick < 25) {
      DoAddNode(&rng);
    } else {
      // Stage model copies so in-transaction mutations of pre-existing
      // objects land on full histories, mirroring the engine's COW.
      for (NodeIndex n : LiveWorkingNodes()) EnsureStaged(n);
      for (LinkIndex l : LiveWorkingLinks()) EnsureStagedLink(l);
      if (pick < 45) {
        DoModifyNode(&rng);
      } else if (pick < 52) {
        DoDeleteNode(&rng);
      } else if (pick < 67) {
        DoAddLink(&rng);
      } else if (pick < 74) {
        DoDeleteLink(&rng);
      } else if (pick < 92) {
        DoSetAttr(&rng);
      } else {
        DoDeleteAttr(&rng);
      }
    }
    if (!in_txn_ && rng.OneIn(10)) {
      interesting_times.push_back(Now());
    }

    // Periodic verification + occasional restart (recovery).
    if (!in_txn_ && step % 50 == 49) {
      if (rng.OneIn(3)) {
        ASSERT_TRUE(ham_->Checkpoint(ctx_).ok());
      }
      if (rng.OneIn(2)) {
        Reopen();  // crash-and-recover equivalence
      }
      VerifyAt(&rng, 0);
      for (int k = 0; k < 3 && !interesting_times.empty(); ++k) {
        VerifyAt(&rng,
                 interesting_times[rng.Uniform(interesting_times.size())]);
      }
    }
  }
  if (in_txn_) EndTxn(true);
  VerifyAt(&rng, 0);
  for (Time t : interesting_times) VerifyAt(&rng, t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamModelFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace ham
}  // namespace neptune

// Seeded multi-node failure scenarios on the deterministic cluster
// simulation (src/sim). One process, one thread, one virtual clock:
// every partition, promotion, power cut, and vanished client replays
// bit-for-bit from NEPTUNE_SIM_SEED, and a failing seed prints a
// one-line repro command.
//
// Scenarios and the cluster-wide invariants they assert:
//  * ReplicationPartitionPromote — writes, drain, partition the
//    primary, promote a follower, stale-term fetches rejected, demote
//    and rejoin the old primary: every acked commit byte-for-byte on
//    every node, fsck clean, terms converged. Covers >= 60 s of
//    simulated time in a few wall seconds.
//  * DeterminismSameSeed — the same seed runs the scenario twice to an
//    identical event-trace hash and verdict; a different seed
//    diverges.
//  * LeaseAbortClientVanish — a client blackholes mid-transaction; the
//    virtual-clock lease sweep aborts it and a second writer commits.
//  * RetryStorm — a burst of clients into tiny admission caps; shed
//    replies and jittered retries, every operation succeeds.
//  * PowerCutDuringFailover — power cut mid-replication: acked commits
//    durable on the rebooted primary, then real failover + rejoin.
//  * WindowedMetricsPartitionHeal — a MetricsWindow sampled from the
//    virtual clock: repl.apply_lag_us zero while drained, climbing
//    through a partition, cleared after the heal.
//  * SeedSweep — the main scenario across NEPTUNE_SIM_SWEEP seeds
//    (CI's sim-soak sets hundreds; the default keeps tier-1 fast).
//
// Runs in its own binary so it can ResetForTest() the process-global
// metrics registry per scenario without disturbing other suites.
//
// Environment knobs:
//   NEPTUNE_SIM_SEED    base seed (default 1)
//   NEPTUNE_SIM_SWEEP   number of consecutive seeds SeedSweep covers
//                       (default 2)

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "ham/ham.h"
#include "obs/window.h"
#include "rpc/remote_ham.h"
#include "rpc/replicator.h"
#include "sim/sim_cluster.h"

namespace neptune {
namespace {

using sim::SimCluster;
using sim::SimClusterOptions;
using sim::SimNetwork;

uint64_t BaseSeed() {
  const char* s = std::getenv("NEPTUNE_SIM_SEED");
  if (s == nullptr) return 1;
  const uint64_t v = std::strtoull(s, nullptr, 10);
  return v != 0 ? v : 1;
}

std::string ReproLine(const char* test, uint64_t seed) {
  return "repro: NEPTUNE_SIM_SEED=" + std::to_string(seed) +
         " ./sim_test --gtest_filter=SimClusterTest." + test;
}

std::string FreshRoot(const std::string& name) {
  const std::string root =
      (std::filesystem::temp_directory_path() / ("neptune_sim_" + name))
          .string();
  Env::Default()->RemoveDirRecursive(root);
  EXPECT_TRUE(Env::Default()->CreateDir(root).ok()) << root;
  return root;
}

uint64_t CounterNow(const std::string& name) {
  return MetricsRegistry::Instance().Snapshot().CounterValue(name);
}

int64_t GaugeNow(const std::string& name) {
  const MetricsSnapshot snapshot = MetricsRegistry::Instance().Snapshot();
  auto it = snapshot.gauges.find(name);
  return it == snapshot.gauges.end() ? 0 : it->second;
}

// One acked commit: the node index and the exact bytes the client saw
// the primary acknowledge.
struct Acked {
  ham::NodeIndex node;
  std::string contents;
};

// Commits `count` nodes through `client`, recording exactly those the
// server acknowledged end to end (AddNode + ModifyNode both OK).
void WriteNodes(rpc::RemoteHam* client, ham::Context ctx,
                const std::string& tag, int count,
                std::vector<Acked>* acked) {
  for (int i = 0; i < count; ++i) {
    auto added = client->AddNode(ctx, true);
    if (!added.ok()) {
      ADD_FAILURE() << "AddNode(" << tag << " " << i
                    << "): " << added.status().ToString();
      return;
    }
    const std::string contents =
        tag + " seq=" + std::to_string(i) +
        std::string(1 + static_cast<size_t>(i) % 97, 'x');
    Status modified = client->ModifyNode(ctx, added->node,
                                         added->creation_time, contents, {},
                                         "sim");
    if (!modified.ok()) {
      ADD_FAILURE() << "ModifyNode(" << tag << " " << i
                    << "): " << modified.ToString();
      return;
    }
    acked->push_back({added->node, contents});
  }
}

// Opens node `i`'s store directly (no network) and checks every acked
// commit byte-for-byte plus a structural fsck.
void VerifyAckedOnNode(SimCluster* cluster, int i, ham::ProjectId project,
                       const std::vector<Acked>& acked, const char* who) {
  ham::Ham* engine = cluster->node(i)->ham();
  ASSERT_NE(engine, nullptr) << who << " is down";
  auto ctx = engine->OpenGraph(project, "verify", cluster->NodeDir(i));
  ASSERT_TRUE(ctx.ok()) << who << ": " << ctx.status().ToString();
  for (const Acked& commit : acked) {
    auto opened = engine->OpenNode(*ctx, commit.node, 0, {});
    ASSERT_TRUE(opened.ok())
        << who << " lost acked node " << commit.node << ": "
        << opened.status().ToString();
    ASSERT_EQ(opened->contents, commit.contents)
        << who << " diverged on acked node " << commit.node;
  }
  auto problems = engine->VerifyGraph(*ctx);
  ASSERT_TRUE(problems.ok()) << who << ": " << problems.status().ToString();
  EXPECT_TRUE(problems->empty())
      << who << ": " << problems->size()
      << " fsck problems, first: " << problems->front();
  EXPECT_TRUE(engine->CloseGraph(*ctx).ok());
}

// Pumps virtual time in `step_us` slices until `pred` holds or
// `budget_us` of simulated time has passed.
template <typename Pred>
bool RunUntilSim(SimCluster* cluster, uint64_t budget_us, uint64_t step_us,
                 Pred pred) {
  const uint64_t deadline = cluster->clock()->NowMicros() + budget_us;
  while (!pred()) {
    if (cluster->clock()->NowMicros() >= deadline) return false;
    cluster->RunFor(step_us);
  }
  return true;
}

bool NodesConverged(SimCluster* cluster, int a, int b) {
  auto sa = cluster->NodeReplStatus(a);
  auto sb = cluster->NodeReplStatus(b);
  if (!sa.ok() || !sb.ok()) return false;
  return sa->term == sb->term && sa->epoch == sb->epoch &&
         sa->wal_bytes == sb->wal_bytes;
}

// ------------------------------------------------ the main scenario
//
// The full failover story on three nodes, returned as (trace hash,
// verdict string) so the determinism test can compare two runs.

struct ScenarioResult {
  uint32_t trace_hash = 0;
  uint64_t events_run = 0;
  std::string verdict;  // human-readable outcome summary
};

// gtest ASSERTs need a void function; the result lands in *out only
// when the whole scenario ran clean.
void RunPartitionPromoteScenario(uint64_t seed, const std::string& root,
                                 ScenarioResult* out) {
  SimClusterOptions options;
  options.seed = seed;
  options.root = root;
  options.followers = 2;
  options.checkpoint_wal_bytes = 32 << 10;  // frequent epoch rolls
  options.repl_poll_wait_ms = 50;
  options.default_link.delay_us = 400;
  options.default_link.jitter_us = 1200;
  SimCluster cluster(Env::Default(), options);

  // Boot: create the graph on node0 through the wire protocol.
  auto client = cluster.NewClient("client", 0);
  ASSERT_NE(client, nullptr) << "client could not dial node0";
  auto created = client->CreateGraph(cluster.NodeDir(0), 0755);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const ham::ProjectId project = created->project;
  auto ctx = client->OpenGraph(project, "client", cluster.NodeDir(0));
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  cluster.StartReplication(1, 0);
  cluster.StartReplication(2, 0);

  // Epoch 1: writes interleaved with replication traffic, then drain.
  std::vector<Acked> acked;
  for (int burst = 0; burst < 6; ++burst) {
    WriteNodes(client.get(), *ctx, "epoch1." + std::to_string(burst), 5,
               &acked);
    if (::testing::Test::HasFailure()) return;
    cluster.RunFor(300 * 1000);
  }
  ASSERT_TRUE(RunUntilSim(&cluster, 30'000'000, 100'000, [&] {
    return cluster.ReplicationCaughtUp(1) && cluster.ReplicationCaughtUp(2);
  })) << "followers never drained epoch 1";

  // The primary drops off the client's network and follower 1's, but
  // node2 can still see it (for the stale-term probe below).
  cluster.Partition(0, 1);
  cluster.net()->Cut("client", SimCluster::HostName(0));
  client->CloseGraph(*ctx);  // best effort; the link is dead
  client.reset();

  // Operator failover: promote node1, re-point node2 at it.
  auto term = cluster.Promote(1);
  ASSERT_TRUE(term.ok()) << term.status().ToString();
  cluster.StartReplication(2, 1);

  // Epoch 2: a new client writes against the promoted primary.
  auto client2 = cluster.NewClient("client", 1);
  ASSERT_NE(client2, nullptr) << "client could not dial node1";
  auto ctx2 = client2->OpenGraph(project, "client", cluster.NodeDir(1));
  ASSERT_TRUE(ctx2.ok()) << ctx2.status().ToString();
  for (int burst = 0; burst < 4; ++burst) {
    WriteNodes(client2.get(), *ctx2, "epoch2." + std::to_string(burst), 5,
               &acked);
    if (::testing::Test::HasFailure()) return;
    cluster.RunFor(300 * 1000);
  }
  ASSERT_TRUE(RunUntilSim(&cluster, 30'000'000, 100'000, [&] {
    return cluster.ReplicationCaughtUp(2);
  })) << "node2 never caught up with the promoted primary";

  // Stale-term probe: point node2 (now at the promoted term) back at
  // the deposed primary. Every fetch must be rejected — a follower
  // never applies bytes from a stale term.
  cluster.StartReplication(2, 0);
  cluster.RunFor(3'000'000);
  rpc::Replicator* probe = cluster.replicator(2);
  ASSERT_NE(probe, nullptr);
  const uint64_t stale_rejects = probe->progress("").stale_primary_rejects;
  EXPECT_GT(stale_rejects, 0u)
      << "deposed primary's term was not rejected by the promoted follower";
  cluster.StartReplication(2, 1);

  // Demote: the deposed primary power-cycles into follower mode and
  // rejoins behind node1.
  cluster.HealPartition(0, 1);
  cluster.net()->HealCut("client", SimCluster::HostName(0));
  cluster.CrashNode(0);
  cluster.RestartNode(0, /*as_follower=*/true);
  cluster.StartReplication(0, 1);

  ASSERT_TRUE(RunUntilSim(&cluster, 60'000'000, 200'000, [&] {
    return cluster.ReplicationCaughtUp(0) && cluster.ReplicationCaughtUp(2) &&
           NodesConverged(&cluster, 0, 1) && NodesConverged(&cluster, 2, 1);
  })) << "cluster never converged after the old primary rejoined";

  // Idle the cluster out to >= 60 s of simulated time: pumps, lease
  // sweeps, and caught-up polls keep ticking and must stay quiescent.
  const uint64_t start_us = 1'000'000'000ull;  // SimClock epoch
  const uint64_t elapsed = cluster.clock()->NowMicros() - start_us;
  if (elapsed < 60'000'000ull) cluster.RunFor(60'000'000ull - elapsed);

  // Invariants: every acked commit (both epochs) byte-for-byte on all
  // three nodes, every store fsck-clean, terms converged.
  VerifyAckedOnNode(&cluster, 1, project, acked, "promoted node1");
  VerifyAckedOnNode(&cluster, 0, project, acked, "rejoined node0");
  VerifyAckedOnNode(&cluster, 2, project, acked, "follower node2");
  auto s1 = cluster.NodeReplStatus(1);
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();

  out->trace_hash = cluster.clock()->trace_hash();
  out->events_run = cluster.clock()->events_run();
  out->verdict = "acked=" + std::to_string(acked.size()) +
                 " term=" + std::to_string(s1->term) +
                 " stale_rejects=" + std::to_string(stale_rejects) +
                 " sim_us=" + std::to_string(cluster.clock()->NowMicros() -
                                             start_us);
}

// -------------------------------------------------------- the tests

TEST(SimClusterTest, ReplicationPartitionPromote) {
  const uint64_t seed = BaseSeed();
  SCOPED_TRACE(ReproLine("ReplicationPartitionPromote", seed));
  MetricsRegistry::Instance().ResetForTest();
  const auto wall_start = std::chrono::steady_clock::now();
  const std::string root = FreshRoot("ppp_" + std::to_string(seed));
  ScenarioResult result;
  RunPartitionPromoteScenario(seed, root, &result);
  if (::testing::Test::HasFailure()) return;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::printf("[sim] seed=%llu %s events=%llu hash=%08x wall=%.2fs\n",
              static_cast<unsigned long long>(seed), result.verdict.c_str(),
              static_cast<unsigned long long>(result.events_run),
              result.trace_hash, wall_s);
  // >= 60 s of simulated time must cost only wall seconds (generous
  // bound so sanitizer builds do not flake).
  EXPECT_LT(wall_s, 10.0) << "simulation too slow: " << wall_s << "s wall";
  Env::Default()->RemoveDirRecursive(root);
}

TEST(SimClusterTest, DeterminismSameSeed) {
  const uint64_t seed = BaseSeed();
  SCOPED_TRACE(ReproLine("DeterminismSameSeed", seed));

  MetricsRegistry::Instance().ResetForTest();
  const std::string root_a = FreshRoot("det_a_" + std::to_string(seed));
  ScenarioResult a;
  RunPartitionPromoteScenario(seed, root_a, &a);
  if (::testing::Test::HasFailure()) return;

  MetricsRegistry::Instance().ResetForTest();
  const std::string root_b = FreshRoot("det_b_" + std::to_string(seed));
  ScenarioResult b;
  RunPartitionPromoteScenario(seed, root_b, &b);
  if (::testing::Test::HasFailure()) return;

  // Same seed: the entire interleaving replays — identical event
  // count, identical trace hash, identical outcome.
  EXPECT_EQ(a.events_run, b.events_run);
  EXPECT_EQ(a.trace_hash, b.trace_hash)
      << "same seed produced a different event trace";
  EXPECT_EQ(a.verdict, b.verdict);

  MetricsRegistry::Instance().ResetForTest();
  const std::string root_c = FreshRoot("det_c_" + std::to_string(seed));
  ScenarioResult c;
  RunPartitionPromoteScenario(seed + 1, root_c, &c);
  if (::testing::Test::HasFailure()) return;
  EXPECT_NE(a.trace_hash, c.trace_hash)
      << "different seeds produced identical traces (jitter not applied?)";

  Env::Default()->RemoveDirRecursive(root_a);
  Env::Default()->RemoveDirRecursive(root_b);
  Env::Default()->RemoveDirRecursive(root_c);
}

TEST(SimClusterTest, LeaseAbortClientVanish) {
  const uint64_t seed = BaseSeed();
  SCOPED_TRACE(ReproLine("LeaseAbortClientVanish", seed));
  MetricsRegistry::Instance().ResetForTest();
  const std::string root = FreshRoot("lease_" + std::to_string(seed));

  SimClusterOptions options;
  options.seed = seed;
  options.root = root;
  options.followers = 0;
  options.txn_lease_ms = 250;  // swept from the virtual clock
  SimCluster cluster(Env::Default(), options);

  auto client_a = cluster.NewClient("clientA", 0);
  ASSERT_NE(client_a, nullptr);
  auto created = client_a->CreateGraph(cluster.NodeDir(0), 0755);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const ham::ProjectId project = created->project;
  auto ctx_a = client_a->OpenGraph(project, "clientA", cluster.NodeDir(0));
  ASSERT_TRUE(ctx_a.ok()) << ctx_a.status().ToString();

  // Client A takes the writer slot and stages uncommitted work...
  ASSERT_TRUE(client_a->BeginTransaction(*ctx_a).ok());
  auto staged = client_a->AddNode(*ctx_a, true);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  ASSERT_TRUE(client_a->ModifyNode(*ctx_a, staged->node,
                                   staged->creation_time,
                                   "A uncommitted payload", {}, "sim")
                  .ok());

  // ...then the host vanishes: frames from A silently stop arriving.
  // No FIN, no RST — only the lease can free the writer slot.
  cluster.net()->Blackhole("clientA", SimCluster::HostName(0));

  cluster.RunFor(2'000'000);  // several lease periods
  EXPECT_GT(CounterNow("ham.txn.aborted_by_lease"), 0u)
      << "the lease sweep never aborted the vanished client's transaction";

  // A second writer must now be able to take the slot and commit.
  auto client_b = cluster.NewClient("clientB", 0);
  ASSERT_NE(client_b, nullptr);
  auto ctx_b = client_b->OpenGraph(project, "clientB", cluster.NodeDir(0));
  ASSERT_TRUE(ctx_b.ok()) << ctx_b.status().ToString();
  ASSERT_TRUE(client_b->BeginTransaction(*ctx_b).ok())
      << "writer slot still held after the lease abort";
  std::vector<Acked> acked;
  WriteNodes(client_b.get(), *ctx_b, "after-abort", 3, &acked);
  ASSERT_TRUE(client_b->CommitTransaction(*ctx_b).ok());
  EXPECT_TRUE(client_b->CloseGraph(*ctx_b).ok());

  // B's commits stand; A's staged bytes never became visible.
  VerifyAckedOnNode(&cluster, 0, project, acked, "node0");
  {
    ham::Ham* engine = cluster.node(0)->ham();
    auto ctx = engine->OpenGraph(project, "verify", cluster.NodeDir(0));
    ASSERT_TRUE(ctx.ok());
    auto ghost = engine->OpenNode(*ctx, staged->node, 0, {});
    if (ghost.ok()) {
      EXPECT_NE(ghost->contents, "A uncommitted payload")
          << "aborted transaction's bytes leaked into the store";
    }
    EXPECT_TRUE(engine->CloseGraph(*ctx).ok());
  }

  client_a.reset();  // still blackholed; dies without a goodbye
  Env::Default()->RemoveDirRecursive(root);
}

TEST(SimClusterTest, RetryStorm) {
  const uint64_t seed = BaseSeed();
  SCOPED_TRACE(ReproLine("RetryStorm", seed));
  MetricsRegistry::Instance().ResetForTest();
  const std::string root = FreshRoot("storm_" + std::to_string(seed));

  SimClusterOptions options;
  options.seed = seed;
  options.root = root;
  options.followers = 0;
  options.service_time_us = 3000;  // slow server: requests pile up
  options.admission.shed_inflight_requests = 2;
  // The dial-in wave plateaus around six OpenGraphs in flight; a hard
  // cap of three forces admission control to shed part of the wave and
  // the clients to ride their Retry-After backoff.
  options.admission.max_inflight_requests = 3;
  options.retry_after_ms = 20;
  SimCluster cluster(Env::Default(), options);

  auto setup = cluster.NewClient("setup", 0);
  ASSERT_NE(setup, nullptr);
  auto created = setup->CreateGraph(cluster.NodeDir(0), 0755);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const ham::ProjectId project = created->project;
  auto setup_ctx = setup->OpenGraph(project, "setup", cluster.NodeDir(0));
  ASSERT_TRUE(setup_ctx.ok());
  std::vector<Acked> seeded;
  WriteNodes(setup.get(), *setup_ctx, "storm-seed", 1, &seeded);
  ASSERT_EQ(seeded.size(), 1u);
  EXPECT_TRUE(setup->CloseGraph(*setup_ctx).ok());
  const uint64_t shed_before = CounterNow("server.shed");

  // Dial every storm client in while the server is quiet (the connect
  // handshake is shed-exempt and would mask the storm otherwise).
  constexpr int kNumClients = 16;
  constexpr int kReadsPerClient = 3;
  std::vector<std::unique_ptr<rpc::RemoteHam>> storm;
  std::vector<ham::Context> storm_ctx;
  for (int i = 0; i < kNumClients; ++i) {
    rpc::RemoteHam::Options base;
    base.connect_timeout_ms = 2000;
    base.send_timeout_ms = 20000;
    base.recv_timeout_ms = 20000;
    base.max_retries = 12;  // ride out the shed wave
    auto client = cluster.NewClient("storm" + std::to_string(i), 0, base);
    ASSERT_NE(client, nullptr) << "storm client " << i << " could not dial";
    auto ctx = client->OpenGraph(project, "storm", cluster.NodeDir(0));
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    storm.push_back(std::move(client));
    storm_ctx.push_back(*ctx);
    cluster.RunFor(10'000);
  }

  // The storm: every client fires a read burst within 8 ms of virtual
  // time. The arrival wave blows far past the soft cap, so admission
  // control sheds most first attempts; the clients' jittered
  // Retry-After backoff must drain the pileup with every read
  // eventually succeeding.
  std::vector<int> completed(kNumClients, 0);
  for (int i = 0; i < kNumClients; ++i) {
    cluster.clock()->Schedule(
        static_cast<uint64_t>(i) * 500, "storm.client" + std::to_string(i),
        [&storm, &storm_ctx, &completed, i, node = seeded[0].node] {
          rpc::RemoteHam* client = storm[static_cast<size_t>(i)].get();
          for (int r = 0; r < kReadsPerClient; ++r) {
            auto opened =
                client->OpenNode(storm_ctx[static_cast<size_t>(i)], node, 0,
                                 {});
            if (!opened.ok()) {
              ADD_FAILURE() << "storm client " << i << " read " << r << ": "
                            << opened.status().ToString();
              break;
            }
            ++completed[i];
          }
        });
  }
  cluster.RunFor(30'000'000);

  for (int i = 0; i < kNumClients; ++i) {
    EXPECT_EQ(completed[i], kReadsPerClient)
        << "storm client " << i << " did not finish its reads";
  }
  const uint64_t shed_delta = CounterNow("server.shed") - shed_before;
  EXPECT_GT(shed_delta, 0u)
      << "admission control never shed — the storm was not a storm";
  std::printf("[sim] seed=%llu retry-storm shed=%llu clients=%d\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(shed_delta), kNumClients);
  for (int i = 0; i < kNumClients; ++i) {
    storm[static_cast<size_t>(i)]->CloseGraph(storm_ctx[static_cast<size_t>(i)]);
  }
  storm.clear();
  Env::Default()->RemoveDirRecursive(root);
}

TEST(SimClusterTest, PowerCutDuringFailover) {
  const uint64_t seed = BaseSeed();
  SCOPED_TRACE(ReproLine("PowerCutDuringFailover", seed));
  MetricsRegistry::Instance().ResetForTest();
  const std::string root = FreshRoot("pcut_" + std::to_string(seed));

  SimClusterOptions options;
  options.seed = seed;
  options.root = root;
  options.followers = 1;
  options.checkpoint_wal_bytes = 32 << 10;
  options.repl_poll_wait_ms = 50;
  SimCluster cluster(Env::Default(), options);

  auto client = cluster.NewClient("client", 0);
  ASSERT_NE(client, nullptr);
  auto created = client->CreateGraph(cluster.NodeDir(0), 0755);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  const ham::ProjectId project = created->project;
  auto ctx = client->OpenGraph(project, "client", cluster.NodeDir(0));
  ASSERT_TRUE(ctx.ok());
  cluster.StartReplication(1, 0);

  // Acked writes racing the replication stream — then the power goes.
  std::vector<Acked> epoch1;
  for (int burst = 0; burst < 5; ++burst) {
    WriteNodes(client.get(), *ctx, "pcut1." + std::to_string(burst), 5,
               &epoch1);
    if (::testing::Test::HasFailure()) return;
    cluster.RunFor(50 * 1000);  // deliberately short of a full drain
  }
  client.reset();  // the cut will kill the connection anyway
  cluster.CrashNode(0);

  // Durability invariant, checked BEFORE any rejoin: the rebooted
  // primary recovers every commit it ever acked from fsynced state.
  cluster.RestartNode(0, /*as_follower=*/false);
  VerifyAckedOnNode(&cluster, 0, project, epoch1, "rebooted node0");
  if (::testing::Test::HasFailure()) return;

  // Let the follower drain, then lose the primary for good.
  cluster.StartReplication(1, 0);
  ASSERT_TRUE(RunUntilSim(&cluster, 30'000'000, 100'000, [&] {
    return cluster.ReplicationCaughtUp(1);
  })) << "follower never drained before the final cut";
  cluster.StopReplication(1);
  cluster.CrashNode(0);

  // Failover: promote the follower, write a second epoch against it.
  auto term = cluster.Promote(1);
  ASSERT_TRUE(term.ok()) << term.status().ToString();
  auto client2 = cluster.NewClient("client", 1);
  ASSERT_NE(client2, nullptr);
  auto ctx2 = client2->OpenGraph(project, "client", cluster.NodeDir(1));
  ASSERT_TRUE(ctx2.ok());
  std::vector<Acked> all = epoch1;
  WriteNodes(client2.get(), *ctx2, "pcut2", 15, &all);
  if (::testing::Test::HasFailure()) return;

  // The old primary reboots as a follower of the new one and converges.
  cluster.RestartNode(0, /*as_follower=*/true);
  cluster.StartReplication(0, 1);
  ASSERT_TRUE(RunUntilSim(&cluster, 60'000'000, 200'000, [&] {
    return cluster.ReplicationCaughtUp(0) && NodesConverged(&cluster, 0, 1);
  })) << "old primary never converged after demotion";

  VerifyAckedOnNode(&cluster, 1, project, all, "promoted node1");
  VerifyAckedOnNode(&cluster, 0, project, all, "demoted node0");
  Env::Default()->RemoveDirRecursive(root);
}

// Windowed metrics under failover, entirely on the virtual clock: a
// local MetricsWindow is sampled once per simulated second (exactly
// what a StatsSampler tick does, minus the thread), and the follower's
// repl.apply_lag_us gauge must sit at zero while drained, climb while
// the primary is partitioned away, and clear after the heal. Same
// seed, same numbers.
TEST(SimClusterTest, WindowedMetricsPartitionHeal) {
  const uint64_t seed = BaseSeed();
  SCOPED_TRACE(ReproLine("WindowedMetricsPartitionHeal", seed));
  MetricsRegistry::Instance().ResetForTest();
  const std::string root = FreshRoot("obswin_" + std::to_string(seed));

  SimClusterOptions options;
  options.seed = seed;
  options.root = root;
  options.followers = 1;
  options.repl_poll_wait_ms = 50;
  SimCluster cluster(Env::Default(), options);

  auto client = cluster.NewClient("client", 0);
  ASSERT_NE(client, nullptr);
  auto created = client->CreateGraph(cluster.NodeDir(0), 0755);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto ctx = client->OpenGraph(created->project, "client",
                               cluster.NodeDir(0));
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  cluster.StartReplication(1, 0);

  obs::MetricsWindow window;
  auto sample = [&] { window.SampleNow(cluster.clock()); };

  // Writes with one sampler tick per simulated second.
  std::vector<Acked> acked;
  sample();
  for (int burst = 0; burst < 5; ++burst) {
    WriteNodes(client.get(), *ctx, "obswin" + std::to_string(burst), 4,
               &acked);
    if (::testing::Test::HasFailure()) return;
    cluster.RunFor(1'000'000);
    sample();
  }
  ASSERT_TRUE(RunUntilSim(&cluster, 30'000'000, 1'000'000, [&] {
    sample();
    return cluster.ReplicationCaughtUp(1);
  })) << "follower never drained";
  sample();

  // Drained: no apply lag, and the window saw the write traffic.
  EXPECT_EQ(GaugeNow("repl.apply_lag_us"), 0);
  EXPECT_GT(window.CounterRate("rpc.requests", 60'000'000), 0.0)
      << "windowed request rate stayed zero through the write bursts";

  // Partition the primary away; the follower's fetches fail and the
  // lag gauge must climb with virtual time.
  cluster.Partition(0, 1);
  for (int s = 0; s < 12; ++s) {
    cluster.RunFor(1'000'000);
    sample();
  }
  const int64_t lag_during = GaugeNow("repl.apply_lag_us");
  EXPECT_GT(lag_during, 2'000'000)
      << "apply lag did not rise during a 12s partition";

  // The windowed delta exposes the same gauge (newest value) — what
  // getServerStatisticsDelta ships to `neptune_ctl top`.
  MetricsSnapshot delta;
  uint64_t elapsed = 0;
  ASSERT_TRUE(window.Delta(5'000'000, &delta, &elapsed));
  EXPECT_GT(elapsed, 0u);
  auto lag_it = delta.gauges.find("repl.apply_lag_us");
  ASSERT_NE(lag_it, delta.gauges.end());
  EXPECT_EQ(lag_it->second, lag_during);

  // Heal: the follower re-drains and the lag clears.
  cluster.HealPartition(0, 1);
  ASSERT_TRUE(RunUntilSim(&cluster, 30'000'000, 1'000'000, [&] {
    sample();
    return cluster.ReplicationCaughtUp(1);
  })) << "follower never re-drained after the heal";
  EXPECT_EQ(GaugeNow("repl.apply_lag_us"), 0)
      << "apply lag did not clear after the partition healed";

  VerifyAckedOnNode(&cluster, 1, created->project, acked, "follower node1");
  Env::Default()->RemoveDirRecursive(root);
}

TEST(SimClusterTest, SeedSweep) {
  const char* sweep_env = std::getenv("NEPTUNE_SIM_SWEEP");
  const int sweep = sweep_env != nullptr ? std::atoi(sweep_env) : 0;
  const int count = sweep > 0 ? sweep : 2;
  const uint64_t base = BaseSeed();
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    SCOPED_TRACE(ReproLine("ReplicationPartitionPromote", seed));
    MetricsRegistry::Instance().ResetForTest();
    const std::string root = FreshRoot("sweep_" + std::to_string(seed));
    ScenarioResult ignored;
    RunPartitionPromoteScenario(seed, root, &ignored);
    if (::testing::Test::HasFailure()) {
      std::printf("[sim] FAILING SEED — repro: NEPTUNE_SIM_SEED=%llu "
                  "./sim_test --gtest_filter=SimClusterTest.*\n",
                  static_cast<unsigned long long>(seed));
      return;
    }
    Env::Default()->RemoveDirRecursive(root);
  }
}

}  // namespace
}  // namespace neptune

#!/usr/bin/env python3
"""Compare two merged bench JSON files (scripts/bench_smoke.sh output)
and gate on headline regressions.

    scripts/bench_compare.py BASELINE.json FRESH.json \
        [--gate B1,B3,B9] [--threshold 30]

Prints a markdown diff table (pipe it into $GITHUB_STEP_SUMMARY in CI)
covering every B-series headline present in both files, then exits
nonzero if any *gated* series' headline real time regressed by more
than the threshold percentage.

Bench numbers on shared CI runners are noisy, so the gate is
deliberately coarse: only the stable headline series (B1 delta
storage, B3 query, B9 concurrency by default) are enforced, and only
beyond a wide threshold. Set NEPTUNE_BENCH_SKIP_GATE=1 to report the
diff without failing (e.g. when landing a PR with a known, accepted
perf trade-off).
"""

import argparse
import json
import os
import sys


def load_headlines(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("headlines", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--gate", default="B1,B3,B6,B9",
                        help="comma-separated B-series to enforce")
    parser.add_argument("--threshold", type=float, default=30.0,
                        help="max allowed regression, percent")
    args = parser.parse_args()

    baseline = load_headlines(args.baseline)
    fresh = load_headlines(args.fresh)
    gated = {s.strip() for s in args.gate.split(",") if s.strip()}
    skip_gate = os.environ.get("NEPTUNE_BENCH_SKIP_GATE", "") not in ("", "0")

    rows = []
    failures = []
    for series in sorted(set(baseline) | set(fresh), key=lambda s: int(s[1:])):
        old = baseline.get(series, {})
        new = fresh.get(series, {})
        name = new.get("headline") or old.get("headline") or "?"
        old_us = old.get("headline_real_time_us")
        new_us = new.get("headline_real_time_us")
        if old_us and new_us:
            delta_pct = (new_us - old_us) / old_us * 100
            delta = f"{delta_pct:+.1f}%"
            if series in gated and delta_pct > args.threshold:
                failures.append(
                    f"{series} {name}: {old_us}us -> {new_us}us "
                    f"({delta_pct:+.1f}% > +{args.threshold:.0f}%)")
        else:
            delta = "n/a"
        mark = " (gated)" if series in gated else ""
        rows.append((series + mark, name, old_us, new_us, delta))

    # B6's real story is the pipelining sub-headlines, not the single
    # BM_OpenNodeLocal time: gate the pipelined per-op latencies (higher
    # is worse) and the aggregate speedup (lower is worse) too.
    if "B6" in gated:
        old_pipe = baseline.get("B6", {}).get("pipelining", {})
        new_pipe = fresh.get("B6", {}).get("pipelining", {})
        for key in sorted(set(old_pipe) & set(new_pipe)):
            old_v, new_v = old_pipe[key], new_pipe[key]
            if not old_v or not new_v:
                continue
            if key.endswith("_us"):
                delta_pct = (new_v - old_v) / old_v * 100
                worse = delta_pct > args.threshold
            elif key.endswith("_x"):
                delta_pct = (old_v - new_v) / old_v * 100
                worse = delta_pct > args.threshold
            else:
                continue
            if worse:
                failures.append(
                    f"B6 pipelining.{key}: {old_v} -> {new_v} "
                    f"({delta_pct:+.1f}% worse > +{args.threshold:.0f}%)")

    print("### Bench headline diff")
    print()
    print(f"Baseline `{args.baseline}` vs fresh `{args.fresh}`; gate: "
          f"{', '.join(sorted(gated))} at +{args.threshold:.0f}%.")
    print()
    print("| series | headline | baseline (us) | fresh (us) | delta |")
    print("|---|---|---|---|---|")
    for series, name, old_us, new_us, delta in rows:
        print(f"| {series} | `{name}` | {old_us} | {new_us} | {delta} |")
    print()

    indexed = fresh.get("B3", {}).get("indexed_query")
    if indexed:
        print(f"B3 indexed queries over 5000 nodes: selective equality "
              f"{indexed.get('selective_5000_stride100_us')}us, conjunction "
              f"{indexed.get('conjunction_5000_indexed_us')}us indexed vs "
              f"{indexed.get('conjunction_5000_scan_us')}us scanned "
              f"({indexed.get('conjunction_speedup_x')}x); first query after "
              f"a write {indexed.get('post_write_first_query_5000_us')}us.")
        print()

    pipelining = fresh.get("B6", {}).get("pipelining")
    if pipelining:
        print(f"B6 pipelining at 8 clients on one connection: one-in-flight "
              f"{pipelining.get('one_in_flight_shared_8t_us')}us/op vs "
              f"pipelined {pipelining.get('pipelined_window8_8t_us')}us/op "
              f"(8-deep windows) — "
              f"speedup {pipelining.get('pipelined_speedup_x')}x.")
        print()

    if failures:
        banner = "IGNORED (NEPTUNE_BENCH_SKIP_GATE set)" if skip_gate \
            else "FAILED"
        print(f"**Bench gate {banner}:**")
        for f in failures:
            print(f"- {f}")
        if not skip_gate:
            return 1
    else:
        print("Bench gate passed: no gated headline regressed beyond "
              f"+{args.threshold:.0f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Bench smoke runner: runs every bench binary briefly and merges the
# per-binary google-benchmark JSON into one BENCH_<n>.json at the repo
# root, so the perf trajectory is diffable PR over PR.
#
#   scripts/bench_smoke.sh [build-dir] [out-json] [min-time]
#
# Also available as `cmake --build <build-dir> --target bench_smoke`.
# The merged document has three top-level keys:
#   headlines  B1..B9 -> suite name + representative numbers (B6 also
#              carries the tracing overhead comparison)
#   suites     suite name -> full google-benchmark "benchmarks" array
#   context    host/toolchain context from the first suite run
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_7.json}
MIN_TIME=${3:-0.01}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name" >&2
  "$bench" --benchmark_min_time="$MIN_TIME" \
           --benchmark_out="$TMP/$name.json" \
           --benchmark_out_format=json > /dev/null
done

python3 - "$OUT" "$TMP"/*.json <<'PYEOF'
import json, os, sys

B_SERIES = {
    "bench_delta_storage": "B1",
    "bench_version_access": "B2",
    "bench_query": "B3",
    "bench_traversal": "B4",
    "bench_transactions": "B5",
    "bench_rpc": "B6",
    "bench_attributes": "B7",
    "bench_contexts": "B8",
    "bench_concurrency": "B9",
}

out_path, inputs = sys.argv[1], sys.argv[2:]
suites, context = {}, {}
for path in inputs:
    with open(path) as f:
        doc = json.load(f)
    name = os.path.splitext(os.path.basename(path))[0]
    suites[name] = doc.get("benchmarks", [])
    if not context:
        context = doc.get("context", {})

TO_US = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}

def real_us(suite, bench_name):
    for b in suites.get(suite, []):
        if b.get("name") == bench_name:
            return round(b["real_time"] * TO_US.get(b.get("time_unit"), 1e-3),
                         3)
    return None

headlines = {}
for suite, bn in sorted(B_SERIES.items(), key=lambda kv: int(kv[1][1:])):
    benches = suites.get(suite, [])
    if not benches:
        continue
    first = benches[0]
    headlines[bn] = {
        "suite": suite,
        "benchmarks": len(benches),
        "headline": first.get("name"),
        "headline_real_time_us": real_us(suite, first.get("name")),
    }

# B6 carries the tracing-overhead comparison: the same remote openNode
# with tracing disabled (the default), sampling every request, and the
# recommended 1-in-64 production sampling.
base = real_us("bench_rpc", "BM_OpenNodeRemote")
traced = real_us("bench_rpc", "BM_OpenNodeRemoteTraced")
sampled = real_us("bench_rpc", "BM_OpenNodeRemoteSampled1in64")
if "B6" in headlines and base:
    headlines["B6"]["tracing"] = {
        "open_node_remote_untraced_us": base,
        "open_node_remote_traced_us": traced,
        "open_node_remote_sampled_1in64_us": sampled,
        "traced_overhead_pct":
            round((traced - base) / base * 100, 1) if traced else None,
        "sampled_1in64_overhead_pct":
            round((sampled - base) / base * 100, 1) if sampled else None,
    }

# B3 carries the indexed-query headlines (PR 7): the selective equality
# and conjunction queries over 5000 nodes that the planner now serves
# from the attribute index, and the post-write first query that used to
# pay a full index rebuild.
sel_5000 = real_us("bench_query",
                   "BM_GetGraphQuerySelectivity/nodes:5000/stride:100")
dense_5000 = real_us("bench_query",
                     "BM_GetGraphQuerySelectivity/nodes:5000/stride:1")
conj_idx = real_us("bench_query",
                   "BM_QueryConjunctionSelectivity/pred:0/index:1")
conj_scan = real_us("bench_query",
                    "BM_QueryConjunctionSelectivity/pred:0/index:0")
cliff = real_us("bench_query", "BM_QueryPostWriteFirstQuery/nodes:5000")
write_heavy = real_us("bench_query", "BM_QueryIndexWriteHeavy/1")
if "B3" in headlines and sel_5000:
    headlines["B3"]["indexed_query"] = {
        "selective_5000_stride100_us": sel_5000,
        "dense_5000_stride1_us": dense_5000,
        "conjunction_5000_indexed_us": conj_idx,
        "conjunction_5000_scan_us": conj_scan,
        "conjunction_speedup_x":
            round(conj_scan / conj_idx, 2) if conj_idx else None,
        "post_write_first_query_5000_us": cliff,
        "write_heavy_indexed_us": write_heavy,
    }

# B6 also carries the pipelining comparison (PR 6): remote openNode
# throughput on one shared connection at 8 concurrent clients — the
# classic one-in-flight client vs pipelined mode (each client keeping
# an 8-deep async window). The sync-pipelined and single-thread-window
# variants bracket where the win comes from.
one_in_flight = real_us("bench_rpc",
                        "BM_OpenNodeRemoteShared1InFlight/real_time/threads:8")
pipelined_sync = real_us(
    "bench_rpc", "BM_OpenNodeRemoteSharedPipelined/real_time/threads:8")
window8 = real_us("bench_rpc", "BM_OpenNodeRemotePipelinedWindow/8/real_time")
pipelined_8c = real_us(
    "bench_rpc",
    "BM_OpenNodeRemoteSharedPipelinedWindow8/real_time/threads:8")
if "B6" in headlines and one_in_flight:
    headlines["B6"]["pipelining"] = {
        "one_in_flight_shared_8t_us": one_in_flight,
        "pipelined_sync_shared_8t_us": pipelined_sync,
        "pipelined_window8_1t_us": window8,
        "pipelined_window8_8t_us": pipelined_8c,
        # Per-op real time is 1/throughput here, so the throughput
        # speedup of pipelined mode over the one-in-flight baseline is
        # the ratio of the per-op times.
        "pipelined_speedup_x":
            round(one_in_flight / pipelined_8c, 2) if pipelined_8c else None,
    }

with open(out_path, "w") as f:
    json.dump({"headlines": headlines, "suites": suites,
               "context": context}, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(suites)} suites)")
PYEOF

#!/usr/bin/env python3
"""Lint a Prometheus /metrics scrape on stdin.

Checks the Neptune exposition (src/obs/prometheus.cc) is structurally
valid text format 0.0.4 and that the pre-registered families
(src/obs/preregister.cc — keep REQUIRED_FAMILIES in sync with it) are
all present, so a scrape of an *idle* server already carries every
family a dashboard keys on.

Usage: curl -s localhost:9100/metrics | scripts/check_metrics_format.py
Exits nonzero with one line per violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$"
)

# Families that PreregisterServerMetrics() guarantees exist at zero.
# A representative subset, not the full list: enough that a missing
# preregistration call or a renamed family fails CI.
REQUIRED_FAMILIES = [
    ("rpc_requests_total", "counter"),
    ("rpc_server_pipelined_total", "counter"),
    ("rpc_server_batch_items_total", "counter"),
    ("server_shed_total", "counter"),
    ("server_workers_saturated_total", "counter"),
    ("server_queue_depth", "gauge"),
    ("server_outbuf_bytes", "gauge"),
    ("server_ordered_backlog", "gauge"),
    ("server_loop_lag_us", "histogram"),
    ("rpc_request_latency", "histogram"),
    ("repl_role", "gauge"),
    ("repl_term", "gauge"),
    ("repl_lag_bytes", "gauge"),
    ("repl_apply_lag_us", "gauge"),
    ("repl_follower_apply_us", "histogram"),
    ("repl_follower_snapshot_install_us", "histogram"),
    ("repl_promotions_total", "counter"),
]


def main():
    text = sys.stdin.read()
    errors = []
    families = {}  # family -> declared TYPE
    pending_help = None  # family that has HELP but not yet TYPE
    current = None  # family whose samples we are inside
    samples = {}  # family -> list of (name, labels, value)

    for lineno, line in enumerate(text.splitlines(), 1):
        def err(msg):
            errors.append(f"line {lineno}: {msg}: {line!r}")

        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                err("malformed HELP line")
                continue
            if parts[2] in families:
                err(f"duplicate family {parts[2]!r}")
            pending_help = parts[2]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                err("malformed TYPE line")
                continue
            family, ftype = parts[2], parts[3]
            if ftype not in ("counter", "gauge", "histogram", "summary",
                             "untyped"):
                err(f"unknown TYPE {ftype!r}")
            if pending_help != family:
                err(f"TYPE for {family!r} not preceded by its HELP")
            if family in families:
                err(f"duplicate family {family!r}")
            families[family] = ftype
            samples.setdefault(family, [])
            current = family
            pending_help = None
            continue
        if line.startswith("#"):
            continue  # comment

        m = SAMPLE_RE.match(line)
        if not m:
            err("malformed sample line")
            continue
        name = m.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families:
            err(f"sample {name!r} has no preceding HELP/TYPE")
            continue
        if base != current:
            err(f"sample for {base!r} outside its family block")
        samples[base].append((name, m.group("labels") or "", m.group("value")))

    # Per-family shape checks.
    for family, ftype in families.items():
        rows = samples.get(family, [])
        if ftype == "counter":
            if not family.endswith("_total"):
                errors.append(f"counter {family!r} does not end in _total")
            if len(rows) != 1:
                errors.append(f"counter {family!r} has {len(rows)} samples")
            elif rows[0][2].startswith("-"):
                errors.append(f"counter {family!r} is negative")
        elif ftype == "gauge":
            if len(rows) != 1:
                errors.append(f"gauge {family!r} has {len(rows)} samples")
        elif ftype == "histogram":
            buckets = [r for r in rows if r[0] == family + "_bucket"]
            sums = [r for r in rows if r[0] == family + "_sum"]
            counts = [r for r in rows if r[0] == family + "_count"]
            if not any('le="+Inf"' in b[1] for b in buckets):
                errors.append(f"histogram {family!r} lacks a +Inf bucket")
            if len(sums) != 1 or len(counts) != 1:
                errors.append(f"histogram {family!r} needs exactly one "
                              f"_sum and one _count")
            else:
                inf = [b for b in buckets if 'le="+Inf"' in b[1]]
                if inf and inf[-1][2] != counts[0][2]:
                    errors.append(f"histogram {family!r}: +Inf bucket "
                                  f"{inf[-1][2]} != _count {counts[0][2]}")
            values = []
            for b in buckets:
                try:
                    values.append(int(b[2]))
                except ValueError:
                    errors.append(f"histogram {family!r}: non-integer "
                                  f"bucket value {b[2]!r}")
            if values != sorted(values):
                errors.append(f"histogram {family!r}: bucket counts are "
                              f"not cumulative")

    for family, ftype in REQUIRED_FAMILIES:
        declared = families.get(family)
        if declared is None:
            errors.append(f"required family {family!r} missing — was its "
                          f"preregistration dropped? (src/obs/preregister.cc)")
        elif declared != ftype:
            errors.append(f"required family {family!r} is TYPE {declared}, "
                          f"expected {ftype}")

    if not families:
        errors.append("no metric families found on stdin")

    if errors:
        for e in errors:
            print(f"check_metrics_format: {e}", file=sys.stderr)
        return 1
    print(f"check_metrics_format: OK ({len(families)} families, "
          f"{sum(len(v) for v in samples.values())} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Wall-clock lint: every use of the real clock or a real sleep in src/
# must go through the TimeSource seam (src/common/clock.h) so the
# deterministic cluster simulation (src/sim) can virtualize time. The
# only file allowed to touch the OS clock is the RealTimeSource
# implementation itself.
#
# Run from anywhere inside the repo: scripts/check_wallclock.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Direct time/sleep primitives. condition_variable::wait_for is allowed
# (threaded production paths need it; the sim never parks a thread).
PATTERN='std::chrono::system_clock|std::chrono::steady_clock|CLOCK_REALTIME|CLOCK_MONOTONIC|gettimeofday|clock_gettime|this_thread::sleep_for|this_thread::sleep_until|[^a-zA-Z_]usleep[[:space:]]*\(|[^a-zA-Z_]nanosleep[[:space:]]*\('

# The one place the real clock may live.
ALLOW='^src/common/clock\.cc:'

matches=$(grep -rnE "$PATTERN" src/ | grep -vE "$ALLOW" || true)
if [ -n "$matches" ]; then
  echo "error: wall-clock or sleep primitive outside src/common/clock.cc:" >&2
  echo "$matches" >&2
  echo >&2
  echo "Route time through TimeSource (src/common/clock.h) — take a" >&2
  echo "TimeSource* option and default it to RealTimeSource() — so the" >&2
  echo "deterministic simulation in src/sim can drive it from a virtual" >&2
  echo "clock. See DESIGN.md, 'Deterministic cluster simulation'." >&2
  exit 1
fi
# The observability plane (src/obs) is held to a stricter rule: even
# the free NowMicros() helper (epoch wall time, src/common/clock.h) is
# banned there. Windowed rates and the stats sampler must be driven
# entirely through an injected TimeSource so the simulation can feed
# them from SimClock — a bare NowMicros() would mix real timestamps
# into a virtual-time ring.
OBS_PATTERN='(^|[^>.[:alnum:]_])NowMicros[[:space:]]*\('
obs_matches=$(grep -rnE "$OBS_PATTERN" src/obs/ 2>/dev/null || true)
if [ -n "$obs_matches" ]; then
  echo "error: bare NowMicros() in src/obs (use an injected TimeSource):" >&2
  echo "$obs_matches" >&2
  exit 1
fi

echo "check_wallclock: OK (real clock confined to src/common/clock.cc)"

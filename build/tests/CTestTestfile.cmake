# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/delta_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/ham_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/rpc_test.dir/rpc/rpc_end_to_end_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/rpc_end_to_end_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/server_robustness_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/server_robustness_test.cc.o.d"
  "CMakeFiles/rpc_test.dir/rpc/wire_test.cc.o"
  "CMakeFiles/rpc_test.dir/rpc/wire_test.cc.o.d"
  "rpc_test"
  "rpc_test.pdb"
  "rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/conformance_test.dir/conformance/ham_conformance_test.cc.o"
  "CMakeFiles/conformance_test.dir/conformance/ham_conformance_test.cc.o.d"
  "conformance_test"
  "conformance_test.pdb"
  "conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/app/browsers_test.cc" "tests/CMakeFiles/app_test.dir/app/browsers_test.cc.o" "gcc" "tests/CMakeFiles/app_test.dir/app/browsers_test.cc.o.d"
  "/root/repo/tests/app/case_model_test.cc" "tests/CMakeFiles/app_test.dir/app/case_model_test.cc.o" "gcc" "tests/CMakeFiles/app_test.dir/app/case_model_test.cc.o.d"
  "/root/repo/tests/app/document_test.cc" "tests/CMakeFiles/app_test.dir/app/document_test.cc.o" "gcc" "tests/CMakeFiles/app_test.dir/app/document_test.cc.o.d"
  "/root/repo/tests/app/interchange_test.cc" "tests/CMakeFiles/app_test.dir/app/interchange_test.cc.o" "gcc" "tests/CMakeFiles/app_test.dir/app/interchange_test.cc.o.d"
  "/root/repo/tests/app/trail_test.cc" "tests/CMakeFiles/app_test.dir/app/trail_test.cc.o" "gcc" "tests/CMakeFiles/app_test.dir/app/trail_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neptune.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/app_test.dir/app/browsers_test.cc.o"
  "CMakeFiles/app_test.dir/app/browsers_test.cc.o.d"
  "CMakeFiles/app_test.dir/app/case_model_test.cc.o"
  "CMakeFiles/app_test.dir/app/case_model_test.cc.o.d"
  "CMakeFiles/app_test.dir/app/document_test.cc.o"
  "CMakeFiles/app_test.dir/app/document_test.cc.o.d"
  "CMakeFiles/app_test.dir/app/interchange_test.cc.o"
  "CMakeFiles/app_test.dir/app/interchange_test.cc.o.d"
  "CMakeFiles/app_test.dir/app/trail_test.cc.o"
  "CMakeFiles/app_test.dir/app/trail_test.cc.o.d"
  "app_test"
  "app_test.pdb"
  "app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/delta_test.dir/delta/byte_delta_test.cc.o"
  "CMakeFiles/delta_test.dir/delta/byte_delta_test.cc.o.d"
  "CMakeFiles/delta_test.dir/delta/text_diff_test.cc.o"
  "CMakeFiles/delta_test.dir/delta/text_diff_test.cc.o.d"
  "CMakeFiles/delta_test.dir/delta/version_chain_test.cc.o"
  "CMakeFiles/delta_test.dir/delta/version_chain_test.cc.o.d"
  "delta_test"
  "delta_test.pdb"
  "delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ham_test.dir/ham/attribute_history_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/attribute_history_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/attribute_index_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/attribute_index_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_admin_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_admin_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_attributes_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_attributes_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_concurrency_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_concurrency_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_contexts_demons_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_contexts_demons_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_edge_cases_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_edge_cases_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_model_fuzz_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_model_fuzz_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_query_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_query_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/ham_txn_recovery_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/ham_txn_recovery_test.cc.o.d"
  "CMakeFiles/ham_test.dir/ham/records_test.cc.o"
  "CMakeFiles/ham_test.dir/ham/records_test.cc.o.d"
  "ham_test"
  "ham_test.pdb"
  "ham_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ham_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

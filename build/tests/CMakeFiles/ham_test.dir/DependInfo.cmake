
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ham/attribute_history_test.cc" "tests/CMakeFiles/ham_test.dir/ham/attribute_history_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/attribute_history_test.cc.o.d"
  "/root/repo/tests/ham/attribute_index_test.cc" "tests/CMakeFiles/ham_test.dir/ham/attribute_index_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/attribute_index_test.cc.o.d"
  "/root/repo/tests/ham/ham_admin_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_admin_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_admin_test.cc.o.d"
  "/root/repo/tests/ham/ham_attributes_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_attributes_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_attributes_test.cc.o.d"
  "/root/repo/tests/ham/ham_concurrency_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_concurrency_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_concurrency_test.cc.o.d"
  "/root/repo/tests/ham/ham_contexts_demons_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_contexts_demons_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_contexts_demons_test.cc.o.d"
  "/root/repo/tests/ham/ham_edge_cases_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_edge_cases_test.cc.o.d"
  "/root/repo/tests/ham/ham_model_fuzz_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_model_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_model_fuzz_test.cc.o.d"
  "/root/repo/tests/ham/ham_query_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_query_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_query_test.cc.o.d"
  "/root/repo/tests/ham/ham_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_test.cc.o.d"
  "/root/repo/tests/ham/ham_txn_recovery_test.cc" "tests/CMakeFiles/ham_test.dir/ham/ham_txn_recovery_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/ham_txn_recovery_test.cc.o.d"
  "/root/repo/tests/ham/records_test.cc" "tests/CMakeFiles/ham_test.dir/ham/records_test.cc.o" "gcc" "tests/CMakeFiles/ham_test.dir/ham/records_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neptune.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for ham_test.
# This may be replaced when dependencies are built.

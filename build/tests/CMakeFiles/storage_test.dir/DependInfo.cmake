
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/durable_store_test.cc" "tests/CMakeFiles/storage_test.dir/storage/durable_store_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/durable_store_test.cc.o.d"
  "/root/repo/tests/storage/env_test.cc" "tests/CMakeFiles/storage_test.dir/storage/env_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/env_test.cc.o.d"
  "/root/repo/tests/storage/fault_injection_test.cc" "tests/CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o.d"
  "/root/repo/tests/storage/wal_test.cc" "tests/CMakeFiles/storage_test.dir/storage/wal_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neptune.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/durable_store_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/durable_store_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/env_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/env_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/wal_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/wal_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for neptune.
# This may be replaced when dependencies are built.

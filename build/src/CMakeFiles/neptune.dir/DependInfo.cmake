
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/browsers/canvas.cc" "src/CMakeFiles/neptune.dir/app/browsers/canvas.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/browsers/canvas.cc.o.d"
  "/root/repo/src/app/browsers/document_browser.cc" "src/CMakeFiles/neptune.dir/app/browsers/document_browser.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/browsers/document_browser.cc.o.d"
  "/root/repo/src/app/browsers/graph_browser.cc" "src/CMakeFiles/neptune.dir/app/browsers/graph_browser.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/browsers/graph_browser.cc.o.d"
  "/root/repo/src/app/browsers/inspect_browsers.cc" "src/CMakeFiles/neptune.dir/app/browsers/inspect_browsers.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/browsers/inspect_browsers.cc.o.d"
  "/root/repo/src/app/browsers/node_browser.cc" "src/CMakeFiles/neptune.dir/app/browsers/node_browser.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/browsers/node_browser.cc.o.d"
  "/root/repo/src/app/case_model.cc" "src/CMakeFiles/neptune.dir/app/case_model.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/case_model.cc.o.d"
  "/root/repo/src/app/document.cc" "src/CMakeFiles/neptune.dir/app/document.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/document.cc.o.d"
  "/root/repo/src/app/interchange.cc" "src/CMakeFiles/neptune.dir/app/interchange.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/interchange.cc.o.d"
  "/root/repo/src/app/notify.cc" "src/CMakeFiles/neptune.dir/app/notify.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/notify.cc.o.d"
  "/root/repo/src/app/trail.cc" "src/CMakeFiles/neptune.dir/app/trail.cc.o" "gcc" "src/CMakeFiles/neptune.dir/app/trail.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/neptune.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/neptune.dir/common/clock.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/neptune.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/neptune.dir/common/coding.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/neptune.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/neptune.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/neptune.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/neptune.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/neptune.dir/common/status.cc.o" "gcc" "src/CMakeFiles/neptune.dir/common/status.cc.o.d"
  "/root/repo/src/delta/byte_delta.cc" "src/CMakeFiles/neptune.dir/delta/byte_delta.cc.o" "gcc" "src/CMakeFiles/neptune.dir/delta/byte_delta.cc.o.d"
  "/root/repo/src/delta/text_diff.cc" "src/CMakeFiles/neptune.dir/delta/text_diff.cc.o" "gcc" "src/CMakeFiles/neptune.dir/delta/text_diff.cc.o.d"
  "/root/repo/src/delta/version_chain.cc" "src/CMakeFiles/neptune.dir/delta/version_chain.cc.o" "gcc" "src/CMakeFiles/neptune.dir/delta/version_chain.cc.o.d"
  "/root/repo/src/ham/attribute_history.cc" "src/CMakeFiles/neptune.dir/ham/attribute_history.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/attribute_history.cc.o.d"
  "/root/repo/src/ham/attribute_index.cc" "src/CMakeFiles/neptune.dir/ham/attribute_index.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/attribute_index.cc.o.d"
  "/root/repo/src/ham/attribute_table.cc" "src/CMakeFiles/neptune.dir/ham/attribute_table.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/attribute_table.cc.o.d"
  "/root/repo/src/ham/graph_state.cc" "src/CMakeFiles/neptune.dir/ham/graph_state.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/graph_state.cc.o.d"
  "/root/repo/src/ham/ham.cc" "src/CMakeFiles/neptune.dir/ham/ham.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/ham.cc.o.d"
  "/root/repo/src/ham/ham_operations.cc" "src/CMakeFiles/neptune.dir/ham/ham_operations.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/ham_operations.cc.o.d"
  "/root/repo/src/ham/ops.cc" "src/CMakeFiles/neptune.dir/ham/ops.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/ops.cc.o.d"
  "/root/repo/src/ham/records.cc" "src/CMakeFiles/neptune.dir/ham/records.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/records.cc.o.d"
  "/root/repo/src/ham/types.cc" "src/CMakeFiles/neptune.dir/ham/types.cc.o" "gcc" "src/CMakeFiles/neptune.dir/ham/types.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/neptune.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/neptune.dir/query/predicate.cc.o.d"
  "/root/repo/src/rpc/remote_ham.cc" "src/CMakeFiles/neptune.dir/rpc/remote_ham.cc.o" "gcc" "src/CMakeFiles/neptune.dir/rpc/remote_ham.cc.o.d"
  "/root/repo/src/rpc/server.cc" "src/CMakeFiles/neptune.dir/rpc/server.cc.o" "gcc" "src/CMakeFiles/neptune.dir/rpc/server.cc.o.d"
  "/root/repo/src/rpc/socket.cc" "src/CMakeFiles/neptune.dir/rpc/socket.cc.o" "gcc" "src/CMakeFiles/neptune.dir/rpc/socket.cc.o.d"
  "/root/repo/src/rpc/wire.cc" "src/CMakeFiles/neptune.dir/rpc/wire.cc.o" "gcc" "src/CMakeFiles/neptune.dir/rpc/wire.cc.o.d"
  "/root/repo/src/storage/durable_store.cc" "src/CMakeFiles/neptune.dir/storage/durable_store.cc.o" "gcc" "src/CMakeFiles/neptune.dir/storage/durable_store.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/CMakeFiles/neptune.dir/storage/env.cc.o" "gcc" "src/CMakeFiles/neptune.dir/storage/env.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/neptune.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/neptune.dir/storage/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

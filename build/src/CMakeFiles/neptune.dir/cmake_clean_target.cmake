file(REMOVE_RECURSE
  "libneptune.a"
)

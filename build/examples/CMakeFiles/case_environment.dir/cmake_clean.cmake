file(REMOVE_RECURSE
  "CMakeFiles/case_environment.dir/case_environment.cpp.o"
  "CMakeFiles/case_environment.dir/case_environment.cpp.o.d"
  "case_environment"
  "case_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for case_environment.
# This may be replaced when dependencies are built.

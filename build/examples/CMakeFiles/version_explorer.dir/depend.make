# Empty dependencies file for version_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/version_explorer.dir/version_explorer.cpp.o"
  "CMakeFiles/version_explorer.dir/version_explorer.cpp.o.d"
  "version_explorer"
  "version_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

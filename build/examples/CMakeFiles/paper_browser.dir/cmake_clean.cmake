file(REMOVE_RECURSE
  "CMakeFiles/paper_browser.dir/paper_browser.cpp.o"
  "CMakeFiles/paper_browser.dir/paper_browser.cpp.o.d"
  "paper_browser"
  "paper_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for paper_browser.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for neptune_server.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/neptune_server.dir/neptune_server.cpp.o"
  "CMakeFiles/neptune_server.dir/neptune_server.cpp.o.d"
  "neptune_server"
  "neptune_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neptune_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

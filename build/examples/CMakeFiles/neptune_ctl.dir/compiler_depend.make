# Empty compiler generated dependencies file for neptune_ctl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/neptune_ctl.dir/neptune_ctl.cpp.o"
  "CMakeFiles/neptune_ctl.dir/neptune_ctl.cpp.o.d"
  "neptune_ctl"
  "neptune_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neptune_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

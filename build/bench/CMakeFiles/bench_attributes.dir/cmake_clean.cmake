file(REMOVE_RECURSE
  "CMakeFiles/bench_attributes.dir/bench_attributes.cc.o"
  "CMakeFiles/bench_attributes.dir/bench_attributes.cc.o.d"
  "bench_attributes"
  "bench_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

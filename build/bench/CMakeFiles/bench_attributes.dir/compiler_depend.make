# Empty compiler generated dependencies file for bench_attributes.
# This may be replaced when dependencies are built.

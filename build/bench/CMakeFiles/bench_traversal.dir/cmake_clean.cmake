file(REMOVE_RECURSE
  "CMakeFiles/bench_traversal.dir/bench_traversal.cc.o"
  "CMakeFiles/bench_traversal.dir/bench_traversal.cc.o.d"
  "bench_traversal"
  "bench_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_rpc.
# This may be replaced when dependencies are built.

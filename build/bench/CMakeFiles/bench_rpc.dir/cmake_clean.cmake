file(REMOVE_RECURSE
  "CMakeFiles/bench_rpc.dir/bench_rpc.cc.o"
  "CMakeFiles/bench_rpc.dir/bench_rpc.cc.o.d"
  "bench_rpc"
  "bench_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

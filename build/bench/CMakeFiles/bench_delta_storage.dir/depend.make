# Empty dependencies file for bench_delta_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_storage.dir/bench_delta_storage.cc.o"
  "CMakeFiles/bench_delta_storage.dir/bench_delta_storage.cc.o.d"
  "bench_delta_storage"
  "bench_delta_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_version_access.dir/bench_version_access.cc.o"
  "CMakeFiles/bench_version_access.dir/bench_version_access.cc.o.d"
  "bench_version_access"
  "bench_version_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_version_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

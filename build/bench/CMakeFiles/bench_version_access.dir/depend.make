# Empty dependencies file for bench_version_access.
# This may be replaced when dependencies are built.

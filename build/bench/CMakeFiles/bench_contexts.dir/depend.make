# Empty dependencies file for bench_contexts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_contexts.dir/bench_contexts.cc.o"
  "CMakeFiles/bench_contexts.dir/bench_contexts.cc.o.d"
  "bench_contexts"
  "bench_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

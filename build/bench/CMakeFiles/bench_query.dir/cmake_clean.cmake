file(REMOVE_RECURSE
  "CMakeFiles/bench_query.dir/bench_query.cc.o"
  "CMakeFiles/bench_query.dir/bench_query.cc.o.d"
  "bench_query"
  "bench_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

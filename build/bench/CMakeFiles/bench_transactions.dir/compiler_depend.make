# Empty compiler generated dependencies file for bench_transactions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_transactions.dir/bench_transactions.cc.o"
  "CMakeFiles/bench_transactions.dir/bench_transactions.cc.o.d"
  "bench_transactions"
  "bench_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "query/predicate.h"

#include <cctype>
#include <charconv>

namespace neptune {
namespace query {

namespace internal {

enum class Op {
  kTrue,
  kFalse,
  kAnd,
  kOr,
  kNot,
  kExists,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,
};

struct Expr {
  Op op;
  // kAnd/kOr: both children; kNot: left only.
  std::shared_ptr<const Expr> left;
  std::shared_ptr<const Expr> right;
  // Comparisons and kExists.
  std::string attribute;
  std::string value;
};

}  // namespace internal

namespace {

using internal::Expr;
using internal::Op;

// ---------------------------------------------------------------- lexer

enum class TokenKind {
  kEnd,
  kIdent,
  kString,   // quoted
  kLParen,
  kRParen,
  kAnd,
  kOr,
  kNot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t pos = 0;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        tokens.push_back({TokenKind::kEnd, "", pos_});
        return tokens;
      }
      const size_t start = pos_;
      const char c = text_[pos_];
      if (c == '(') {
        tokens.push_back({TokenKind::kLParen, "(", start});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRParen, ")", start});
        ++pos_;
      } else if (c == '&') {
        tokens.push_back({TokenKind::kAnd, "&", start});
        ++pos_;
      } else if (c == '|') {
        tokens.push_back({TokenKind::kOr, "|", start});
        ++pos_;
      } else if (c == '~') {
        tokens.push_back({TokenKind::kContains, "~", start});
        ++pos_;
      } else if (c == '=') {
        tokens.push_back({TokenKind::kEq, "=", start});
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') ++pos_;  // allow ==
      } else if (c == '!') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          tokens.push_back({TokenKind::kNe, "!=", start});
          ++pos_;
        } else {
          tokens.push_back({TokenKind::kNot, "!", start});
        }
      } else if (c == '<') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          tokens.push_back({TokenKind::kLe, "<=", start});
          ++pos_;
        } else {
          tokens.push_back({TokenKind::kLt, "<", start});
        }
      } else if (c == '>') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          tokens.push_back({TokenKind::kGe, ">=", start});
          ++pos_;
        } else {
          tokens.push_back({TokenKind::kGt, ">", start});
        }
      } else if (c == '\'' || c == '"') {
        const char quote = c;
        ++pos_;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != quote) {
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
          value.push_back(text_[pos_++]);
        }
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument(
              "unterminated string at position " + std::to_string(start));
        }
        ++pos_;  // closing quote
        tokens.push_back({TokenKind::kString, std::move(value), start});
      } else if (IsIdentStart(c) ||
                 std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        ++pos_;
        while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
        std::string word(text_.substr(start, pos_ - start));
        if (word == "and") {
          tokens.push_back({TokenKind::kAnd, word, start});
        } else if (word == "or") {
          tokens.push_back({TokenKind::kOr, word, start});
        } else if (word == "not") {
          tokens.push_back({TokenKind::kNot, word, start});
        } else {
          tokens.push_back({TokenKind::kIdent, std::move(word), start});
        }
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at position " +
                                       std::to_string(start));
      }
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<const Expr>> Run() {
    NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> expr, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  Token Take() { return tokens_[index_++]; }

  Status Error(std::string_view what) const {
    return Status::InvalidArgument(std::string(what) + " at position " +
                                   std::to_string(Peek().pos));
  }

  static std::shared_ptr<const Expr> MakeBinary(
      Op op, std::shared_ptr<const Expr> l, std::shared_ptr<const Expr> r) {
    auto e = std::make_shared<Expr>();
    e->op = op;
    e->left = std::move(l);
    e->right = std::move(r);
    return e;
  }

  Result<std::shared_ptr<const Expr>> ParseOr() {
    NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> left, ParseAnd());
    while (Peek().kind == TokenKind::kOr) {
      Take();
      NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> right, ParseAnd());
      left = MakeBinary(Op::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::shared_ptr<const Expr>> ParseAnd() {
    NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> left, ParseUnary());
    while (Peek().kind == TokenKind::kAnd) {
      Take();
      NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> right, ParseUnary());
      left = MakeBinary(Op::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::shared_ptr<const Expr>> ParseUnary() {
    if (Peek().kind == TokenKind::kNot) {
      Take();
      NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> child, ParseUnary());
      auto e = std::make_shared<Expr>();
      e->op = Op::kNot;
      e->left = std::move(child);
      return std::shared_ptr<const Expr>(std::move(e));
    }
    if (Peek().kind == TokenKind::kLParen) {
      Take();
      NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> inner, ParseOr());
      if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
      Take();
      return inner;
    }
    return ParseAtom();
  }

  Result<std::shared_ptr<const Expr>> ParseAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected attribute name");
    }
    Token name = Take();
    auto e = std::make_shared<Expr>();
    if (name.text == "true") {
      e->op = Op::kTrue;
      return std::shared_ptr<const Expr>(std::move(e));
    }
    if (name.text == "false") {
      e->op = Op::kFalse;
      return std::shared_ptr<const Expr>(std::move(e));
    }
    if (name.text == "exists") {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected attribute name after 'exists'");
      }
      e->op = Op::kExists;
      e->attribute = Take().text;
      return std::shared_ptr<const Expr>(std::move(e));
    }
    switch (Peek().kind) {
      case TokenKind::kEq:
        e->op = Op::kEq;
        break;
      case TokenKind::kNe:
        e->op = Op::kNe;
        break;
      case TokenKind::kLt:
        e->op = Op::kLt;
        break;
      case TokenKind::kLe:
        e->op = Op::kLe;
        break;
      case TokenKind::kGt:
        e->op = Op::kGt;
        break;
      case TokenKind::kGe:
        e->op = Op::kGe;
        break;
      case TokenKind::kContains:
        e->op = Op::kContains;
        break;
      default:
        return Error("expected comparison operator");
    }
    Take();
    if (Peek().kind != TokenKind::kIdent && Peek().kind != TokenKind::kString) {
      return Error("expected value");
    }
    e->attribute = std::move(name.text);
    e->value = Take().text;
    return std::shared_ptr<const Expr>(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

// ------------------------------------------------------------ evaluator

// Three-way compare with numeric coercion when both sides are decimal
// integers (optionally signed), lexicographic otherwise.
int CompareValues(std::string_view a, std::string_view b) {
  auto parse_int = [](std::string_view s, int64_t* out) {
    if (s.empty()) return false;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
    return ec == std::errc() && ptr == s.data() + s.size();
  };
  int64_t ia = 0;
  int64_t ib = 0;
  if (parse_int(a, &ia) && parse_int(b, &ib)) {
    return ia < ib ? -1 : (ia > ib ? 1 : 0);
  }
  const int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

bool EvaluateExpr(const Expr& e, const AttributeSource& attrs) {
  switch (e.op) {
    case Op::kTrue:
      return true;
    case Op::kFalse:
      return false;
    case Op::kAnd:
      return EvaluateExpr(*e.left, attrs) && EvaluateExpr(*e.right, attrs);
    case Op::kOr:
      return EvaluateExpr(*e.left, attrs) || EvaluateExpr(*e.right, attrs);
    case Op::kNot:
      return !EvaluateExpr(*e.left, attrs);
    case Op::kExists:
      return attrs.GetAttribute(e.attribute).has_value();
    default:
      break;
  }
  std::optional<std::string_view> value = attrs.GetAttribute(e.attribute);
  if (!value.has_value()) return false;  // absent attribute matches nothing
  switch (e.op) {
    case Op::kEq:
      return *value == e.value;
    case Op::kNe:
      return *value != e.value;
    case Op::kLt:
      return CompareValues(*value, e.value) < 0;
    case Op::kLe:
      return CompareValues(*value, e.value) <= 0;
    case Op::kGt:
      return CompareValues(*value, e.value) > 0;
    case Op::kGe:
      return CompareValues(*value, e.value) >= 0;
    case Op::kContains:
      return value->find(e.value) != std::string_view::npos;
    default:
      return false;
  }
}

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  if (!IsIdentStart(value[0]) &&
      !std::isdigit(static_cast<unsigned char>(value[0])) && value[0] != '-') {
    return true;
  }
  for (char c : value) {
    if (!IsIdentChar(c)) return true;
  }
  return false;
}

std::string QuoteValue(std::string_view value) {
  if (!NeedsQuoting(value)) return std::string(value);
  std::string out = "'";
  for (char c : value) {
    if (c == '\'' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

void ExprToString(const Expr& e, std::string* out) {
  switch (e.op) {
    case Op::kTrue:
      *out += "true";
      return;
    case Op::kFalse:
      *out += "false";
      return;
    case Op::kAnd:
    case Op::kOr:
      *out += "(";
      ExprToString(*e.left, out);
      *out += e.op == Op::kAnd ? " & " : " | ";
      ExprToString(*e.right, out);
      *out += ")";
      return;
    case Op::kNot:
      *out += "!(";
      ExprToString(*e.left, out);
      *out += ")";
      return;
    case Op::kExists:
      *out += "exists " + e.attribute;
      return;
    case Op::kEq:
      *out += e.attribute + " = " + QuoteValue(e.value);
      return;
    case Op::kNe:
      *out += e.attribute + " != " + QuoteValue(e.value);
      return;
    case Op::kLt:
      *out += e.attribute + " < " + QuoteValue(e.value);
      return;
    case Op::kLe:
      *out += e.attribute + " <= " + QuoteValue(e.value);
      return;
    case Op::kGt:
      *out += e.attribute + " > " + QuoteValue(e.value);
      return;
    case Op::kGe:
      *out += e.attribute + " >= " + QuoteValue(e.value);
      return;
    case Op::kContains:
      *out += e.attribute + " ~ " + QuoteValue(e.value);
      return;
  }
}

// Walks only through AND nodes: every kEq found this way is implied by
// the whole formula.
void CollectEqualityConjuncts(
    const Expr& e, std::vector<std::pair<std::string, std::string>>* out) {
  if (e.op == Op::kAnd) {
    CollectEqualityConjuncts(*e.left, out);
    CollectEqualityConjuncts(*e.right, out);
    return;
  }
  if (e.op == Op::kEq) {
    out->emplace_back(e.attribute, e.value);
  }
}

void CollectAttributes(const Expr& e, std::vector<std::string>* out) {
  if (e.left != nullptr) CollectAttributes(*e.left, out);
  if (e.right != nullptr) CollectAttributes(*e.right, out);
  if (!e.attribute.empty()) {
    for (const auto& seen : *out) {
      if (seen == e.attribute) return;
    }
    out->push_back(e.attribute);
  }
}

}  // namespace

Predicate::Predicate() = default;
Predicate::Predicate(const Predicate& other) = default;
Predicate& Predicate::operator=(const Predicate& other) = default;
Predicate::Predicate(Predicate&&) noexcept = default;
Predicate& Predicate::operator=(Predicate&&) noexcept = default;
Predicate::~Predicate() = default;

Predicate::Predicate(std::shared_ptr<const internal::Expr> root)
    : root_(std::move(root)) {}

Result<Predicate> Predicate::Parse(std::string_view text) {
  // Entirely-blank input is the universal predicate.
  bool all_space = true;
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      all_space = false;
      break;
    }
  }
  if (all_space) return Predicate();
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Run());
  NEPTUNE_ASSIGN_OR_RETURN(std::shared_ptr<const Expr> root,
                           Parser(std::move(tokens)).Run());
  return Predicate(std::move(root));
}

bool Predicate::Evaluate(const AttributeSource& attrs) const {
  if (root_ == nullptr) return true;
  return EvaluateExpr(*root_, attrs);
}

bool Predicate::IsTriviallyTrue() const {
  return root_ == nullptr || root_->op == Op::kTrue;
}

std::vector<std::string> Predicate::ReferencedAttributes() const {
  std::vector<std::string> out;
  if (root_ != nullptr) CollectAttributes(*root_, &out);
  return out;
}

std::vector<std::pair<std::string, std::string>> Predicate::EqualityConjuncts()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  if (root_ != nullptr) CollectEqualityConjuncts(*root_, &out);
  return out;
}

std::string Predicate::ToString() const {
  if (root_ == nullptr) return "true";
  std::string out;
  ExprToString(*root_, &out);
  return out;
}

// ------------------------------------------------------------- compiler

namespace {

// Emits atoms bottom-up: CompileExpr(e, T, F) returns the entry point
// (an atom index or a terminal) of a program that jumps to T when `e`
// holds and to F otherwise. Compiling right subtrees first makes each
// left subtree's fall-through target already known, so no fixups.
class ProgramBuilder {
 public:
  uint32_t SlotFor(const std::string& name) {
    for (size_t i = 0; i < slot_names_.size(); ++i) {
      if (slot_names_[i] == name) return static_cast<uint32_t>(i);
    }
    slot_names_.push_back(name);
    return static_cast<uint32_t>(slot_names_.size() - 1);
  }

  uint32_t CompileExpr(const Expr& e, uint32_t on_true, uint32_t on_false) {
    switch (e.op) {
      case Op::kTrue:
        return on_true;
      case Op::kFalse:
        return on_false;
      case Op::kNot:
        return CompileExpr(*e.left, on_false, on_true);
      case Op::kAnd: {
        const uint32_t right = CompileExpr(*e.right, on_true, on_false);
        return CompileExpr(*e.left, right, on_false);
      }
      case Op::kOr: {
        const uint32_t right = CompileExpr(*e.right, on_true, on_false);
        return CompileExpr(*e.left, on_true, right);
      }
      default:
        break;
    }
    CompiledPredicate::Atom atom;
    switch (e.op) {
      case Op::kExists:
        atom.op = CompiledPredicate::AtomOp::kExists;
        break;
      case Op::kEq:
        atom.op = CompiledPredicate::AtomOp::kEq;
        break;
      case Op::kNe:
        atom.op = CompiledPredicate::AtomOp::kNe;
        break;
      case Op::kLt:
        atom.op = CompiledPredicate::AtomOp::kLt;
        break;
      case Op::kLe:
        atom.op = CompiledPredicate::AtomOp::kLe;
        break;
      case Op::kGt:
        atom.op = CompiledPredicate::AtomOp::kGt;
        break;
      case Op::kGe:
        atom.op = CompiledPredicate::AtomOp::kGe;
        break;
      default:
        atom.op = CompiledPredicate::AtomOp::kContains;
        break;
    }
    atom.slot = SlotFor(e.attribute);
    atom.value = e.value;
    atom.on_true = on_true;
    atom.on_false = on_false;
    atoms_.push_back(std::move(atom));
    return static_cast<uint32_t>(atoms_.size() - 1);
  }

  std::vector<CompiledPredicate::Atom> TakeAtoms() { return std::move(atoms_); }
  std::vector<std::string> TakeSlotNames() { return std::move(slot_names_); }

 private:
  std::vector<CompiledPredicate::Atom> atoms_;
  std::vector<std::string> slot_names_;
};

}  // namespace

CompiledPredicate CompiledPredicate::Compile(const Predicate& pred) {
  CompiledPredicate out;
  if (pred.root_ == nullptr) return out;  // entry_ == kAccept
  ProgramBuilder builder;
  out.entry_ = builder.CompileExpr(*pred.root_, kAccept, kReject);
  out.atoms_ = builder.TakeAtoms();
  out.slot_names_ = builder.TakeSlotNames();
  return out;
}

bool CompiledPredicate::Evaluate(const SlotSource& source) const {
  uint32_t pc = entry_;
  while (pc < atoms_.size()) {
    const Atom& atom = atoms_[pc];
    const std::optional<std::string_view> value = source.GetSlot(atom.slot);
    bool hit;
    if (atom.op == AtomOp::kExists) {
      hit = value.has_value();
    } else if (!value.has_value()) {
      hit = false;  // absent attribute matches nothing
    } else {
      switch (atom.op) {
        case AtomOp::kEq:
          hit = *value == atom.value;
          break;
        case AtomOp::kNe:
          hit = *value != atom.value;
          break;
        case AtomOp::kLt:
          hit = CompareValues(*value, atom.value) < 0;
          break;
        case AtomOp::kLe:
          hit = CompareValues(*value, atom.value) <= 0;
          break;
        case AtomOp::kGt:
          hit = CompareValues(*value, atom.value) > 0;
          break;
        case AtomOp::kGe:
          hit = CompareValues(*value, atom.value) >= 0;
          break;
        default:
          hit = value->find(atom.value) != std::string_view::npos;
          break;
      }
    }
    pc = hit ? atom.on_true : atom.on_false;
  }
  return pc == kAccept;
}

}  // namespace query
}  // namespace neptune

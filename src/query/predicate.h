// Predicate: "a Boolean formula in terms of attributes and their
// values" (Appendix atomic domain). Both HAM query mechanisms —
// linearizeGraph and getGraphQuery — take one node predicate and one
// link predicate and return only the objects that satisfy them
// (paper §3, e.g. `document = requirements`).
//
// Grammar (case-sensitive identifiers; '&' binds tighter than '|'):
//
//   predicate  := orExpr | <empty>            empty matches everything
//   orExpr     := andExpr ( ('|' | 'or')  andExpr )*
//   andExpr    := unary   ( ('&' | 'and') unary )*
//   unary      := ('!' | 'not') unary | '(' orExpr ')' | atom
//   atom       := 'true' | 'false'
//             | 'exists' name                attribute is attached
//             | name op value
//   op         := '=' | '!=' | '<' | '<=' | '>' | '>=' | '~'
//   name       := [A-Za-z_][A-Za-z0-9_.-]*
//   value      := name | integer | 'single or "double quoted string'
//
// Semantics: attribute values are strings. '=' / '!=' compare exactly;
// '~' is substring containment; the orderings compare numerically when
// both sides are decimal integers and lexicographically otherwise. A
// comparison on an attribute that is not attached is false ('!=' too:
// an absent attribute has no value to differ); use 'exists' / '!exists'
// to test attachment.

#ifndef NEPTUNE_QUERY_PREDICATE_H_
#define NEPTUNE_QUERY_PREDICATE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace neptune {
namespace query {

// Where the evaluator reads attribute values from. The HAM adapts its
// nodes and links (at a given Time) to this interface.
class AttributeSource {
 public:
  virtual ~AttributeSource() = default;
  // Value of `name`, or nullopt if the attribute is not attached.
  virtual std::optional<std::string_view> GetAttribute(
      std::string_view name) const = 0;
};

// AttributeSource over an in-memory list; used by tests and by
// callers that already materialized (attribute, value) pairs.
class MapAttributeSource : public AttributeSource {
 public:
  MapAttributeSource() = default;
  MapAttributeSource(
      std::initializer_list<std::pair<std::string, std::string>> pairs) {
    for (auto& [k, v] : pairs) Set(k, v);
  }

  void Set(std::string name, std::string value) {
    for (auto& [k, v] : pairs_) {
      if (k == name) {
        v = std::move(value);
        return;
      }
    }
    pairs_.emplace_back(std::move(name), std::move(value));
  }

  std::optional<std::string_view> GetAttribute(
      std::string_view name) const override {
    for (const auto& [k, v] : pairs_) {
      if (k == name) return std::string_view(v);
    }
    return std::nullopt;
  }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

namespace internal {
struct Expr;  // AST node; definition private to predicate.cc
}  // namespace internal

class Predicate {
 public:
  // The always-true predicate (what an empty input parses to).
  Predicate();
  Predicate(const Predicate& other);
  Predicate& operator=(const Predicate& other);
  Predicate(Predicate&&) noexcept;
  Predicate& operator=(Predicate&&) noexcept;
  ~Predicate();

  // Parses `text`; InvalidArgument with position info on bad syntax.
  static Result<Predicate> Parse(std::string_view text);
  static Predicate True() { return Predicate(); }

  bool Evaluate(const AttributeSource& attrs) const;

  // True when this predicate matches everything (no filtering).
  bool IsTriviallyTrue() const;

  // Attribute names the formula mentions, deduplicated, in first-use
  // order. Query planning uses this to pick candidate indexes.
  std::vector<std::string> ReferencedAttributes() const;

  // Top-level AND-ed equality terms, i.e. every `name = value` that
  // must hold for the whole formula to hold. Any object matching the
  // predicate also matches each returned pair, so an index lookup on
  // one of them yields a complete candidate set. Empty for formulas
  // with no such term (e.g. pure disjunctions).
  std::vector<std::pair<std::string, std::string>> EqualityConjuncts() const;

  // Canonical fully-parenthesized text form; Parse(ToString()) is
  // equivalent to the original.
  std::string ToString() const;

 private:
  friend class CompiledPredicate;

  explicit Predicate(std::shared_ptr<const internal::Expr> root);

  // Shared immutable AST: Predicates are cheap to copy and safe to
  // evaluate concurrently.
  std::shared_ptr<const internal::Expr> root_;  // null == true
};

// A predicate flattened into a short-circuiting jump program. The AST
// is walked once at compile time; per-record evaluation then runs a
// flat atom array — no tree recursion, and attribute names are
// interned into dense slots the caller resolves once (instead of a
// name lookup per atom per record). This is what the query scan
// fallback and the planner's residual checks run, where one formula is
// evaluated against thousands of records.
//
// Control flow: each atom carries two jump targets; evaluation follows
// on_true/on_false until it reaches a terminal, so AND/OR short-
// circuit exactly like the tree evaluator. kTrue/kFalse and kNot
// compile away entirely (constant-folded into the jump graph).
class CompiledPredicate {
 public:
  // Where compiled evaluation reads attribute values from: slot i
  // holds the value of slot_names()[i], or nullopt when unattached.
  class SlotSource {
   public:
    virtual ~SlotSource() = default;
    virtual std::optional<std::string_view> GetSlot(size_t slot) const = 0;
  };

  enum class AtomOp : uint8_t {
    kExists,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kContains,
  };

  // Jump targets past the atom array: program terminals.
  static constexpr uint32_t kAccept = 0xffffffffu;
  static constexpr uint32_t kReject = 0xfffffffeu;

  struct Atom {
    AtomOp op = AtomOp::kExists;
    uint32_t slot = 0;
    std::string value;
    uint32_t on_true = kAccept;
    uint32_t on_false = kReject;
  };

  CompiledPredicate() = default;  // the always-true program
  static CompiledPredicate Compile(const Predicate& pred);

  bool Evaluate(const SlotSource& source) const;

  bool IsTriviallyTrue() const { return entry_ == kAccept; }
  bool IsTriviallyFalse() const { return entry_ == kReject; }

  // Attribute names the program reads, one per slot, first-use order.
  const std::vector<std::string>& slot_names() const { return slot_names_; }
  const std::vector<Atom>& atoms() const { return atoms_; }

 private:
  std::vector<Atom> atoms_;
  std::vector<std::string> slot_names_;
  uint32_t entry_ = kAccept;
};

}  // namespace query
}  // namespace neptune

#endif  // NEPTUNE_QUERY_PREDICATE_H_

// End-to-end request tracing for the Neptune server. The metrics layer
// (common/metrics.h) answers "how slow is openNode on average"; this
// layer answers "*which* openNode was slow, and *where* did it spend
// its time" — lock wait vs. delta reconstruction vs. WAL fsync vs. the
// wire — by recording causally linked spans in the Dapper style: a
// trace_id shared by every span of one request, a span_id per timed
// region, and a parent_id forming the tree. The RPC layer propagates
// the (trace_id, parent span) pair from the client stub to the server
// so a workstation's call and the server work it caused form one trace.
//
// Design, mirroring the metrics layer's cost discipline:
//  * Disabled (trace_sample_n == 0) the whole facility is one relaxed
//    atomic load and a branch per span site — cheap enough to leave
//    compiled into every operation.
//  * Enabled, spans are appended to a bounded per-thread buffer with
//    no locking; only when a root span finishes is the buffer flushed
//    (one mutex acquisition per *request*, not per span) into a global
//    ring of recent traces.
//  * Sampling keeps 1-in-N roots; a span whose duration reaches
//    trace_slow_us is kept regardless ("slow ops are never lost") and
//    additionally recorded in a slow-op ring and logged as one JSON
//    line.
//  * Span names are interned once per call site (static local), so the
//    hot path carries a uint32 id, never a string.

#ifndef NEPTUNE_COMMON_TRACE_H_
#define NEPTUNE_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace neptune {

class Counter;

// The propagated portion of a trace: enough for a remote callee to
// parent its spans under the caller's. trace_id == 0 means "no trace"
// (the callee self-roots).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

// One finished timed region, in exported (name-resolved) form.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace
  std::string name;        // interned op name ("ham.openNode", ...)
  uint64_t start_us = 0;   // wall clock (NowMicros) at span start
  uint64_t duration_us = 0;
  uint64_t thread_id = 0;  // hashed std::thread::id
  std::string annotation;  // "key=value key=value" attributes
};

// Every kept span of one request, roots first within each thread's
// flush order.
struct Trace {
  uint64_t trace_id = 0;
  std::vector<Span> spans;
};

namespace trace_internal {
// 0 = tracing off. Kept as a bare atomic (not behind Instance()) so
// the disabled fast path is a single relaxed load.
extern std::atomic<uint32_t> g_sample_n;
}  // namespace trace_internal

inline bool TracingEnabled() {
  return trace_internal::g_sample_n.load(std::memory_order_relaxed) != 0;
}

class ScopedSpan;

// Process-wide tracer: name interning, sampling, the recent-trace ring
// and the slow-op ring. Pointer-stable and alive for the process
// lifetime, like MetricsRegistry.
class Tracer {
 public:
  // Spans kept per trace before further spans count as dropped.
  static constexpr size_t kMaxSpansPerTrace = 256;
  // Completed traces retained for getRecentTraces.
  static constexpr size_t kMaxRecentTraces = 64;
  // Slow spans retained for getSlowOps.
  static constexpr size_t kMaxSlowOps = 128;

  static Tracer& Instance();

  // Applies the HamOptions knobs: keep 1-in-`sample_n` roots
  // (0 disables tracing entirely, 1 keeps everything) and always keep
  // + log any span lasting at least `slow_us` (0 disables the slow
  // path). Callable at any time; takes effect for new roots.
  void Configure(uint32_t sample_n, uint64_t slow_us);
  uint32_t sample_n() const;
  uint64_t slow_us() const { return slow_us_.load(std::memory_order_relaxed); }

  // Interns `name`, returning a stable id. One-time cost per call
  // site; see NEPTUNE_TRACE_SPAN.
  uint32_t InternName(std::string_view name);
  std::string NameOf(uint32_t name_id) const;

  // Snapshot of the recent-trace ring, oldest first. Spans of one
  // trace_id are merged into one Trace even when recorded by several
  // threads (an in-process client and the server, say).
  std::vector<Trace> RecentTraces() const;
  // Snapshot of the slow-op ring, oldest first.
  std::vector<Span> SlowOps() const;

  // Drops ring contents and resets sampling state. Only for tests.
  void ResetForTest();

 private:
  friend class ScopedSpan;
  Tracer();

  bool SampleRoot();
  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  struct ThreadTrace;  // per-thread span buffer (trace.cc)
  static ThreadTrace& CurrentThreadTrace();

  // Called by ~ScopedSpan for a span at or past slow_us.
  void RecordSlowOp(const Span& span);
  // Called when a thread's root span finishes; publishes or discards
  // the thread buffer.
  void FlushThreadTrace(ThreadTrace* t);

  std::atomic<uint64_t> slow_us_{0};
  std::atomic<uint64_t> root_counter_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};

  mutable std::mutex names_mu_;
  std::vector<std::string> names_;  // id -> name

  mutable std::mutex ring_mu_;
  std::vector<Trace> ring_;      // bounded by kMaxRecentTraces
  std::vector<Span> slow_ring_;  // bounded by kMaxSlowOps

  // Hot-path counters, resolved once (see metrics.h for the idiom).
  Counter* spans_recorded_;
  Counter* spans_dropped_;
  Counter* slow_ops_;
};

// RAII span. Construction is a no-op when tracing is disabled. A span
// opened while another span is live on the same thread becomes its
// child; the first span on a thread roots a new trace (sampled 1-in-N)
// unless it adopts a remote TraceContext, in which case it parents
// under the caller's span and inherits the caller's sampling decision.
class ScopedSpan {
 public:
  explicit ScopedSpan(uint32_t name_id) {
    if (!TracingEnabled()) return;
    Begin(name_id, nullptr);
  }
  ScopedSpan(uint32_t name_id, const TraceContext& remote) {
    if (!TracingEnabled()) return;
    Begin(name_id, &remote);
  }
  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

  // Appends a "key=value" attribute. Guard expensive string builds
  // with active() at the call site.
  void Annotate(std::string_view kv);

  // The context a client should propagate to a remote callee right
  // now: the current thread's trace with the innermost live span as
  // parent. Invalid when no span is live (or tracing is off).
  static TraceContext CurrentContext();

 private:
  void Begin(uint32_t name_id, const TraceContext* remote);
  void End();

  bool active_ = false;
  uint32_t name_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t prev_span_ = 0;  // restored as current on End
  uint64_t start_us_ = 0;
  std::string annotation_;
};

// ------------------------------------------------------- wire codec
// Used by Method::kGetRecentTraces / kGetSlowOps; varint/length-
// prefixed like the rest of the RPC encoding.

void EncodeTracesTo(const std::vector<Trace>& traces, std::string* out);
bool DecodeTracesFrom(std::string_view* in, std::vector<Trace>* traces);

void EncodeSpansTo(const std::vector<Span>& spans, std::string* out);
bool DecodeSpansFrom(std::string_view* in, std::vector<Span>* spans);

// ---------------------------------------------------- chrome export
// Serializes traces as Chrome trace_event JSON ("X" complete events),
// loadable in chrome://tracing and Perfetto. pid = index of the trace,
// tid = recording thread, ts/dur in microseconds.
std::string TracesToChromeJson(const std::vector<Trace>& traces);

// Declares a span named `var` covering the rest of the scope. The
// static local makes the name-interning a one-time cost per site.
#define NEPTUNE_TRACE_SPAN(var, name)                     \
  static const uint32_t var##_name_id =                   \
      ::neptune::Tracer::Instance().InternName(name);     \
  ::neptune::ScopedSpan var(var##_name_id)

// Same, but the span adopts (or self-roots from) a remote context.
#define NEPTUNE_TRACE_SPAN_REMOTE(var, name, remote)      \
  static const uint32_t var##_name_id =                   \
      ::neptune::Tracer::Instance().InternName(name);     \
  ::neptune::ScopedSpan var(var##_name_id, (remote))

}  // namespace neptune

#endif  // NEPTUNE_COMMON_TRACE_H_

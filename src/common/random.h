// Deterministic PRNG for tests, workload generators and benchmarks.
// xorshift128+ — fast, seedable, reproducible across platforms.

#ifndef NEPTUNE_COMMON_RANDOM_H_
#define NEPTUNE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace neptune {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to spread an arbitrary seed over both state words.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  // Uniform in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53));
  }

  // Random lowercase-alpha string of length `len`.
  std::string NextString(size_t len) {
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

  // Random byte string (full 0..255 range) of length `len`.
  std::string NextBytes(size_t len) {
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>(Uniform(256)));
    }
    return out;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97f4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace neptune

#endif  // NEPTUNE_COMMON_RANDOM_H_

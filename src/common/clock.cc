#include "common/clock.h"

#include <chrono>

namespace neptune {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace neptune

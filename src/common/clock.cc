#include "common/clock.h"

#include <chrono>
#include <thread>

namespace neptune {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

namespace {

class SteadyTimeSource : public TimeSource {
 public:
  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepMicros(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

TimeSource* RealTimeSource() {
  static SteadyTimeSource* const kSource = new SteadyTimeSource();
  return kSource;
}

}  // namespace neptune

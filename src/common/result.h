// Result<T>: a value-or-Status, the return type of fallible operations
// that produce a value. Modeled on arrow::Result / absl::StatusOr.

#ifndef NEPTUNE_COMMON_RESULT_H_
#define NEPTUNE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace neptune {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or from a non-OK Status keeps
  // call sites readable:  return value;  /  return Status::NotFound(...).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK Status without value");
    if (status_.ok()) {
      status_ = Status::FailedPrecondition("Result from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `alternative` if this holds an error.
  T value_or(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Assigns the value of a Result expression to `lhs`, or returns its
// Status from the enclosing function.
#define NEPTUNE_ASSIGN_OR_RETURN(lhs, rexpr)          \
  NEPTUNE_ASSIGN_OR_RETURN_IMPL_(                     \
      NEPTUNE_CONCAT_(_neptune_result_, __LINE__), lhs, rexpr)

#define NEPTUNE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define NEPTUNE_CONCAT_(a, b) NEPTUNE_CONCAT_IMPL_(a, b)
#define NEPTUNE_CONCAT_IMPL_(a, b) a##b

}  // namespace neptune

#endif  // NEPTUNE_COMMON_RESULT_H_

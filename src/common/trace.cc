#include "common/trace.h"

#include <thread>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace neptune {

namespace trace_internal {
std::atomic<uint32_t> g_sample_n{0};
}  // namespace trace_internal

namespace {

// Spans as buffered on the recording thread: the name stays an id and
// the trace_id lives in the buffer header, so the per-span footprint
// is small.
struct BufferedSpan {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint32_t name_id = 0;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  std::string annotation;
};

uint64_t CurrentThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

// Minimal JSON string escaping for names/annotations (both are
// programmer-controlled, but a node title can leak into an annotation
// via an explanation string, so escape properly).
void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

// Per-thread recording state. One request is handled start to finish
// on one thread (thread-per-connection server, synchronous client
// stub), so a thread has at most one live trace.
struct Tracer::ThreadTrace {
  uint64_t trace_id = 0;
  uint64_t current_span = 0;  // innermost live span
  int depth = 0;              // live span nesting
  bool sampled = false;       // 1-in-N decision (or inherited)
  bool slow_seen = false;     // some span reached slow_us
  uint64_t dropped = 0;       // spans past kMaxSpansPerTrace
  std::vector<BufferedSpan> buffer;
};

Tracer::ThreadTrace& Tracer::CurrentThreadTrace() {
  static thread_local ThreadTrace t;
  return t;
}

Tracer::Tracer()
    : spans_recorded_(
          MetricsRegistry::Instance().GetCounter("trace.spans.recorded")),
      spans_dropped_(
          MetricsRegistry::Instance().GetCounter("trace.spans.dropped")),
      slow_ops_(MetricsRegistry::Instance().GetCounter("trace.slow_ops")) {
  names_.emplace_back("unnamed");  // id 0 stays reserved
}

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();  // never destroyed, like metrics
  return *tracer;
}

void Tracer::Configure(uint32_t sample_n, uint64_t slow_us) {
  slow_us_.store(slow_us, std::memory_order_relaxed);
  trace_internal::g_sample_n.store(sample_n, std::memory_order_relaxed);
}

uint32_t Tracer::sample_n() const {
  return trace_internal::g_sample_n.load(std::memory_order_relaxed);
}

bool Tracer::SampleRoot() {
  const uint32_t n = sample_n();
  if (n <= 1) return n == 1;
  return root_counter_.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

uint32_t Tracer::InternName(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<uint32_t>(names_.size() - 1);
}

std::string Tracer::NameOf(uint32_t name_id) const {
  std::lock_guard<std::mutex> lock(names_mu_);
  if (name_id >= names_.size()) return "unnamed";
  return names_[name_id];
}

void Tracer::RecordSlowOp(const Span& span) {
  slow_ops_->Increment();
  std::string line;
  line.reserve(160 + span.name.size() + span.annotation.size());
  line.append("{\"event\":\"slow_op\",\"op\":\"");
  AppendJsonEscaped(span.name, &line);
  line.append("\",\"trace_id\":");
  line.append(std::to_string(span.trace_id));
  line.append(",\"span_id\":");
  line.append(std::to_string(span.span_id));
  line.append(",\"start_us\":");
  line.append(std::to_string(span.start_us));
  line.append(",\"duration_us\":");
  line.append(std::to_string(span.duration_us));
  line.append(",\"attrs\":\"");
  AppendJsonEscaped(span.annotation, &line);
  line.append("\"}");
  NEPTUNE_LOG(Warn) << line;
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (slow_ring_.size() >= kMaxSlowOps) {
    slow_ring_.erase(slow_ring_.begin());
  }
  slow_ring_.push_back(span);
}

void Tracer::FlushThreadTrace(ThreadTrace* t) {
  if (t->dropped > 0) spans_dropped_->Add(t->dropped);
  if ((t->sampled || t->slow_seen) && !t->buffer.empty()) {
    const uint64_t tid = CurrentThreadId();
    std::vector<Span> spans;
    spans.reserve(t->buffer.size());
    for (BufferedSpan& b : t->buffer) {
      Span s;
      s.trace_id = t->trace_id;
      s.span_id = b.span_id;
      s.parent_id = b.parent_id;
      s.name = NameOf(b.name_id);
      s.start_us = b.start_us;
      s.duration_us = b.duration_us;
      s.thread_id = tid;
      s.annotation = std::move(b.annotation);
      spans.push_back(std::move(s));
    }
    spans_recorded_->Add(spans.size());
    std::lock_guard<std::mutex> lock(ring_mu_);
    // Merge with an existing entry for this trace_id (the server's half
    // of a trace flushes before the in-process client's half does), so
    // one request stays one Trace.
    Trace* slot = nullptr;
    for (Trace& existing : ring_) {
      if (existing.trace_id == t->trace_id) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      if (ring_.size() >= kMaxRecentTraces) {
        ring_.erase(ring_.begin());
      }
      ring_.push_back(Trace{t->trace_id, {}});
      slot = &ring_.back();
    }
    for (Span& s : spans) slot->spans.push_back(std::move(s));
  }
  t->trace_id = 0;
  t->current_span = 0;
  t->sampled = false;
  t->slow_seen = false;
  t->dropped = 0;
  t->buffer.clear();
}

std::vector<Trace> Tracer::RecentTraces() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_;
}

std::vector<Span> Tracer::SlowOps() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return slow_ring_;
}

void Tracer::ResetForTest() {
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.clear();
  slow_ring_.clear();
  root_counter_.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------ ScopedSpan

void ScopedSpan::Begin(uint32_t name_id, const TraceContext* remote) {
  Tracer& tracer = Tracer::Instance();
  Tracer::ThreadTrace& t = Tracer::CurrentThreadTrace();
  if (t.depth == 0) {
    if (remote != nullptr && remote->valid()) {
      // Server side of an RPC: join the caller's trace under its span
      // and honor its sampling decision (spans still record locally so
      // a slow server op is kept even for an unsampled trace).
      t.trace_id = remote->trace_id;
      t.sampled = remote->sampled;
      parent_id_ = remote->parent_span_id;
    } else {
      t.trace_id = tracer.NextTraceId();
      t.sampled = tracer.SampleRoot();
      parent_id_ = 0;
    }
    t.slow_seen = false;
    t.dropped = 0;
  } else {
    parent_id_ = t.current_span;
  }
  active_ = true;
  name_id_ = name_id;
  span_id_ = tracer.NextSpanId();
  prev_span_ = t.current_span;
  t.current_span = span_id_;
  ++t.depth;
  start_us_ = NowMicros();
}

void ScopedSpan::End() {
  const uint64_t duration_us = NowMicros() - start_us_;
  Tracer& tracer = Tracer::Instance();
  Tracer::ThreadTrace& t = Tracer::CurrentThreadTrace();
  t.current_span = prev_span_;
  --t.depth;
  const uint64_t slow_us = tracer.slow_us();
  const bool slow = slow_us > 0 && duration_us >= slow_us;
  if (slow) {
    t.slow_seen = true;
    Span span;
    span.trace_id = t.trace_id;
    span.span_id = span_id_;
    span.parent_id = parent_id_;
    span.name = tracer.NameOf(name_id_);
    span.start_us = start_us_;
    span.duration_us = duration_us;
    span.thread_id = CurrentThreadId();
    span.annotation = annotation_;
    tracer.RecordSlowOp(span);
  }
  if (t.buffer.size() < Tracer::kMaxSpansPerTrace) {
    t.buffer.push_back(BufferedSpan{span_id_, parent_id_, name_id_, start_us_,
                                    duration_us, std::move(annotation_)});
  } else {
    ++t.dropped;
  }
  if (t.depth == 0) tracer.FlushThreadTrace(&t);
}

void ScopedSpan::Annotate(std::string_view kv) {
  if (!active_ || kv.empty()) return;
  if (!annotation_.empty()) annotation_.push_back(' ');
  annotation_.append(kv);
}

TraceContext ScopedSpan::CurrentContext() {
  if (!TracingEnabled()) return TraceContext{};
  Tracer::ThreadTrace& t = Tracer::CurrentThreadTrace();
  if (t.depth == 0) return TraceContext{};
  return TraceContext{t.trace_id, t.current_span, t.sampled};
}

// ------------------------------------------------------------ wire codec

namespace {

void EncodeSpanTo(const Span& span, std::string* out) {
  PutVarint64(out, span.span_id);
  PutVarint64(out, span.parent_id);
  PutLengthPrefixed(out, span.name);
  PutVarint64(out, span.start_us);
  PutVarint64(out, span.duration_us);
  PutVarint64(out, span.thread_id);
  PutLengthPrefixed(out, span.annotation);
}

bool DecodeSpanFrom(std::string_view* in, Span* span) {
  std::string_view name;
  std::string_view annotation;
  if (!GetVarint64(in, &span->span_id) || !GetVarint64(in, &span->parent_id) ||
      !GetLengthPrefixed(in, &name) || !GetVarint64(in, &span->start_us) ||
      !GetVarint64(in, &span->duration_us) ||
      !GetVarint64(in, &span->thread_id) ||
      !GetLengthPrefixed(in, &annotation)) {
    return false;
  }
  span->name.assign(name);
  span->annotation.assign(annotation);
  return true;
}

}  // namespace

void EncodeTracesTo(const std::vector<Trace>& traces, std::string* out) {
  PutVarint64(out, traces.size());
  for (const Trace& trace : traces) {
    PutVarint64(out, trace.trace_id);
    PutVarint64(out, trace.spans.size());
    for (const Span& span : trace.spans) EncodeSpanTo(span, out);
  }
}

bool DecodeTracesFrom(std::string_view* in, std::vector<Trace>* traces) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  traces->clear();
  for (uint64_t i = 0; i < n; ++i) {
    Trace trace;
    uint64_t spans = 0;
    if (!GetVarint64(in, &trace.trace_id) || !GetVarint64(in, &spans)) {
      return false;
    }
    trace.spans.reserve(spans);
    for (uint64_t j = 0; j < spans; ++j) {
      Span span;
      if (!DecodeSpanFrom(in, &span)) return false;
      span.trace_id = trace.trace_id;
      trace.spans.push_back(std::move(span));
    }
    traces->push_back(std::move(trace));
  }
  return true;
}

void EncodeSpansTo(const std::vector<Span>& spans, std::string* out) {
  PutVarint64(out, spans.size());
  for (const Span& span : spans) {
    PutVarint64(out, span.trace_id);
    EncodeSpanTo(span, out);
  }
}

bool DecodeSpansFrom(std::string_view* in, std::vector<Span>* spans) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  spans->clear();
  spans->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Span span;
    if (!GetVarint64(in, &span.trace_id) || !DecodeSpanFrom(in, &span)) {
      return false;
    }
    spans->push_back(std::move(span));
  }
  return true;
}

// --------------------------------------------------------- chrome export

std::string TracesToChromeJson(const std::vector<Trace>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (size_t i = 0; i < traces.size(); ++i) {
    for (const Span& span : traces[i].spans) {
      if (!first) out.push_back(',');
      first = false;
      out.append("\n{\"name\":\"");
      AppendJsonEscaped(span.name, &out);
      out.append("\",\"cat\":\"neptune\",\"ph\":\"X\",\"pid\":");
      out.append(std::to_string(i + 1));
      out.append(",\"tid\":");
      // Chrome renders tid as a lane label; fold the hash down to
      // something readable.
      out.append(std::to_string(span.thread_id % 1000000));
      out.append(",\"ts\":");
      out.append(std::to_string(span.start_us));
      out.append(",\"dur\":");
      out.append(std::to_string(span.duration_us));
      out.append(",\"args\":{\"trace_id\":");
      out.append(std::to_string(span.trace_id));
      out.append(",\"span_id\":");
      out.append(std::to_string(span.span_id));
      out.append(",\"parent_id\":");
      out.append(std::to_string(span.parent_id));
      out.append(",\"attrs\":\"");
      AppendJsonEscaped(span.annotation, &out);
      out.append("\"}}");
    }
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

}  // namespace neptune

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace neptune {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kError)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (level < GetLogLevel()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace neptune

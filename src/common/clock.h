// Clocks. HAM `Time` is a per-graph logical timestamp: a strictly
// increasing non-negative integer (the Appendix only requires "a
// non-negative integer representation for a given date and time", and
// reserves 0 for "the current version"). Logical time makes version
// histories deterministic and testable. A wall-clock helper is kept
// for benchmarks and log messages.

#ifndef NEPTUNE_COMMON_CLOCK_H_
#define NEPTUNE_COMMON_CLOCK_H_

#include <cstdint>

namespace neptune {

// Hands out strictly increasing timestamps, starting at 1 (0 is the
// reserved "current version" sentinel throughout the HAM).
class LogicalClock {
 public:
  LogicalClock() = default;
  explicit LogicalClock(uint64_t last) : last_(last) {}

  // Returns a timestamp strictly greater than every previous return.
  uint64_t Tick() { return ++last_; }

  // The most recently issued timestamp (0 if none yet).
  uint64_t Last() const { return last_; }

  // Fast-forwards so the next Tick() is > `t`; used by WAL recovery to
  // resume after the highest replayed timestamp.
  void AdvanceTo(uint64_t t) {
    if (t > last_) last_ = t;
  }

 private:
  uint64_t last_ = 0;
};

// Wall-clock microseconds since the Unix epoch (benchmarks, logging).
uint64_t NowMicros();

// Injectable time source. Production code paths that need "how late is
// it" or "wait a while" take a TimeSource* so the simulation harness
// (src/sim) can substitute a virtual clock and run hours of cluster
// time in milliseconds, deterministically. The default is the real
// clock below; no caller should ever see a null TimeSource.
class TimeSource {
 public:
  virtual ~TimeSource() = default;

  // Monotonic-ish microseconds. Comparable only against other readings
  // from the same TimeSource.
  virtual uint64_t NowMicros() = 0;

  // Blocks (or, in simulation, advances virtual time) for `micros`.
  virtual void SleepMicros(uint64_t micros) = 0;
};

// The process-wide real time source: steady_clock readings, real
// sleeps. Never destroyed.
TimeSource* RealTimeSource();

}  // namespace neptune

#endif  // NEPTUNE_COMMON_CLOCK_H_

// Status: the error model used throughout Neptune.
//
// No exceptions cross an API boundary in this codebase (the style the
// paper's era and today's storage engines share): every fallible
// operation returns a Status, or a Result<T> when it produces a value.
// This mirrors the HAM specification's implicit Boolean result0 on
// every operation ("if the operation is successful then true is
// returned otherwise false") while carrying a machine-readable code
// and a human-readable reason.

#ifndef NEPTUNE_COMMON_STATUS_H_
#define NEPTUNE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace neptune {

// Machine-readable classification of a failure.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIOError = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kAborted = 7,
  kConflict = 8,
  kPermissionDenied = 9,
  kUnimplemented = 10,
  kNetworkError = 11,
  kReadOnly = 12,
  kDeadlineExceeded = 13,
  kUnavailable = 14,
};

// Returns the canonical lower-level name ("NotFound", ...) for a code.
std::string_view StatusCodeToString(StatusCode code);

// A Status is cheap to copy in the OK case (a null pointer) and holds
// (code, message) otherwise.
class Status {
 public:
  Status() = default;  // OK.

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Conflict(std::string_view msg) {
    return Status(StatusCode::kConflict, msg);
  }
  static Status PermissionDenied(std::string_view msg) {
    return Status(StatusCode::kPermissionDenied, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status NetworkError(std::string_view msg) {
    return Status(StatusCode::kNetworkError, msg);
  }
  static Status ReadOnly(std::string_view msg) {
    return Status(StatusCode::kReadOnly, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status FromCode(StatusCode code, std::string_view msg) {
    return code == StatusCode::kOk ? OK() : Status(code, msg);
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsConflict() const { return code() == StatusCode::kConflict; }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsNetworkError() const { return code() == StatusCode::kNetworkError; }
  bool IsReadOnly() const { return code() == StatusCode::kReadOnly; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string_view msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::string(msg)})) {}

  std::unique_ptr<Rep> rep_;  // null == OK
};

// Evaluates `expr` (a Status expression) and returns it from the
// enclosing function if it is not OK.
#define NEPTUNE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::neptune::Status _neptune_status_ = (expr);     \
    if (!_neptune_status_.ok()) return _neptune_status_; \
  } while (0)

}  // namespace neptune

#endif  // NEPTUNE_COMMON_STATUS_H_

#include "common/status.h"

namespace neptune {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace neptune

// Binary encoding primitives shared by the WAL, snapshots, the HAM
// codec, deltas and the RPC wire format: little-endian fixed-width
// integers, LEB128 varints, and length-prefixed strings.
//
// All Get* functions consume from a std::string_view in place and
// return false (without modifying the output) on underflow or a
// malformed varint, so callers can surface Status::Corruption.

#ifndef NEPTUNE_COMMON_CODING_H_
#define NEPTUNE_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace neptune {

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Encodes directly into a caller-provided buffer of at least 2/4/8
// bytes; used by the WAL frame header.
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
uint32_t DecodeFixed32(const char* src);
uint64_t DecodeFixed64(const char* src);

bool GetFixed16(std::string_view* src, uint16_t* value);
bool GetFixed32(std::string_view* src, uint32_t* value);
bool GetFixed64(std::string_view* src, uint64_t* value);
bool GetVarint32(std::string_view* src, uint32_t* value);
bool GetVarint64(std::string_view* src, uint64_t* value);
bool GetLengthPrefixed(std::string_view* src, std::string_view* value);

// Number of bytes PutVarint64 would emit for `value`.
int VarintLength(uint64_t value);

}  // namespace neptune

#endif  // NEPTUNE_COMMON_CODING_H_

// CRC32C (Castagnoli) checksums, used to frame WAL records, snapshot
// sections, and RPC wire messages so that torn writes and corrupt
// tails are detected rather than replayed.

#ifndef NEPTUNE_COMMON_CRC32C_H_
#define NEPTUNE_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace neptune {
namespace crc32c {

// Returns the CRC32C of data, seeded by `init_crc` (pass 0 for a fresh
// checksum; pass a previous return value to extend it).
uint32_t Extend(uint32_t init_crc, std::string_view data);

inline uint32_t Value(std::string_view data) { return Extend(0, data); }

// Masked CRCs are stored on disk/wire so that a CRC of data that
// happens to contain embedded CRCs stays well distributed (same
// masking scheme as LevelDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace neptune

#endif  // NEPTUNE_COMMON_CRC32C_H_

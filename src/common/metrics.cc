#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/coding.h"

namespace neptune {

void Histogram::Record(uint64_t micros) {
  // Branch-light bucket search: bounds roughly double, so a linear
  // scan over 24 entries is at most a few dozen predictable compares
  // and typically exits in the first few (most ops are fast).
  size_t bucket = kNumBuckets - 1;
  for (size_t i = 0; i < kNumBuckets - 1; ++i) {
    if (micros < kBucketBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_.compare_exchange_weak(seen, micros, std::memory_order_relaxed)) {
  }
}

uint64_t HistogramSnapshot::QuantileMicros(double q) const {
  if (count == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      return i < Histogram::kNumBuckets - 1 ? Histogram::kBucketBounds[i]
                                            : max;
    }
  }
  return max;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// ------------------------------------------------------------ registry

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter.Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge.Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot snap;
    snap.buckets.reserve(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      snap.buckets.push_back(hist.buckets_[i].load(std::memory_order_relaxed));
    }
    snap.count = hist.count_.load(std::memory_order_relaxed);
    snap.sum = hist.sum_.load(std::memory_order_relaxed);
    snap.max = hist.max_.load(std::memory_order_relaxed);
    out.histograms[name] = std::move(snap);
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter.Add(0 - counter.Value());
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge.Set(0);
  }
  for (auto& [name, hist] : histograms_) {
    (void)name;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      hist.buckets_[i].store(0, std::memory_order_relaxed);
    }
    hist.count_.store(0, std::memory_order_relaxed);
    hist.sum_.store(0, std::memory_order_relaxed);
    hist.max_.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------- wire codec

void MetricsSnapshot::EncodeTo(std::string* out) const {
  PutVarint64(out, counters.size());
  for (const auto& [name, value] : counters) {
    PutLengthPrefixed(out, name);
    PutVarint64(out, value);
  }
  PutVarint64(out, gauges.size());
  for (const auto& [name, value] : gauges) {
    PutLengthPrefixed(out, name);
    PutVarint64(out, static_cast<uint64_t>(value));
  }
  PutVarint64(out, histograms.size());
  for (const auto& [name, hist] : histograms) {
    PutLengthPrefixed(out, name);
    PutVarint64(out, hist.count);
    PutVarint64(out, hist.sum);
    PutVarint64(out, hist.max);
    PutVarint64(out, hist.buckets.size());
    for (uint64_t b : hist.buckets) PutVarint64(out, b);
  }
}

bool MetricsSnapshot::DecodeFrom(std::string_view* in, MetricsSnapshot* out) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view name;
    uint64_t value = 0;
    if (!GetLengthPrefixed(in, &name) || !GetVarint64(in, &value)) return false;
    out->counters[std::string(name)] = value;
  }
  if (!GetVarint64(in, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view name;
    uint64_t value = 0;
    if (!GetLengthPrefixed(in, &name) || !GetVarint64(in, &value)) return false;
    out->gauges[std::string(name)] = static_cast<int64_t>(value);
  }
  if (!GetVarint64(in, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view name;
    HistogramSnapshot hist;
    uint64_t buckets = 0;
    if (!GetLengthPrefixed(in, &name) || !GetVarint64(in, &hist.count) ||
        !GetVarint64(in, &hist.sum) || !GetVarint64(in, &hist.max) ||
        !GetVarint64(in, &buckets) || buckets > Histogram::kNumBuckets) {
      return false;
    }
    hist.buckets.reserve(buckets);
    for (uint64_t b = 0; b < buckets; ++b) {
      uint64_t v = 0;
      if (!GetVarint64(in, &v)) return false;
      hist.buckets.push_back(v);
    }
    out->histograms[std::string(name)] = std::move(hist);
  }
  return true;
}

// ------------------------------------------------------------ rendering

namespace {

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  if (!counters.empty()) {
    out.append("counters:\n");
    for (const auto& [name, value] : counters) {
      AppendLine(&out, "  %-44s %12" PRIu64 "\n", name.c_str(), value);
    }
  }
  if (!gauges.empty()) {
    out.append("gauges:\n");
    for (const auto& [name, value] : gauges) {
      AppendLine(&out, "  %-44s %12" PRId64 "\n", name.c_str(), value);
    }
  }
  if (!histograms.empty()) {
    out.append("latency (us):\n");
    AppendLine(&out, "  %-44s %10s %8s %8s %8s %8s\n", "", "count", "mean",
               "p50", "p99", "max");
    for (const auto& [name, hist] : histograms) {
      AppendLine(&out, "  %-44s %10" PRIu64 " %8.1f %8" PRIu64 " %8" PRIu64
                       " %8" PRIu64 "\n",
                 name.c_str(), hist.count, hist.MeanMicros(),
                 hist.QuantileMicros(0.50), hist.QuantileMicros(0.99),
                 hist.max);
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string MetricsSnapshot::ToLogLine() const {
  std::string out = "stats:";
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    out += " " + name + "=" + std::to_string(value);
  }
  for (const auto& [name, value] : gauges) {
    if (value == 0) continue;
    out += " " + name + "=" + std::to_string(value);
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  // Metric names are interned identifiers ([a-z._] by convention), so
  // they need no escaping.
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"count\": %" PRIu64 ", \"mean_us\": %.1f"
                  ", \"p50_us\": %" PRIu64 ", \"p99_us\": %" PRIu64
                  ", \"max_us\": %" PRIu64 "}",
                  name.c_str(), hist.count, hist.MeanMicros(),
                  hist.QuantileMicros(0.50), hist.QuantileMicros(0.99),
                  hist.max);
    out += buf;
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace neptune

// Process-wide metrics for the Neptune server: named counters, gauges
// and fixed-bucket latency histograms. The paper's HAM is "a central
// server which is accessible over a local area network"; an operator
// of such a server needs per-operation rates, latency distributions
// and storage/transaction visibility, so every layer of the stack
// reports here and the RPC layer exports a snapshot over the wire
// (Method::kGetServerStatistics).
//
// Design:
//  * The hot path is one relaxed atomic add — instrumented call sites
//    resolve a metric to a pointer once (static local) and bump it.
//  * Registration is mutex-guarded and happens once per name; the
//    registry hands out stable pointers, never invalidated (metrics
//    live for the process lifetime).
//  * Reads are snapshot-on-read: Snapshot() copies every value at one
//    instant; writers are never blocked.
//  * Histograms use fixed power-of-~2 microsecond buckets so merging
//    and wire encoding are trivial and bump cost is a branch-free
//    search plus one atomic add.

#ifndef NEPTUNE_COMMON_METRICS_H_
#define NEPTUNE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace neptune {

// A monotonically increasing count (operations served, bytes written).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A value that goes up and down (open connections, open sessions).
class Gauge {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Decrement() { value_.fetch_sub(1, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Latency histogram over fixed microsecond buckets. Bucket i counts
// samples in [kBucketBounds[i-1], kBucketBounds[i]); the last bucket
// is unbounded. Also tracks count/sum/max for mean latency.
class Histogram {
 public:
  // Upper bounds in microseconds; roughly doubling, 1us .. ~8.4s.
  static constexpr uint64_t kBucketBounds[] = {
      1,    2,    4,     8,     16,     32,     64,      128,     256,
      512,  1024, 2048,  4096,  8192,   16384,  32768,   65536,   131072,
      262144, 524288, 1048576, 2097152, 4194304, 8388608};
  static constexpr size_t kNumBuckets =
      sizeof(kBucketBounds) / sizeof(kBucketBounds[0]) + 1;

  void Record(uint64_t micros);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};   // total microseconds
  std::atomic<uint64_t> max_{0};
};

// A point-in-time copy of one histogram, consistent enough for
// operator display (each field is read atomically; the set of fields
// is not a linearizable cut, which is fine for monitoring).
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // kNumBuckets entries
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  double MeanMicros() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  // Approximate quantile (0 < q <= 1) from the bucket upper bounds.
  uint64_t QuantileMicros(double q) const;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Missing names read as zero, so tests can diff two snapshots.
  uint64_t CounterValue(const std::string& name) const;

  // Wire codec (used by Method::kGetServerStatistics).
  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(std::string_view* in, MetricsSnapshot* out);

  // Multi-line human-readable table (neptune_ctl stats).
  std::string ToTable() const;
  // One compact line for periodic logging.
  std::string ToLogLine() const;
  // Machine-readable export (neptune_ctl stats --json): counters and
  // gauges as numbers, histograms as {count, mean_us, p50_us, p99_us,
  // max_us}.
  std::string ToJson() const;
};

// The process-wide registry. Lookup interns the name; the returned
// pointer is valid for the process lifetime and safe to cache.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric. Only for tests and benchmarks;
  // concurrent writers may land bumps on either side of the reset.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // guards the maps, not the metric values
  // std::map never invalidates element addresses on insert.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Times a scope and records the elapsed time into a histogram,
// optionally bumping a companion counter. All timestamps go through
// the TimeSource seam: pass the owning component's time source so the
// deterministic simulation records virtual durations; the default is
// the process-wide monotonic clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, Counter* counter = nullptr,
                       TimeSource* time = nullptr)
      : histogram_(histogram),
        counter_(counter),
        time_(time != nullptr ? time : RealTimeSource()),
        start_(time_->NowMicros()) {}
  ~ScopedTimer() {
    if (counter_ != nullptr) counter_->Increment();
    histogram_->Record(time_->NowMicros() - start_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  Counter* counter_;
  TimeSource* time_;
  uint64_t start_;
};

// Convenience one-liners for instrumented call sites. The static
// local makes the registry lookup a one-time cost per site.
#define NEPTUNE_METRIC_COUNT(name, delta)                                  \
  do {                                                                     \
    static ::neptune::Counter* _neptune_counter =                          \
        ::neptune::MetricsRegistry::Instance().GetCounter(name);           \
    _neptune_counter->Add(delta);                                          \
  } while (0)

// Declares a ScopedTimer named `var` that times the rest of the scope
// into histogram `name` and counts invocations in `name.count`.
#define NEPTUNE_METRIC_TIMED(var, name)                                    \
  static ::neptune::Histogram* var##_hist =                                \
      ::neptune::MetricsRegistry::Instance().GetHistogram(name);           \
  static ::neptune::Counter* var##_count =                                 \
      ::neptune::MetricsRegistry::Instance().GetCounter(name ".count");    \
  ::neptune::ScopedTimer var(var##_hist, var##_count)

}  // namespace neptune

#endif  // NEPTUNE_COMMON_METRICS_H_

#include "common/crc32c.h"

#include <array>

namespace neptune {
namespace crc32c {

namespace {

// Table-driven software CRC32C (polynomial 0x1EDC6F41, reflected
// 0x82F63B78), one table, byte at a time. Fast enough for our record
// sizes and fully portable.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, std::string_view data) {
  const auto& table = Table();
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace neptune

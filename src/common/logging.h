// Minimal leveled logging. Off by default so tests and benchmarks stay
// quiet; the server binary turns it on. Not a tracing framework — just
// enough to see what a long-running HAM server is doing.

#ifndef NEPTUNE_COMMON_LOGGING_H_
#define NEPTUNE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace neptune {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Minimum level that is emitted; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr: "[LEVEL] message".
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define NEPTUNE_LOG(level)                                         \
  if (::neptune::GetLogLevel() <= ::neptune::LogLevel::k##level)   \
  ::neptune::internal::LogLine(::neptune::LogLevel::k##level)

}  // namespace neptune

#endif  // NEPTUNE_COMMON_LOGGING_H_

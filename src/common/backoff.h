// Jittered exponential backoff, shared by the RPC client retry loop
// and the replication tailer (both previously carried private copies
// of the same arithmetic). Policy: delay doubles from `initial_ms` up
// to `max_ms`, and each sleep draws uniformly from [delay/2, delay]
// ("equal jitter") so a thundering herd of retriers decorrelates.
//
// The class only computes delays; the caller decides how to wait.
// Sleep() routes the wait through an injectable TimeSource so the
// simulation harness can advance a virtual clock instead of blocking.

#ifndef NEPTUNE_COMMON_BACKOFF_H_
#define NEPTUNE_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/clock.h"
#include "common/random.h"

namespace neptune {

class Backoff {
 public:
  Backoff(uint64_t initial_ms, uint64_t max_ms, Random* rng)
      : initial_ms_(std::max<uint64_t>(initial_ms, 1)),
        max_ms_(std::max<uint64_t>(max_ms, initial_ms_)),
        rng_(rng) {}

  // Consecutive failures recorded since the last Reset().
  int failures() const { return failures_; }

  void Reset() { failures_ = 0; }

  // Records one more failure and returns the jittered delay to wait
  // before the next attempt, in milliseconds.
  uint64_t NextDelayMs() {
    uint64_t delay = initial_ms_;
    for (int i = 0; i < failures_ && delay < max_ms_; ++i) delay *= 2;
    delay = std::min(delay, max_ms_);
    ++failures_;
    // Uniform in [delay/2, delay]: keeps at least half the nominal
    // delay (so retries genuinely back off) while spreading retriers.
    const uint64_t half = delay / 2;
    return half + rng_->Uniform(delay - half + 1);
  }

  // Jittered delay for an explicit attempt index (0-based), without
  // touching the failure counter. Used by retry loops that track their
  // own attempt count.
  uint64_t DelayForAttemptMs(int attempt) {
    uint64_t delay = initial_ms_;
    for (int i = 0; i < attempt && delay < max_ms_; ++i) delay *= 2;
    delay = std::min(delay, max_ms_);
    const uint64_t half = delay / 2;
    return half + rng_->Uniform(delay - half + 1);
  }

  // Records a failure and sleeps the jittered delay on `time`.
  void Sleep(TimeSource* time) { time->SleepMicros(NextDelayMs() * 1000); }

 private:
  const uint64_t initial_ms_;
  const uint64_t max_ms_;
  Random* const rng_;  // not owned
  int failures_ = 0;
};

}  // namespace neptune

#endif  // NEPTUNE_COMMON_BACKOFF_H_

#include "common/coding.h"

#include <cstring>

namespace neptune {

void EncodeFixed32(char* dst, uint32_t value) {
  dst[0] = static_cast<char>(value & 0xff);
  dst[1] = static_cast<char>((value >> 8) & 0xff);
  dst[2] = static_cast<char>((value >> 16) & 0xff);
  dst[3] = static_cast<char>((value >> 24) & 0xff);
}

void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

uint32_t DecodeFixed32(const char* src) {
  const auto* p = reinterpret_cast<const unsigned char*>(src);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DecodeFixed64(const char* src) {
  const auto* p = reinterpret_cast<const unsigned char*>(src);
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | p[i];
  }
  return value;
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed16(std::string_view* src, uint16_t* value) {
  if (src->size() < 2) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(src->data());
  *value = static_cast<uint16_t>(p[0] | (p[1] << 8));
  src->remove_prefix(2);
  return true;
}

bool GetFixed32(std::string_view* src, uint32_t* value) {
  if (src->size() < 4) return false;
  *value = DecodeFixed32(src->data());
  src->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* src, uint64_t* value) {
  if (src->size() < 8) return false;
  *value = DecodeFixed64(src->data());
  src->remove_prefix(8);
  return true;
}

bool GetVarint64(std::string_view* src, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !src->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(src->front());
    src->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;  // Truncated or > 10-byte varint.
}

bool GetVarint32(std::string_view* src, uint32_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(src, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetLengthPrefixed(std::string_view* src, std::string_view* value) {
  uint64_t len = 0;
  if (!GetVarint64(src, &len)) return false;
  if (src->size() < len) return false;
  *value = src->substr(0, len);
  src->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace neptune

#include "sim/sim_cluster.h"

#include <algorithm>

namespace neptune {
namespace sim {

SimCluster::SimCluster(Env* base_env, SimClusterOptions options)
    : base_env_(base_env),
      options_(std::move(options)),
      clock_(),
      net_(&clock_, options_.seed * 0x9e3779b97f4a7c15ull + 1) {
  base_env_->CreateDir(options_.root);
  const int total = 1 + std::max(options_.followers, 0);
  for (int i = 0; i < total; ++i) {
    base_env_->CreateDir(NodeDir(i));
    SimNode::Options node_options;
    node_options.name = HostName(i);
    node_options.directory = NodeDir(i);
    node_options.seed = options_.seed + static_cast<uint64_t>(i) * 1001;
    node_options.follower = i > 0;
    node_options.txn_lease_ms = options_.txn_lease_ms;
    node_options.service_time_us = options_.service_time_us;
    node_options.admission = options_.admission;
    node_options.retry_after_ms = options_.retry_after_ms;
    node_options.checkpoint_wal_bytes = options_.checkpoint_wal_bytes;
    nodes_.push_back(std::make_unique<SimNode>(&clock_, &net_, base_env_,
                                               node_options));
    for (int j = 0; j < i; ++j) {
      net_.SetLink(HostName(j), HostName(i), options_.default_link);
    }
  }
}

SimCluster::~SimCluster() {
  // Stop every replication pump before anything it references dies.
  for (auto& [i, link] : repl_) link.active = false;
}

std::string SimCluster::NodeDir(int i) const {
  return options_.root + "/node" + std::to_string(i);
}

std::unique_ptr<rpc::RemoteHam> SimCluster::NewClient(
    const std::string& client_host, int target) {
  rpc::RemoteHam::Options base;
  base.connect_timeout_ms = 1000;
  base.send_timeout_ms = 5000;
  base.recv_timeout_ms = 5000;
  return NewClient(client_host, target, base);
}

std::unique_ptr<rpc::RemoteHam> SimCluster::NewClient(
    const std::string& client_host, int target,
    rpc::RemoteHam::Options base) {
  net_.SetLink(client_host, HostName(target), options_.default_link);
  rpc::RemoteHam::Options client_options = std::move(base);
  client_options.time_source = &clock_;
  client_options.retry_seed =
      options_.seed * 7919 + static_cast<uint64_t>(++clients_made_);
  client_options.stream_factory =
      [this, client_host](const std::string& host, uint16_t port,
                          int connect_timeout_ms)
      -> Result<std::unique_ptr<rpc::FrameStream>> {
    (void)port;  // sim hosts are addressed by name alone
    return net_.Connect(client_host, host, connect_timeout_ms);
  };
  auto connected =
      rpc::RemoteHam::Connect(HostName(target), 0, client_options);
  if (!connected.ok()) return nullptr;
  return std::move(*connected);
}

void SimCluster::StartReplication(int follower, int primary) {
  StopReplication(follower);
  SimNode* node = nodes_[static_cast<size_t>(follower)].get();
  if (!node->up()) return;
  ReplLink& link = repl_[follower];
  link.generation = next_generation_++;
  link.client = NewClient(HostName(follower), primary);
  if (link.client == nullptr) {
    // Primary unreachable right now; retry the whole start later.
    const uint64_t generation = link.generation;
    link.active = true;
    clock_.Schedule(500 * 1000, "repl.redial." + HostName(follower),
                    [this, follower, primary, generation] {
                      auto it = repl_.find(follower);
                      if (it == repl_.end() ||
                          it->second.generation != generation ||
                          !it->second.active) {
                        return;
                      }
                      StartReplication(follower, primary);
                    });
    return;
  }
  rpc::Replicator::Options repl_options;
  repl_options.primary_root = NodeDir(primary);
  repl_options.local_root = NodeDir(follower);
  repl_options.poll_wait_ms = options_.repl_poll_wait_ms;
  repl_options.follower_id = HostName(follower);
  repl_options.seed = options_.seed * 6151 + static_cast<uint64_t>(follower) + 1;
  repl_options.time_source = &clock_;
  repl_options.long_poll = false;
  link.replicator = std::make_unique<rpc::Replicator>(
      node->ham(), link.client.get(), repl_options);
  link.active = true;
  clock_.Note("repl start " + HostName(follower) + "<-" + HostName(primary));
  const uint64_t generation = link.generation;
  clock_.Schedule(1000, "repl.cycle." + HostName(follower),
                  [this, follower, generation] {
                    PumpReplication(follower, generation);
                  });
}

void SimCluster::PumpReplication(int follower, uint64_t generation) {
  auto it = repl_.find(follower);
  if (it == repl_.end() || !it->second.active ||
      it->second.generation != generation) {
    return;
  }
  ReplLink& link = it->second;
  const int64_t delay_ms = link.replicator->RunCycle();
  if (delay_ms < 0) {
    // Stopped or promoted out of follower mode: the chain ends here.
    link.active = false;
    clock_.Note("repl exit " + HostName(follower));
    return;
  }
  clock_.Schedule(std::max<int64_t>(delay_ms, 1) * 1000,
                  "repl.cycle." + HostName(follower),
                  [this, follower, generation] {
                    PumpReplication(follower, generation);
                  });
}

void SimCluster::StopReplication(int follower) {
  auto it = repl_.find(follower);
  if (it == repl_.end()) return;
  it->second.active = false;
  repl_.erase(it);
}

bool SimCluster::ReplicationActive(int follower) const {
  auto it = repl_.find(follower);
  return it != repl_.end() && it->second.active;
}

bool SimCluster::ReplicationCaughtUp(int follower) const {
  auto it = repl_.find(follower);
  return it != repl_.end() && it->second.replicator != nullptr &&
         it->second.replicator->AllCaughtUp();
}

rpc::Replicator* SimCluster::replicator(int follower) {
  auto it = repl_.find(follower);
  return it == repl_.end() ? nullptr : it->second.replicator.get();
}

void SimCluster::Partition(int a, int b) {
  clock_.Note("partition " + HostName(a) + "|" + HostName(b));
  net_.Cut(HostName(a), HostName(b));
}

void SimCluster::HealPartition(int a, int b) {
  clock_.Note("heal " + HostName(a) + "|" + HostName(b));
  net_.HealCut(HostName(a), HostName(b));
}

void SimCluster::CrashNode(int i) {
  // The node's own tail loop references its engine; kill it first.
  StopReplication(i);
  nodes_[static_cast<size_t>(i)]->Crash();
}

void SimCluster::RestartNode(int i, bool as_follower) {
  nodes_[static_cast<size_t>(i)]->Restart(as_follower);
}

Result<uint64_t> SimCluster::Promote(int i) {
  SimNode* node = nodes_[static_cast<size_t>(i)].get();
  if (!node->up()) return Status::Unavailable("node is down");
  NEPTUNE_ASSIGN_OR_RETURN(uint64_t term, node->ham()->Promote());
  clock_.Note("promote " + HostName(i) + " term=" + std::to_string(term));
  return term;
}

Result<std::vector<std::string>> SimCluster::FsckNode(int i,
                                                      ham::ProjectId project) {
  SimNode* node = nodes_[static_cast<size_t>(i)].get();
  if (!node->up()) return Status::Unavailable("node is down");
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::Context ctx, node->ham()->OpenGraph(project, "", NodeDir(i)));
  Result<std::vector<std::string>> problems = node->ham()->VerifyGraph(ctx);
  node->ham()->CloseGraph(ctx);
  return problems;
}

Result<ham::ReplNodeStatus> SimCluster::NodeReplStatus(int i) {
  SimNode* node = nodes_[static_cast<size_t>(i)].get();
  if (!node->up()) return Status::Unavailable("node is down");
  return node->ham()->ReplStatus(NodeDir(i));
}

}  // namespace sim
}  // namespace neptune

// SimTransport: the in-memory network for the deterministic cluster
// simulation. SimNetwork models hosts joined by lossy, delayed links;
// SimFrameStream implements the production byte-stream interface
// (rpc::FrameStream) over those links, so RemoteHam and the Replicator
// dial simulated servers through RemoteHam::Options::stream_factory
// without a single code change.
//
// The server side is asymmetric on purpose: a simulated node is not an
// epoll loop but an Endpoint that receives whole frames as clock
// events (sim_node.h reuses rpc::RequestDispatcher for the actual
// protocol work). That keeps the whole cluster single-threaded — a
// client "blocks" in RecvFrame by pumping the shared SimClock, which
// is when deliveries, server work, and timers actually run.
//
// Faults are first-class and seedable:
//   * per-link one-way delay plus uniform jitter (drawn from the
//     network's own Random, so schedules replay from the seed);
//   * per-link frame-loss probability — loss kills the connection, the
//     honest TCP analogue of a retransmission timeout;
//   * Cut()/HealCut(): a full bidirectional partition; frames in
//     flight across a cut connection kill it at delivery time;
//   * Blackhole()/HealBlackhole(): one-way silent loss (half-open
//     links, vanished clients that never FIN);
//   * CrashHost(): every connection touching the host dies; endpoints
//     on the crashed host get no callbacks (a dead kernel sends no
//     RST), surviving peers see a normal disconnect.

#ifndef NEPTUNE_SIM_SIM_TRANSPORT_H_
#define NEPTUNE_SIM_SIM_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/result.h"
#include "rpc/socket.h"
#include "sim/sim_clock.h"

namespace neptune {
namespace sim {

class SimFrameStream;

class SimNetwork {
 public:
  // A simulated server: connection lifecycle plus one callback per
  // delivered request frame. All calls arrive as clock events on the
  // single simulation thread.
  class Endpoint {
   public:
    virtual ~Endpoint() = default;
    virtual void OnConnect(uint64_t conn_id) = 0;
    virtual void OnFrame(uint64_t conn_id, std::string payload) = 0;
    virtual void OnDisconnect(uint64_t conn_id) = 0;
  };

  struct LinkOptions {
    uint64_t delay_us = 250;      // one-way base latency
    uint64_t jitter_us = 250;     // extra, uniform in [0, jitter_us]
    // Probability that a frame is lost in transit; a loss kills the
    // connection (stream transports do not silently drop frames).
    double loss = 0.0;
  };

  SimNetwork(SimClock* clock, uint64_t seed);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  SimClock* clock() { return clock_; }

  // Host wiring -----------------------------------------------------
  void Listen(const std::string& host, Endpoint* endpoint);
  void StopListening(const std::string& host);

  // Dials `server_host` from `client_host`. Fails immediately when no
  // one is listening; when the pair is partitioned the full connect
  // timeout elapses on the virtual clock first (that is what a real
  // SYN into a blackhole costs).
  Result<std::unique_ptr<rpc::FrameStream>> Connect(
      const std::string& client_host, const std::string& server_host,
      int connect_timeout_ms);

  // Link shaping ----------------------------------------------------
  void SetLink(const std::string& a, const std::string& b, LinkOptions opts);
  void Cut(const std::string& a, const std::string& b);
  void HealCut(const std::string& a, const std::string& b);
  void Blackhole(const std::string& from, const std::string& to);
  void HealBlackhole(const std::string& from, const std::string& to);
  bool Partitioned(const std::string& a, const std::string& b) const;

  // Kills every connection touching `host`. Endpoints on the host
  // itself get no OnDisconnect (they are dead); remote peers do.
  void CrashHost(const std::string& host);

  // Frame paths (called by SimFrameStream / sim nodes) --------------
  Status SendFromClient(uint64_t conn_id, std::string payload);
  // Queues a reply frame from the server end of `conn_id`.
  void SendToClient(uint64_t conn_id, std::string payload);
  // Orderly close from the client end; the server sees OnDisconnect.
  void CloseFromClient(uint64_t conn_id);
  // Server-initiated close; the client end reads "connection closed".
  void CloseFromServer(uint64_t conn_id);
  // The client stream object is being destroyed.
  void ReleaseClientStream(uint64_t conn_id);

  const std::string& client_host(uint64_t conn_id) const;

 private:
  struct Conn {
    uint64_t id = 0;
    std::string client_host;
    std::string server_host;
    Endpoint* server = nullptr;          // null once the server end died
    SimFrameStream* client = nullptr;    // null once the stream died
    bool open = false;
    // Per-direction FIFO floor: a frame never overtakes an earlier one
    // on the same connection, whatever the jitter draws.
    uint64_t next_c2s_us = 0;
    uint64_t next_s2c_us = 0;
  };

  LinkOptions LinkFor(const std::string& a, const std::string& b) const;
  uint64_t DeliveryDelay(const LinkOptions& link, uint64_t* fifo_floor);
  void KillConn(Conn* conn, bool notify_server, bool notify_client);
  static std::pair<std::string, std::string> Key(const std::string& a,
                                                 const std::string& b);

  SimClock* const clock_;
  Random rng_;
  std::map<std::string, Endpoint*> listeners_;
  std::map<uint64_t, Conn> conns_;
  uint64_t next_conn_ = 1;
  std::map<std::pair<std::string, std::string>, LinkOptions> links_;
  std::set<std::pair<std::string, std::string>> cuts_;
  std::set<std::pair<std::string, std::string>> blackholes_;  // directional
};

// The client end of a simulated connection. Passes fd = -1 to the
// base class, which makes the base destructor and the POSIX paths
// inert; every virtual is overridden to speak SimNetwork instead.
class SimFrameStream : public rpc::FrameStream {
 public:
  SimFrameStream(SimNetwork* net, SimClock* clock, uint64_t conn_id);
  ~SimFrameStream() override;

  Status SetTimeouts(int send_timeout_ms, int recv_timeout_ms) override;
  Status SendFrame(std::string_view payload) override;
  // Pre-framed bytes (pipelined batches): split through the real
  // FrameDecoder so the wire encoding stays covered, then deliver each
  // payload in order.
  Status SendBytes(std::string_view bytes) override;
  // Pumps the simulation until a frame lands, the peer closes, or the
  // armed recv timeout elapses on the virtual clock.
  Result<std::string> RecvFrame() override;
  void Close() override;
  void CloseRead() override;

  // SimNetwork-side entry points.
  void Deliver(std::string payload) { inbox_.push_back(std::move(payload)); }
  void OnPeerClosed() { peer_closed_ = true; }

 private:
  SimNetwork* const net_;
  SimClock* const clock_;
  const uint64_t conn_id_;
  std::deque<std::string> inbox_;
  bool peer_closed_ = false;
  bool read_closed_ = false;
  int recv_timeout_ms_ = 0;
};

}  // namespace sim
}  // namespace neptune

#endif  // NEPTUNE_SIM_SIM_TRANSPORT_H_

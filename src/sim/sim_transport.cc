#include "sim/sim_transport.h"

#include <algorithm>

namespace neptune {
namespace sim {

SimNetwork::SimNetwork(SimClock* clock, uint64_t seed)
    : clock_(clock), rng_(seed != 0 ? seed : 1) {}

SimNetwork::~SimNetwork() = default;

std::pair<std::string, std::string> SimNetwork::Key(const std::string& a,
                                                    const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void SimNetwork::Listen(const std::string& host, Endpoint* endpoint) {
  listeners_[host] = endpoint;
}

void SimNetwork::StopListening(const std::string& host) {
  listeners_.erase(host);
}

void SimNetwork::SetLink(const std::string& a, const std::string& b,
                         LinkOptions opts) {
  links_[Key(a, b)] = opts;
}

void SimNetwork::Cut(const std::string& a, const std::string& b) {
  cuts_.insert(Key(a, b));
}

void SimNetwork::HealCut(const std::string& a, const std::string& b) {
  cuts_.erase(Key(a, b));
}

void SimNetwork::Blackhole(const std::string& from, const std::string& to) {
  blackholes_.insert({from, to});
}

void SimNetwork::HealBlackhole(const std::string& from,
                               const std::string& to) {
  blackholes_.erase({from, to});
}

bool SimNetwork::Partitioned(const std::string& a,
                             const std::string& b) const {
  return cuts_.count(Key(a, b)) > 0;
}

SimNetwork::LinkOptions SimNetwork::LinkFor(const std::string& a,
                                            const std::string& b) const {
  auto it = links_.find(Key(a, b));
  return it == links_.end() ? LinkOptions() : it->second;
}

uint64_t SimNetwork::DeliveryDelay(const LinkOptions& link,
                                   uint64_t* fifo_floor) {
  uint64_t delay = link.delay_us;
  if (link.jitter_us > 0) delay += rng_.Uniform(link.jitter_us + 1);
  // Stream FIFO: never deliver before an earlier frame on the same
  // connection and direction.
  const uint64_t due = std::max(clock_->NowMicros() + delay, *fifo_floor);
  *fifo_floor = due;
  return due - clock_->NowMicros();
}

Result<std::unique_ptr<rpc::FrameStream>> SimNetwork::Connect(
    const std::string& client_host, const std::string& server_host,
    int connect_timeout_ms) {
  if (Partitioned(client_host, server_host) ||
      blackholes_.count({client_host, server_host}) > 0) {
    // A SYN into a blackhole costs the whole connect budget.
    clock_->SleepMicros(static_cast<uint64_t>(
                            connect_timeout_ms > 0 ? connect_timeout_ms : 1) *
                        1000);
    clock_->Note("net connect_timeout " + client_host + "->" + server_host);
    return Status::DeadlineExceeded("sim connect timed out (partitioned)");
  }
  auto listener = listeners_.find(server_host);
  if (listener == listeners_.end()) {
    // Connection refused: immediate (an RST costs one round trip, which
    // is noise at these scales).
    clock_->Note("net connect_refused " + client_host + "->" + server_host);
    return Status::Unavailable("sim connection refused by " + server_host);
  }
  const uint64_t id = next_conn_++;
  Conn& conn = conns_[id];
  conn.id = id;
  conn.client_host = client_host;
  conn.server_host = server_host;
  conn.server = listener->second;
  conn.open = true;
  auto stream = std::make_unique<SimFrameStream>(this, clock_, id);
  conn.client = stream.get();
  clock_->Note("net connect " + client_host + "->" + server_host +
               " conn=" + std::to_string(id));
  conn.server->OnConnect(id);
  return std::unique_ptr<rpc::FrameStream>(std::move(stream));
}

Status SimNetwork::SendFromClient(uint64_t conn_id, std::string payload) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || !it->second.open) {
    return Status::Unavailable("connection closed");
  }
  Conn& conn = it->second;
  const LinkOptions link = LinkFor(conn.client_host, conn.server_host);
  if (link.loss > 0 && rng_.NextDouble() < link.loss) {
    // Stream transports do not silently lose frames: a loss the
    // retransmit layer cannot recover from kills the connection.
    clock_->Note("net lose_c2s conn=" + std::to_string(conn_id));
    KillConn(&conn, /*notify_server=*/true, /*notify_client=*/true);
    return Status::Unavailable("connection reset (simulated loss)");
  }
  const uint64_t delay = DeliveryDelay(link, &conn.next_c2s_us);
  clock_->Schedule(
      delay, "net.c2s." + std::to_string(conn_id),
      [this, conn_id, payload = std::move(payload)]() mutable {
        auto cit = conns_.find(conn_id);
        if (cit == conns_.end() || !cit->second.open) return;
        Conn& c = cit->second;
        if (blackholes_.count({c.client_host, c.server_host}) > 0) {
          clock_->Note("net blackhole_c2s conn=" + std::to_string(conn_id));
          return;  // silently gone; the peer never learns
        }
        if (Partitioned(c.client_host, c.server_host)) {
          // The retransmit clock ran out mid-partition.
          clock_->Note("net cut_c2s conn=" + std::to_string(conn_id));
          KillConn(&c, true, true);
          return;
        }
        if (c.server == nullptr) {
          KillConn(&c, false, true);
          return;
        }
        c.server->OnFrame(conn_id, std::move(payload));
      });
  return Status::OK();
}

void SimNetwork::SendToClient(uint64_t conn_id, std::string payload) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || !it->second.open) return;
  Conn& conn = it->second;
  const LinkOptions link = LinkFor(conn.client_host, conn.server_host);
  if (link.loss > 0 && rng_.NextDouble() < link.loss) {
    clock_->Note("net lose_s2c conn=" + std::to_string(conn_id));
    KillConn(&conn, true, true);
    return;
  }
  const uint64_t delay = DeliveryDelay(link, &conn.next_s2c_us);
  clock_->Schedule(
      delay, "net.s2c." + std::to_string(conn_id),
      [this, conn_id, payload = std::move(payload)]() mutable {
        auto cit = conns_.find(conn_id);
        if (cit == conns_.end() || !cit->second.open) return;
        Conn& c = cit->second;
        if (blackholes_.count({c.server_host, c.client_host}) > 0) {
          clock_->Note("net blackhole_s2c conn=" + std::to_string(conn_id));
          return;
        }
        if (Partitioned(c.client_host, c.server_host)) {
          clock_->Note("net cut_s2c conn=" + std::to_string(conn_id));
          KillConn(&c, true, true);
          return;
        }
        if (c.client == nullptr) {
          KillConn(&c, true, false);
          return;
        }
        c.client->Deliver(std::move(payload));
      });
}

void SimNetwork::KillConn(Conn* conn, bool notify_server,
                          bool notify_client) {
  if (!conn->open) return;
  conn->open = false;
  clock_->Note("net close conn=" + std::to_string(conn->id));
  if (notify_client && conn->client != nullptr) conn->client->OnPeerClosed();
  if (notify_server && conn->server != nullptr) {
    conn->server->OnDisconnect(conn->id);
  }
  conn->server = nullptr;
}

void SimNetwork::CloseFromClient(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  KillConn(&it->second, /*notify_server=*/true, /*notify_client=*/false);
}

void SimNetwork::CloseFromServer(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  KillConn(&it->second, /*notify_server=*/false, /*notify_client=*/true);
}

void SimNetwork::ReleaseClientStream(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  KillConn(&it->second, /*notify_server=*/true, /*notify_client=*/false);
  conns_.erase(it);
}

void SimNetwork::CrashHost(const std::string& host) {
  for (auto& [id, conn] : conns_) {
    if (!conn.open) continue;
    if (conn.server_host == host) {
      // The server process is gone: no callbacks into it, the client
      // end sees a reset.
      KillConn(&conn, /*notify_server=*/false, /*notify_client=*/true);
    } else if (conn.client_host == host) {
      KillConn(&conn, /*notify_server=*/true, /*notify_client=*/true);
    }
  }
  StopListening(host);
}

const std::string& SimNetwork::client_host(uint64_t conn_id) const {
  static const std::string kUnknown = "?";
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? kUnknown : it->second.client_host;
}

// ----------------------------------------------------- SimFrameStream

SimFrameStream::SimFrameStream(SimNetwork* net, SimClock* clock,
                               uint64_t conn_id)
    : rpc::FrameStream(-1), net_(net), clock_(clock), conn_id_(conn_id) {}

SimFrameStream::~SimFrameStream() { net_->ReleaseClientStream(conn_id_); }

Status SimFrameStream::SetTimeouts(int send_timeout_ms, int recv_timeout_ms) {
  (void)send_timeout_ms;  // sends never block in the simulation
  recv_timeout_ms_ = recv_timeout_ms;
  return Status::OK();
}

Status SimFrameStream::SendFrame(std::string_view payload) {
  if (closed_.load() || peer_closed_) {
    return Status::Unavailable("connection closed");
  }
  if (payload.size() > max_frame_bytes_) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  return net_->SendFromClient(conn_id_, std::string(payload));
}

Status SimFrameStream::SendBytes(std::string_view bytes) {
  if (closed_.load() || peer_closed_) {
    return Status::Unavailable("connection closed");
  }
  // Split through the production decoder so batched sends exercise the
  // real framing, then deliver each payload in order.
  std::vector<std::string> payloads;
  rpc::FrameDecoder decoder;
  NEPTUNE_RETURN_IF_ERROR(decoder.Feed(bytes, &payloads));
  for (std::string& payload : payloads) {
    NEPTUNE_RETURN_IF_ERROR(
        net_->SendFromClient(conn_id_, std::move(payload)));
  }
  return Status::OK();
}

Result<std::string> SimFrameStream::RecvFrame() {
  const uint64_t deadline =
      recv_timeout_ms_ > 0
          ? clock_->NowMicros() + static_cast<uint64_t>(recv_timeout_ms_) * 1000
          : ~0ull;
  for (;;) {
    if (!inbox_.empty()) {
      std::string payload = std::move(inbox_.front());
      inbox_.pop_front();
      return payload;
    }
    if (closed_.load() || read_closed_ || peer_closed_) {
      return Status::Unavailable("connection closed");
    }
    if (!clock_->HasPending()) {
      // Nothing in the world can ever wake us: with no timeout armed
      // this is a genuine harness deadlock, so fail loudly.
      if (deadline == ~0ull) {
        return Status::FailedPrecondition(
            "sim deadlock: RecvFrame with an empty event queue");
      }
      clock_->RunUntil(deadline);
      return Status::DeadlineExceeded("sim recv timed out");
    }
    if (clock_->NextDueMicros() > deadline) {
      clock_->RunUntil(deadline);
      return Status::DeadlineExceeded("sim recv timed out");
    }
    clock_->RunOne();
  }
}

void SimFrameStream::Close() {
  if (closed_.exchange(true)) return;
  net_->CloseFromClient(conn_id_);
}

void SimFrameStream::CloseRead() { read_closed_ = true; }

}  // namespace sim
}  // namespace neptune

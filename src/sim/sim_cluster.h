// SimCluster: composes a whole Neptune deployment — N SimNodes, the
// in-memory network, WAL-shipping replication links, and scripted
// clients — in one single-threaded deterministic process driven by a
// shared SimClock. This is the harness the seeded failure scenarios in
// tests/sim build on: partitions, promotions, power cuts, and client
// vanishes all replay bit-for-bit from SimClusterOptions::seed.
//
// Replication runs client-paced: each follower's rpc::Replicator is
// configured with long_poll = false and driven by RunCycle() from
// clock events, so no thread ever parks in a real condition-variable
// wait. Everything else (RemoteHam retries, lease sweeps, admission
// control) rides the injectable seams added to the production code.

#ifndef NEPTUNE_SIM_SIM_CLUSTER_H_
#define NEPTUNE_SIM_SIM_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rpc/remote_ham.h"
#include "rpc/replicator.h"
#include "sim/sim_clock.h"
#include "sim/sim_node.h"
#include "sim/sim_transport.h"

namespace neptune {
namespace sim {

struct SimClusterOptions {
  uint64_t seed = 1;
  // Filesystem scratch root; node directories are created under it.
  std::string root;
  int followers = 1;
  uint64_t txn_lease_ms = 0;
  uint64_t service_time_us = 200;
  rpc::AdmissionOptions admission;
  uint32_t retry_after_ms = 20;
  uint64_t checkpoint_wal_bytes = 8ull << 20;
  SimNetwork::LinkOptions default_link;
  // Pacing for a caught-up follower's fetch cycles (virtual ms).
  uint64_t repl_poll_wait_ms = 100;
};

class SimCluster {
 public:
  SimCluster(Env* base_env, SimClusterOptions options);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  SimClock* clock() { return &clock_; }
  SimNetwork* net() { return &net_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  SimNode* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }
  static std::string HostName(int i) { return "node" + std::to_string(i); }
  std::string NodeDir(int i) const;

  // Advances the whole world `micros` of virtual time.
  void RunFor(uint64_t micros) { clock_.SleepMicros(micros); }

  // A production client stub dialing node `target` through the
  // simulated network from host `client_host` (distinct hosts can be
  // partitioned independently). Deterministic given the cluster seed
  // and creation order. The `base` options carry caller knobs (retry
  // budget, timeouts); the cluster overwrites the simulation seams
  // (time source, stream factory, retry seed) on top of them.
  std::unique_ptr<rpc::RemoteHam> NewClient(const std::string& client_host,
                                            int target);
  std::unique_ptr<rpc::RemoteHam> NewClient(const std::string& client_host,
                                            int target,
                                            rpc::RemoteHam::Options base);

  // Replication ------------------------------------------------------
  // Starts (or re-points) follower `i`'s tail loop against `primary`.
  // The cycle chain lives on the virtual clock until the follower is
  // promoted, crashed, or stopped.
  void StartReplication(int follower, int primary);
  void StopReplication(int follower);
  bool ReplicationActive(int follower) const;
  bool ReplicationCaughtUp(int follower) const;
  rpc::Replicator* replicator(int follower);

  // Failure injection -----------------------------------------------
  void Partition(int a, int b);
  void HealPartition(int a, int b);
  // Power-cuts the node; its replication link (if any) dies with it.
  void CrashNode(int i);
  void RestartNode(int i, bool as_follower);
  // In-process promotion (the operator's failover action). Returns the
  // new fencing term.
  Result<uint64_t> Promote(int i);

  // Invariants -------------------------------------------------------
  // Structural fsck of the graph on node `i` (empty = clean).
  Result<std::vector<std::string>> FsckNode(int i, ham::ProjectId project);
  // The node's local replication position (term/epoch/wal_bytes).
  Result<ham::ReplNodeStatus> NodeReplStatus(int i);

 private:
  struct ReplLink {
    std::unique_ptr<rpc::RemoteHam> client;
    std::unique_ptr<rpc::Replicator> replicator;
    uint64_t generation = 0;
    bool active = false;
  };

  void PumpReplication(int follower, uint64_t generation);

  Env* const base_env_;
  const SimClusterOptions options_;
  // Declaration order is destruction order in reverse: replication
  // links go first (their streams detach from the network), then
  // nodes, then the network, then the clock.
  SimClock clock_;
  SimNetwork net_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::map<int, ReplLink> repl_;
  uint64_t next_generation_ = 1;
  int clients_made_ = 0;
};

}  // namespace sim
}  // namespace neptune

#endif  // NEPTUNE_SIM_SIM_CLUSTER_H_

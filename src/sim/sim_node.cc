#include "sim/sim_node.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/metrics.h"
#include "rpc/wire.h"

namespace neptune {
namespace sim {

SimNode::SimNode(SimClock* clock, SimNetwork* net, Env* base_env,
                 Options options)
    : clock_(clock), net_(net), options_(std::move(options)) {
  env_ = std::make_unique<FaultInjectionEnv>(base_env, options_.seed);
  StartEngine(options_.follower);
}

SimNode::~SimNode() {
  // Sessions die with the harness; no orderly drain (the clock may
  // already be torn down by the time nodes are destroyed).
}

void SimNode::StartEngine(bool as_follower) {
  ham::HamOptions ham_options;
  ham_options.follower_mode = as_follower;
  ham_options.txn_lease_ms = options_.txn_lease_ms;
  ham_options.checkpoint_wal_bytes = options_.checkpoint_wal_bytes;
  ham_options.repl_keep_wal_generations = options_.repl_keep_wal_generations;
  ham_options.machine = "";  // accept any machine name
  // Determinism: virtual clock everywhere, watchdog driven by sim
  // ticks, project ids from the node's seed.
  ham_options.time_source = clock_;
  ham_options.manual_lease_sweep = true;
  ham_options.project_id_seed = options_.seed * 2654435761ull + 1;
  ham_ = std::make_unique<ham::Ham>(env_.get(), ham_options);
  dispatcher_ = std::make_unique<rpc::RequestDispatcher>(ham_.get());
  up_ = true;
  net_->Listen(options_.name, this);
  ScheduleLeaseSweep();
}

void SimNode::ScheduleLeaseSweep() {
  if (options_.txn_lease_ms == 0 || sweep_scheduled_) return;
  sweep_scheduled_ = true;
  const uint64_t period_us =
      std::max<uint64_t>(options_.txn_lease_ms / 4, 5) * 1000;
  // One self-rescheduling chain per node, alive across crashes (it
  // just no-ops while the node is down).
  struct Chain {
    SimNode* node;
    uint64_t period_us;
    void operator()() const {
      if (node->up_ && node->ham_ != nullptr) node->ham_->SweepLeasesNow();
      node->clock_->Schedule(period_us, "lease_sweep." + node->options_.name,
                             *this);
    }
  };
  clock_->Schedule(period_us, "lease_sweep." + options_.name,
                   Chain{this, period_us});
}

void SimNode::Crash() {
  if (!up_) return;
  clock_->Note("node crash " + options_.name);
  up_ = false;
  // Power first: everything not fsynced is gone, and the engine's
  // destructor cannot sneak any last writes onto disk.
  env_->PowerCutNow();
  dispatcher_.reset();
  ham_.reset();
  conns_.clear();
  inflight_ = 0;
  net_->CrashHost(options_.name);
}

void SimNode::Restart(bool as_follower) {
  if (up_) return;
  clock_->Note("node restart " + options_.name +
               (as_follower ? " role=follower" : " role=primary"));
  env_->Restart();
  StartEngine(as_follower);
}

void SimNode::OnConnect(uint64_t conn_id) { conns_[conn_id]; }

void SimNode::OnFrame(uint64_t conn_id, std::string payload) {
  if (!up_) return;
  rpc::RequestEnvelope envelope;
  std::string error_reply;
  if (!rpc::ParseRequestEnvelope(std::move(payload), /*accept_trace_context=*/
                                 true, /*accept_request_ids=*/true, &envelope,
                                 &error_reply)) {
    net_->SendToClient(conn_id, std::move(error_reply));
    return;
  }
  const std::string_view request =
      std::string_view(envelope.payload).substr(envelope.offset);
  const rpc::Method method =
      request.empty() ? rpc::Method{0}
                      : static_cast<rpc::Method>(
                            static_cast<uint8_t>(request.front()));
  ++inflight_;
  // The request occupies the server for service_time_us of virtual
  // time; the reply is computed (and admission judged) at completion,
  // with every request admitted in the window still counted — that is
  // what lets the retry-storm scenario actually shed.
  clock_->Schedule(
      options_.service_time_us,
      "svc." + options_.name + "." + rpc::MethodName(method),
      [this, conn_id, method, envelope = std::move(envelope)]() mutable {
        const int inflight = inflight_;
        --inflight_;
        if (!up_) return;
        auto conn = conns_.find(conn_id);
        if (conn == conns_.end()) return;  // client vanished meanwhile
        std::string reply;
        if (rpc::ShouldShed(method, inflight, options_.admission)) {
          NEPTUNE_METRIC_COUNT("server.shed", 1);
          reply = rpc::ShedReply(inflight, options_.retry_after_ms);
        } else {
          const std::string_view request =
              std::string_view(envelope.payload).substr(envelope.offset);
          reply = dispatcher_->Handle(request, &conn->second.sessions);
        }
        std::string framed;
        if (envelope.tagged) PutVarint64(&framed, envelope.request_id);
        framed += reply;
        net_->SendToClient(conn_id, std::move(framed));
      });
}

void SimNode::OnDisconnect(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::vector<uint64_t> sessions = it->second.sessions.Drain();
  conns_.erase(it);
  if (!up_ || ham_ == nullptr) return;
  // Same contract as the real server: a dead connection closes its
  // sessions, which aborts any open transaction.
  for (uint64_t session : sessions) {
    ham_->CloseGraph(ham::Context{session});
  }
}

}  // namespace sim
}  // namespace neptune

// SimNode: one simulated Neptune server — a Ham engine behind a
// fault-injecting filesystem, serving the production wire protocol
// over the in-memory network. The protocol work (envelope parsing,
// admission control, method dispatch, session cleanup on disconnect)
// is the same code the real epoll server runs (rpc/dispatch.h); only
// the event loop is different: frames arrive as SimClock events and
// each request completes after a configurable virtual service time, so
// admission control sees genuine request pileups.
//
// Crash() models a power cut: the node's FaultInjectionEnv drops every
// un-fsynced byte, all its connections die without callbacks into the
// dead node, and the host stops listening. Restart() brings the same
// directory back up (optionally as a follower), exactly like a machine
// rebooting into whatever the cut left on disk.

#ifndef NEPTUNE_SIM_SIM_NODE_H_
#define NEPTUNE_SIM_SIM_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "ham/ham.h"
#include "rpc/dispatch.h"
#include "storage/fault_injection_env.h"
#include "sim/sim_clock.h"
#include "sim/sim_transport.h"

namespace neptune {
namespace sim {

class SimNode : public SimNetwork::Endpoint {
 public:
  struct Options {
    std::string name;       // host name on the simulated network
    std::string directory;  // graph root on the (real) filesystem
    uint64_t seed = 1;      // fault schedule + project-id derivation
    bool follower = false;
    // Lease watchdog: swept from the virtual clock every lease/4.
    uint64_t txn_lease_ms = 0;
    // Virtual time each request occupies the server; admission control
    // counts requests between arrival and completion.
    uint64_t service_time_us = 200;
    rpc::AdmissionOptions admission;
    uint32_t retry_after_ms = 50;
    // Passed through to HamOptions.
    uint64_t checkpoint_wal_bytes = 8ull << 20;
    uint32_t repl_keep_wal_generations = 1;
  };

  SimNode(SimClock* clock, SimNetwork* net, Env* base_env, Options options);
  ~SimNode() override;

  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  const std::string& name() const { return options_.name; }
  bool up() const { return up_; }
  ham::Ham* ham() { return ham_.get(); }
  FaultInjectionEnv* env() { return env_.get(); }

  // Power cut: un-synced bytes are gone, connections reset, host off
  // the network. Safe to call twice.
  void Crash();
  // Reboot over whatever the crash left on disk. `as_follower`
  // overrides the role (a promoted-then-crashed node restarts primary).
  void Restart(bool as_follower);

  // SimNetwork::Endpoint --------------------------------------------
  void OnConnect(uint64_t conn_id) override;
  void OnFrame(uint64_t conn_id, std::string payload) override;
  void OnDisconnect(uint64_t conn_id) override;

 private:
  struct ConnState {
    rpc::SessionSet sessions;
  };

  void StartEngine(bool as_follower);
  void ScheduleLeaseSweep();

  SimClock* const clock_;
  SimNetwork* const net_;
  const Options options_;
  std::unique_ptr<FaultInjectionEnv> env_;
  std::unique_ptr<ham::Ham> ham_;
  std::unique_ptr<rpc::RequestDispatcher> dispatcher_;
  std::map<uint64_t, ConnState> conns_;
  int inflight_ = 0;
  bool up_ = false;
  bool sweep_scheduled_ = false;
};

}  // namespace sim
}  // namespace neptune

#endif  // NEPTUNE_SIM_SIM_NODE_H_

#include "sim/sim_clock.h"

#include "common/crc32c.h"

namespace neptune {
namespace sim {

uint64_t SimClock::Schedule(uint64_t delay_us, std::string label,
                            std::function<void()> fn) {
  const uint64_t seq = next_seq_++;
  const std::pair<uint64_t, uint64_t> key{now_us_ + delay_us, seq};
  queue_.emplace(key, Event{std::move(label), std::move(fn)});
  by_id_[seq] = key;
  return seq;
}

void SimClock::Cancel(uint64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  queue_.erase(it->second);
  by_id_.erase(it);
}

uint64_t SimClock::NextDueMicros() const {
  return queue_.empty() ? ~0ull : queue_.begin()->first.first;
}

bool SimClock::RunOne() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  const uint64_t due = it->first.first;
  const uint64_t seq = it->first.second;
  // Move the event out before running it: the body may schedule or
  // cancel other events, invalidating iterators.
  Event event = std::move(it->second);
  queue_.erase(it);
  by_id_.erase(seq);
  if (due > now_us_) now_us_ = due;
  ++events_run_;
  Note("t=" + std::to_string(now_us_) + " ev=" + event.label);
  event.fn();
  return true;
}

void SimClock::RunUntil(uint64_t deadline_us) {
  // An event body may pump the clock itself (nested RunUntil), so
  // re-check both the clock and the queue head every iteration.
  while (!queue_.empty() && queue_.begin()->first.first <= deadline_us) {
    RunOne();
  }
  if (now_us_ < deadline_us) now_us_ = deadline_us;
}

void SimClock::Note(std::string_view line) {
  hash_ = crc32c::Extend(hash_, line);
  hash_ = crc32c::Extend(hash_, "\n");
  if (record_) trace_.emplace_back(line);
}

}  // namespace sim
}  // namespace neptune

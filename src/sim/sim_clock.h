// SimClock: the discrete-event heart of the deterministic cluster
// simulation (ROADMAP robustness track). One virtual clock plus one
// ordered event queue drive every node, client, and network link in a
// single thread — the simh/FoundationDB discipline: nothing in the
// simulated world reads real time or really sleeps, so a scenario that
// covers minutes of simulated failures runs in milliseconds and
// replays bit-for-bit from its seed.
//
// The clock implements TimeSource (common/clock.h), so the production
// components that take an injectable clock — Ham lease tracking,
// RemoteHam retry backoff, Replicator pacing, the server's idle reaper
// — run unmodified on virtual time. SleepMicros() is cooperative: it
// pumps every event due inside the sleep window (this is how "blocked"
// components let the rest of the cluster make progress), then advances
// the clock to the wake-up instant.
//
// Every event execution is folded into a running CRC32C trace hash,
// together with explicit Note() lines from the harness. Two runs of
// the same scenario with the same seed must produce identical hashes;
// the determinism test in tests/sim asserts exactly that.

#ifndef NEPTUNE_SIM_SIM_CLOCK_H_
#define NEPTUNE_SIM_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace neptune {
namespace sim {

class SimClock : public TimeSource {
 public:
  // The epoch is arbitrary but non-zero so "0" can keep meaning
  // "never" in timestamps that use that convention.
  explicit SimClock(uint64_t start_us = 1'000'000'000ull)
      : now_us_(start_us) {}

  // TimeSource ------------------------------------------------------
  uint64_t NowMicros() override { return now_us_; }
  // Cooperative sleep: runs every queued event due within the window,
  // then sets the clock to the wake-up instant.
  void SleepMicros(uint64_t micros) override { RunUntil(now_us_ + micros); }

  // Event queue -----------------------------------------------------
  // Schedules `fn` to run at now + delay_us. Events at the same
  // instant run in scheduling order. `label` names the event in the
  // trace hash, so it must be stable run-to-run (no pointers, no real
  // timestamps). Returns an id usable with Cancel().
  uint64_t Schedule(uint64_t delay_us, std::string label,
                    std::function<void()> fn);
  // Drops a scheduled event; no-op if it already ran or never existed.
  void Cancel(uint64_t id);

  bool HasPending() const { return !queue_.empty(); }
  // Due instant of the earliest pending event; ~0 when idle.
  uint64_t NextDueMicros() const;

  // Advances to the next event and runs it. False when idle.
  bool RunOne();
  // Runs every event due at or before `deadline_us` (absolute), then
  // advances the clock to the deadline. Events may schedule further
  // events inside the window; they run too. Reentrant: an event may
  // itself pump the clock (that is how a blocked RecvFrame waits).
  void RunUntil(uint64_t deadline_us);

  // Trace hashing ---------------------------------------------------
  // Folds a harness-visible fact into the determinism hash (and into
  // the recorded trace when recording is on).
  void Note(std::string_view line);
  uint32_t trace_hash() const { return hash_; }
  uint64_t events_run() const { return events_run_; }
  // Recording keeps every hashed line for divergence diagnosis.
  void set_record_trace(bool on) { record_ = on; }
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  struct Event {
    std::string label;
    std::function<void()> fn;
  };

  // Keyed by (due, seq): strict total order, FIFO within an instant.
  std::map<std::pair<uint64_t, uint64_t>, Event> queue_;
  // seq -> queue key, for Cancel.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> by_id_;
  uint64_t now_us_;
  uint64_t next_seq_ = 1;
  uint64_t events_run_ = 0;
  uint32_t hash_ = 0;
  bool record_ = false;
  std::vector<std::string> trace_;
};

}  // namespace sim
}  // namespace neptune

#endif  // NEPTUNE_SIM_SIM_CLOCK_H_

// Trails — the memex feature the paper calls out (§2.2): "As a
// hypertext reader follows link after link ... he or she may want to
// keep a trail of which links were followed. This trail allows other
// readers to follow the same path and makes it easier to resume
// reading a document after a diversion has been followed."
//
// A trail is itself hypertext: a node (document=trails) whose contents
// record the visited steps one per line, with a `followsTrail` link to
// each visited node at the step's ordinal position — so trails are
// versioned, queryable and browsable like everything else.

#ifndef NEPTUNE_APP_TRAIL_H_
#define NEPTUNE_APP_TRAIL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

struct TrailStep {
  ham::NodeIndex node = 0;  // the node the reader visited
  ham::LinkIndex via = 0;   // the link followed to get there (0 = jump)
};

class TrailRecorder {
 public:
  TrailRecorder(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  Status Init();

  // Creates an empty trail named `name`; the first step is usually the
  // node the reader started at.
  Result<ham::NodeIndex> StartTrail(const std::string& name);

  // Appends a step (atomically: contents line + followsTrail link).
  Status RecordStep(ham::NodeIndex trail, const TrailStep& step);

  // The steps of `trail` at `time` (0 = now), in visit order — another
  // reader "follows the same path" by walking this.
  Result<std::vector<TrailStep>> Replay(ham::NodeIndex trail, ham::Time time);

  // Where to resume: the last step, or NotFound for an empty trail.
  Result<TrailStep> Resume(ham::NodeIndex trail);

  // All trail nodes in the graph (document = trails).
  Result<std::vector<ham::NodeIndex>> ListTrails();

  // Human-readable rendering (a trail browser pane).
  Result<std::string> Render(ham::NodeIndex trail, ham::Time time);

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
  ham::AttributeIndex icon_ = 0;
  ham::AttributeIndex document_ = 0;
  ham::AttributeIndex relation_ = 0;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_TRAIL_H_

// The CASE application layer of paper §4.2: a Modula-2-flavoured
// software-engineering environment on top of the HAM.
//
// Conventions (verbatim from the paper):
//   contentType  "Modula-2 source" | "Modula-2 object code" | text...
//   codeType     definitionModule | implementationModule | procedure
//   relation     isPartOf | imports | compilesInto | annotates
//
// The "compiler integrated with hypertext" is simulated: object code
// is a deterministic digest of the source text, stored in its own node
// and linked from the source by a compilesInto link. The incremental
// rebuild rule is the real one — recompile exactly the source nodes
// whose contents version is newer than their object node's — and the
// paper's §5 demon example ("invoking an incremental compiler when a
// node which contains code is modified") is implemented with a real
// node demon.

#ifndef NEPTUNE_APP_CASE_MODEL_H_
#define NEPTUNE_APP_CASE_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ham/ham.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

struct CaseConventions {
  static constexpr char kSourceType[] = "Modula-2 source";
  static constexpr char kObjectType[] = "Modula-2 object code";
  static constexpr char kDefinitionModule[] = "definitionModule";
  static constexpr char kImplementationModule[] = "implementationModule";
  static constexpr char kProcedure[] = "procedure";
  static constexpr char kImports[] = "imports";
  static constexpr char kCompilesInto[] = "compilesInto";
};

struct CompileReport {
  size_t compiled = 0;     // object nodes (re)generated
  size_t up_to_date = 0;   // sources whose object code was current
};

class CaseModel {
 public:
  CaseModel(ham::HamInterface* ham, ham::Context ctx) : ham_(ham), ctx_(ctx) {}

  Status Init();

  // A module source node (codeType definitionModule or
  // implementationModule), named `name` via the icon attribute.
  Result<ham::NodeIndex> AddModule(const std::string& name,
                                   const std::string& code_type,
                                   const std::string& source);

  // A procedure node nested in `module` (isPartOf link at `position`).
  Result<ham::NodeIndex> AddProcedure(ham::NodeIndex module,
                                      const std::string& name,
                                      const std::string& source,
                                      uint64_t position);

  // Records that `importer` imports `imported` (imports link at the
  // import list's `position` in the source text).
  Status AddImport(ham::NodeIndex importer, ham::NodeIndex imported,
                   uint64_t position);

  // Replaces a source node's text.
  Status EditSource(ham::NodeIndex node, const std::string& source);

  // Incremental build over every source node in the graph: recompiles
  // exactly the sources whose contents changed since their object code
  // was produced.
  Result<CompileReport> CompileAll();

  // Compiles one source node (unconditionally); creates the object
  // node + compilesInto link on first compile.
  Result<ham::NodeIndex> Compile(ham::NodeIndex source);

  // Object-code node of `source`, or NotFound if never compiled.
  Result<ham::NodeIndex> ObjectCodeOf(ham::NodeIndex source);

  // True iff the object code is missing or older than the source.
  Result<bool> NeedsRecompile(ham::NodeIndex source);

  // Arms the §5 demon: any modifyNode on `source` recompiles it.
  // `registry` is the engine's demon registry (local deployments) —
  // InstallCompileDemonHandler must have been called on it.
  Status EnableAutoCompile(ham::NodeIndex source);

  // Registers the "compile" demon callback that EnableAutoCompile's
  // bindings invoke. Call once per engine.
  void InstallCompileDemonHandler(ham::DemonRegistry* registry);

  // All procedure nodes nested in `module`, in offset order.
  Result<std::vector<ham::NodeIndex>> ProceduresOf(ham::NodeIndex module);

  // All modules whose import lists reference `module`.
  Result<std::vector<ham::NodeIndex>> ImportersOf(ham::NodeIndex module);

  // The deterministic "object code" for a source text (exposed so
  // tests can assert compilation output).
  static std::string FakeObjectCode(const std::string& source);

  ham::AttributeIndex content_type_attr() const { return content_type_; }
  ham::AttributeIndex code_type_attr() const { return code_type_; }
  ham::AttributeIndex relation_attr() const { return relation_; }
  ham::AttributeIndex icon_attr() const { return icon_; }

 private:
  Result<ham::NodeIndex> AddSourceNode(const std::string& name,
                                       const std::string& code_type,
                                       const std::string& source);

  ham::HamInterface* ham_;
  ham::Context ctx_;
  ham::AttributeIndex content_type_ = 0;
  ham::AttributeIndex code_type_ = 0;
  ham::AttributeIndex relation_ = 0;
  ham::AttributeIndex icon_ = 0;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_CASE_MODEL_H_

#include "app/browsers/canvas.h"

#include <algorithm>

namespace neptune {
namespace app {

void TextCanvas::Put(int x, int y, char c) {
  if (x < 0 || y < 0) return;
  if (y >= static_cast<int>(rows_.size())) {
    rows_.resize(static_cast<size_t>(y) + 1);
  }
  std::string& row = rows_[static_cast<size_t>(y)];
  if (x >= static_cast<int>(row.size())) {
    row.resize(static_cast<size_t>(x) + 1, ' ');
  }
  row[static_cast<size_t>(x)] = c;
}

void TextCanvas::DrawText(int x, int y, std::string_view text) {
  for (size_t i = 0; i < text.size(); ++i) {
    Put(x + static_cast<int>(i), y, text[i]);
  }
}

void TextCanvas::DrawHLine(int x1, int x2, int y, char c) {
  if (x1 > x2) std::swap(x1, x2);
  for (int x = x1; x <= x2; ++x) Put(x, y, c);
}

void TextCanvas::DrawVLine(int x, int y1, int y2, char c) {
  if (y1 > y2) std::swap(y1, y2);
  for (int y = y1; y <= y2; ++y) Put(x, y, c);
}

int TextCanvas::DrawBox(int x, int y, std::string_view text) {
  const int w = BoxWidth(text);
  Put(x, y, '+');
  DrawHLine(x + 1, x + w - 2, y, '-');
  Put(x + w - 1, y, '+');
  Put(x, y + 1, '|');
  Put(x + 1, y + 1, ' ');
  DrawText(x + 2, y + 1, text);
  Put(x + w - 2, y + 1, ' ');
  Put(x + w - 1, y + 1, '|');
  Put(x, y + 2, '+');
  DrawHLine(x + 1, x + w - 2, y + 2, '-');
  Put(x + w - 1, y + 2, '+');
  return w;
}

int TextCanvas::width() const {
  int w = 0;
  for (const auto& row : rows_) w = std::max(w, static_cast<int>(row.size()));
  return w;
}

std::string TextCanvas::ToString() const {
  std::string out;
  for (const auto& row : rows_) {
    size_t end = row.find_last_not_of(' ');
    if (end == std::string::npos) {
      out.push_back('\n');
    } else {
      out.append(row, 0, end + 1);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace app
}  // namespace neptune

#include "app/browsers/inspect_browsers.h"

namespace neptune {
namespace app {

Result<std::string> VersionBrowser::Render(ham::NodeIndex node) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::NodeVersions versions,
                           ham_->GetNodeVersions(ctx_, node));
  std::string out = "Version Browser - node " + std::to_string(node) + "\n";
  out += "major versions (contents updates):\n";
  for (const ham::VersionEntry& v : versions.major) {
    out += "  t=" + std::to_string(v.time);
    if (!v.explanation.empty()) out += "  " + v.explanation;
    out += "\n";
  }
  if (versions.minor.empty()) {
    out += "minor versions: (none)\n";
  } else {
    out += "minor versions (structure/attribute updates):\n";
    for (const ham::VersionEntry& v : versions.minor) {
      out += "  t=" + std::to_string(v.time);
      if (!v.explanation.empty()) out += "  " + v.explanation;
      out += "\n";
    }
  }
  return out;
}

Result<std::string> AttributeBrowser::RenderGraph(ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::AttributeEntry> attrs,
                           ham_->GetAttributes(ctx_, time));
  std::string out = "Attribute Browser - graph";
  if (time != 0) out += " @ t=" + std::to_string(time);
  out += "\n";
  for (const ham::AttributeEntry& attr : attrs) {
    out += "  " + attr.name + " (#" + std::to_string(attr.index) + "):";
    NEPTUNE_ASSIGN_OR_RETURN(std::vector<std::string> values,
                             ham_->GetAttributeValues(ctx_, attr.index, time));
    if (values.empty()) {
      out += " (no values)";
    } else {
      for (const std::string& value : values) {
        out += " '" + value + "'";
      }
    }
    out += "\n";
  }
  return out;
}

Result<std::string> AttributeBrowser::RenderNode(ham::NodeIndex node,
                                                 ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::AttributeValueEntry> attrs,
                           ham_->GetNodeAttributes(ctx_, node, time));
  std::string out = "Attribute Browser - node " + std::to_string(node);
  if (time != 0) out += " @ t=" + std::to_string(time);
  out += "\n";
  for (const ham::AttributeValueEntry& attr : attrs) {
    out += "  " + attr.name + " = '" + attr.value + "'\n";
  }
  if (attrs.empty()) out += "  (no attributes attached)\n";
  return out;
}

Result<std::string> AttributeBrowser::RenderLink(ham::LinkIndex link,
                                                 ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::AttributeValueEntry> attrs,
                           ham_->GetLinkAttributes(ctx_, link, time));
  std::string out = "Attribute Browser - link " + std::to_string(link);
  if (time != 0) out += " @ t=" + std::to_string(time);
  out += "\n";
  for (const ham::AttributeValueEntry& attr : attrs) {
    out += "  " + attr.name + " = '" + attr.value + "'\n";
  }
  if (attrs.empty()) out += "  (no attributes attached)\n";
  return out;
}

Result<std::string> DemonBrowser::Render(ham::NodeIndex node, ham::Time time) {
  std::string out = "Demon Browser";
  if (time != 0) out += " @ t=" + std::to_string(time);
  out += "\n";
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::DemonEntry> graph_demons,
                           ham_->GetGraphDemons(ctx_, time));
  out += "graph demons:\n";
  if (graph_demons.empty()) out += "  (none)\n";
  for (const ham::DemonEntry& d : graph_demons) {
    out += std::string("  on ") + ham::EventName(d.event) + ": '" + d.demon +
           "'\n";
  }
  if (node != 0) {
    NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::DemonEntry> node_demons,
                             ham_->GetNodeDemons(ctx_, node, time));
    out += "node " + std::to_string(node) + " demons:\n";
    if (node_demons.empty()) out += "  (none)\n";
    for (const ham::DemonEntry& d : node_demons) {
      out += std::string("  on ") + ham::EventName(d.event) + ": '" + d.demon +
             "'\n";
    }
  }
  return out;
}

}  // namespace app
}  // namespace neptune

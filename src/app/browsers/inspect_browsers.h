// The smaller inspection browsers the paper lists alongside the three
// primary ones: "attribute browsers, version browsers ... and demon
// browsers".

#ifndef NEPTUNE_APP_BROWSERS_INSPECT_BROWSERS_H_
#define NEPTUNE_APP_BROWSERS_INSPECT_BROWSERS_H_

#include <string>

#include "common/result.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

// Lists a node's major and minor version history.
class VersionBrowser {
 public:
  VersionBrowser(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  Result<std::string> Render(ham::NodeIndex node);

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
};

// Lists attributes: the graph's attribute definitions with their value
// sets, or one node's/link's attached values, at a given time.
class AttributeBrowser {
 public:
  AttributeBrowser(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  Result<std::string> RenderGraph(ham::Time time);
  Result<std::string> RenderNode(ham::NodeIndex node, ham::Time time);
  Result<std::string> RenderLink(ham::LinkIndex link, ham::Time time);

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
};

// Lists demon bindings for the graph and optionally one node.
class DemonBrowser {
 public:
  DemonBrowser(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  // `node` == 0 shows graph demons only.
  Result<std::string> Render(ham::NodeIndex node, ham::Time time);

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_BROWSERS_INSPECT_BROWSERS_H_

// GraphBrowser: the text-mode counterpart of Figure 1 — "a pictorial
// view of a hyperdocument or a portion of a hyperdocument. Each node
// is represented by an icon that consists of a name enclosed in a
// rectangle." Node and link visibility predicates (the figure's two
// lower-right panes) filter what is drawn.

#ifndef NEPTUNE_APP_BROWSERS_GRAPH_BROWSER_H_
#define NEPTUNE_APP_BROWSERS_GRAPH_BROWSER_H_

#include <string>

#include "common/result.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

struct GraphBrowserOptions {
  // Visibility predicates (empty = everything).
  std::string node_predicate;
  std::string link_predicate;
  // Version of the hypergraph to draw (0 = current).
  ham::Time time = 0;
  // Zoom: nodes beyond this BFS depth from the roots are elided.
  int max_depth = 16;
};

class GraphBrowser {
 public:
  GraphBrowser(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  // Draws the sub-graph selected by the predicates: boxes named by the
  // `icon` attribute, arranged left-to-right by BFS depth, with edges
  // as elbow connectors.
  Result<std::string> Render(const GraphBrowserOptions& options);

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_BROWSERS_GRAPH_BROWSER_H_

// TextCanvas: a 2D character buffer the text-mode browsers draw into —
// the stand-in for Neptune's Smalltalk-80 bitmap panes.

#ifndef NEPTUNE_APP_BROWSERS_CANVAS_H_
#define NEPTUNE_APP_BROWSERS_CANVAS_H_

#include <string>
#include <string_view>
#include <vector>

namespace neptune {
namespace app {

class TextCanvas {
 public:
  // Puts one character, growing the canvas as needed. Negative
  // coordinates are ignored.
  void Put(int x, int y, char c);

  void DrawText(int x, int y, std::string_view text);
  void DrawHLine(int x1, int x2, int y, char c = '-');
  void DrawVLine(int x, int y1, int y2, char c = '|');

  // A box with `text` centered inside: +------+ / | text | / +------+.
  // Returns the box width.
  int DrawBox(int x, int y, std::string_view text);

  static int BoxWidth(std::string_view text) {
    return static_cast<int>(text.size()) + 4;
  }
  static constexpr int kBoxHeight = 3;

  int width() const;
  int height() const { return static_cast<int>(rows_.size()); }

  // The canvas as text, trailing spaces trimmed per line.
  std::string ToString() const;

 private:
  std::vector<std::string> rows_;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_BROWSERS_CANVAS_H_

// DocumentBrowser: the text-mode counterpart of Figure 2 — "five
// panes: the four upper panes contain lists of names of nodes, the
// lower pane is a node browser ... The node-list in the upper-left
// pane is formed by executing a getGraphQuery HAM operation. The
// node-list in each pane to the right is formed by accessing the
// immediate descendents of the selected node in the left adjacent
// pane via the linearizeGraph HAM operation."

#ifndef NEPTUNE_APP_BROWSERS_DOCUMENT_BROWSER_H_
#define NEPTUNE_APP_BROWSERS_DOCUMENT_BROWSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

struct DocumentBrowserOptions {
  // Predicate for the upper-left pane's getGraphQuery.
  std::string query_predicate;
  // Selected row (0-based) in each pane, left to right; panes beyond
  // the selection path stay empty. Selecting in pane k populates pane
  // k+1 with the selection's immediate descendants. The selection path
  // may be longer than the four visible panes — see pane_offset.
  std::vector<size_t> selection;
  // "Commands are available to shift the panes in order to view deeply
  // nested hierarchies": the first `pane_offset` levels of the
  // selection path are scrolled out of view to the left.
  size_t pane_offset = 0;
  ham::Time time = 0;
};

class DocumentBrowser {
 public:
  DocumentBrowser(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  Result<std::string> Render(const DocumentBrowserOptions& options);

 private:
  // Immediate isPartOf descendants of `node`, in offset order.
  Result<std::vector<ham::NodeIndex>> ChildrenOf(ham::NodeIndex node,
                                                 ham::Time time);

  ham::HamInterface* ham_;
  ham::Context ctx_;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_BROWSERS_DOCUMENT_BROWSER_H_

#include "app/browsers/graph_browser.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "app/browsers/canvas.h"
#include "app/document.h"

namespace neptune {
namespace app {

namespace {

constexpr int kColumnGap = 7;
constexpr int kRowGap = 1;

}  // namespace

Result<std::string> GraphBrowser::Render(const GraphBrowserOptions& options) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::AttributeIndex icon,
                           ham_->GetAttributeIndex(ctx_, Conventions::kIcon));
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::SubGraph graph,
      ham_->GetGraphQuery(ctx_, options.time, options.node_predicate,
                          options.link_predicate, {icon}, {}));

  // Titles.
  std::map<ham::NodeIndex, std::string> title;
  for (const auto& node : graph.nodes) {
    title[node.node] = (!node.attribute_values.empty() &&
                        node.attribute_values[0].has_value())
                           ? *node.attribute_values[0]
                           : "#" + std::to_string(node.node);
  }

  // Adjacency and BFS layering from the in-degree-0 roots.
  std::map<ham::NodeIndex, std::vector<ham::NodeIndex>> out_edges;
  std::map<ham::NodeIndex, int> in_degree;
  for (const auto& node : graph.nodes) in_degree[node.node] = 0;
  for (const auto& link : graph.links) {
    out_edges[link.from].push_back(link.to);
    in_degree[link.to]++;
  }
  std::map<ham::NodeIndex, int> depth;
  std::deque<ham::NodeIndex> frontier;
  for (const auto& node : graph.nodes) {
    if (in_degree[node.node] == 0) {
      depth[node.node] = 0;
      frontier.push_back(node.node);
    }
  }
  if (frontier.empty() && !graph.nodes.empty()) {
    // Pure cycle: anchor at the lowest index.
    depth[graph.nodes.front().node] = 0;
    frontier.push_back(graph.nodes.front().node);
  }
  while (!frontier.empty()) {
    const ham::NodeIndex n = frontier.front();
    frontier.pop_front();
    for (ham::NodeIndex target : out_edges[n]) {
      if (depth.count(target) != 0) continue;
      depth[target] = std::min(depth[n] + 1, options.max_depth);
      frontier.push_back(target);
    }
  }
  for (const auto& node : graph.nodes) {
    depth.emplace(node.node, 0);  // disconnected leftovers
  }

  // Column layout: x offset per depth from the widest title in it.
  std::map<int, int> column_width;
  std::map<int, int> column_count;
  for (const auto& [n, d] : depth) {
    column_width[d] =
        std::max(column_width[d], TextCanvas::BoxWidth(title[n]));
    column_count[d]++;
  }
  std::map<int, int> column_x;
  int x = 0;
  for (const auto& [d, w] : column_width) {
    column_x[d] = x;
    x += w + kColumnGap;
  }

  // Row assignment within each column, in node-index order.
  std::map<ham::NodeIndex, std::pair<int, int>> box_at;  // node -> (x, y)
  std::map<int, int> next_row;
  TextCanvas canvas;
  canvas.DrawText(0, 0, "Graph Browser");
  const int top = 2;
  for (const auto& node : graph.nodes) {
    const int d = depth[node.node];
    const int row = next_row[d]++;
    const int bx = column_x[d];
    const int by = top + row * (TextCanvas::kBoxHeight + kRowGap);
    box_at[node.node] = {bx, by};
    canvas.DrawBox(bx, by, title[node.node]);
  }

  // Edges: elbow connectors from the source box's right edge to the
  // target box's left edge.
  for (const auto& link : graph.links) {
    auto sit = box_at.find(link.from);
    auto tit = box_at.find(link.to);
    if (sit == box_at.end() || tit == box_at.end()) continue;
    const auto [sx, sy] = sit->second;
    const auto [tx, ty] = tit->second;
    const int from_x = sx + TextCanvas::BoxWidth(title[link.from]) - 1;
    const int from_y = sy + 1;  // box center row
    const int to_x = tx;
    const int to_y = ty + 1;
    if (to_x > from_x) {
      const int mid = from_x + (to_x - from_x) / 2;
      canvas.DrawHLine(from_x + 1, mid, from_y, '-');
      if (from_y != to_y) {
        canvas.DrawVLine(mid, std::min(from_y, to_y), std::max(from_y, to_y),
                         '|');
        canvas.Put(mid, from_y, '+');
        canvas.Put(mid, to_y, '+');
      }
      canvas.DrawHLine(mid + 1, to_x - 2, to_y, '-');
      canvas.Put(to_x - 1, to_y, '>');
    } else {
      // Back edge (cycle): route under everything.
      const int lane = canvas.height() + 1;
      canvas.DrawVLine(from_x + 2, from_y, lane, '|');
      canvas.DrawHLine(std::min(from_x + 2, to_x - 2),
                       std::max(from_x + 2, to_x - 2), lane, '-');
      canvas.DrawVLine(to_x - 2, to_y, lane, '|');
      canvas.Put(to_x - 1, to_y, '>');
    }
  }

  // The figure's lower panes: the visibility predicates in effect.
  std::string out = canvas.ToString();
  out += "\n";
  out += "node visibility: " + (options.node_predicate.empty()
                                    ? std::string("true")
                                    : options.node_predicate) +
         "\n";
  out += "link visibility: " + (options.link_predicate.empty()
                                    ? std::string("true")
                                    : options.link_predicate) +
         "\n";
  return out;
}

}  // namespace app
}  // namespace neptune

#include "app/browsers/document_browser.h"

#include <algorithm>

#include "app/browsers/node_browser.h"
#include "app/document.h"

namespace neptune {
namespace app {

namespace {

constexpr size_t kPaneCount = 4;
constexpr size_t kPaneWidth = 20;
constexpr size_t kPaneRows = 8;

std::string Cell(const std::string& text) {
  std::string out = text.substr(0, kPaneWidth - 2);
  out.resize(kPaneWidth - 2, ' ');
  return out;
}

}  // namespace

Result<std::vector<ham::NodeIndex>> DocumentBrowser::ChildrenOf(
    ham::NodeIndex node, ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::AttributeIndex relation,
                           ham_->GetAttributeIndex(ctx_, Conventions::kRelation));
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                           ham_->OpenNode(ctx_, node, time, {}));
  struct Child {
    uint64_t position;
    ham::LinkIndex link;
    ham::NodeIndex node;
  };
  std::vector<Child> children;
  for (const ham::Attachment& att : opened.attachments) {
    if (!att.is_source_end) continue;
    Result<std::string> rel =
        ham_->GetLinkAttributeValue(ctx_, att.link, relation, time);
    if (!rel.ok() || *rel != Conventions::kIsPartOf) continue;
    NEPTUNE_ASSIGN_OR_RETURN(ham::LinkEndResult end,
                             ham_->GetToNode(ctx_, att.link, time));
    children.push_back(Child{att.position, att.link, end.node});
  }
  std::sort(children.begin(), children.end(),
            [](const Child& a, const Child& b) {
              return a.position != b.position ? a.position < b.position
                                              : a.link < b.link;
            });
  std::vector<ham::NodeIndex> out;
  out.reserve(children.size());
  for (const Child& c : children) out.push_back(c.node);
  return out;
}

Result<std::string> DocumentBrowser::Render(
    const DocumentBrowserOptions& options) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::AttributeIndex icon,
                           ham_->GetAttributeIndex(ctx_, Conventions::kIcon));

  auto title_of = [&](ham::NodeIndex node) {
    Result<std::string> title =
        ham_->GetNodeAttributeValue(ctx_, node, icon, options.time);
    return title.ok() ? *title : "#" + std::to_string(node);
  };

  // Level 0: getGraphQuery with the user's predicate; each further
  // level holds the immediate descendants of the selection above it.
  // The selection path may run deeper than the four visible panes.
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::SubGraph queried,
      ham_->GetGraphQuery(ctx_, options.time, options.query_predicate, "",
                          {}, {}));
  std::vector<std::vector<ham::NodeIndex>> levels(1);
  for (const auto& node : queried.nodes) levels[0].push_back(node.node);

  ham::NodeIndex selected = 0;
  for (size_t level = 0; level < options.selection.size(); ++level) {
    if (level >= levels.size()) break;
    const size_t row = options.selection[level];
    if (row >= levels[level].size()) break;
    selected = levels[level][row];
    NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::NodeIndex> children,
                             ChildrenOf(selected, options.time));
    levels.push_back(std::move(children));
  }

  // The four visible panes start at pane_offset (pane shifting).
  std::vector<std::vector<ham::NodeIndex>> panes(kPaneCount);
  for (size_t pane = 0; pane < kPaneCount; ++pane) {
    const size_t level = options.pane_offset + pane;
    if (level < levels.size()) panes[pane] = levels[level];
  }

  // Layout the four list panes.
  std::string out = "Document Browser";
  if (!options.query_predicate.empty()) {
    out += "  [" + options.query_predicate + "]";
  }
  if (options.pane_offset > 0) {
    out += "  <<shifted " + std::to_string(options.pane_offset) + ">>";
  }
  out += "\n";
  std::string rule;
  for (size_t pane = 0; pane < kPaneCount; ++pane) {
    rule += "+" + std::string(kPaneWidth - 1, '-');
  }
  rule += "+\n";
  out += rule;
  for (size_t row = 0; row < kPaneRows; ++row) {
    for (size_t pane = 0; pane < kPaneCount; ++pane) {
      out += "|";
      if (row < panes[pane].size()) {
        const size_t level = options.pane_offset + pane;
        const bool is_selected = level < options.selection.size() &&
                                 options.selection[level] == row;
        out += is_selected ? '>' : ' ';
        out += Cell(title_of(panes[pane][row]));
      } else {
        out += std::string(kPaneWidth - 1, ' ');
      }
    }
    out += "|\n";
  }
  out += rule;

  // Lower pane: a node browser on the deepest selection.
  if (selected != 0) {
    NodeBrowser node_browser(ham_, ctx_);
    NEPTUNE_ASSIGN_OR_RETURN(std::string body,
                             node_browser.Render(selected, options.time));
    out += body;
  }
  return out;
}

}  // namespace app
}  // namespace neptune

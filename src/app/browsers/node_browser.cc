#include "app/browsers/node_browser.h"

#include <algorithm>

#include "app/document.h"
#include "delta/text_diff.h"

namespace neptune {
namespace app {

namespace {

std::string TitleOf(ham::HamInterface* ham, ham::Context ctx,
                    ham::NodeIndex node, ham::AttributeIndex icon,
                    ham::Time time) {
  Result<std::string> title = ham->GetNodeAttributeValue(ctx, node, icon, time);
  return title.ok() ? *title : "#" + std::to_string(node);
}

}  // namespace

Result<std::string> NodeBrowser::Render(ham::NodeIndex node, ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::AttributeIndex icon,
                           ham_->GetAttributeIndex(ctx_, Conventions::kIcon));
  NEPTUNE_ASSIGN_OR_RETURN(ham::AttributeIndex relation,
                           ham_->GetAttributeIndex(ctx_, Conventions::kRelation));
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                           ham_->OpenNode(ctx_, node, time, {icon}));
  const std::string title =
      (!opened.attribute_values.empty() &&
       opened.attribute_values[0].has_value())
          ? *opened.attribute_values[0]
          : "#" + std::to_string(node);

  std::string header = "Node Browser - " + title;
  if (time != 0) header += " @ t=" + std::to_string(time);
  std::string out = header + "\n";
  out.append(header.size(), '=');
  out.push_back('\n');

  // Inline link icons: a "[>name]" marker at each outgoing link's
  // offset, inserted back-to-front so offsets stay valid. Link icons
  // come from the link's own `icon` attribute when attached, else the
  // target node's title, exactly like the Smalltalk node browser.
  struct Marker {
    uint64_t position;
    std::string text;
  };
  std::vector<Marker> markers;
  struct LinkRow {
    ham::LinkIndex link;
    bool outgoing;
    std::string relation;
    std::string other;
  };
  std::vector<LinkRow> rows;
  for (const ham::Attachment& att : opened.attachments) {
    LinkRow row;
    row.link = att.link;
    row.outgoing = att.is_source_end;
    Result<std::string> rel =
        ham_->GetLinkAttributeValue(ctx_, att.link, relation, time);
    row.relation = rel.ok() ? *rel : "link";
    Result<ham::LinkEndResult> other =
        att.is_source_end ? ham_->GetToNode(ctx_, att.link, time)
                          : ham_->GetFromNode(ctx_, att.link, time);
    if (other.ok()) {
      row.other = TitleOf(ham_, ctx_, other->node, icon, time);
    }
    if (att.is_source_end) {
      Result<std::string> link_icon =
          ham_->GetLinkAttributeValue(ctx_, att.link, icon, time);
      std::string name = link_icon.ok() ? *link_icon : row.other;
      markers.push_back(Marker{att.position, "[>" + name + "]"});
    }
    rows.push_back(std::move(row));
  }
  std::sort(markers.begin(), markers.end(),
            [](const Marker& a, const Marker& b) {
              return a.position > b.position;
            });
  std::string contents = opened.contents;
  for (const Marker& m : markers) {
    contents.insert(std::min<size_t>(m.position, contents.size()), m.text);
  }
  out += contents;
  if (out.empty() || out.back() != '\n') out.push_back('\n');

  if (!rows.empty()) {
    out += "\nlinks:\n";
    for (const LinkRow& row : rows) {
      out += "  ";
      out += row.outgoing ? "-> " : "<- ";
      out += row.relation + " " + row.other + " (link " +
             std::to_string(row.link) + ")\n";
    }
  }
  return out;
}

Result<std::string> NodeDifferencesBrowser::Render(ham::NodeIndex node,
                                                   ham::Time t1,
                                                   ham::Time t2) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult left,
                           ham_->OpenNode(ctx_, node, t1, {}));
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult right,
                           ham_->OpenNode(ctx_, node, t2, {}));
  const std::vector<std::string> old_lines =
      delta::SplitLines(left.contents);
  const std::vector<std::string> new_lines =
      delta::SplitLines(right.contents);
  const std::vector<delta::Difference> diffs =
      delta::DiffLines(left.contents, right.contents);

  constexpr size_t kCol = 34;
  auto cell = [](const std::string& text) {
    std::string out = text.substr(0, kCol);
    out.resize(kCol, ' ');
    return out;
  };

  std::string header_left = "t=" + std::to_string(t1);
  std::string header_right = "t=" + std::to_string(t2);
  std::string out = "Node Differences Browser - node " + std::to_string(node) +
                    "\n  " + cell(header_left) + " | " + header_right + "\n";
  out += "  " + std::string(kCol, '-') + "-+-" + std::string(kCol, '-') + "\n";

  size_t i = 0;  // old cursor
  size_t j = 0;  // new cursor
  size_t d = 0;  // diff cursor
  while (i < old_lines.size() || j < new_lines.size()) {
    if (d < diffs.size() && i == diffs[d].old_begin &&
        j == diffs[d].new_begin) {
      const delta::Difference& diff = diffs[d++];
      const size_t rows =
          std::max(diff.old_lines.size(), diff.new_lines.size());
      for (size_t r = 0; r < rows; ++r) {
        const std::string l =
            r < diff.old_lines.size() ? diff.old_lines[r] : "";
        const std::string rgt =
            r < diff.new_lines.size() ? diff.new_lines[r] : "";
        char tag = diff.kind == delta::DifferenceKind::kInsertion   ? '+'
                   : diff.kind == delta::DifferenceKind::kDeletion ? '-'
                                                                   : '~';
        out += tag;
        out += ' ';
        out += cell(l) + " | " + rgt + "\n";
      }
      i = diff.old_end;
      j = diff.new_end;
    } else {
      // Common line.
      const std::string l = i < old_lines.size() ? old_lines[i] : "";
      out += "  " + cell(l) + " | " + l + "\n";
      ++i;
      ++j;
    }
  }
  if (diffs.empty()) out += "  (versions are identical)\n";
  return out;
}

}  // namespace app
}  // namespace neptune

// NodeBrowser: the text-mode counterpart of Figure 3 — a node's
// contents with link icons rendered inline at their attachment
// offsets — plus the node-differences browser that "places two node
// browsers side-by-side, each viewing a specific version of a node
// with highlighting used to show differences".

#ifndef NEPTUNE_APP_BROWSERS_NODE_BROWSER_H_
#define NEPTUNE_APP_BROWSERS_NODE_BROWSER_H_

#include <string>

#include "common/result.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

class NodeBrowser {
 public:
  NodeBrowser(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  // Renders `node` at `time` (0 = current): title bar, contents with
  // inline [>icon] markers where outgoing links attach, and a trailing
  // table of the node's links.
  Result<std::string> Render(ham::NodeIndex node, ham::Time time);

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
};

class NodeDifferencesBrowser {
 public:
  NodeDifferencesBrowser(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  // Side-by-side view of `node` at `t1` (left) and `t2` (right);
  // changed lines are flagged in the gutter: '-' removed, '+' added,
  // '~' replaced.
  Result<std::string> Render(ham::NodeIndex node, ham::Time t1, ham::Time t2);

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_BROWSERS_NODE_BROWSER_H_

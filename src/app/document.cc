#include "app/document.h"

#include <map>

namespace neptune {
namespace app {

Status DocumentModel::Init() {
  NEPTUNE_ASSIGN_OR_RETURN(icon_,
                           ham_->GetAttributeIndex(ctx_, Conventions::kIcon));
  NEPTUNE_ASSIGN_OR_RETURN(
      document_, ham_->GetAttributeIndex(ctx_, Conventions::kDocument));
  NEPTUNE_ASSIGN_OR_RETURN(
      relation_, ham_->GetAttributeIndex(ctx_, Conventions::kRelation));
  return Status::OK();
}

Result<ham::NodeIndex> DocumentModel::CreateDocument(const std::string& name,
                                                     const std::string& title) {
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Result<ham::NodeIndex> result = [&]() -> Result<ham::NodeIndex> {
    NEPTUNE_ASSIGN_OR_RETURN(ham::AddNodeResult root,
                             ham_->AddNode(ctx_, /*keep_history=*/true));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, root.node, document_, name));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, root.node, icon_, title));
    return root.node;
  }();
  if (!result.ok()) {
    ham_->AbortTransaction(ctx_);
    return result.status();
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return result;
}

Result<ham::NodeIndex> DocumentModel::AddSection(ham::NodeIndex parent,
                                                 const std::string& document,
                                                 const std::string& title,
                                                 const std::string& text,
                                                 uint64_t position) {
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Result<ham::NodeIndex> result = [&]() -> Result<ham::NodeIndex> {
    NEPTUNE_ASSIGN_OR_RETURN(ham::AddNodeResult section,
                             ham_->AddNode(ctx_, true));
    NEPTUNE_RETURN_IF_ERROR(ham_->ModifyNode(
        ctx_, section.node, section.creation_time, text, {}, "created"));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, section.node, document_, document));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, section.node, icon_, title));
    NEPTUNE_ASSIGN_OR_RETURN(
        ham::AddLinkResult link,
        ham_->AddLink(ctx_, ham::LinkPt{parent, position, 0, true},
                      ham::LinkPt{section.node, 0, 0, true}));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetLinkAttributeValue(
        ctx_, link.link, relation_, Conventions::kIsPartOf));
    return section.node;
  }();
  if (!result.ok()) {
    ham_->AbortTransaction(ctx_);
    return result.status();
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return result;
}

Status DocumentModel::EditSection(ham::NodeIndex node, const std::string& text,
                                  const std::string& explanation) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult current,
                           ham_->OpenNode(ctx_, node, 0, {}));
  std::vector<ham::AttachmentUpdate> updates;
  updates.reserve(current.attachments.size());
  for (const ham::Attachment& att : current.attachments) {
    updates.push_back(ham::AttachmentUpdate{att.link, att.is_source_end,
                                            att.position});
  }
  return ham_->ModifyNode(ctx_, node, current.current_version_time, text,
                          updates, explanation);
}

Result<ham::NodeIndex> DocumentModel::Annotate(ham::NodeIndex target,
                                               uint64_t position,
                                               const std::string& text) {
  // "an annotate command creates a new node, creates a link from the
  // current cursor position to the new node, attaches attribute values
  // that distinguish the new node and link as an annotation" — one
  // transaction.
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Result<ham::NodeIndex> result = [&]() -> Result<ham::NodeIndex> {
    NEPTUNE_ASSIGN_OR_RETURN(ham::AddNodeResult note, ham_->AddNode(ctx_, true));
    NEPTUNE_RETURN_IF_ERROR(ham_->ModifyNode(ctx_, note.node,
                                             note.creation_time, text, {},
                                             "annotation"));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetNodeAttributeValue(
        ctx_, note.node, document_, "annotations"));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, note.node, icon_, "annotation"));
    NEPTUNE_ASSIGN_OR_RETURN(
        ham::AddLinkResult link,
        ham_->AddLink(ctx_, ham::LinkPt{target, position, 0, true},
                      ham::LinkPt{note.node, 0, 0, true}));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetLinkAttributeValue(
        ctx_, link.link, relation_, Conventions::kAnnotates));
    return note.node;
  }();
  if (!result.ok()) {
    ham_->AbortTransaction(ctx_);
    return result.status();
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return result;
}

Result<ham::LinkIndex> DocumentModel::AddReference(ham::NodeIndex from,
                                                   uint64_t position,
                                                   ham::NodeIndex to) {
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Result<ham::LinkIndex> result = [&]() -> Result<ham::LinkIndex> {
    NEPTUNE_ASSIGN_OR_RETURN(
        ham::AddLinkResult link,
        ham_->AddLink(ctx_, ham::LinkPt{from, position, 0, true},
                      ham::LinkPt{to, 0, 0, true}));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetLinkAttributeValue(
        ctx_, link.link, relation_, Conventions::kReferences));
    return link.link;
  }();
  if (!result.ok()) {
    ham_->AbortTransaction(ctx_);
    return result.status();
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return result;
}

std::string DocumentModel::TitleOf(ham::NodeIndex node, ham::Time time) {
  Result<std::string> icon = ham_->GetNodeAttributeValue(ctx_, node, icon_, time);
  if (icon.ok()) return *icon;
  return "#" + std::to_string(node);
}

Result<std::vector<OutlineEntry>> DocumentModel::Outline(ham::NodeIndex root,
                                                         ham::Time time) {
  // A document's structure is exactly linearizeGraph over isPartOf
  // links, projecting the icon attribute.
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::SubGraph graph,
      ham_->LinearizeGraph(ctx_, root, time, "", "relation = isPartOf",
                           {icon_}, {}));
  // Rebuild depths/numbers from the parent structure in the subgraph.
  std::vector<OutlineEntry> out;
  out.reserve(graph.nodes.size());
  // parent map from the traversed links (first incoming wins: DFS tree).
  std::map<ham::NodeIndex, ham::NodeIndex> parent;
  for (const auto& link : graph.links) {
    parent.emplace(link.to, link.from);
  }
  std::map<ham::NodeIndex, int> depth;
  std::map<ham::NodeIndex, std::string> number;
  std::map<ham::NodeIndex, int> child_counter;
  for (const auto& node : graph.nodes) {
    OutlineEntry entry;
    entry.node = node.node;
    if (!node.attribute_values.empty() &&
        node.attribute_values[0].has_value()) {
      entry.title = *node.attribute_values[0];
    } else {
      entry.title = "#" + std::to_string(node.node);
    }
    auto pit = parent.find(node.node);
    if (node.node == root || pit == parent.end()) {
      entry.depth = 0;
      entry.number = "";
    } else {
      const ham::NodeIndex p = pit->second;
      entry.depth = depth.count(p) ? depth[p] + 1 : 1;
      const int ordinal = ++child_counter[p];
      const std::string& parent_number = number[p];
      entry.number = parent_number.empty()
                         ? std::to_string(ordinal)
                         : parent_number + "." + std::to_string(ordinal);
    }
    depth[node.node] = entry.depth;
    number[node.node] = entry.number;
    out.push_back(std::move(entry));
  }
  return out;
}

Result<std::string> DocumentModel::ExtractHardcopy(ham::NodeIndex root,
                                                   ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<OutlineEntry> outline,
                           Outline(root, time));
  std::string out;
  for (const OutlineEntry& entry : outline) {
    // Heading.
    out.append(static_cast<size_t>(entry.depth) + 1, '#');
    out.push_back(' ');
    if (!entry.number.empty()) {
      out += entry.number;
      out.push_back(' ');
    }
    out += entry.title;
    out += "\n\n";
    NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult node,
                             ham_->OpenNode(ctx_, entry.node, time, {}));
    if (!node.contents.empty()) {
      out += node.contents;
      if (out.back() != '\n') out.push_back('\n');
      out.push_back('\n');
    }
  }
  return out;
}

Result<std::vector<ham::NodeIndex>> DocumentModel::AnnotationsOf(
    ham::NodeIndex node, ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                           ham_->OpenNode(ctx_, node, time, {}));
  std::vector<ham::NodeIndex> out;
  for (const ham::Attachment& att : opened.attachments) {
    if (!att.is_source_end) continue;
    Result<std::string> relation =
        ham_->GetLinkAttributeValue(ctx_, att.link, relation_, time);
    if (!relation.ok() || *relation != Conventions::kAnnotates) continue;
    NEPTUNE_ASSIGN_OR_RETURN(ham::LinkEndResult end,
                             ham_->GetToNode(ctx_, att.link, time));
    out.push_back(end.node);
  }
  return out;
}

}  // namespace app
}  // namespace neptune

#include "app/interchange.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

namespace neptune {
namespace app {

namespace {

constexpr char kHeader[] = "NEPTUNE-INTERCHANGE 1\n";

void AppendBlob(std::string* out, std::string_view blob) {
  out->append(blob);
  out->push_back('\n');
}

// Reads one text line (without the newline) from *in.
bool ReadLine(std::string_view* in, std::string_view* line) {
  size_t nl = in->find('\n');
  if (nl == std::string_view::npos) return false;
  *line = in->substr(0, nl);
  in->remove_prefix(nl + 1);
  return true;
}

// Reads `n` raw bytes followed by the separating newline.
bool ReadBlob(std::string_view* in, size_t n, std::string_view* blob) {
  if (in->size() < n + 1) return false;
  *blob = in->substr(0, n);
  if ((*in)[n] != '\n') return false;
  in->remove_prefix(n + 1);
  return true;
}

}  // namespace

Result<std::string> ExportGraph(ham::HamInterface* ham, ham::Context ctx,
                                ham::Time time) {
  std::string out = kHeader;

  // Attribute dictionary: every attribute that existed at `time`, in
  // index order; ordinals in the stream are positions in this list.
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::AttributeEntry> attrs,
                           ham->GetAttributes(ctx, time));
  std::map<ham::AttributeIndex, size_t> attr_ordinal;
  for (size_t i = 0; i < attrs.size(); ++i) {
    attr_ordinal[attrs[i].index] = i;
    out += "attribute " + std::to_string(attrs[i].name.size()) + "\n";
    AppendBlob(&out, attrs[i].name);
  }

  // Everything visible at `time`.
  NEPTUNE_ASSIGN_OR_RETURN(ham::SubGraph graph,
                           ham->GetGraphQuery(ctx, time, "", "", {}, {}));

  std::map<ham::NodeIndex, size_t> node_ordinal;
  for (const ham::SubGraphNode& node : graph.nodes) {
    NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                             ham->OpenNode(ctx, node.node, time, {}));
    node_ordinal[node.node] = node_ordinal.size();
    char header[96];
    std::snprintf(header, sizeof(header),
                  "node %" PRIu64 " 1 420 %zu\n", node.node,
                  opened.contents.size());
    out += header;
    AppendBlob(&out, opened.contents);
    NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::AttributeValueEntry> values,
                             ham->GetNodeAttributes(ctx, node.node, time));
    for (const ham::AttributeValueEntry& value : values) {
      auto ord = attr_ordinal.find(value.index);
      if (ord == attr_ordinal.end()) continue;
      std::snprintf(header, sizeof(header), "nodeattr %" PRIu64 " %zu %zu\n",
                    node.node, ord->second, value.value.size());
      out += header;
      AppendBlob(&out, value.value);
    }
  }

  size_t link_ordinal = 0;
  for (const ham::SubGraphLink& link : graph.links) {
    NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult from_open,
                             ham->OpenNode(ctx, link.from, time, {}));
    uint64_t from_pos = 0;
    uint64_t to_pos = 0;
    for (const ham::Attachment& att : from_open.attachments) {
      if (att.link == link.link && att.is_source_end) from_pos = att.position;
    }
    NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult to_open,
                             ham->OpenNode(ctx, link.to, time, {}));
    for (const ham::Attachment& att : to_open.attachments) {
      if (att.link == link.link && !att.is_source_end) to_pos = att.position;
    }
    char header[128];
    std::snprintf(header, sizeof(header),
                  "link %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                  " %" PRIu64 "\n",
                  link.link, link.from, from_pos, link.to, to_pos);
    out += header;
    NEPTUNE_ASSIGN_OR_RETURN(std::vector<ham::AttributeValueEntry> values,
                             ham->GetLinkAttributes(ctx, link.link, time));
    for (const ham::AttributeValueEntry& value : values) {
      auto ord = attr_ordinal.find(value.index);
      if (ord == attr_ordinal.end()) continue;
      std::snprintf(header, sizeof(header), "linkattr %zu %zu %zu\n",
                    link_ordinal, ord->second, value.value.size());
      out += header;
      AppendBlob(&out, value.value);
    }
    ++link_ordinal;
  }
  out += "end\n";
  return out;
}

Result<ImportReport> ImportGraph(ham::HamInterface* ham, ham::Context ctx,
                                 std::string_view data) {
  if (data.substr(0, sizeof(kHeader) - 1) != kHeader) {
    return Status::InvalidArgument("not a NEPTUNE-INTERCHANGE 1 stream");
  }
  data.remove_prefix(sizeof(kHeader) - 1);

  ImportReport report;
  std::vector<ham::AttributeIndex> attr_by_ordinal;
  std::vector<ham::LinkIndex> link_by_ordinal;
  auto corrupt = [](std::string_view what) {
    return Status::Corruption("interchange: malformed " + std::string(what));
  };

  NEPTUNE_RETURN_IF_ERROR(ham->BeginTransaction(ctx));
  Status status = [&]() -> Status {
    std::string_view line;
    while (ReadLine(&data, &line)) {
      if (line == "end") return Status::OK();
      char kind[16];
      if (std::sscanf(std::string(line).c_str(), "%15s", kind) != 1) {
        return corrupt("record");
      }
      const std::string k = kind;
      if (k == "attribute") {
        size_t len = 0;
        if (std::sscanf(std::string(line).c_str(), "attribute %zu", &len) !=
            1) {
          return corrupt("attribute");
        }
        std::string_view name;
        if (!ReadBlob(&data, len, &name)) return corrupt("attribute name");
        NEPTUNE_ASSIGN_OR_RETURN(
            ham::AttributeIndex attr,
            ham->GetAttributeIndex(ctx, std::string(name)));
        attr_by_ordinal.push_back(attr);
        ++report.attributes;
      } else if (k == "node") {
        uint64_t old_index = 0;
        int archive = 1;
        unsigned protections = 0;
        size_t len = 0;
        if (std::sscanf(std::string(line).c_str(),
                        "node %" PRIu64 " %d %u %zu", &old_index, &archive,
                        &protections, &len) != 4) {
          return corrupt("node");
        }
        std::string_view contents;
        if (!ReadBlob(&data, len, &contents)) return corrupt("node contents");
        NEPTUNE_ASSIGN_OR_RETURN(ham::AddNodeResult added,
                                 ham->AddNode(ctx, archive != 0));
        if (!contents.empty()) {
          NEPTUNE_RETURN_IF_ERROR(
              ham->ModifyNode(ctx, added.node, added.creation_time,
                              std::string(contents), {}, "imported"));
        }
        report.node_mapping[old_index] = added.node;
        ++report.nodes;
      } else if (k == "nodeattr") {
        uint64_t old_node = 0;
        size_t attr_ord = 0;
        size_t len = 0;
        if (std::sscanf(std::string(line).c_str(),
                        "nodeattr %" PRIu64 " %zu %zu", &old_node, &attr_ord,
                        &len) != 3) {
          return corrupt("nodeattr");
        }
        std::string_view value;
        if (!ReadBlob(&data, len, &value)) return corrupt("nodeattr value");
        auto node = report.node_mapping.find(old_node);
        if (node == report.node_mapping.end() ||
            attr_ord >= attr_by_ordinal.size()) {
          return corrupt("nodeattr reference");
        }
        NEPTUNE_RETURN_IF_ERROR(ham->SetNodeAttributeValue(
            ctx, node->second, attr_by_ordinal[attr_ord],
            std::string(value)));
      } else if (k == "link") {
        uint64_t old_index = 0, from = 0, from_pos = 0, to = 0, to_pos = 0;
        if (std::sscanf(std::string(line).c_str(),
                        "link %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                        " %" PRIu64,
                        &old_index, &from, &from_pos, &to, &to_pos) != 5) {
          return corrupt("link");
        }
        auto from_it = report.node_mapping.find(from);
        auto to_it = report.node_mapping.find(to);
        if (from_it == report.node_mapping.end() ||
            to_it == report.node_mapping.end()) {
          return corrupt("link endpoints");
        }
        NEPTUNE_ASSIGN_OR_RETURN(
            ham::AddLinkResult added,
            ham->AddLink(ctx, ham::LinkPt{from_it->second, from_pos, 0, true},
                         ham::LinkPt{to_it->second, to_pos, 0, true}));
        link_by_ordinal.push_back(added.link);
        ++report.links;
      } else if (k == "linkattr") {
        size_t link_ord = 0, attr_ord = 0, len = 0;
        if (std::sscanf(std::string(line).c_str(), "linkattr %zu %zu %zu",
                        &link_ord, &attr_ord, &len) != 3) {
          return corrupt("linkattr");
        }
        std::string_view value;
        if (!ReadBlob(&data, len, &value)) return corrupt("linkattr value");
        if (link_ord >= link_by_ordinal.size() ||
            attr_ord >= attr_by_ordinal.size()) {
          return corrupt("linkattr reference");
        }
        NEPTUNE_RETURN_IF_ERROR(ham->SetLinkAttributeValue(
            ctx, link_by_ordinal[link_ord], attr_by_ordinal[attr_ord],
            std::string(value)));
      } else {
        return corrupt("record kind '" + k + "'");
      }
    }
    return corrupt("stream (missing 'end')");
  }();
  if (!status.ok()) {
    ham->AbortTransaction(ctx);  // an import is all-or-nothing
    return status;
  }
  NEPTUNE_RETURN_IF_ERROR(ham->CommitTransaction(ctx));
  return report;
}

}  // namespace app
}  // namespace neptune

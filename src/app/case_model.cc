#include "app/case_model.h"

#include <cinttypes>
#include <cstdio>

#include "app/document.h"
#include "common/crc32c.h"
#include "delta/text_diff.h"

namespace neptune {
namespace app {

Status CaseModel::Init() {
  NEPTUNE_ASSIGN_OR_RETURN(
      content_type_, ham_->GetAttributeIndex(ctx_, Conventions::kContentType));
  NEPTUNE_ASSIGN_OR_RETURN(code_type_,
                           ham_->GetAttributeIndex(ctx_, "codeType"));
  NEPTUNE_ASSIGN_OR_RETURN(
      relation_, ham_->GetAttributeIndex(ctx_, Conventions::kRelation));
  NEPTUNE_ASSIGN_OR_RETURN(icon_,
                           ham_->GetAttributeIndex(ctx_, Conventions::kIcon));
  return Status::OK();
}

std::string CaseModel::FakeObjectCode(const std::string& source) {
  // A stand-in for a real code generator: stable, content-derived, and
  // visibly different from the source. Real object code would be
  // uninterpreted binary to the HAM anyway.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "OBJ crc=%08x bytes=%zu lines=%zu\n",
                crc32c::Value(source), source.size(),
                delta::SplitLines(source).size());
  return buf;
}

Result<ham::NodeIndex> CaseModel::AddSourceNode(const std::string& name,
                                                const std::string& code_type,
                                                const std::string& source) {
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Result<ham::NodeIndex> result = [&]() -> Result<ham::NodeIndex> {
    NEPTUNE_ASSIGN_OR_RETURN(ham::AddNodeResult node, ham_->AddNode(ctx_, true));
    NEPTUNE_RETURN_IF_ERROR(ham_->ModifyNode(ctx_, node.node,
                                             node.creation_time, source, {},
                                             "initial source"));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetNodeAttributeValue(
        ctx_, node.node, content_type_, CaseConventions::kSourceType));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, node.node, code_type_, code_type));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, node.node, icon_, name));
    return node.node;
  }();
  if (!result.ok()) {
    ham_->AbortTransaction(ctx_);
    return result.status();
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return result;
}

Result<ham::NodeIndex> CaseModel::AddModule(const std::string& name,
                                            const std::string& code_type,
                                            const std::string& source) {
  if (code_type != CaseConventions::kDefinitionModule &&
      code_type != CaseConventions::kImplementationModule) {
    return Status::InvalidArgument("codeType must be definitionModule or "
                                   "implementationModule, got " +
                                   code_type);
  }
  return AddSourceNode(name, code_type, source);
}

Result<ham::NodeIndex> CaseModel::AddProcedure(ham::NodeIndex module,
                                               const std::string& name,
                                               const std::string& source,
                                               uint64_t position) {
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::NodeIndex procedure,
      AddSourceNode(name, CaseConventions::kProcedure, source));
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Status status = [&]() -> Status {
    NEPTUNE_ASSIGN_OR_RETURN(
        ham::AddLinkResult link,
        ham_->AddLink(ctx_, ham::LinkPt{module, position, 0, true},
                      ham::LinkPt{procedure, 0, 0, true}));
    return ham_->SetLinkAttributeValue(ctx_, link.link, relation_,
                                       Conventions::kIsPartOf);
  }();
  if (!status.ok()) {
    ham_->AbortTransaction(ctx_);
    return status;
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return procedure;
}

Status CaseModel::AddImport(ham::NodeIndex importer, ham::NodeIndex imported,
                            uint64_t position) {
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Status status = [&]() -> Status {
    NEPTUNE_ASSIGN_OR_RETURN(
        ham::AddLinkResult link,
        ham_->AddLink(ctx_, ham::LinkPt{importer, position, 0, true},
                      ham::LinkPt{imported, 0, 0, true}));
    return ham_->SetLinkAttributeValue(ctx_, link.link, relation_,
                                       CaseConventions::kImports);
  }();
  if (!status.ok()) {
    ham_->AbortTransaction(ctx_);
    return status;
  }
  return ham_->CommitTransaction(ctx_);
}

Status CaseModel::EditSource(ham::NodeIndex node, const std::string& source) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult current,
                           ham_->OpenNode(ctx_, node, 0, {}));
  std::vector<ham::AttachmentUpdate> updates;
  for (const ham::Attachment& att : current.attachments) {
    updates.push_back(
        ham::AttachmentUpdate{att.link, att.is_source_end, att.position});
  }
  return ham_->ModifyNode(ctx_, node, current.current_version_time, source,
                          updates, "edit source");
}

Result<ham::NodeIndex> CaseModel::ObjectCodeOf(ham::NodeIndex source) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                           ham_->OpenNode(ctx_, source, 0, {}));
  for (const ham::Attachment& att : opened.attachments) {
    if (!att.is_source_end) continue;
    Result<std::string> relation =
        ham_->GetLinkAttributeValue(ctx_, att.link, relation_, 0);
    if (!relation.ok() || *relation != CaseConventions::kCompilesInto) {
      continue;
    }
    NEPTUNE_ASSIGN_OR_RETURN(ham::LinkEndResult end,
                             ham_->GetToNode(ctx_, att.link, 0));
    return end.node;
  }
  return Status::NotFound("node " + std::to_string(source) +
                          " was never compiled");
}

Result<bool> CaseModel::NeedsRecompile(ham::NodeIndex source) {
  Result<ham::NodeIndex> object = ObjectCodeOf(source);
  if (!object.ok()) {
    if (object.status().IsNotFound()) return true;
    return object.status();
  }
  NEPTUNE_ASSIGN_OR_RETURN(ham::Time source_time,
                           ham_->GetNodeTimeStamp(ctx_, source));
  NEPTUNE_ASSIGN_OR_RETURN(ham::Time object_time,
                           ham_->GetNodeTimeStamp(ctx_, *object));
  return source_time > object_time;
}

Result<ham::NodeIndex> CaseModel::Compile(ham::NodeIndex source) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                           ham_->OpenNode(ctx_, source, 0, {}));
  const std::string object_code = FakeObjectCode(opened.contents);
  Result<ham::NodeIndex> existing = ObjectCodeOf(source);
  if (existing.ok()) {
    NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult object,
                             ham_->OpenNode(ctx_, *existing, 0, {}));
    std::vector<ham::AttachmentUpdate> updates;
    for (const ham::Attachment& att : object.attachments) {
      updates.push_back(
          ham::AttachmentUpdate{att.link, att.is_source_end, att.position});
    }
    NEPTUNE_RETURN_IF_ERROR(
        ham_->ModifyNode(ctx_, *existing, object.current_version_time,
                         object_code, updates, "recompile"));
    return *existing;
  }
  if (!existing.status().IsNotFound()) return existing.status();

  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Result<ham::NodeIndex> result = [&]() -> Result<ham::NodeIndex> {
    NEPTUNE_ASSIGN_OR_RETURN(ham::AddNodeResult object,
                             ham_->AddNode(ctx_, true));
    NEPTUNE_RETURN_IF_ERROR(ham_->ModifyNode(ctx_, object.node,
                                             object.creation_time, object_code,
                                             {}, "compile"));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetNodeAttributeValue(
        ctx_, object.node, content_type_, CaseConventions::kObjectType));
    NEPTUNE_ASSIGN_OR_RETURN(
        ham::AddLinkResult link,
        ham_->AddLink(ctx_, ham::LinkPt{source, 0, 0, true},
                      ham::LinkPt{object.node, 0, 0, true}));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetLinkAttributeValue(
        ctx_, link.link, relation_, CaseConventions::kCompilesInto));
    return object.node;
  }();
  if (!result.ok()) {
    ham_->AbortTransaction(ctx_);
    return result.status();
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return result;
}

Result<CompileReport> CaseModel::CompileAll() {
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::SubGraph sources,
      ham_->GetGraphQuery(ctx_, 0,
                          "contentType = 'Modula-2 source'", "", {}, {}));
  CompileReport report;
  for (const ham::SubGraphNode& node : sources.nodes) {
    NEPTUNE_ASSIGN_OR_RETURN(bool stale, NeedsRecompile(node.node));
    if (!stale) {
      ++report.up_to_date;
      continue;
    }
    Result<ham::NodeIndex> compiled = Compile(node.node);
    if (!compiled.ok()) return compiled.status();
    ++report.compiled;
  }
  return report;
}

Status CaseModel::EnableAutoCompile(ham::NodeIndex source) {
  // The demon value's first word selects the registered callback.
  return ham_->SetNodeDemon(ctx_, source, ham::Event::kModifyNode,
                            "compile incremental");
}

void CaseModel::InstallCompileDemonHandler(ham::DemonRegistry* registry) {
  registry->Register("compile", [this](const ham::DemonInvocation& inv) {
    if (inv.node == 0) return;
    // Demons run outside the engine's locks, so calling back in is
    // safe. A failed recompile is logged by the caller's Status.
    Compile(inv.node);
  });
}

Result<std::vector<ham::NodeIndex>> CaseModel::ProceduresOf(
    ham::NodeIndex module) {
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::SubGraph graph,
      ham_->LinearizeGraph(ctx_, module, 0, "", "relation = isPartOf", {},
                           {}));
  std::vector<ham::NodeIndex> out;
  for (const ham::SubGraphNode& node : graph.nodes) {
    if (node.node == module) continue;
    Result<std::string> kind =
        ham_->GetNodeAttributeValue(ctx_, node.node, code_type_, 0);
    if (kind.ok() && *kind == CaseConventions::kProcedure) {
      out.push_back(node.node);
    }
  }
  return out;
}

Result<std::vector<ham::NodeIndex>> CaseModel::ImportersOf(
    ham::NodeIndex module) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                           ham_->OpenNode(ctx_, module, 0, {}));
  std::vector<ham::NodeIndex> out;
  for (const ham::Attachment& att : opened.attachments) {
    if (att.is_source_end) continue;  // we want links pointing at us
    Result<std::string> relation =
        ham_->GetLinkAttributeValue(ctx_, att.link, relation_, 0);
    if (!relation.ok() || *relation != CaseConventions::kImports) continue;
    NEPTUNE_ASSIGN_OR_RETURN(ham::LinkEndResult end,
                             ham_->GetFromNode(ctx_, att.link, 0));
    out.push_back(end.node);
  }
  return out;
}

}  // namespace app
}  // namespace neptune

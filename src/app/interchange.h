// Hyperdocument interchange: serializes the configuration of a graph
// (its nodes, links and attributes as of one Time) to a portable,
// binary-safe text format and loads it into another graph.
//
// This transfers one *version* of the hyperdocument — the natural unit
// for publishing or migrating — not the version history, which stays
// with the originating database (exactly like shipping a release
// tarball out of an RCS tree, the paper's own storage analogy).
//
// Format (NIF1): a header line, then one record per line; binary
// payloads are length-prefixed and follow their record line verbatim.
//
//   NEPTUNE-INTERCHANGE 1
//   attribute <name-bytes>\n<name>
//   node <old-index> <archive> <protections> <contents-bytes>\n<contents>
//   nodeattr <old-node> <attr-ordinal> <value-bytes>\n<value>
//   link <old-index> <from> <from-pos> <to> <to-pos>
//   linkattr <link-ordinal> <attr-ordinal> <value-bytes>\n<value>
//   end
//
// Ordinals refer to earlier records in the stream (0-based), so the
// format needs no global id coordination on import.

#ifndef NEPTUNE_APP_INTERCHANGE_H_
#define NEPTUNE_APP_INTERCHANGE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

struct ImportReport {
  size_t nodes = 0;
  size_t links = 0;
  size_t attributes = 0;
  // Old node index (from the export) -> node index in the target.
  std::map<ham::NodeIndex, ham::NodeIndex> node_mapping;
};

// Exports every node/link visible at `time` (0 = now) in `ctx`'s
// version thread, with their attribute values as of `time`.
Result<std::string> ExportGraph(ham::HamInterface* ham, ham::Context ctx,
                                ham::Time time);

// Imports an NIF1 stream into `ctx`'s graph as new nodes/links (one
// transaction per imported object group; ids are freshly assigned).
Result<ImportReport> ImportGraph(ham::HamInterface* ham, ham::Context ctx,
                                 std::string_view data);

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_INTERCHANGE_H_

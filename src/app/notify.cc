#include "app/notify.h"

namespace neptune {
namespace app {

Status NotificationCenter::Init() {
  NEPTUNE_ASSIGN_OR_RETURN(responsible_,
                           ham_->GetAttributeIndex(ctx_, "responsible"));
  return Status::OK();
}

void NotificationCenter::Install(ham::DemonRegistry* registry) {
  registry->Register("mail", [this](const ham::DemonInvocation& invocation) {
    if (invocation.node == 0) return;
    Result<std::string> owner = ham_->GetNodeAttributeValue(
        ctx_, invocation.node, responsible_, 0);
    if (!owner.ok()) return;  // nobody responsible: nothing to send
    // "when someone OTHER than that person modifies the node".
    if (*owner == user_) return;
    MailMessage message;
    message.recipient = *owner;
    message.modified_by = user_;
    message.invocation = invocation;
    std::lock_guard<std::mutex> lock(mu_);
    mailbox_.push_back(std::move(message));
  });
}

Status NotificationCenter::SetResponsible(ham::NodeIndex node,
                                          const std::string& user) {
  return ham_->SetNodeAttributeValue(ctx_, node, responsible_, user);
}

Status NotificationCenter::Watch(ham::NodeIndex node) {
  return ham_->SetNodeDemon(ctx_, node, ham::Event::kModifyNode,
                            "mail on-modify");
}

std::vector<MailMessage> NotificationCenter::MessagesFor(
    const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MailMessage> out;
  for (const MailMessage& message : mailbox_) {
    if (message.recipient == user) out.push_back(message);
  }
  return out;
}

size_t NotificationCenter::TotalMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mailbox_.size();
}

}  // namespace app
}  // namespace neptune

// The generic documentation application layer (paper §4.1): documents
// are hierarchies of section nodes connected by isPartOf links;
// annotations, references and cross-document links are links with a
// `relation` attribute; the `icon` attribute names a node in browsers.
//
// Everything here is built strictly on top of HamInterface, so it
// works identically against the local engine and a remote server —
// the paper's layered architecture.

#ifndef NEPTUNE_APP_DOCUMENT_H_
#define NEPTUNE_APP_DOCUMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

// Attribute conventions shared by the documentation and CASE layers.
struct Conventions {
  static constexpr char kIcon[] = "icon";          // browser display name
  static constexpr char kDocument[] = "document";  // which document
  static constexpr char kRelation[] = "relation";  // link semantics
  static constexpr char kContentType[] = "contentType";

  static constexpr char kIsPartOf[] = "isPartOf";
  static constexpr char kAnnotates[] = "annotates";
  static constexpr char kReferences[] = "references";
};

// One section in a document outline.
struct OutlineEntry {
  ham::NodeIndex node = 0;
  int depth = 0;            // 0 = root
  std::string title;        // icon attribute (or "#<index>")
  std::string number;       // hierarchical section number, e.g. "2.1.3"
};

class DocumentModel {
 public:
  // `ham` must outlive the model; `ctx` is an open graph session.
  DocumentModel(ham::HamInterface* ham, ham::Context ctx)
      : ham_(ham), ctx_(ctx) {}

  // Interns the convention attributes; call once before other methods.
  Status Init();

  // Creates a document root node tagged document=`name`, icon=`title`.
  Result<ham::NodeIndex> CreateDocument(const std::string& name,
                                        const std::string& title);

  // Creates a section under `parent` at ordering `position` (the link
  // offset inside the parent — document browsers sort children by it).
  Result<ham::NodeIndex> AddSection(ham::NodeIndex parent,
                                    const std::string& document,
                                    const std::string& title,
                                    const std::string& text,
                                    uint64_t position);

  // Replaces a section's text (carrying attachment offsets forward
  // unchanged).
  Status EditSection(ham::NodeIndex node, const std::string& text,
                     const std::string& explanation);

  // The paper's `annotate` command: in ONE transaction, creates a new
  // node holding `text`, links the annotated position to it, tags node
  // and link as an annotation, and returns the new node.
  Result<ham::NodeIndex> Annotate(ham::NodeIndex target, uint64_t position,
                                  const std::string& text);

  // A cross-reference link (relation=references) between two nodes.
  Result<ham::LinkIndex> AddReference(ham::NodeIndex from, uint64_t position,
                                      ham::NodeIndex to);

  // The document outline at `time` (0 = now): depth-first over
  // isPartOf links ordered by offsets, with section numbers.
  Result<std::vector<OutlineEntry>> Outline(ham::NodeIndex root,
                                            ham::Time time);

  // "The HAM's linearizeGraph operation can be used to extract a
  // document from the hypertext graph so that hardcopies can be
  // produced": renders the document to markdown-like text.
  Result<std::string> ExtractHardcopy(ham::NodeIndex root, ham::Time time);

  // Annotation nodes attached to `node` at `time`.
  Result<std::vector<ham::NodeIndex>> AnnotationsOf(ham::NodeIndex node,
                                                    ham::Time time);

  // Display title for a node (icon attribute, or "#<index>").
  std::string TitleOf(ham::NodeIndex node, ham::Time time);

  ham::AttributeIndex icon_attr() const { return icon_; }
  ham::AttributeIndex document_attr() const { return document_; }
  ham::AttributeIndex relation_attr() const { return relation_; }

  ham::HamInterface* ham() { return ham_; }
  ham::Context ctx() const { return ctx_; }

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
  ham::AttributeIndex icon_ = 0;
  ham::AttributeIndex document_ = 0;
  ham::AttributeIndex relation_ = 0;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_DOCUMENT_H_

// NotificationCenter: the paper's §5 demon example made concrete —
// "sending mail to the person responsible for a node when someone
// other than that person modifies the node."
//
// Conventions: the `responsible` attribute names a node's owner; the
// session identifies its user by name. Watch(node) arms a modifyNode
// demon whose callback compares the modifying user with the node's
// `responsible` value and, when they differ, delivers a message (with
// the full §5 parameterized invocation record) into the owner's
// mailbox.

#ifndef NEPTUNE_APP_NOTIFY_H_
#define NEPTUNE_APP_NOTIFY_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "ham/ham.h"
#include "ham/ham_interface.h"

namespace neptune {
namespace app {

struct MailMessage {
  std::string recipient;           // the responsible person
  std::string modified_by;         // who triggered the demon
  ham::DemonInvocation invocation; // event, timestamp, node, graph...
};

class NotificationCenter {
 public:
  // `user` is the person this session acts as.
  NotificationCenter(ham::HamInterface* ham, ham::Context ctx,
                     std::string user)
      : ham_(ham), ctx_(ctx), user_(std::move(user)) {}

  Status Init();

  // Registers the "mail" demon callback on an engine's registry.
  // Call once per engine (typically server-side).
  void Install(ham::DemonRegistry* registry);

  // Records who is responsible for `node`.
  Status SetResponsible(ham::NodeIndex node, const std::string& user);

  // Arms the modifyNode mail demon on `node`.
  Status Watch(ham::NodeIndex node);

  // Messages delivered to `user` so far (snapshot).
  std::vector<MailMessage> MessagesFor(const std::string& user) const;

  size_t TotalMessages() const;

  const std::string& user() const { return user_; }

 private:
  ham::HamInterface* ham_;
  ham::Context ctx_;
  std::string user_;
  ham::AttributeIndex responsible_ = 0;

  mutable std::mutex mu_;
  std::vector<MailMessage> mailbox_;
};

}  // namespace app
}  // namespace neptune

#endif  // NEPTUNE_APP_NOTIFY_H_

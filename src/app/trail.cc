#include "app/trail.h"

#include <cinttypes>
#include <cstdio>

#include "app/document.h"
#include "delta/text_diff.h"

namespace neptune {
namespace app {

namespace {
constexpr char kTrailsDocument[] = "trails";
constexpr char kFollowsTrail[] = "followsTrail";
}  // namespace

Status TrailRecorder::Init() {
  NEPTUNE_ASSIGN_OR_RETURN(icon_,
                           ham_->GetAttributeIndex(ctx_, Conventions::kIcon));
  NEPTUNE_ASSIGN_OR_RETURN(
      document_, ham_->GetAttributeIndex(ctx_, Conventions::kDocument));
  NEPTUNE_ASSIGN_OR_RETURN(
      relation_, ham_->GetAttributeIndex(ctx_, Conventions::kRelation));
  return Status::OK();
}

Result<ham::NodeIndex> TrailRecorder::StartTrail(const std::string& name) {
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Result<ham::NodeIndex> result = [&]() -> Result<ham::NodeIndex> {
    NEPTUNE_ASSIGN_OR_RETURN(ham::AddNodeResult trail, ham_->AddNode(ctx_, true));
    NEPTUNE_RETURN_IF_ERROR(ham_->SetNodeAttributeValue(
        ctx_, trail.node, document_, kTrailsDocument));
    NEPTUNE_RETURN_IF_ERROR(
        ham_->SetNodeAttributeValue(ctx_, trail.node, icon_, name));
    return trail.node;
  }();
  if (!result.ok()) {
    ham_->AbortTransaction(ctx_);
    return result.status();
  }
  NEPTUNE_RETURN_IF_ERROR(ham_->CommitTransaction(ctx_));
  return result;
}

Status TrailRecorder::RecordStep(ham::NodeIndex trail, const TrailStep& step) {
  NEPTUNE_RETURN_IF_ERROR(ham_->BeginTransaction(ctx_));
  Status status = [&]() -> Status {
    NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult current,
                             ham_->OpenNode(ctx_, trail, 0, {}));
    char line[64];
    std::snprintf(line, sizeof(line), "%" PRIu64 " %" PRIu64 "\n", step.node,
                  step.via);
    std::vector<ham::AttachmentUpdate> updates;
    size_t ordinal = 0;
    for (const ham::Attachment& att : current.attachments) {
      updates.push_back(
          ham::AttachmentUpdate{att.link, att.is_source_end, att.position});
      if (att.is_source_end) ++ordinal;
    }
    NEPTUNE_RETURN_IF_ERROR(ham_->ModifyNode(
        ctx_, trail, current.current_version_time, current.contents + line,
        updates, "trail step"));
    NEPTUNE_ASSIGN_OR_RETURN(
        ham::AddLinkResult link,
        ham_->AddLink(ctx_,
                      ham::LinkPt{trail, static_cast<uint64_t>(ordinal), 0,
                                  true},
                      ham::LinkPt{step.node, 0, 0, true}));
    return ham_->SetLinkAttributeValue(ctx_, link.link, relation_,
                                       kFollowsTrail);
  }();
  if (!status.ok()) {
    ham_->AbortTransaction(ctx_);
    return status;
  }
  return ham_->CommitTransaction(ctx_);
}

Result<std::vector<TrailStep>> TrailRecorder::Replay(ham::NodeIndex trail,
                                                     ham::Time time) {
  NEPTUNE_ASSIGN_OR_RETURN(ham::OpenNodeResult opened,
                           ham_->OpenNode(ctx_, trail, time, {document_}));
  if (opened.attribute_values.empty() ||
      !opened.attribute_values[0].has_value() ||
      *opened.attribute_values[0] != kTrailsDocument) {
    return Status::InvalidArgument("node " + std::to_string(trail) +
                                   " is not a trail");
  }
  std::vector<TrailStep> steps;
  for (const std::string& line : delta::SplitLines(opened.contents)) {
    TrailStep step;
    if (std::sscanf(line.c_str(), "%" PRIu64 " %" PRIu64, &step.node,
                    &step.via) >= 1) {
      steps.push_back(step);
    }
  }
  return steps;
}

Result<TrailStep> TrailRecorder::Resume(ham::NodeIndex trail) {
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<TrailStep> steps, Replay(trail, 0));
  if (steps.empty()) {
    return Status::NotFound("trail " + std::to_string(trail) +
                            " has no steps yet");
  }
  return steps.back();
}

Result<std::vector<ham::NodeIndex>> TrailRecorder::ListTrails() {
  NEPTUNE_ASSIGN_OR_RETURN(
      ham::SubGraph graph,
      ham_->GetGraphQuery(ctx_, 0, "document = trails", "", {}, {}));
  std::vector<ham::NodeIndex> out;
  for (const ham::SubGraphNode& node : graph.nodes) out.push_back(node.node);
  return out;
}

Result<std::string> TrailRecorder::Render(ham::NodeIndex trail,
                                          ham::Time time) {
  Result<std::string> name =
      ham_->GetNodeAttributeValue(ctx_, trail, icon_, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<TrailStep> steps, Replay(trail, time));
  std::string out =
      "Trail - " + (name.ok() ? *name : "#" + std::to_string(trail)) + "\n";
  int ordinal = 1;
  for (const TrailStep& step : steps) {
    Result<std::string> title =
        ham_->GetNodeAttributeValue(ctx_, step.node, icon_, time);
    out += "  " + std::to_string(ordinal++) + ". " +
           (title.ok() ? *title : "#" + std::to_string(step.node));
    if (step.via != 0) {
      out += "  (via link " + std::to_string(step.via) + ")";
    }
    out += "\n";
  }
  if (steps.empty()) out += "  (no steps recorded)\n";
  return out;
}

}  // namespace app
}  // namespace neptune

// RemoteHam: the client stub. Implements HamInterface over a TCP
// connection to a Neptune server, so application layers and browsers
// run unchanged against a networked HAM — the paper's deployment
// ("a central server which is accessible over a local area network
// from a variety of workstations").

#ifndef NEPTUNE_RPC_REMOTE_HAM_H_
#define NEPTUNE_RPC_REMOTE_HAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/random.h"
#include "ham/ham_interface.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace neptune {
namespace rpc {

class RemoteHam final : public ham::HamInterface {
 public:
  // Client-side resilience knobs. The defaults favour "fail loudly but
  // not forever": every call is bounded by the socket deadlines, and
  // transient transport errors are retried with jittered exponential
  // backoff — but a request is only ever *re-sent* for idempotent
  // methods (IsIdempotent in wire.h), because a mutation whose reply
  // was lost may have committed.
  struct Options {
    int connect_timeout_ms = 5000;
    int send_timeout_ms = 30000;   // 0 = no deadline
    int recv_timeout_ms = 30000;   // 0 = no deadline
    uint32_t max_retries = 3;      // extra attempts after the first
    uint32_t backoff_initial_ms = 10;
    uint32_t backoff_max_ms = 1000;
    uint64_t retry_seed = 0;       // 0 = derive per client
  };

  // Connects to a running server; host "" or "localhost" means
  // 127.0.0.1.
  static Result<std::unique_ptr<RemoteHam>> Connect(const std::string& host,
                                                    uint16_t port);
  static Result<std::unique_ptr<RemoteHam>> Connect(const std::string& host,
                                                    uint16_t port,
                                                    const Options& options);

  RemoteHam(const RemoteHam&) = delete;
  RemoteHam& operator=(const RemoteHam&) = delete;

  // Round-trip liveness probe.
  Status Ping();

  // Fetches the server's process-wide metrics snapshot (RPC-only; not
  // part of HamInterface because a local Ham reads the registry
  // directly).
  Result<MetricsSnapshot> GetServerStatistics();

  // Fetches the server's recent-trace ring / slow-op ring (RPC-only,
  // like GetServerStatistics; a local Ham reads the Tracer directly).
  Result<std::vector<Trace>> GetRecentTraces();
  Result<std::vector<Span>> GetSlowOps();

  // HamInterface (see ham/ham_interface.h for contracts) -------------
  Result<ham::CreateGraphResult> CreateGraph(const std::string& directory,
                                             uint32_t protections) override;
  Status DestroyGraph(ham::ProjectId project,
                      const std::string& directory) override;
  Result<ham::Context> OpenGraph(ham::ProjectId project,
                                 const std::string& machine,
                                 const std::string& directory) override;
  Status CloseGraph(ham::Context ctx) override;

  Status BeginTransaction(ham::Context ctx) override;
  Status CommitTransaction(ham::Context ctx) override;
  Status AbortTransaction(ham::Context ctx) override;

  Result<ham::AddNodeResult> AddNode(ham::Context ctx,
                                     bool keep_history) override;
  Status DeleteNode(ham::Context ctx, ham::NodeIndex node) override;
  Result<ham::AddLinkResult> AddLink(ham::Context ctx, const ham::LinkPt& from,
                                     const ham::LinkPt& to) override;
  Result<ham::AddLinkResult> CopyLink(ham::Context ctx, ham::LinkIndex link,
                                      ham::Time time, bool copy_source,
                                      const ham::LinkPt& other) override;
  Status DeleteLink(ham::Context ctx, ham::LinkIndex link) override;

  Result<ham::SubGraph> LinearizeGraph(
      ham::Context ctx, ham::NodeIndex start, ham::Time time,
      const std::string& node_pred, const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs) override;
  Result<ham::SubGraph> GetGraphQuery(
      ham::Context ctx, ham::Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs) override;

  Result<ham::OpenNodeResult> OpenNode(
      ham::Context ctx, ham::NodeIndex node, ham::Time time,
      const std::vector<ham::AttributeIndex>& attrs) override;
  Status ModifyNode(ham::Context ctx, ham::NodeIndex node,
                    ham::Time expected_time, const std::string& contents,
                    const std::vector<ham::AttachmentUpdate>& attachments,
                    const std::string& explanation) override;
  Result<ham::Time> GetNodeTimeStamp(ham::Context ctx,
                                     ham::NodeIndex node) override;
  Status ChangeNodeProtection(ham::Context ctx, ham::NodeIndex node,
                              uint32_t protections) override;
  Result<ham::NodeVersions> GetNodeVersions(ham::Context ctx,
                                            ham::NodeIndex node) override;
  Result<std::vector<delta::Difference>> GetNodeDifferences(
      ham::Context ctx, ham::NodeIndex node, ham::Time t1,
      ham::Time t2) override;

  Result<ham::LinkEndResult> GetToNode(ham::Context ctx, ham::LinkIndex link,
                                       ham::Time time) override;
  Result<ham::LinkEndResult> GetFromNode(ham::Context ctx, ham::LinkIndex link,
                                         ham::Time time) override;

  Result<std::vector<ham::AttributeEntry>> GetAttributes(
      ham::Context ctx, ham::Time time) override;
  Result<std::vector<std::string>> GetAttributeValues(
      ham::Context ctx, ham::AttributeIndex attr, ham::Time time) override;
  Result<ham::AttributeIndex> GetAttributeIndex(
      ham::Context ctx, const std::string& name) override;

  Status SetNodeAttributeValue(ham::Context ctx, ham::NodeIndex node,
                               ham::AttributeIndex attr,
                               const std::string& value) override;
  Status DeleteNodeAttribute(ham::Context ctx, ham::NodeIndex node,
                             ham::AttributeIndex attr) override;
  Result<std::string> GetNodeAttributeValue(ham::Context ctx,
                                            ham::NodeIndex node,
                                            ham::AttributeIndex attr,
                                            ham::Time time) override;
  Result<std::vector<ham::AttributeValueEntry>> GetNodeAttributes(
      ham::Context ctx, ham::NodeIndex node, ham::Time time) override;

  Status SetLinkAttributeValue(ham::Context ctx, ham::LinkIndex link,
                               ham::AttributeIndex attr,
                               const std::string& value) override;
  Status DeleteLinkAttribute(ham::Context ctx, ham::LinkIndex link,
                             ham::AttributeIndex attr) override;
  Result<std::string> GetLinkAttributeValue(ham::Context ctx,
                                            ham::LinkIndex link,
                                            ham::AttributeIndex attr,
                                            ham::Time time) override;
  Result<std::vector<ham::AttributeValueEntry>> GetLinkAttributes(
      ham::Context ctx, ham::LinkIndex link, ham::Time time) override;

  Status SetGraphDemonValue(ham::Context ctx, ham::Event event,
                            const std::string& demon) override;
  Result<std::vector<ham::DemonEntry>> GetGraphDemons(ham::Context ctx,
                                                      ham::Time time) override;
  Status SetNodeDemon(ham::Context ctx, ham::NodeIndex node, ham::Event event,
                      const std::string& demon) override;
  Result<std::vector<ham::DemonEntry>> GetNodeDemons(ham::Context ctx,
                                                     ham::NodeIndex node,
                                                     ham::Time time) override;

  Result<ham::ContextInfo> CreateContext(ham::Context ctx,
                                         const std::string& name) override;
  Result<ham::Context> OpenContext(ham::Context ctx,
                                   ham::ThreadId thread) override;
  Status MergeContext(ham::Context ctx, ham::ThreadId source,
                      bool force) override;
  Result<std::vector<ham::ContextInfo>> ListContexts(ham::Context ctx) override;

  Status Checkpoint(ham::Context ctx) override;
  Result<ham::GraphStats> GetStats(ham::Context ctx) override;
  Result<ham::ThreadId> ContextThread(ham::Context ctx) override;

 private:
  RemoteHam(std::string host, uint16_t port, const Options& options);

  // Sends one request and returns the reply's result payload (after
  // the status header); non-OK replies become that Status.
  //
  // Transport failures (kNetworkError / kUnavailable /
  // kDeadlineExceeded) kill the cached stream. Reconnecting and
  // re-sending happens automatically — always when the failure struck
  // before anything was sent, but after a send only for idempotent
  // methods — up to options_.max_retries extra attempts with jittered
  // exponential backoff.
  Result<std::string> Call(Method method, std::string_view args);

  // Re-establishes stream_ (with deadlines armed). Caller holds mu_.
  Status ReconnectLocked();

  const std::string host_;
  const uint16_t port_;
  const Options options_;

  std::mutex mu_;  // one request in flight per connection
  std::unique_ptr<FrameStream> stream_;  // null between connections
  Random rng_;  // backoff jitter; guarded by mu_
  // Cleared the first time the server answers a trace-flagged request
  // with "unknown method" (a pre-tracing build): later requests are
  // sent plain, so one old server costs one extra round trip, ever.
  std::atomic<bool> trace_wire_ok_{true};
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_REMOTE_HAM_H_

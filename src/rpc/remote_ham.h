// RemoteHam: the client stub. Implements HamInterface over a TCP
// connection to a Neptune server, so application layers and browsers
// run unchanged against a networked HAM — the paper's deployment
// ("a central server which is accessible over a local area network
// from a variety of workstations").

#ifndef NEPTUNE_RPC_REMOTE_HAM_H_
#define NEPTUNE_RPC_REMOTE_HAM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "ham/ham_interface.h"
#include "rpc/socket.h"
#include "rpc/wire.h"

namespace neptune {
namespace rpc {

class RemoteHam final : public ham::HamInterface {
 public:
  // Client-side resilience knobs. The defaults favour "fail loudly but
  // not forever": every call is bounded by the socket deadlines, and
  // transient transport errors are retried with jittered exponential
  // backoff — but a request is only ever *re-sent* for idempotent
  // methods (IsIdempotent in wire.h), because a mutation whose reply
  // was lost may have committed.
  struct Options {
    int connect_timeout_ms = 5000;
    int send_timeout_ms = 30000;   // 0 = no deadline
    int recv_timeout_ms = 30000;   // 0 = no deadline
    uint32_t max_retries = 3;      // extra attempts after the first
    uint32_t backoff_initial_ms = 10;
    uint32_t backoff_max_ms = 1000;
    uint64_t retry_seed = 0;       // 0 = derive per client
    // Pipelined mode: requests carry the kRequestIdFlag extension and
    // up to max_inflight of them ride the connection concurrently,
    // completing out of order. The first request on each connection is
    // a capability probe (sent alone); a server that answers it with
    // "unknown method" predates the extension and the client falls
    // back to one-in-flight sync calls permanently (one extra round
    // trip, ever — same discipline as the trace-context downgrade).
    bool pipeline = false;
    uint32_t max_inflight = 64;  // clamped to >= 1
    // Follower-read routing: when follower_host is set, Connect also
    // dials a follower replica, OpenGraph opens a shadow session on
    // it, and curated idempotent reads are served there whenever the
    // follower is fresh enough (both staleness bounds hold). Any
    // follower error — connection down, graph not yet synced, stale —
    // silently falls back to the primary; writes and transactions
    // always go to the primary.
    std::string follower_host;
    uint16_t follower_port = 0;
    uint64_t follower_max_lag_bytes = 4 << 20;
    // Must comfortably exceed the follower's long-poll period, since
    // its catch-up stamp refreshes once per poll cycle.
    uint64_t follower_max_behind_ms = 10000;
    uint64_t follower_status_ttl_ms = 500;  // staleness-probe cache
    // Path remap for shadow sessions: a primary directory equal to (or
    // under) follower_remap_from opens on the follower at the same
    // relative path under follower_remap_to. Empty = the follower
    // mirrors the primary's paths verbatim (symmetric layout).
    std::string follower_remap_from;
    std::string follower_remap_to;
    // Clock for retry backoff, shed waits and follower-staleness TTLs.
    // nullptr = the process-wide real clock. The simulation harness
    // injects its virtual clock here.
    TimeSource* time_source = nullptr;
    // Dials a server; nullptr = FrameStream::Connect (real TCP). The
    // simulation harness injects its in-memory network here.
    std::function<Result<std::unique_ptr<FrameStream>>(
        const std::string& host, uint16_t port, int connect_timeout_ms)>
        stream_factory;
  };

  // A tagged request in flight; Wait() blocks for the reply. Obtained
  // from CallAsync. Handles are one-shot single-owner values: Wait()
  // may be called once, from any thread.
  class PendingCall {
   public:
    // Returns the reply's result payload (after the status header);
    // non-OK replies and transport failures become that Status. Unlike
    // the sync API this does not retry or honor shed hints — callers
    // wanting those semantics use the sync methods.
    Result<std::string> Wait();

   private:
    friend class RemoteHam;
    struct State;
    std::shared_ptr<State> state_;
  };

  // Connects to a running server; host "" or "localhost" means
  // 127.0.0.1.
  static Result<std::unique_ptr<RemoteHam>> Connect(const std::string& host,
                                                    uint16_t port);
  static Result<std::unique_ptr<RemoteHam>> Connect(const std::string& host,
                                                    uint16_t port,
                                                    const Options& options);

  RemoteHam(const RemoteHam&) = delete;
  RemoteHam& operator=(const RemoteHam&) = delete;

  ~RemoteHam() override;

  // Round-trip liveness probe.
  Status Ping();

  // Issues one request without waiting for the reply. In pipelined
  // mode (Options::pipeline, against a server that understands request
  // ids) many of these ride the connection concurrently; otherwise the
  // call executes synchronously before returning, so the handle is
  // merely pre-resolved. `args` is the encoded argument block exactly
  // as the typed sync wrappers build it.
  PendingCall CallAsync(Method method, std::string_view args);

  // Batch operations (one round trip each; all idempotent). ----------

  // openNodes: per-item status so one missing node cannot fail its
  // siblings.
  struct OpenNodeItem {
    Status status;
    ham::OpenNodeResult result;  // meaningful only when status.ok()
  };
  Result<std::vector<OpenNodeItem>> OpenNodes(
      ham::Context ctx, const std::vector<ham::NodeIndex>& nodes,
      ham::Time time, const std::vector<ham::AttributeIndex>& attrs);

  // Multi-attribute read across nodes and links.
  struct AttributeFetch {
    bool is_link = false;
    uint64_t entity = 0;  // NodeIndex or LinkIndex per is_link
    ham::AttributeIndex attr = 0;
  };
  struct AttributeFetchItem {
    Status status;
    std::string value;  // meaningful only when status.ok()
  };
  Result<std::vector<AttributeFetchItem>> GetAttributeValuesBatch(
      ham::Context ctx, ham::Time time,
      const std::vector<AttributeFetch>& fetches);

  // linearizeGraph plus the contents of every node it returns, in one
  // round trip (a SubGraph carries structure, not contents).
  struct NodeContentsItem {
    Status status;
    std::string contents;        // meaningful only when status.ok()
    ham::Time version_time = 0;  // ditto
  };
  struct LinearizeAndFetchResult {
    ham::SubGraph graph;
    std::vector<NodeContentsItem> contents;  // parallel to graph.nodes
  };
  Result<LinearizeAndFetchResult> LinearizeAndFetch(
      ham::Context ctx, ham::NodeIndex start, ham::Time time,
      const std::string& node_pred, const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs);

  // Forces the next tagged request to use this id (wraparound tests).
  void set_next_request_id_for_test(uint64_t id) {
    next_id_override_.store(id, std::memory_order_relaxed);
  }

  // Fetches the server's process-wide metrics snapshot (RPC-only; not
  // part of HamInterface because a local Ham reads the registry
  // directly).
  Result<MetricsSnapshot> GetServerStatistics();

  // Windowed statistics: counters and histogram buckets are deltas
  // over the newest sampled span of at least `window_seconds`, gauges
  // are the latest values. elapsed_us = 0 means the server runs no
  // sampler (or has fewer than two samples yet) and the snapshot is
  // empty.
  struct StatisticsDelta {
    uint64_t elapsed_us = 0;
    MetricsSnapshot snapshot;
  };
  Result<StatisticsDelta> GetServerStatisticsDelta(uint32_t window_seconds);

  // Fetches the server's recent-trace ring / slow-op ring (RPC-only,
  // like GetServerStatistics; a local Ham reads the Tracer directly).
  Result<std::vector<Trace>> GetRecentTraces();
  Result<std::vector<Span>> GetSlowOps();

  // HamInterface (see ham/ham_interface.h for contracts) -------------
  Result<ham::CreateGraphResult> CreateGraph(const std::string& directory,
                                             uint32_t protections) override;
  Status DestroyGraph(ham::ProjectId project,
                      const std::string& directory) override;
  Result<ham::Context> OpenGraph(ham::ProjectId project,
                                 const std::string& machine,
                                 const std::string& directory) override;
  Status CloseGraph(ham::Context ctx) override;

  Status BeginTransaction(ham::Context ctx) override;
  Status CommitTransaction(ham::Context ctx) override;
  Status AbortTransaction(ham::Context ctx) override;

  Result<ham::AddNodeResult> AddNode(ham::Context ctx,
                                     bool keep_history) override;
  Status DeleteNode(ham::Context ctx, ham::NodeIndex node) override;
  Result<ham::AddLinkResult> AddLink(ham::Context ctx, const ham::LinkPt& from,
                                     const ham::LinkPt& to) override;
  Result<ham::AddLinkResult> CopyLink(ham::Context ctx, ham::LinkIndex link,
                                      ham::Time time, bool copy_source,
                                      const ham::LinkPt& other) override;
  Status DeleteLink(ham::Context ctx, ham::LinkIndex link) override;

  Result<ham::SubGraph> LinearizeGraph(
      ham::Context ctx, ham::NodeIndex start, ham::Time time,
      const std::string& node_pred, const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs) override;
  Result<ham::SubGraph> GetGraphQuery(
      ham::Context ctx, ham::Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs) override;
  Result<ham::QueryExplain> GetGraphQueryExplained(
      ham::Context ctx, ham::Time time, const std::string& node_pred,
      const std::string& link_pred,
      const std::vector<ham::AttributeIndex>& node_attrs,
      const std::vector<ham::AttributeIndex>& link_attrs,
      const ham::QueryOptions& options) override;

  Result<ham::OpenNodeResult> OpenNode(
      ham::Context ctx, ham::NodeIndex node, ham::Time time,
      const std::vector<ham::AttributeIndex>& attrs) override;
  Status ModifyNode(ham::Context ctx, ham::NodeIndex node,
                    ham::Time expected_time, const std::string& contents,
                    const std::vector<ham::AttachmentUpdate>& attachments,
                    const std::string& explanation) override;
  Result<ham::Time> GetNodeTimeStamp(ham::Context ctx,
                                     ham::NodeIndex node) override;
  Status ChangeNodeProtection(ham::Context ctx, ham::NodeIndex node,
                              uint32_t protections) override;
  Result<ham::NodeVersions> GetNodeVersions(ham::Context ctx,
                                            ham::NodeIndex node) override;
  Result<std::vector<delta::Difference>> GetNodeDifferences(
      ham::Context ctx, ham::NodeIndex node, ham::Time t1,
      ham::Time t2) override;

  Result<ham::LinkEndResult> GetToNode(ham::Context ctx, ham::LinkIndex link,
                                       ham::Time time) override;
  Result<ham::LinkEndResult> GetFromNode(ham::Context ctx, ham::LinkIndex link,
                                         ham::Time time) override;

  Result<std::vector<ham::AttributeEntry>> GetAttributes(
      ham::Context ctx, ham::Time time) override;
  Result<std::vector<std::string>> GetAttributeValues(
      ham::Context ctx, ham::AttributeIndex attr, ham::Time time) override;
  Result<ham::AttributeIndex> GetAttributeIndex(
      ham::Context ctx, const std::string& name) override;

  Status SetNodeAttributeValue(ham::Context ctx, ham::NodeIndex node,
                               ham::AttributeIndex attr,
                               const std::string& value) override;
  Status DeleteNodeAttribute(ham::Context ctx, ham::NodeIndex node,
                             ham::AttributeIndex attr) override;
  Result<std::string> GetNodeAttributeValue(ham::Context ctx,
                                            ham::NodeIndex node,
                                            ham::AttributeIndex attr,
                                            ham::Time time) override;
  Result<std::vector<ham::AttributeValueEntry>> GetNodeAttributes(
      ham::Context ctx, ham::NodeIndex node, ham::Time time) override;

  Status SetLinkAttributeValue(ham::Context ctx, ham::LinkIndex link,
                               ham::AttributeIndex attr,
                               const std::string& value) override;
  Status DeleteLinkAttribute(ham::Context ctx, ham::LinkIndex link,
                             ham::AttributeIndex attr) override;
  Result<std::string> GetLinkAttributeValue(ham::Context ctx,
                                            ham::LinkIndex link,
                                            ham::AttributeIndex attr,
                                            ham::Time time) override;
  Result<std::vector<ham::AttributeValueEntry>> GetLinkAttributes(
      ham::Context ctx, ham::LinkIndex link, ham::Time time) override;

  Status SetGraphDemonValue(ham::Context ctx, ham::Event event,
                            const std::string& demon) override;
  Result<std::vector<ham::DemonEntry>> GetGraphDemons(ham::Context ctx,
                                                      ham::Time time) override;
  Status SetNodeDemon(ham::Context ctx, ham::NodeIndex node, ham::Event event,
                      const std::string& demon) override;
  Result<std::vector<ham::DemonEntry>> GetNodeDemons(ham::Context ctx,
                                                     ham::NodeIndex node,
                                                     ham::Time time) override;

  Result<ham::ContextInfo> CreateContext(ham::Context ctx,
                                         const std::string& name) override;
  Result<ham::Context> OpenContext(ham::Context ctx,
                                   ham::ThreadId thread) override;
  Status MergeContext(ham::Context ctx, ham::ThreadId source,
                      bool force) override;
  Result<std::vector<ham::ContextInfo>> ListContexts(ham::Context ctx) override;

  Status Checkpoint(ham::Context ctx) override;
  Result<ham::GraphStats> GetStats(ham::Context ctx) override;
  Result<ham::ThreadId> ContextThread(ham::Context ctx) override;

  // Replication protocol (forwarded verbatim; see ham_interface.h).
  Result<ham::ReplFetchResult> ReplFetch(
      const ham::ReplFetchRequest& request) override;
  Result<ham::ReplNodeStatus> ReplStatus(const std::string& directory) override;
  Result<std::vector<std::string>> ReplListGraphs(
      const std::string& root) override;
  Result<uint64_t> Promote() override;

  // True when Connect established the optional follower connection.
  bool has_follower() const { return follower_ != nullptr; }

 private:
  RemoteHam(std::string host, uint16_t port, const Options& options);

  // Sends one request and returns the reply's result payload (after
  // the status header); non-OK replies become that Status.
  //
  // Transport failures (kNetworkError / kUnavailable /
  // kDeadlineExceeded) kill the cached stream. Reconnecting and
  // re-sending happens automatically — always when the failure struck
  // before anything was sent, but after a send only for idempotent
  // methods — up to options_.max_retries extra attempts with jittered
  // exponential backoff.
  Result<std::string> Call(Method method, std::string_view args);

  // The classic one-in-flight path (also the pipelining fallback).
  Result<std::string> CallSync(Method method, std::string_view args);

  // Re-establishes stream_ (with deadlines armed). Caller holds mu_.
  Status ReconnectLocked();

  // Dials the server through Options::stream_factory (or real TCP).
  Result<std::unique_ptr<FrameStream>> Dial();

  // Pipelined path ---------------------------------------------------

  // One connection generation shared by callers and the receiver
  // thread; replaced wholesale on transport failure.
  struct PipelineConn;

  // Sync call over the pipeline: tagged send, out-of-order completion,
  // same retry/shed/backoff discipline as CallSync.
  Result<std::string> CallPipelined(Method method, std::string_view args);

  // Registers an id, sends the tagged request, returns the pending
  // state. `*sent` reports whether bytes may have reached the server
  // (governs idempotent-only resends).
  Result<std::shared_ptr<PendingCall::State>> EnqueueTagged(
      Method method, std::string_view args, bool* sent);

  // Drains replies for one connection generation; exits when the
  // stream dies, failing everything still in flight.
  void ReceiverMain(std::shared_ptr<PipelineConn> conn);
  // Drains the generation's outbound buffer to the socket. Batching
  // the writes here means a burst of pipelined calls costs one send()
  // instead of one per request.
  void SenderMain(std::shared_ptr<PipelineConn> conn);

  const std::string host_;
  const uint16_t port_;
  const Options options_;
  TimeSource* time_;  // Options::time_source or the real clock

  std::mutex mu_;  // one request in flight per connection
  std::unique_ptr<FrameStream> stream_;  // null between connections
  Random rng_;  // backoff jitter; guarded by mu_
  // Cleared the first time the server answers a trace-flagged request
  // with "unknown method" (a pre-tracing build): later requests are
  // sent plain, so one old server costs one extra round trip, ever.
  std::atomic<bool> trace_wire_ok_{true};
  // Cleared when the pipelining probe meets the same answer; calls
  // then take the sync path above.
  std::atomic<bool> pipeline_wire_ok_{true};
  std::atomic<uint64_t> next_id_override_{0};

  // Follower-read routing ---------------------------------------------

  // Resolves the shadow session for a routed read: returns false when
  // there is no follower, no shadow session, an open transaction (its
  // reads must see its own staged writes, which only the primary has),
  // or the follower is outside the staleness bounds.
  bool FollowerReadContext(ham::Context ctx, ham::Context* fctx);
  // Staleness probe with a small TTL cache so routing does not double
  // every read's round trips.
  bool FollowerFresh(const std::string& directory);
  // Applies Options::follower_remap_from/_to to a primary directory.
  std::string FollowerPath(const std::string& directory) const;

  // Runs `fn` against the follower when routing applies and it
  // succeeds; nullopt means "use the primary" (not routed, stale, or
  // the follower failed — which is counted as a fallback).
  template <typename Fn>
  auto TryFollower(ham::Context ctx, Fn&& fn)
      -> std::optional<decltype(fn(*this, ctx))> {
    ham::Context fctx;
    if (!FollowerReadContext(ctx, &fctx)) return std::nullopt;
    auto result = fn(*follower_, fctx);
    if (result.ok()) {
      NEPTUNE_METRIC_COUNT("repl.client.follower_reads", 1);
      return result;
    }
    NEPTUNE_METRIC_COUNT("repl.client.fallback_to_primary", 1);
    return std::nullopt;
  }

  std::mutex pmu_;  // guards pconn_ swaps and thread lifecycles
  std::shared_ptr<PipelineConn> pconn_;
  std::thread receiver_;
  std::thread sender_;

  // Follower connection (null unless Options::follower_host is set and
  // the dial succeeded) plus primary-session → shadow-session state.
  std::unique_ptr<RemoteHam> follower_;
  struct FollowerSession {
    uint64_t follower_session = 0;
    std::string directory;
    bool in_txn = false;
  };
  std::mutex fmu_;
  std::unordered_map<uint64_t, FollowerSession> follower_sessions_;
  uint64_t follower_status_us_ = 0;  // last staleness probe (0 = never)
  bool follower_fresh_ = false;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_REMOTE_HAM_H_

// The transport-independent half of the Neptune server: decoding a
// request payload, executing it against a HamInterface, and encoding
// the reply — plus the admission-control policy and the per-connection
// session bookkeeping. rpc::Server layers its epoll IO plane and
// worker pool on top of this; the simulation harness (src/sim) drives
// the exact same dispatch logic over an in-memory transport, so wire
// semantics exercised under simulation are the production semantics.

#ifndef NEPTUNE_RPC_DISPATCH_H_
#define NEPTUNE_RPC_DISPATCH_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/trace.h"
#include "ham/ham_interface.h"
#include "rpc/wire.h"

namespace neptune {
namespace rpc {

// The sessions a connection has opened, shared by the worker threads
// that may be executing its requests concurrently.
class SessionSet {
 public:
  void Insert(uint64_t session);
  void Erase(uint64_t session);
  // Empties the set, returning what it held (disconnect cleanup).
  std::vector<uint64_t> Drain();

 private:
  std::mutex mu_;
  std::set<uint64_t> sessions_;
};

// A request payload with its frame extensions (trace context, request
// id) stripped; `payload[offset..]` is the plain encoding starting at
// the method byte.
struct RequestEnvelope {
  std::string payload;
  size_t offset = 0;
  bool tagged = false;
  uint64_t request_id = 0;
  TraceContext remote_ctx;  // zeroed when the request came plain
};

// Parses the optional kTraceContextFlag / kRequestIdFlag extensions in
// front of `payload` and rewrites the plain method byte in place (the
// extension bytes before it are dead, so no copy — just an offset).
// Returns false on a malformed or disabled extension, with
// *error_reply set to the encoded reply to send back.
bool ParseRequestEnvelope(std::string payload, bool accept_trace_context,
                          bool accept_request_ids, RequestEnvelope* out,
                          std::string* error_reply);

// Admission-control thresholds (see Server::Options for semantics).
struct AdmissionOptions {
  int max_inflight_requests = 256;
  int shed_inflight_requests = 192;
};

// Non-zero means "refuse this method right now": above the soft mark
// only non-transactional reads are refused; above the hard cap
// everything except abort/commit/close/ping/diagnostics is.
bool ShouldShed(Method method, int inflight, const AdmissionOptions& options);

// The reply sent for a shed request: kUnavailable plus a varint
// retry-after-ms hint that RemoteHam honors.
std::string ShedReply(int inflight, uint32_t retry_after_ms);

// An encoded Corruption("malformed request: ...") reply.
std::string BadRequestReply(std::string_view what);

// An encoded Status-only reply.
std::string StatusReply(const Status& status);

// Decodes one request payload, runs it against the HAM, and returns
// the encoded reply. Sessions opened/closed by the request are tracked
// in `sessions` so a disconnect can clean them up.
class RequestDispatcher {
 public:
  explicit RequestDispatcher(ham::HamInterface* ham) : ham_(ham) {}

  std::string Handle(std::string_view request, SessionSet* sessions);

 private:
  ham::HamInterface* ham_;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_DISPATCH_H_

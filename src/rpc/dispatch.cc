#include "rpc/dispatch.h"

#include <array>

#include "common/coding.h"
#include "common/metrics.h"
#include "obs/window.h"

namespace neptune {
namespace rpc {

namespace {

using ham::Context;

// Per-method request counters, resolved once for all 256 method bytes
// so the per-request path never takes the registry lock. Unknown bytes
// all share the "rpc.request.unknown" counter.
Counter* MethodCounter(Method method) {
  static std::array<Counter*, 256>* counters = [] {
    auto* table = new std::array<Counter*, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = MetricsRegistry::Instance().GetCounter(
          std::string("rpc.request.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*counters)[static_cast<uint8_t>(method)];
}

// Decode helpers that fail by returning false; the dispatcher turns
// that into a Corruption reply.
bool GetContext(std::string_view* in, Context* ctx) {
  return GetVarint64(in, &ctx->session);
}

bool GetString(std::string_view* in, std::string* out) {
  std::string_view s;
  if (!GetLengthPrefixed(in, &s)) return false;
  out->assign(s);
  return true;
}

bool GetBool(std::string_view* in, bool* out) {
  if (in->empty()) return false;
  *out = in->front() != 0;
  in->remove_prefix(1);
  return true;
}

bool GetEvent(std::string_view* in, ham::Event* out) {
  if (in->empty()) return false;
  *out = static_cast<ham::Event>(in->front());
  in->remove_prefix(1);
  return true;
}

std::string BadRequest(std::string_view what) { return BadRequestReply(what); }

// Builds a reply from a Result<T> plus a result encoder.
template <typename T, typename Encoder>
std::string ResultReply(const Result<T>& result, Encoder encode) {
  std::string reply;
  EncodeStatusTo(result.ok() ? Status::OK() : result.status(), &reply);
  if (result.ok()) encode(*result, &reply);
  return reply;
}

}  // namespace

std::string BadRequestReply(std::string_view what) {
  std::string reply;
  EncodeStatusTo(Status::Corruption("malformed request: " + std::string(what)),
                 &reply);
  return reply;
}

std::string StatusReply(const Status& status) {
  std::string reply;
  EncodeStatusTo(status, &reply);
  return reply;
}

// ------------------------------------------------------------ sessions

void SessionSet::Insert(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.insert(session);
}

void SessionSet::Erase(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session);
}

std::vector<uint64_t> SessionSet::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out(sessions_.begin(), sessions_.end());
  sessions_.clear();
  return out;
}

// ----------------------------------------------------------- admission

bool ShouldShed(Method method, int inflight, const AdmissionOptions& options) {
  if (inflight <= options.shed_inflight_requests) return false;
  // Always admitted: operations that shrink the server's obligations
  // (finishing or abandoning a transaction, closing a session) and the
  // two diagnostics an operator needs during an overload event.
  switch (method) {
    case Method::kCommitTransaction:
    case Method::kAbortTransaction:
    case Method::kCloseGraph:
    case Method::kPing:
    case Method::kGetServerStatistics:
    case Method::kGetServerStatisticsDelta:
    case Method::kGetRecentTraces:
    case Method::kGetSlowOps:
      return false;
    default:
      break;
  }
  if (inflight > options.max_inflight_requests) return true;  // hard cap
  // Between the high-water mark and the cap: shed only the
  // non-transactional read traffic; writers keep their progress.
  return IsIdempotent(method);
}

std::string ShedReply(int inflight, uint32_t retry_after_ms) {
  // The request was refused before execution, so the client may
  // re-send ANY method safely; the varint after the status header is
  // the suggested backoff (RemoteHam honors it).
  std::string reply;
  EncodeStatusTo(Status::Unavailable("server overloaded (" +
                                     std::to_string(inflight) +
                                     " requests in flight); retry"),
                 &reply);
  PutVarint32(&reply, retry_after_ms);
  return reply;
}

// ---------------------------------------------------------- extensions

bool ParseRequestEnvelope(std::string payload, bool accept_trace_context,
                          bool accept_request_ids, RequestEnvelope* out,
                          std::string* error_reply) {
  out->offset = 0;
  out->tagged = false;
  out->request_id = 0;
  out->remote_ctx = TraceContext{};
  // Frame extensions: a flagged method byte is followed by the trace
  // context and/or a request id; strip them so Handle sees the plain
  // encoding. A server configured like an older build answers flagged
  // requests exactly as one would: "unknown method <byte>".
  if (!payload.empty()) {
    uint8_t first = static_cast<uint8_t>(payload.front());
    std::string_view rest(payload);
    rest.remove_prefix(1);
    if ((first & kTraceContextFlag) != 0) {
      if (!accept_trace_context) {
        *error_reply = BadRequest("unknown method " + std::to_string(first));
        return false;
      }
      if (!DecodeTraceContextFrom(&rest, &out->remote_ctx)) {
        *error_reply = BadRequest("trace context");
        return false;
      }
      first &= static_cast<uint8_t>(~kTraceContextFlag);
    }
    if ((first & kRequestIdFlag) != 0) {
      if (!accept_request_ids) {
        *error_reply = BadRequest("unknown method " + std::to_string(first));
        return false;
      }
      if (!GetVarint64(&rest, &out->request_id) || out->request_id == 0) {
        *error_reply = BadRequest("request id");
        return false;
      }
      first &= static_cast<uint8_t>(~kRequestIdFlag);
      out->tagged = true;
      NEPTUNE_METRIC_COUNT("rpc.server.pipelined", 1);
    }
    if (first != static_cast<uint8_t>(payload.front())) {
      // Rewrite the plain method byte in place, directly in front of
      // the args — the extension bytes before it are dead, so the
      // payload needs no copy, just an offset.
      const size_t off = payload.size() - rest.size() - 1;
      payload[off] = static_cast<char>(first);
      out->offset = off;
    }
  }
  out->payload = std::move(payload);
  return true;
}

// ------------------------------------------------------------ dispatch

std::string RequestDispatcher::Handle(std::string_view in,
                                      SessionSet* sessions) {
  if (in.empty()) return BadRequest("empty");
  const Method method = static_cast<Method>(in.front());
  in.remove_prefix(1);
  NEPTUNE_METRIC_TIMED(timer, "rpc.request_latency");
  NEPTUNE_METRIC_COUNT("rpc.requests", 1);
  MethodCounter(method)->Increment();

  Context ctx;
  switch (method) {
    case Method::kPing: {
      std::string reply = StatusReply(Status::OK());
      reply.append(in);  // echo
      return reply;
    }

    case Method::kCreateGraph: {
      std::string directory;
      uint32_t protections = 0;
      if (!GetString(&in, &directory) || !GetVarint32(&in, &protections)) {
        return BadRequest("createGraph");
      }
      return ResultReply(ham_->CreateGraph(directory, protections),
                         [](const ham::CreateGraphResult& r, std::string* out) {
                           PutVarint64(out, r.project);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDestroyGraph: {
      uint64_t project = 0;
      std::string directory;
      if (!GetVarint64(&in, &project) || !GetString(&in, &directory)) {
        return BadRequest("destroyGraph");
      }
      return StatusReply(ham_->DestroyGraph(project, directory));
    }
    case Method::kOpenGraph: {
      uint64_t project = 0;
      std::string machine;
      std::string directory;
      if (!GetVarint64(&in, &project) || !GetString(&in, &machine) ||
          !GetString(&in, &directory)) {
        return BadRequest("openGraph");
      }
      Result<Context> opened = ham_->OpenGraph(project, machine, directory);
      if (opened.ok()) sessions->Insert(opened->session);
      return ResultReply(opened, [](const Context& c, std::string* out) {
        PutVarint64(out, c.session);
      });
    }
    case Method::kCloseGraph: {
      if (!GetContext(&in, &ctx)) return BadRequest("closeGraph");
      Status status = ham_->CloseGraph(ctx);
      if (status.ok()) sessions->Erase(ctx.session);
      return StatusReply(status);
    }

    case Method::kBeginTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("begin");
      return StatusReply(ham_->BeginTransaction(ctx));
    }
    case Method::kCommitTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("commit");
      return StatusReply(ham_->CommitTransaction(ctx));
    }
    case Method::kAbortTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("abort");
      return StatusReply(ham_->AbortTransaction(ctx));
    }

    case Method::kAddNode: {
      bool archive = false;
      if (!GetContext(&in, &ctx) || !GetBool(&in, &archive)) {
        return BadRequest("addNode");
      }
      return ResultReply(ham_->AddNode(ctx, archive),
                         [](const ham::AddNodeResult& r, std::string* out) {
                           PutVarint64(out, r.node);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDeleteNode: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("deleteNode");
      }
      return StatusReply(ham_->DeleteNode(ctx, node));
    }
    case Method::kAddLink: {
      ham::LinkPt from;
      ham::LinkPt to;
      if (!GetContext(&in, &ctx) || !DecodeLinkPtFrom(&in, &from) ||
          !DecodeLinkPtFrom(&in, &to)) {
        return BadRequest("addLink");
      }
      return ResultReply(ham_->AddLink(ctx, from, to),
                         [](const ham::AddLinkResult& r, std::string* out) {
                           PutVarint64(out, r.link);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kCopyLink: {
      uint64_t link = 0;
      uint64_t time = 0;
      bool copy_source = false;
      ham::LinkPt other;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link) ||
          !GetVarint64(&in, &time) || !GetBool(&in, &copy_source) ||
          !DecodeLinkPtFrom(&in, &other)) {
        return BadRequest("copyLink");
      }
      return ResultReply(ham_->CopyLink(ctx, link, time, copy_source, other),
                         [](const ham::AddLinkResult& r, std::string* out) {
                           PutVarint64(out, r.link);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDeleteLink: {
      uint64_t link = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link)) {
        return BadRequest("deleteLink");
      }
      return StatusReply(ham_->DeleteLink(ctx, link));
    }

    case Method::kLinearizeGraph:
    case Method::kGetGraphQuery: {
      uint64_t start = 0;
      uint64_t time = 0;
      std::string node_pred;
      std::string link_pred;
      std::vector<uint64_t> node_attrs;
      std::vector<uint64_t> link_attrs;
      if (!GetContext(&in, &ctx)) return BadRequest("query");
      if (method == Method::kLinearizeGraph && !GetVarint64(&in, &start)) {
        return BadRequest("linearize start");
      }
      if (!GetVarint64(&in, &time) || !GetString(&in, &node_pred) ||
          !GetString(&in, &link_pred) ||
          !DecodeIndexVecFrom(&in, &node_attrs) ||
          !DecodeIndexVecFrom(&in, &link_attrs)) {
        return BadRequest("query args");
      }
      Result<ham::SubGraph> result =
          method == Method::kLinearizeGraph
              ? ham_->LinearizeGraph(ctx, start, time, node_pred, link_pred,
                                     node_attrs, link_attrs)
              : ham_->GetGraphQuery(ctx, time, node_pred, link_pred,
                                    node_attrs, link_attrs);
      return ResultReply(result, EncodeSubGraphTo);
    }

    case Method::kGetGraphQueryExplained: {
      uint64_t time = 0;
      std::string node_pred;
      std::string link_pred;
      std::vector<uint64_t> node_attrs;
      std::vector<uint64_t> link_attrs;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time) ||
          !GetString(&in, &node_pred) || !GetString(&in, &link_pred) ||
          !DecodeIndexVecFrom(&in, &node_attrs) ||
          !DecodeIndexVecFrom(&in, &link_attrs) || in.empty()) {
        return BadRequest("query explain args");
      }
      const uint8_t flags = static_cast<uint8_t>(in.front());
      in.remove_prefix(1);
      ham::QueryOptions options;
      options.force_scan = (flags & 1) != 0;
      options.verify = (flags & 2) != 0;
      Result<ham::QueryExplain> result = ham_->GetGraphQueryExplained(
          ctx, time, node_pred, link_pred, node_attrs, link_attrs, options);
      return ResultReply(result, EncodeQueryExplainTo);
    }

    case Method::kOpenNode: {
      uint64_t node = 0;
      uint64_t time = 0;
      std::vector<uint64_t> attrs;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &time) || !DecodeIndexVecFrom(&in, &attrs)) {
        return BadRequest("openNode");
      }
      return ResultReply(ham_->OpenNode(ctx, node, time, attrs),
                         EncodeOpenNodeResultTo);
    }
    case Method::kModifyNode: {
      uint64_t node = 0;
      uint64_t expected = 0;
      std::string contents;
      std::vector<ham::AttachmentUpdate> attachments;
      std::string explanation;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &expected) || !GetString(&in, &contents) ||
          !DecodeAttachmentUpdatesFrom(&in, &attachments) ||
          !GetString(&in, &explanation)) {
        return BadRequest("modifyNode");
      }
      return StatusReply(ham_->ModifyNode(ctx, node, expected, contents,
                                          attachments, explanation));
    }
    case Method::kGetNodeTimeStamp: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("getNodeTimeStamp");
      }
      return ResultReply(ham_->GetNodeTimeStamp(ctx, node),
                         [](const ham::Time& t, std::string* out) {
                           PutVarint64(out, t);
                         });
    }
    case Method::kChangeNodeProtection: {
      uint64_t node = 0;
      uint32_t protections = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint32(&in, &protections)) {
        return BadRequest("changeNodeProtection");
      }
      return StatusReply(ham_->ChangeNodeProtection(ctx, node, protections));
    }
    case Method::kGetNodeVersions: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("getNodeVersions");
      }
      return ResultReply(ham_->GetNodeVersions(ctx, node),
                         EncodeNodeVersionsTo);
    }
    case Method::kGetNodeDifferences: {
      uint64_t node = 0;
      uint64_t t1 = 0;
      uint64_t t2 = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &t1) || !GetVarint64(&in, &t2)) {
        return BadRequest("getNodeDifferences");
      }
      return ResultReply(ham_->GetNodeDifferences(ctx, node, t1, t2),
                         EncodeDifferencesTo);
    }

    case Method::kGetToNode:
    case Method::kGetFromNode: {
      uint64_t link = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getEndNode");
      }
      Result<ham::LinkEndResult> result =
          method == Method::kGetToNode ? ham_->GetToNode(ctx, link, time)
                                       : ham_->GetFromNode(ctx, link, time);
      return ResultReply(result,
                         [](const ham::LinkEndResult& r, std::string* out) {
                           PutVarint64(out, r.node);
                           PutVarint64(out, r.version_time);
                         });
    }

    case Method::kGetAttributes: {
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time)) {
        return BadRequest("getAttributes");
      }
      return ResultReply(ham_->GetAttributes(ctx, time),
                         EncodeAttributeEntriesTo);
    }
    case Method::kGetAttributeValues: {
      uint64_t attr = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &attr) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getAttributeValues");
      }
      return ResultReply(ham_->GetAttributeValues(ctx, attr, time),
                         EncodeStringVecTo);
    }
    case Method::kGetAttributeIndex: {
      std::string name;
      if (!GetContext(&in, &ctx) || !GetString(&in, &name)) {
        return BadRequest("getAttributeIndex");
      }
      return ResultReply(ham_->GetAttributeIndex(ctx, name),
                         [](const ham::AttributeIndex& a, std::string* out) {
                           PutVarint64(out, a);
                         });
    }

    case Method::kSetNodeAttributeValue:
    case Method::kSetLinkAttributeValue: {
      uint64_t target = 0;
      uint64_t attr = 0;
      std::string value;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr) || !GetString(&in, &value)) {
        return BadRequest("setAttributeValue");
      }
      Status status =
          method == Method::kSetNodeAttributeValue
              ? ham_->SetNodeAttributeValue(ctx, target, attr, value)
              : ham_->SetLinkAttributeValue(ctx, target, attr, value);
      return StatusReply(status);
    }
    case Method::kDeleteNodeAttribute:
    case Method::kDeleteLinkAttribute: {
      uint64_t target = 0;
      uint64_t attr = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr)) {
        return BadRequest("deleteAttribute");
      }
      Status status = method == Method::kDeleteNodeAttribute
                          ? ham_->DeleteNodeAttribute(ctx, target, attr)
                          : ham_->DeleteLinkAttribute(ctx, target, attr);
      return StatusReply(status);
    }
    case Method::kGetNodeAttributeValue:
    case Method::kGetLinkAttributeValue: {
      uint64_t target = 0;
      uint64_t attr = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr) || !GetVarint64(&in, &time)) {
        return BadRequest("getAttributeValue");
      }
      Result<std::string> result =
          method == Method::kGetNodeAttributeValue
              ? ham_->GetNodeAttributeValue(ctx, target, attr, time)
              : ham_->GetLinkAttributeValue(ctx, target, attr, time);
      return ResultReply(result, [](const std::string& v, std::string* out) {
        PutLengthPrefixed(out, v);
      });
    }
    case Method::kGetNodeAttributes:
    case Method::kGetLinkAttributes: {
      uint64_t target = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getAttributes(node/link)");
      }
      Result<std::vector<ham::AttributeValueEntry>> result =
          method == Method::kGetNodeAttributes
              ? ham_->GetNodeAttributes(ctx, target, time)
              : ham_->GetLinkAttributes(ctx, target, time);
      return ResultReply(result, EncodeAttributeValueEntriesTo);
    }

    case Method::kSetGraphDemonValue: {
      ham::Event event;
      std::string demon;
      if (!GetContext(&in, &ctx) || !GetEvent(&in, &event) ||
          !GetString(&in, &demon)) {
        return BadRequest("setGraphDemonValue");
      }
      return StatusReply(ham_->SetGraphDemonValue(ctx, event, demon));
    }
    case Method::kGetGraphDemons: {
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time)) {
        return BadRequest("getGraphDemons");
      }
      return ResultReply(ham_->GetGraphDemons(ctx, time), EncodeDemonEntriesTo);
    }
    case Method::kSetNodeDemon: {
      uint64_t node = 0;
      ham::Event event;
      std::string demon;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetEvent(&in, &event) || !GetString(&in, &demon)) {
        return BadRequest("setNodeDemon");
      }
      return StatusReply(ham_->SetNodeDemon(ctx, node, event, demon));
    }
    case Method::kGetNodeDemons: {
      uint64_t node = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getNodeDemons");
      }
      return ResultReply(ham_->GetNodeDemons(ctx, node, time),
                         EncodeDemonEntriesTo);
    }

    case Method::kCreateContext: {
      std::string name;
      if (!GetContext(&in, &ctx) || !GetString(&in, &name)) {
        return BadRequest("createContext");
      }
      return ResultReply(ham_->CreateContext(ctx, name),
                         [](const ham::ContextInfo& info, std::string* out) {
                           PutVarint64(out, info.thread);
                           PutLengthPrefixed(out, info.name);
                           PutVarint64(out, info.branched_at);
                         });
    }
    case Method::kOpenContext: {
      uint64_t thread = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &thread)) {
        return BadRequest("openContext");
      }
      Result<Context> opened = ham_->OpenContext(ctx, thread);
      if (opened.ok()) sessions->Insert(opened->session);
      return ResultReply(opened, [](const Context& c, std::string* out) {
        PutVarint64(out, c.session);
      });
    }
    case Method::kMergeContext: {
      uint64_t source = 0;
      bool force = false;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &source) ||
          !GetBool(&in, &force)) {
        return BadRequest("mergeContext");
      }
      return StatusReply(ham_->MergeContext(ctx, source, force));
    }
    case Method::kListContexts: {
      if (!GetContext(&in, &ctx)) return BadRequest("listContexts");
      return ResultReply(ham_->ListContexts(ctx), EncodeContextInfosTo);
    }

    case Method::kCheckpoint: {
      if (!GetContext(&in, &ctx)) return BadRequest("checkpoint");
      return StatusReply(ham_->Checkpoint(ctx));
    }
    case Method::kGetStats: {
      if (!GetContext(&in, &ctx)) return BadRequest("getStats");
      return ResultReply(ham_->GetStats(ctx), EncodeStatsTo);
    }
    case Method::kContextThread: {
      if (!GetContext(&in, &ctx)) return BadRequest("contextThread");
      return ResultReply(ham_->ContextThread(ctx),
                         [](const ham::ThreadId& t, std::string* out) {
                           PutVarint64(out, t);
                         });
    }

    case Method::kGetServerStatistics: {
      // Server-wide, so no Context: any client may ask, even before it
      // has opened a graph.
      std::string reply = StatusReply(Status::OK());
      MetricsRegistry::Instance().Snapshot().EncodeTo(&reply);
      return reply;
    }
    case Method::kGetServerStatisticsDelta: {
      // Windowed rates from the process-wide sample ring. A server
      // without a sampler answers elapsed_us = 0 and an empty delta —
      // still OK, so `neptune_ctl top` can tell "no sampler" from "no
      // traffic".
      uint64_t window_s = 0;
      if (!GetVarint64(&in, &window_s) || window_s == 0) {
        return BadRequest("getServerStatisticsDelta");
      }
      MetricsSnapshot delta;
      uint64_t elapsed_us = 0;
      obs::MetricsWindow::Instance().Delta(window_s * 1'000'000, &delta,
                                           &elapsed_us);
      std::string reply = StatusReply(Status::OK());
      PutVarint64(&reply, elapsed_us);
      delta.EncodeTo(&reply);
      return reply;
    }
    case Method::kGetRecentTraces: {
      // Server-wide like getServerStatistics.
      std::string reply = StatusReply(Status::OK());
      EncodeTracesTo(Tracer::Instance().RecentTraces(), &reply);
      return reply;
    }
    case Method::kGetSlowOps: {
      std::string reply = StatusReply(Status::OK());
      EncodeSpansTo(Tracer::Instance().SlowOps(), &reply);
      return reply;
    }

    case Method::kOpenNodes: {
      // Batch openNode: one round trip, per-item status — one missing
      // node must not fail its siblings.
      uint64_t time = 0;
      std::vector<uint64_t> attrs;
      std::vector<uint64_t> nodes;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time) ||
          !DecodeIndexVecFrom(&in, &attrs) ||
          !DecodeIndexVecFrom(&in, &nodes)) {
        return BadRequest("openNodes");
      }
      NEPTUNE_METRIC_COUNT("rpc.server.batch_items", nodes.size());
      std::string reply = StatusReply(Status::OK());
      PutVarint64(&reply, nodes.size());
      for (uint64_t node : nodes) {
        Result<ham::OpenNodeResult> r = ham_->OpenNode(ctx, node, time, attrs);
        EncodeStatusTo(r.ok() ? Status::OK() : r.status(), &reply);
        if (r.ok()) EncodeOpenNodeResultTo(*r, &reply);
      }
      return reply;
    }
    case Method::kGetAttributeValuesBatch: {
      // Batch attribute read over mixed node/link targets:
      //   ctx | time | count | { u8 is_link | entity | attr }*
      // Reply: count | { status | value-if-ok }*
      uint64_t time = 0;
      uint64_t count = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time) ||
          !GetVarint64(&in, &count) || count > in.size()) {
        return BadRequest("getAttributeValuesBatch");
      }
      NEPTUNE_METRIC_COUNT("rpc.server.batch_items", count);
      std::string reply = StatusReply(Status::OK());
      PutVarint64(&reply, count);
      for (uint64_t i = 0; i < count; ++i) {
        bool is_link = false;
        uint64_t entity = 0;
        uint64_t attr = 0;
        if (!GetBool(&in, &is_link) || !GetVarint64(&in, &entity) ||
            !GetVarint64(&in, &attr)) {
          return BadRequest("getAttributeValuesBatch item");
        }
        Result<std::string> r =
            is_link ? ham_->GetLinkAttributeValue(ctx, entity, attr, time)
                    : ham_->GetNodeAttributeValue(ctx, entity, attr, time);
        EncodeStatusTo(r.ok() ? Status::OK() : r.status(), &reply);
        if (r.ok()) PutLengthPrefixed(&reply, *r);
      }
      return reply;
    }
    case Method::kLinearizeAndFetch: {
      // linearizeGraph plus the contents of every node it returns, in
      // one round trip — the SubGraph carries structure and attributes
      // but not contents, so a browser prefetching a document would
      // otherwise pay one openNode round trip per node.
      uint64_t start = 0;
      uint64_t time = 0;
      std::string node_pred;
      std::string link_pred;
      std::vector<uint64_t> node_attrs;
      std::vector<uint64_t> link_attrs;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &start) ||
          !GetVarint64(&in, &time) || !GetString(&in, &node_pred) ||
          !GetString(&in, &link_pred) ||
          !DecodeIndexVecFrom(&in, &node_attrs) ||
          !DecodeIndexVecFrom(&in, &link_attrs)) {
        return BadRequest("linearizeAndFetch");
      }
      Result<ham::SubGraph> graph = ham_->LinearizeGraph(
          ctx, start, time, node_pred, link_pred, node_attrs, link_attrs);
      if (!graph.ok()) return StatusReply(graph.status());
      NEPTUNE_METRIC_COUNT("rpc.server.batch_items", graph->nodes.size());
      std::string reply = StatusReply(Status::OK());
      EncodeSubGraphTo(*graph, &reply);
      PutVarint64(&reply, graph->nodes.size());
      for (const ham::SubGraphNode& n : graph->nodes) {
        Result<ham::OpenNodeResult> r = ham_->OpenNode(ctx, n.node, time, {});
        EncodeStatusTo(r.ok() ? Status::OK() : r.status(), &reply);
        if (r.ok()) {
          PutLengthPrefixed(&reply, r->contents);
          PutVarint64(&reply, r->current_version_time);
        }
      }
      return reply;
    }

    case Method::kReplFetch: {
      // No Context: the follower's replicator is not a graph session.
      ham::ReplFetchRequest request;
      if (!DecodeReplFetchRequestFrom(&in, &request)) {
        return BadRequest("replFetch");
      }
      return ResultReply(ham_->ReplFetch(request), EncodeReplFetchResultTo);
    }
    case Method::kReplStatus: {
      std::string directory;
      if (!GetString(&in, &directory)) return BadRequest("replStatus");
      return ResultReply(ham_->ReplStatus(directory), EncodeReplNodeStatusTo);
    }
    case Method::kReplListGraphs: {
      std::string root;
      if (!GetString(&in, &root)) return BadRequest("replListGraphs");
      return ResultReply(ham_->ReplListGraphs(root), EncodeStringVecTo);
    }
    case Method::kReplPromote: {
      return ResultReply(ham_->Promote(),
                         [](const uint64_t& term, std::string* out) {
                           PutVarint64(out, term);
                         });
    }
  }
  return BadRequest("unknown method " +
                    std::to_string(static_cast<int>(method)));
}

}  // namespace rpc
}  // namespace neptune

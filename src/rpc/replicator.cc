#include "rpc/replicator.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace neptune {
namespace rpc {

namespace {
// Requesting an impossible future epoch is the follower's way of
// demanding a snapshot resync (the primary answers kSnapshot for any
// epoch above its live one).
constexpr uint64_t kForceSnapshotEpoch = ~0ull;
}  // namespace

Replicator::Replicator(ham::Ham* ham, RemoteHam* primary, Options options)
    : ham_(ham),
      primary_(primary),
      options_(std::move(options)),
      time_(options_.time_source != nullptr ? options_.time_source
                                            : RealTimeSource()),
      follower_id_(options_.follower_id.empty() ? options_.local_root
                                                : options_.follower_id),
      rng_(options_.seed != 0
               ? options_.seed
               : static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this))),
      backoff_(options_.backoff_initial_ms, options_.backoff_max_ms, &rng_) {}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Main(); });
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string Replicator::LocalDir(const std::string& rel) const {
  return rel.empty() ? options_.local_root : JoinPath(options_.local_root, rel);
}

std::string Replicator::PrimaryDir(const std::string& rel) const {
  return rel.empty() ? options_.primary_root
                     : JoinPath(options_.primary_root, rel);
}

Replicator::Progress Replicator::progress(const std::string& rel) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cursors_.find(rel);
  return it == cursors_.end() ? Progress() : it->second.p;
}

bool Replicator::AllCaughtUp() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.empty()) return false;
  for (const std::string& rel : graphs_) {
    auto it = cursors_.find(rel);
    if (it == cursors_.end() || !it->second.p.caught_up) return false;
  }
  return true;
}

uint64_t Replicator::error_cycles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_cycles_;
}

bool Replicator::SleepOrStop(uint64_t ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] { return stop_; });
  return !stop_;
}

Status Replicator::RefreshGraphList() {
  NEPTUNE_ASSIGN_OR_RETURN(std::vector<std::string> graphs,
                           primary_->ReplListGraphs(options_.primary_root));
  std::lock_guard<std::mutex> lock(mu_);
  graphs_ = std::move(graphs);
  last_list_us_ = time_->NowMicros();
  return Status::OK();
}

void Replicator::InitCursor(const std::string& local_dir, Cursor* cursor) {
  // Resume from whatever the local store holds; any failure to read it
  // (absent, corrupt, half-synced) leaves the cursor at zero, which
  // the primary answers with a snapshot.
  cursor->p = Progress();
  Result<ham::ReplNodeStatus> status = ham_->ReplStatus(local_dir);
  if (status.ok()) {
    cursor->p.term = status->term;
    cursor->p.epoch = status->epoch;
    cursor->p.offset = status->wal_bytes;
  }
  cursor->initialized = true;
  cursor->strikes = 0;
  cursor->force_snapshot = false;
}

bool Replicator::TailOne(const std::string& rel, Cursor* cursor) {
  // The root span of one fetch/apply hop. The RemoteHam call below
  // opens its rpc.client.replFetch child under this and ships the
  // context to the primary, so a sampled trace on the follower shows
  // the whole replication fan-in: repl.tail -> rpc.client.replFetch
  // (+ the primary's rpc.server.replFetch) -> the local apply.
  NEPTUNE_TRACE_SPAN(tail_span, "repl.tail");
  if (tail_span.active()) {
    tail_span.Annotate("graph=" + (rel.empty() ? std::string("<root>") : rel) +
                       " offset=" + std::to_string(cursor->p.offset));
  }
  const std::string local = LocalDir(rel);
  if (!cursor->initialized) InitCursor(local, cursor);

  ham::ReplFetchRequest request;
  request.directory = PrimaryDir(rel);
  request.follower_id = follower_id_;
  request.term = cursor->p.term;
  request.epoch = cursor->force_snapshot ? kForceSnapshotEpoch
                                         : cursor->p.epoch;
  request.offset = cursor->force_snapshot ? 0 : cursor->p.offset;
  request.max_bytes = options_.max_bytes;
  // Long-poll only once drained; while behind, fetch back-to-back.
  // With long_poll off (simulation), never park on the primary — the
  // caller paces caught-up cycles from RunCycle()'s returned delay.
  request.wait_ms = options_.long_poll && cursor->p.caught_up &&
                            !cursor->force_snapshot
                        ? options_.poll_wait_ms
                        : 0;

  Result<ham::ReplFetchResult> fetch = primary_->ReplFetch(request);
  if (!fetch.ok()) {
    cursor->p.caught_up = false;
    return false;
  }
  ham::ReplFetchResult reply = std::move(*fetch);

  if (reply.action == ham::ReplFetchResult::Action::kStaleTerm ||
      reply.term < cursor->p.term) {
    // The "primary" carries an older fencing term than we do — it was
    // deposed (we were promoted past it, or re-pointed at a stale
    // node). Nothing it serves may land here.
    cursor->p.stale_primary_rejects++;
    cursor->p.caught_up = false;
    NEPTUNE_METRIC_COUNT("repl.follower.stale_primary_rejects", 1);
    NEPTUNE_LOG(Warn) << "event=repl_stale_primary graph=" << rel
                      << " primary_term=" << reply.term
                      << " local_term=" << cursor->p.term;
    return false;
  }

  static Gauge* term_gauge = MetricsRegistry::Instance().GetGauge("repl.term");
  term_gauge->Set(static_cast<int64_t>(reply.term));

  if (reply.action == ham::ReplFetchResult::Action::kSnapshot) {
    Status installed;
    {
      static Histogram* install_hist = MetricsRegistry::Instance().GetHistogram(
          "repl.follower.snapshot_install_us");
      ScopedTimer install_timer(install_hist, nullptr, time_);
      installed = ham_->ReplicaInstallSnapshot(
          local, reply.meta, reply.payload, reply.epoch, reply.term);
    }
    if (!installed.ok()) {
      NEPTUNE_LOG(Warn) << "event=repl_snapshot_install_failed graph=" << rel
                        << " code=" << StatusCodeToString(installed.code());
      return false;
    }
    cursor->p.term = reply.term;
    cursor->p.epoch = reply.epoch;
    cursor->p.offset = 0;
    cursor->p.resyncs++;
    cursor->p.caught_up = false;
    cursor->strikes = 0;
    cursor->force_snapshot = false;
    NEPTUNE_METRIC_COUNT("repl.follower.resyncs", 1);
    ham_->NoteReplProgress(local, reply.epoch_bytes, false);
    return true;
  }

  // kTail ------------------------------------------------------------
  cursor->p.term = reply.term;
  std::string payload = std::move(reply.payload);
  if (chunk_mutator_for_test && !payload.empty()) {
    chunk_mutator_for_test(&payload);
  }
  if (!payload.empty()) {
    Result<ham::ReplicaApplyResult> applied = [&] {
      static Histogram* apply_hist =
          MetricsRegistry::Instance().GetHistogram("repl.follower.apply_us");
      ScopedTimer apply_timer(apply_hist, nullptr, time_);
      return ham_->ReplicaApply(local, cursor->p.epoch, payload);
    }();
    if (!applied.ok()) {
      if (applied.status().IsCorruption()) {
        // The stream decoded as frames but not as transactions, or
        // apply itself failed: local state is not trustworthy anymore.
        cursor->force_snapshot = true;
        NEPTUNE_METRIC_COUNT("repl.follower.forced_resyncs", 1);
      } else if (applied.status().IsFailedPrecondition()) {
        // Epoch skew (e.g. a crash between apply and roll): re-derive
        // the cursor from the durable local state.
        cursor->initialized = false;
      }
      cursor->p.caught_up = false;
      return false;
    }
    cursor->p.offset += applied->applied_bytes;
    if (applied->applied_bytes > 0) cursor->p.chunks_applied++;
    if (applied->truncated_tail) {
      // Valid prefix landed; the rest of the chunk was torn/corrupt on
      // the wire. Re-fetch from the new offset — but repeated zero
      // progress at one offset means the corruption is not transient,
      // so force a snapshot resync.
      if (applied->applied_bytes == 0 &&
          ++cursor->strikes >= options_.max_corrupt_strikes) {
        cursor->force_snapshot = true;
        cursor->strikes = 0;
        NEPTUNE_METRIC_COUNT("repl.follower.forced_resyncs", 1);
      }
      cursor->p.caught_up = false;
      return true;
    }
    cursor->strikes = 0;
  }

  const bool drained = cursor->p.offset >= reply.epoch_bytes;
  if (reply.epoch_end && drained) {
    // The primary checkpointed this generation; roll our own store to
    // the matching epoch (deterministic replay keeps them aligned).
    Status rolled = ham_->ReplicaRoll(local, cursor->p.epoch + 1);
    if (!rolled.ok()) {
      cursor->initialized = false;
      return false;
    }
    cursor->p.epoch++;
    cursor->p.offset = 0;
    cursor->p.rolls++;
    cursor->p.caught_up = false;
    return true;
  }
  cursor->p.caught_up = drained;
  const uint64_t lag =
      reply.epoch_bytes > cursor->p.offset
          ? reply.epoch_bytes - cursor->p.offset
          : 0;
  ham_->NoteReplProgress(local, lag, cursor->p.caught_up);
  return true;
}

void Replicator::UpdateApplyLag() {
  static Gauge* apply_lag =
      MetricsRegistry::Instance().GetGauge("repl.apply_lag_us");
  const uint64_t now = time_->NowMicros();
  if (AllCaughtUp()) {
    last_caught_up_us_ = now;
    apply_lag->Set(0);
    return;
  }
  // Behind (or partitioned from the primary): lag is the time since we
  // last had every graph drained. The first cycles after start count
  // from the first attempt, so a follower that can never connect still
  // shows its lag growing.
  if (last_caught_up_us_ == 0) last_caught_up_us_ = now;
  apply_lag->Set(static_cast<int64_t>(now - last_caught_up_us_));
}

int64_t Replicator::RunCycle() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return -1;
  }
  if (!ham_->follower()) {
    // Promoted out from under us: the engine now rejects replica
    // writes, so pulling is pointless. Exit quietly.
    NEPTUNE_LOG(Warn) << "event=repl_tail_exit reason=promoted";
    return -1;
  }
  uint64_t last_list_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_list_us = last_list_us_;
  }
  if (last_list_us == 0 ||
      time_->NowMicros() - last_list_us > options_.list_refresh_ms * 1000) {
    Status listed = RefreshGraphList();
    if (!listed.ok()) {
      // Back off with graphs possibly stale.
      {
        std::lock_guard<std::mutex> lock(mu_);
        error_cycles_++;
      }
      NEPTUNE_METRIC_COUNT("repl.follower.backoffs", 1);
      UpdateApplyLag();
      return static_cast<int64_t>(backoff_.NextDelayMs());
    }
  }
  std::vector<std::string> graphs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    graphs = graphs_;
  }
  if (graphs.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    last_list_us_ = 0;  // re-list immediately next cycle
    return static_cast<int64_t>(options_.list_refresh_ms);
  }
  bool all_ok = true;
  for (const std::string& rel : graphs) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return -1;
    }
    Cursor cursor;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cursor = cursors_[rel];
    }
    const bool ok = TailOne(rel, &cursor);
    {
      std::lock_guard<std::mutex> lock(mu_);
      cursors_[rel] = cursor;
    }
    all_ok = all_ok && ok;
  }
  UpdateApplyLag();
  if (!all_ok) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      error_cycles_++;
    }
    NEPTUNE_METRIC_COUNT("repl.follower.backoffs", 1);
    return static_cast<int64_t>(backoff_.NextDelayMs());
  }
  backoff_.Reset();
  // Without server-side long-polling a drained follower would spin on
  // empty fetches; pace it at the poll budget instead.
  if (!options_.long_poll && AllCaughtUp()) {
    return static_cast<int64_t>(options_.poll_wait_ms);
  }
  return 0;
}

void Replicator::Main() {
  for (;;) {
    const int64_t delay_ms = RunCycle();
    if (delay_ms < 0) return;
    if (delay_ms > 0 && !SleepOrStop(static_cast<uint64_t>(delay_ms))) return;
  }
}

}  // namespace rpc
}  // namespace neptune

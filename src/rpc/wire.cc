#include "rpc/wire.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"

namespace neptune {
namespace rpc {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kCreateGraph: return "createGraph";
    case Method::kDestroyGraph: return "destroyGraph";
    case Method::kOpenGraph: return "openGraph";
    case Method::kCloseGraph: return "closeGraph";
    case Method::kBeginTransaction: return "beginTransaction";
    case Method::kCommitTransaction: return "commitTransaction";
    case Method::kAbortTransaction: return "abortTransaction";
    case Method::kAddNode: return "addNode";
    case Method::kDeleteNode: return "deleteNode";
    case Method::kAddLink: return "addLink";
    case Method::kCopyLink: return "copyLink";
    case Method::kDeleteLink: return "deleteLink";
    case Method::kLinearizeGraph: return "linearizeGraph";
    case Method::kGetGraphQuery: return "getGraphQuery";
    case Method::kOpenNode: return "openNode";
    case Method::kModifyNode: return "modifyNode";
    case Method::kGetNodeTimeStamp: return "getNodeTimeStamp";
    case Method::kChangeNodeProtection: return "changeNodeProtection";
    case Method::kGetNodeVersions: return "getNodeVersions";
    case Method::kGetNodeDifferences: return "getNodeDifferences";
    case Method::kGetToNode: return "getToNode";
    case Method::kGetFromNode: return "getFromNode";
    case Method::kGetAttributes: return "getAttributes";
    case Method::kGetAttributeValues: return "getAttributeValues";
    case Method::kGetAttributeIndex: return "getAttributeIndex";
    case Method::kSetNodeAttributeValue: return "setNodeAttributeValue";
    case Method::kDeleteNodeAttribute: return "deleteNodeAttribute";
    case Method::kGetNodeAttributeValue: return "getNodeAttributeValue";
    case Method::kGetNodeAttributes: return "getNodeAttributes";
    case Method::kSetLinkAttributeValue: return "setLinkAttributeValue";
    case Method::kDeleteLinkAttribute: return "deleteLinkAttribute";
    case Method::kGetLinkAttributeValue: return "getLinkAttributeValue";
    case Method::kGetLinkAttributes: return "getLinkAttributes";
    case Method::kSetGraphDemonValue: return "setGraphDemonValue";
    case Method::kGetGraphDemons: return "getGraphDemons";
    case Method::kSetNodeDemon: return "setNodeDemon";
    case Method::kGetNodeDemons: return "getNodeDemons";
    case Method::kCreateContext: return "createContext";
    case Method::kOpenContext: return "openContext";
    case Method::kMergeContext: return "mergeContext";
    case Method::kListContexts: return "listContexts";
    case Method::kCheckpoint: return "checkpoint";
    case Method::kGetStats: return "getStats";
    case Method::kContextThread: return "contextThread";
    case Method::kPing: return "ping";
    case Method::kGetServerStatistics: return "getServerStatistics";
    case Method::kGetRecentTraces: return "getRecentTraces";
    case Method::kGetSlowOps: return "getSlowOps";
    case Method::kOpenNodes: return "openNodes";
    case Method::kGetAttributeValuesBatch: return "getAttributeValuesBatch";
    case Method::kLinearizeAndFetch: return "linearizeAndFetch";
    case Method::kGetGraphQueryExplained: return "getGraphQueryExplained";
    case Method::kReplFetch: return "replFetch";
    case Method::kReplStatus: return "replStatus";
    case Method::kReplListGraphs: return "replListGraphs";
    case Method::kReplPromote: return "replPromote";
    case Method::kGetServerStatisticsDelta: return "getServerStatisticsDelta";
  }
  return "unknown";
}

bool IsIdempotent(Method method) {
  switch (method) {
    case Method::kPing:
    case Method::kGetServerStatistics:
    case Method::kGetServerStatisticsDelta:
    case Method::kGetRecentTraces:
    case Method::kGetSlowOps:
    case Method::kLinearizeGraph:
    case Method::kGetGraphQuery:
    case Method::kOpenNode:
    case Method::kGetNodeTimeStamp:
    case Method::kGetNodeVersions:
    case Method::kGetNodeDifferences:
    case Method::kGetToNode:
    case Method::kGetFromNode:
    case Method::kGetAttributes:
    case Method::kGetAttributeValues:
    case Method::kGetAttributeIndex:
    case Method::kGetNodeAttributeValue:
    case Method::kGetNodeAttributes:
    case Method::kGetLinkAttributeValue:
    case Method::kGetLinkAttributes:
    case Method::kGetGraphDemons:
    case Method::kGetNodeDemons:
    case Method::kListContexts:
    case Method::kGetStats:
    case Method::kContextThread:
    case Method::kOpenNodes:
    case Method::kGetAttributeValuesBatch:
    case Method::kLinearizeAndFetch:
    case Method::kGetGraphQueryExplained:
    // Replication reads: a fetch is a pure read of committed WAL bytes
    // (the ack it carries is monotonic and safe to repeat), so a
    // follower may re-send after a transport failure. Promote is a
    // mutation and is excluded.
    case Method::kReplFetch:
    case Method::kReplStatus:
    case Method::kReplListGraphs:
      return true;
    default:
      return false;
  }
}

// ------------------------------------------------- trace-context codec

void EncodeTraceContextTo(const TraceContext& ctx, std::string* out) {
  PutFixed64(out, ctx.trace_id);
  PutFixed64(out, ctx.parent_span_id);
  out->push_back(ctx.sampled ? '\x01' : '\x00');
}

bool DecodeTraceContextFrom(std::string_view* in, TraceContext* ctx) {
  if (!GetFixed64(in, &ctx->trace_id) ||
      !GetFixed64(in, &ctx->parent_span_id) || in->empty()) {
    return false;
  }
  ctx->sampled = ((*in)[0] & 1) != 0;
  in->remove_prefix(1);
  return true;
}

// ------------------------------------------------------------- framing

std::string FramePayload(std::string_view payload) {
  std::string out;
  out.reserve(8 + payload.size());
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed32(&out, crc32c::Mask(crc32c::Value(payload)));
  out.append(payload);
  return out;
}

void AppendFrame(std::string_view prefix, std::string_view payload,
                 std::string* out) {
  out->reserve(out->size() + 8 + prefix.size() + payload.size());
  PutFixed32(out, static_cast<uint32_t>(prefix.size() + payload.size()));
  PutFixed32(out,
             crc32c::Mask(crc32c::Extend(crc32c::Value(prefix), payload)));
  out->append(prefix);
  out->append(payload);
}

void FrameDecoder::set_limits(uint32_t max_frame_bytes,
                              size_t max_buffered_bytes) {
  if (max_frame_bytes > 0) {
    max_frame_bytes_ = std::min(max_frame_bytes, kMaxFrameBytes);
  }
  if (max_buffered_bytes > 0) {
    // Never below one max-sized frame plus its header, or legal frames
    // could no longer complete.
    max_buffered_bytes_ =
        std::max(max_buffered_bytes, 8 + static_cast<size_t>(max_frame_bytes_));
  }
}

Status FrameDecoder::Feed(std::string_view bytes,
                          std::vector<std::string>* out) {
  // Checking the length prefix before buffering the body is what keeps
  // memory use proportional to bytes actually received, not to what a
  // hostile prefix claims.
  if (buffer_.size() + bytes.size() > max_buffered_bytes_) {
    return Status::InvalidArgument(
        "peer exceeded per-connection buffer limit of " +
        std::to_string(max_buffered_bytes_) + " bytes");
  }
  buffer_.append(bytes);
  while (buffer_.size() >= 8) {
    std::string_view view = buffer_;
    uint32_t length = 0;
    uint32_t masked_crc = 0;
    GetFixed32(&view, &length);
    GetFixed32(&view, &masked_crc);
    if (length > max_frame_bytes_) {
      return Status::InvalidArgument(
          "frame length " + std::to_string(length) + " exceeds limit of " +
          std::to_string(max_frame_bytes_) + " bytes");
    }
    if (view.size() < length) break;  // incomplete frame, wait for more
    std::string_view payload = view.substr(0, length);
    if (crc32c::Value(payload) != crc32c::Unmask(masked_crc)) {
      return Status::Corruption("frame checksum mismatch");
    }
    out->emplace_back(payload);
    buffer_.erase(0, 8 + length);
  }
  return Status::OK();
}

// --------------------------------------------------------------- values

void EncodeStatusTo(const Status& status, std::string* out) {
  out->push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(out, status.message());
}

bool DecodeStatusFrom(std::string_view* in, Status* status) {
  if (in->empty()) return false;
  const uint8_t code = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  std::string_view message;
  if (!GetLengthPrefixed(in, &message)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) return false;
  *status = Status::FromCode(static_cast<StatusCode>(code), message);
  return true;
}

void EncodeLinkPtTo(const ham::LinkPt& pt, std::string* out) {
  PutVarint64(out, pt.node);
  PutVarint64(out, pt.position);
  PutVarint64(out, pt.time);
  out->push_back(pt.track_current ? 1 : 0);
}

bool DecodeLinkPtFrom(std::string_view* in, ham::LinkPt* pt) {
  if (!GetVarint64(in, &pt->node) || !GetVarint64(in, &pt->position) ||
      !GetVarint64(in, &pt->time) || in->empty()) {
    return false;
  }
  pt->track_current = in->front() != 0;
  in->remove_prefix(1);
  return true;
}

void EncodeStringVecTo(const std::vector<std::string>& v, std::string* out) {
  PutVarint64(out, v.size());
  for (const auto& s : v) PutLengthPrefixed(out, s);
}

bool DecodeStringVecFrom(std::string_view* in, std::vector<std::string>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view s;
    if (!GetLengthPrefixed(in, &s)) return false;
    v->emplace_back(s);
  }
  return true;
}

void EncodeIndexVecTo(const std::vector<uint64_t>& v, std::string* out) {
  PutVarint64(out, v.size());
  for (uint64_t x : v) PutVarint64(out, x);
}

bool DecodeIndexVecFrom(std::string_view* in, std::vector<uint64_t>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    if (!GetVarint64(in, &x)) return false;
    v->push_back(x);
  }
  return true;
}

namespace {

void EncodeOptionalValues(
    const std::vector<std::optional<std::string>>& values, std::string* out) {
  PutVarint64(out, values.size());
  for (const auto& value : values) {
    out->push_back(value.has_value() ? 1 : 0);
    if (value.has_value()) PutLengthPrefixed(out, *value);
  }
}

bool DecodeOptionalValues(std::string_view* in,
                          std::vector<std::optional<std::string>>* values) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  values->clear();
  values->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (in->empty()) return false;
    const bool has = in->front() != 0;
    in->remove_prefix(1);
    if (has) {
      std::string_view s;
      if (!GetLengthPrefixed(in, &s)) return false;
      values->emplace_back(std::string(s));
    } else {
      values->emplace_back(std::nullopt);
    }
  }
  return true;
}

void EncodeVersionEntries(const std::vector<ham::VersionEntry>& v,
                          std::string* out) {
  PutVarint64(out, v.size());
  for (const auto& e : v) {
    PutVarint64(out, e.time);
    PutLengthPrefixed(out, e.explanation);
  }
}

bool DecodeVersionEntries(std::string_view* in,
                          std::vector<ham::VersionEntry>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::VersionEntry e;
    std::string_view expl;
    if (!GetVarint64(in, &e.time) || !GetLengthPrefixed(in, &expl)) {
      return false;
    }
    e.explanation.assign(expl);
    v->push_back(std::move(e));
  }
  return true;
}

}  // namespace

void EncodeSubGraphTo(const ham::SubGraph& graph, std::string* out) {
  PutVarint64(out, graph.nodes.size());
  for (const auto& node : graph.nodes) {
    PutVarint64(out, node.node);
    EncodeOptionalValues(node.attribute_values, out);
  }
  PutVarint64(out, graph.links.size());
  for (const auto& link : graph.links) {
    PutVarint64(out, link.link);
    PutVarint64(out, link.from);
    PutVarint64(out, link.to);
    EncodeOptionalValues(link.attribute_values, out);
  }
}

bool DecodeSubGraphFrom(std::string_view* in, ham::SubGraph* graph) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  graph->nodes.clear();
  graph->nodes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::SubGraphNode node;
    if (!GetVarint64(in, &node.node) ||
        !DecodeOptionalValues(in, &node.attribute_values)) {
      return false;
    }
    graph->nodes.push_back(std::move(node));
  }
  if (!GetVarint64(in, &n)) return false;
  graph->links.clear();
  graph->links.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::SubGraphLink link;
    if (!GetVarint64(in, &link.link) || !GetVarint64(in, &link.from) ||
        !GetVarint64(in, &link.to) ||
        !DecodeOptionalValues(in, &link.attribute_values)) {
      return false;
    }
    graph->links.push_back(std::move(link));
  }
  return true;
}

void EncodeQueryExplainTo(const ham::QueryExplain& r, std::string* out) {
  EncodeSubGraphTo(r.graph, out);
  const ham::QueryPlan& plan = r.plan;
  PutVarint64(out, static_cast<uint64_t>(plan.kind));
  uint8_t flags = 0;
  if (plan.eligible) flags |= 1;
  if (plan.rebuilt) flags |= 2;
  if (plan.verified) flags |= 4;
  if (plan.verify_match) flags |= 8;
  out->push_back(static_cast<char>(flags));
  PutVarint64(out, plan.conjuncts);
  PutVarint64(out, plan.candidates);
  PutVarint64(out, plan.residual_evals);
  PutVarint64(out, plan.nodes_matched);
  PutVarint64(out, plan.links_matched);
  PutVarint64(out, plan.applied_deltas);
}

bool DecodeQueryExplainFrom(std::string_view* in, ham::QueryExplain* r) {
  if (!DecodeSubGraphFrom(in, &r->graph)) return false;
  uint64_t kind = 0;
  if (!GetVarint64(in, &kind) ||
      kind > static_cast<uint64_t>(ham::QueryPlan::Kind::kIntersect)) {
    return false;
  }
  ham::QueryPlan& plan = r->plan;
  plan.kind = static_cast<ham::QueryPlan::Kind>(kind);
  if (in->empty()) return false;
  const uint8_t flags = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  plan.eligible = (flags & 1) != 0;
  plan.rebuilt = (flags & 2) != 0;
  plan.verified = (flags & 4) != 0;
  plan.verify_match = (flags & 8) != 0;
  uint64_t conjuncts = 0;
  if (!GetVarint64(in, &conjuncts) || !GetVarint64(in, &plan.candidates) ||
      !GetVarint64(in, &plan.residual_evals) ||
      !GetVarint64(in, &plan.nodes_matched) ||
      !GetVarint64(in, &plan.links_matched) ||
      !GetVarint64(in, &plan.applied_deltas)) {
    return false;
  }
  plan.conjuncts = static_cast<uint32_t>(conjuncts);
  return true;
}

void EncodeOpenNodeResultTo(const ham::OpenNodeResult& r, std::string* out) {
  PutLengthPrefixed(out, r.contents);
  PutVarint64(out, r.attachments.size());
  for (const auto& a : r.attachments) {
    PutVarint64(out, a.link);
    out->push_back(a.is_source_end ? 1 : 0);
    PutVarint64(out, a.position);
    out->push_back(a.track_current ? 1 : 0);
  }
  EncodeOptionalValues(r.attribute_values, out);
  PutVarint64(out, r.current_version_time);
}

bool DecodeOpenNodeResultFrom(std::string_view* in, ham::OpenNodeResult* r) {
  std::string_view contents;
  if (!GetLengthPrefixed(in, &contents)) return false;
  r->contents.assign(contents);
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  r->attachments.clear();
  r->attachments.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::Attachment a;
    if (!GetVarint64(in, &a.link) || in->empty()) return false;
    a.is_source_end = in->front() != 0;
    in->remove_prefix(1);
    if (!GetVarint64(in, &a.position) || in->empty()) return false;
    a.track_current = in->front() != 0;
    in->remove_prefix(1);
    r->attachments.push_back(a);
  }
  if (!DecodeOptionalValues(in, &r->attribute_values)) return false;
  return GetVarint64(in, &r->current_version_time);
}

void EncodeNodeVersionsTo(const ham::NodeVersions& v, std::string* out) {
  EncodeVersionEntries(v.major, out);
  EncodeVersionEntries(v.minor, out);
}

bool DecodeNodeVersionsFrom(std::string_view* in, ham::NodeVersions* v) {
  return DecodeVersionEntries(in, &v->major) &&
         DecodeVersionEntries(in, &v->minor);
}

void EncodeDifferencesTo(const std::vector<delta::Difference>& diffs,
                         std::string* out) {
  PutVarint64(out, diffs.size());
  for (const auto& d : diffs) {
    out->push_back(static_cast<char>(d.kind));
    PutVarint64(out, d.old_begin);
    PutVarint64(out, d.old_end);
    PutVarint64(out, d.new_begin);
    PutVarint64(out, d.new_end);
    EncodeStringVecTo(d.old_lines, out);
    EncodeStringVecTo(d.new_lines, out);
  }
}

bool DecodeDifferencesFrom(std::string_view* in,
                           std::vector<delta::Difference>* diffs) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  diffs->clear();
  diffs->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    delta::Difference d;
    if (in->empty()) return false;
    d.kind = static_cast<delta::DifferenceKind>(in->front());
    in->remove_prefix(1);
    uint64_t a = 0, b = 0, c = 0, e = 0;
    if (!GetVarint64(in, &a) || !GetVarint64(in, &b) || !GetVarint64(in, &c) ||
        !GetVarint64(in, &e) || !DecodeStringVecFrom(in, &d.old_lines) ||
        !DecodeStringVecFrom(in, &d.new_lines)) {
      return false;
    }
    d.old_begin = a;
    d.old_end = b;
    d.new_begin = c;
    d.new_end = e;
    diffs->push_back(std::move(d));
  }
  return true;
}

void EncodeAttributeEntriesTo(const std::vector<ham::AttributeEntry>& v,
                              std::string* out) {
  PutVarint64(out, v.size());
  for (const auto& e : v) {
    PutLengthPrefixed(out, e.name);
    PutVarint64(out, e.index);
  }
}

bool DecodeAttributeEntriesFrom(std::string_view* in,
                                std::vector<ham::AttributeEntry>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::AttributeEntry e;
    std::string_view name;
    if (!GetLengthPrefixed(in, &name) || !GetVarint64(in, &e.index)) {
      return false;
    }
    e.name.assign(name);
    v->push_back(std::move(e));
  }
  return true;
}

void EncodeAttributeValueEntriesTo(
    const std::vector<ham::AttributeValueEntry>& v, std::string* out) {
  PutVarint64(out, v.size());
  for (const auto& e : v) {
    PutLengthPrefixed(out, e.name);
    PutVarint64(out, e.index);
    PutLengthPrefixed(out, e.value);
  }
}

bool DecodeAttributeValueEntriesFrom(
    std::string_view* in, std::vector<ham::AttributeValueEntry>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::AttributeValueEntry e;
    std::string_view name;
    std::string_view value;
    if (!GetLengthPrefixed(in, &name) || !GetVarint64(in, &e.index) ||
        !GetLengthPrefixed(in, &value)) {
      return false;
    }
    e.name.assign(name);
    e.value.assign(value);
    v->push_back(std::move(e));
  }
  return true;
}

void EncodeDemonEntriesTo(const std::vector<ham::DemonEntry>& v,
                          std::string* out) {
  PutVarint64(out, v.size());
  for (const auto& e : v) {
    out->push_back(static_cast<char>(e.event));
    PutLengthPrefixed(out, e.demon);
  }
}

bool DecodeDemonEntriesFrom(std::string_view* in,
                            std::vector<ham::DemonEntry>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::DemonEntry e;
    if (in->empty()) return false;
    e.event = static_cast<ham::Event>(in->front());
    in->remove_prefix(1);
    std::string_view demon;
    if (!GetLengthPrefixed(in, &demon)) return false;
    e.demon.assign(demon);
    v->push_back(std::move(e));
  }
  return true;
}

void EncodeContextInfosTo(const std::vector<ham::ContextInfo>& v,
                          std::string* out) {
  PutVarint64(out, v.size());
  for (const auto& e : v) {
    PutVarint64(out, e.thread);
    PutLengthPrefixed(out, e.name);
    PutVarint64(out, e.branched_at);
  }
}

bool DecodeContextInfosFrom(std::string_view* in,
                            std::vector<ham::ContextInfo>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::ContextInfo e;
    std::string_view name;
    if (!GetVarint64(in, &e.thread) || !GetLengthPrefixed(in, &name) ||
        !GetVarint64(in, &e.branched_at)) {
      return false;
    }
    e.name.assign(name);
    v->push_back(std::move(e));
  }
  return true;
}

void EncodeAttachmentUpdatesTo(const std::vector<ham::AttachmentUpdate>& v,
                               std::string* out) {
  PutVarint64(out, v.size());
  for (const auto& e : v) {
    PutVarint64(out, e.link);
    out->push_back(e.is_source_end ? 1 : 0);
    PutVarint64(out, e.position);
  }
}

bool DecodeAttachmentUpdatesFrom(std::string_view* in,
                                 std::vector<ham::AttachmentUpdate>* v) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ham::AttachmentUpdate e;
    if (!GetVarint64(in, &e.link) || in->empty()) return false;
    e.is_source_end = in->front() != 0;
    in->remove_prefix(1);
    if (!GetVarint64(in, &e.position)) return false;
    v->push_back(e);
  }
  return true;
}

void EncodeStatsTo(const ham::GraphStats& stats, std::string* out) {
  PutVarint64(out, stats.node_count);
  PutVarint64(out, stats.link_count);
  PutVarint64(out, stats.total_node_records);
  PutVarint64(out, stats.total_link_records);
  PutVarint64(out, stats.thread_count);
  PutVarint64(out, stats.attribute_count);
  PutVarint64(out, stats.wal_bytes);
  PutVarint64(out, stats.current_time);
}

bool DecodeStatsFrom(std::string_view* in, ham::GraphStats* stats) {
  return GetVarint64(in, &stats->node_count) &&
         GetVarint64(in, &stats->link_count) &&
         GetVarint64(in, &stats->total_node_records) &&
         GetVarint64(in, &stats->total_link_records) &&
         GetVarint64(in, &stats->thread_count) &&
         GetVarint64(in, &stats->attribute_count) &&
         GetVarint64(in, &stats->wal_bytes) &&
         GetVarint64(in, &stats->current_time);
}

void EncodeReplFetchRequestTo(const ham::ReplFetchRequest& r,
                              std::string* out) {
  PutLengthPrefixed(out, r.directory);
  PutLengthPrefixed(out, r.follower_id);
  PutVarint64(out, r.term);
  PutVarint64(out, r.epoch);
  PutVarint64(out, r.offset);
  PutVarint64(out, r.max_bytes);
  PutVarint64(out, r.wait_ms);
}

bool DecodeReplFetchRequestFrom(std::string_view* in,
                                ham::ReplFetchRequest* r) {
  std::string_view directory, follower_id;
  if (!GetLengthPrefixed(in, &directory) ||
      !GetLengthPrefixed(in, &follower_id) || !GetVarint64(in, &r->term) ||
      !GetVarint64(in, &r->epoch) || !GetVarint64(in, &r->offset) ||
      !GetVarint64(in, &r->max_bytes) || !GetVarint64(in, &r->wait_ms)) {
    return false;
  }
  r->directory = std::string(directory);
  r->follower_id = std::string(follower_id);
  return true;
}

void EncodeReplFetchResultTo(const ham::ReplFetchResult& r, std::string* out) {
  out->push_back(static_cast<char>(r.action));
  PutVarint64(out, r.term);
  PutVarint64(out, r.epoch);
  PutVarint64(out, r.offset);
  out->push_back(r.epoch_end ? '\x01' : '\x00');
  PutVarint64(out, r.epoch_bytes);
  PutLengthPrefixed(out, r.meta);
  PutLengthPrefixed(out, r.payload);
}

bool DecodeReplFetchResultFrom(std::string_view* in, ham::ReplFetchResult* r) {
  if (in->empty()) return false;
  const uint8_t action = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  if (action >
      static_cast<uint8_t>(ham::ReplFetchResult::Action::kStaleTerm)) {
    return false;
  }
  r->action = static_cast<ham::ReplFetchResult::Action>(action);
  if (!GetVarint64(in, &r->term) || !GetVarint64(in, &r->epoch) ||
      !GetVarint64(in, &r->offset)) {
    return false;
  }
  if (in->empty()) return false;
  r->epoch_end = (*in)[0] != '\x00';
  in->remove_prefix(1);
  std::string_view meta, payload;
  if (!GetVarint64(in, &r->epoch_bytes) || !GetLengthPrefixed(in, &meta) ||
      !GetLengthPrefixed(in, &payload)) {
    return false;
  }
  r->meta = std::string(meta);
  r->payload = std::string(payload);
  return true;
}

void EncodeReplNodeStatusTo(const ham::ReplNodeStatus& s, std::string* out) {
  PutVarint64(out, s.term);
  out->push_back(s.follower ? '\x01' : '\x00');
  PutVarint64(out, s.epoch);
  PutVarint64(out, s.wal_bytes);
  PutVarint64(out, s.lag_bytes);
  PutVarint64(out, s.behind_ms);
}

bool DecodeReplNodeStatusFrom(std::string_view* in, ham::ReplNodeStatus* s) {
  if (!GetVarint64(in, &s->term) || in->empty()) return false;
  s->follower = (*in)[0] != '\x00';
  in->remove_prefix(1);
  return GetVarint64(in, &s->epoch) && GetVarint64(in, &s->wal_bytes) &&
         GetVarint64(in, &s->lag_bytes) && GetVarint64(in, &s->behind_ms);
}

}  // namespace rpc
}  // namespace neptune

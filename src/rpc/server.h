// The Neptune HAM server: accepts TCP connections on localhost and
// serves the wire protocol against a HamInterface (normally the local
// ham::Ham engine). One thread per connection; requests on a
// connection are answered in order. Sessions opened by a connection
// are closed automatically when it disconnects — a crashed client
// aborts its open transaction, which the HAM recovers from completely.

#ifndef NEPTUNE_RPC_SERVER_H_
#define NEPTUNE_RPC_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/result.h"
#include "ham/ham_interface.h"
#include "rpc/socket.h"

namespace neptune {
namespace rpc {

class Server {
 public:
  explicit Server(ham::HamInterface* ham) : ham_(ham) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:`port` (0 = pick a free port) and starts serving.
  // Returns the bound port.
  Result<uint16_t> Start(uint16_t port);

  // Stops accepting, disconnects all clients, joins all threads.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(FrameStream* stream);

  // Handles one request payload; returns the reply payload.
  // Context handles opened/closed by this connection are tracked in
  // `sessions` so disconnects can clean up.
  std::string HandleRequest(std::string_view request,
                            std::set<uint64_t>* sessions);

  ham::HamInterface* ham_;
  std::unique_ptr<Listener> listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;  // guards streams_ and threads_
  std::vector<std::unique_ptr<FrameStream>> streams_;
  std::vector<std::thread> threads_;
  std::thread accept_thread_;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_SERVER_H_

// The Neptune HAM server: accepts TCP connections on localhost and
// serves the wire protocol against a HamInterface (normally the local
// ham::Ham engine). One thread per connection; requests on a
// connection are answered in order. Sessions opened by a connection
// are closed automatically when it disconnects — a crashed client
// aborts its open transaction, which the HAM recovers from completely.

#ifndef NEPTUNE_RPC_SERVER_H_
#define NEPTUNE_RPC_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/result.h"
#include "ham/ham_interface.h"
#include "rpc/socket.h"

namespace neptune {
namespace rpc {

class Server {
 public:
  // Self-protection knobs; the defaults keep a lightly loaded server
  // indistinguishable from the pre-limit behavior.
  struct Options {
    // Largest request/reply payload accepted on a connection; a
    // hostile length prefix beyond this is rejected without allocating
    // (see FrameDecoder::set_limits). Clamped to kMaxFrameBytes.
    uint32_t max_frame_bytes = kMaxFrameBytes;
    // Bytes buffered per connection for an incomplete inbound frame.
    // 0 derives max_frame_bytes + 64KiB of slack.
    size_t max_conn_buffered_bytes = 0;
    // Load shedding: above `shed_inflight_requests` concurrently
    // handled requests, non-transactional reads are refused with
    // kUnavailable plus a retry-after-ms hint; above
    // `max_inflight_requests` everything except abort/commit/close/
    // ping/stats is refused (those reduce load or are needed to see
    // what is happening).
    int max_inflight_requests = 256;
    int shed_inflight_requests = 192;
    uint32_t retry_after_ms = 50;
    // Connections silent for longer than this are reaped — their
    // sessions closed (aborting any open transaction) and the socket
    // dropped. 0 disables reaping.
    int idle_timeout_ms = 0;
    // Accept the kTraceContextFlag request extension (common/trace.h).
    // false makes this server answer flagged requests exactly like a
    // pre-tracing build ("unknown method"), which tests use to prove
    // the client's downgrade path works against old servers.
    bool accept_trace_context = true;
  };

  explicit Server(ham::HamInterface* ham) : Server(ham, Options()) {}
  Server(ham::HamInterface* ham, Options options)
      : ham_(ham), options_(options) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:`port` (0 = pick a free port) and starts serving.
  // Returns the bound port.
  Result<uint16_t> Start(uint16_t port);

  // Stops accepting, disconnects all clients, joins all threads.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(FrameStream* stream);

  // Admission control: non-zero means "refuse this method right now";
  // the value distinguishes soft (reads only) from hard shedding.
  bool ShouldShed(Method method, int inflight) const;

  // Handles one request payload; returns the reply payload.
  // Context handles opened/closed by this connection are tracked in
  // `sessions` so disconnects can clean up.
  std::string HandleRequest(std::string_view request,
                            std::set<uint64_t>* sessions);

  ham::HamInterface* ham_;
  Options options_;
  std::unique_ptr<Listener> listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};

  std::mutex mu_;  // guards streams_ and threads_
  std::vector<std::unique_ptr<FrameStream>> streams_;
  std::vector<std::thread> threads_;
  std::thread accept_thread_;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_SERVER_H_

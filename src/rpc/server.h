// The Neptune HAM server: accepts TCP connections on localhost and
// serves the wire protocol against a HamInterface (normally the local
// ham::Ham engine).
//
// Since PR 6 the server is event-driven: a small set of IO loops
// (epoll on Linux, poll elsewhere — rpc/poller.h) do nonblocking reads
// into per-connection FrameDecoder buffers and nonblocking writes from
// per-connection outbound queues, while a fixed worker pool executes
// the decoded requests against the HAM. Requests carrying the
// kRequestIdFlag extension may complete out of order — that is how a
// pipelined client keeps N requests in flight on one connection —
// while plain requests keep the historical one-at-a-time, in-order
// contract. Sessions opened by a connection are closed automatically
// when it disconnects — a crashed client aborts its open transaction,
// which the HAM recovers from completely.

#ifndef NEPTUNE_RPC_SERVER_H_
#define NEPTUNE_RPC_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/trace.h"
#include "ham/ham_interface.h"
#include "rpc/dispatch.h"
#include "rpc/poller.h"
#include "rpc/socket.h"

namespace neptune {
namespace rpc {

class Server {
 public:
  // Self-protection knobs; the defaults keep a lightly loaded server
  // indistinguishable from the pre-limit behavior.
  struct Options {
    // Largest request/reply payload accepted on a connection; a
    // hostile length prefix beyond this is rejected without allocating
    // (see FrameDecoder::set_limits). Clamped to kMaxFrameBytes.
    uint32_t max_frame_bytes = kMaxFrameBytes;
    // Bytes buffered per connection for an incomplete inbound frame.
    // 0 derives max_frame_bytes + 64KiB of slack.
    size_t max_conn_buffered_bytes = 0;
    // Load shedding: above `shed_inflight_requests` concurrently
    // handled requests, non-transactional reads are refused with
    // kUnavailable plus a retry-after-ms hint; above
    // `max_inflight_requests` everything except abort/commit/close/
    // ping/stats is refused (those reduce load or are needed to see
    // what is happening). Queued-but-not-yet-executing requests count.
    int max_inflight_requests = 256;
    int shed_inflight_requests = 192;
    uint32_t retry_after_ms = 50;
    // Connections silent for longer than this are reaped — their
    // sessions closed (aborting any open transaction) and the socket
    // dropped. 0 disables reaping.
    int idle_timeout_ms = 0;
    // Accept the kTraceContextFlag request extension (common/trace.h).
    // false makes this server answer flagged requests exactly like a
    // pre-tracing build ("unknown method"), which tests use to prove
    // the client's downgrade path works against old servers.
    bool accept_trace_context = true;
    // Accept the kRequestIdFlag request extension (pipelining). false
    // emulates a pre-pipelining server the same way, proving a
    // pipelined client degrades to one request in flight.
    bool accept_request_ids = true;
    // Event-loop sizing: IO loops multiplex connections; workers
    // execute requests. Values < 1 are clamped to 1.
    int io_threads = 1;
    int worker_threads = 4;
    // On Stop(), how long to keep flushing replies to peers that have
    // stopped reading before force-closing them. In-flight requests
    // are always run to completion regardless.
    int drain_timeout_ms = 5000;
    // Clock used for the idle reaper, drain deadline, and activity
    // stamps. nullptr = the process-wide real clock.
    TimeSource* time_source = nullptr;
  };

  explicit Server(ham::HamInterface* ham) : Server(ham, Options()) {}
  Server(ham::HamInterface* ham, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:`port` (0 = pick a free port) and starts serving.
  // Returns the bound port.
  Result<uint16_t> Start(uint16_t port);

  // Stops accepting, drains in-flight requests (their replies are
  // flushed, bounded by drain_timeout_ms for unresponsive peers),
  // disconnects all clients, joins all threads.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  struct Conn;
  struct IoLoop;

  // One unit for the worker pool: either a decoded request or the
  // disconnect cleanup for a connection that is gone.
  struct Work {
    std::shared_ptr<Conn> conn;
    std::string request;      // received payload, extensions rewritten
    size_t request_off = 0;   // plain request starts here (method byte)
    bool tagged = false;
    uint64_t request_id = 0;
    TraceContext remote_ctx;  // zeroed when the request came plain
    std::vector<uint64_t> cleanup_sessions;
    bool is_cleanup = false;
  };

  void IoLoopMain(IoLoop* loop);
  void WorkerMain();

  // IO-thread helpers (each runs on `loop`'s thread only).
  void AcceptReady(IoLoop* loop);
  void ReadReady(IoLoop* loop, const std::shared_ptr<Conn>& conn);
  void FlushConn(IoLoop* loop, const std::shared_ptr<Conn>& conn);
  void DestroyConn(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                   bool discard_output);
  void MaybeDestroyConn(IoLoop* loop, const std::shared_ptr<Conn>& conn);
  void ReapIdleConns(IoLoop* loop);

  // Parses the request extensions and either appends the decoded work
  // to `ready` (enqueued in one batch per read) or writes an immediate
  // error reply.
  void DispatchRequest(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                       std::string payload, std::vector<Work>* ready);

  // Appends a framed reply (id_prefix + payload) to the connection's
  // outbound queue. May be called from any thread. When `notify` is
  // false the caller is responsible for waking the owning IO loop.
  void QueueReply(const std::shared_ptr<Conn>& conn, std::string_view payload,
                  std::string_view id_prefix = {}, bool notify = true);

  void EnqueueWork(Work work);
  // Single-lock enqueue of several requests decoded from one read.
  void EnqueueWorkBatch(std::vector<Work>* works);
  // Executes one decoded request (worker thread).
  void ExecuteRequest(Work* work);

  int64_t Now() const;

  ham::HamInterface* ham_;
  Options options_;
  // Decode/execute/encode lives in RequestDispatcher (rpc/dispatch.h),
  // shared with the simulation harness.
  RequestDispatcher dispatcher_;
  TimeSource* time_;
  std::unique_ptr<Listener> listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};
  std::atomic<size_t> next_loop_{0};
  std::atomic<int64_t> drain_deadline_us_{0};

  std::vector<std::unique_ptr<IoLoop>> loops_;

  // Worker pool: a shared queue drained by worker_threads threads.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_queue_;
  bool workers_stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_SERVER_H_

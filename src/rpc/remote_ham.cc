#include "rpc/remote_ham.h"

#include <algorithm>
#include <array>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/trace.h"

namespace neptune {
namespace rpc {

namespace {

using ham::Context;

constexpr char kTruncatedReply[] = "truncated reply";

void PutContext(std::string* out, Context ctx) {
  PutVarint64(out, ctx.session);
}

void PutBool(std::string* out, bool v) { out->push_back(v ? 1 : 0); }

// Failures of the pipe itself, as opposed to answers from the server.
bool IsTransportError(const Status& status) {
  return status.IsNetworkError() || status.IsUnavailable() ||
         status.IsDeadlineExceeded();
}

// Per-method client span names ("rpc.client.openNode"), pre-interned
// for all 256 method bytes (same idiom as the server's MethodCounter).
uint32_t ClientSpanNameId(Method method) {
  static std::array<uint32_t, 256>* names = [] {
    auto* table = new std::array<uint32_t, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = Tracer::Instance().InternName(
          std::string("rpc.client.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*names)[static_cast<uint8_t>(method)];
}

// A pre-tracing server answers a trace-flagged method byte with this
// Corruption message (see Server::HandleRequest's default case); the
// request was never executed, so the client may downgrade and re-send.
bool IsUnknownMethodReply(const Status& status) {
  return status.IsCorruption() &&
         status.message().rfind("malformed request: unknown method", 0) == 0;
}

}  // namespace

RemoteHam::RemoteHam(std::string host, uint16_t port, const Options& options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      time_(options.time_source != nullptr ? options.time_source
                                           : RealTimeSource()),
      rng_(options.retry_seed != 0
               ? options.retry_seed
               : static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this))) {}

Result<std::unique_ptr<RemoteHam>> RemoteHam::Connect(const std::string& host,
                                                      uint16_t port) {
  return Connect(host, port, Options());
}

Result<std::unique_ptr<RemoteHam>> RemoteHam::Connect(const std::string& host,
                                                      uint16_t port,
                                                      const Options& options) {
  auto client =
      std::unique_ptr<RemoteHam>(new RemoteHam(host, port, options));
  // The ping both verifies liveness and performs the initial connect
  // (with the same retry/backoff policy every later call gets).
  NEPTUNE_RETURN_IF_ERROR(client->Ping());
  if (!options.follower_host.empty()) {
    // The follower connection is best-effort: every routed read falls
    // back to the primary, so a dead follower only costs the routing.
    Options follower_options = options;
    follower_options.follower_host.clear();
    follower_options.follower_port = 0;
    Result<std::unique_ptr<RemoteHam>> follower = Connect(
        options.follower_host, options.follower_port, follower_options);
    if (follower.ok()) {
      client->follower_ = std::move(*follower);
    } else {
      NEPTUNE_METRIC_COUNT("repl.client.follower_connect_failed", 1);
    }
  }
  return client;
}

Result<std::unique_ptr<FrameStream>> RemoteHam::Dial() {
  if (options_.stream_factory) {
    return options_.stream_factory(host_, port_, options_.connect_timeout_ms);
  }
  return FrameStream::Connect(host_, port_, options_.connect_timeout_ms);
}

Status RemoteHam::ReconnectLocked() {
  NEPTUNE_ASSIGN_OR_RETURN(std::unique_ptr<FrameStream> stream, Dial());
  NEPTUNE_RETURN_IF_ERROR(
      stream->SetTimeouts(options_.send_timeout_ms, options_.recv_timeout_ms));
  stream_ = std::move(stream);
  NEPTUNE_METRIC_COUNT("rpc.client.reconnects", 1);
  return Status::OK();
}

Result<std::string> RemoteHam::Call(Method method, std::string_view args) {
  if (options_.pipeline &&
      pipeline_wire_ok_.load(std::memory_order_relaxed)) {
    return CallPipelined(method, args);
  }
  return CallSync(method, args);
}

Result<std::string> RemoteHam::CallSync(Method method, std::string_view args) {
  // The client half of the request's trace: the server parents its
  // spans under this one via the propagated context, so the gap
  // between this span and the server's is wire + queueing time.
  ScopedSpan span(ClientSpanNameId(method));

  std::string request;
  request.reserve(1 + args.size());
  request.push_back(static_cast<char>(method));
  request.append(args);

  std::lock_guard<std::mutex> lock(mu_);
  Backoff backoff(options_.backoff_initial_ms, options_.backoff_max_ms, &rng_);
  // Prepend the trace-context extension when this call is being
  // traced and the server is not known to predate the extension.
  bool flagged = false;
  if (span.active() && trace_wire_ok_.load(std::memory_order_relaxed)) {
    const TraceContext ctx = ScopedSpan::CurrentContext();
    if (ctx.valid()) {
      std::string ext;
      ext.reserve(1 + 17 + args.size());
      ext.push_back(static_cast<char>(static_cast<uint8_t>(method) |
                                      kTraceContextFlag));
      EncodeTraceContextTo(ctx, &ext);
      ext.append(args);
      request = std::move(ext);
      flagged = true;
    }
  }

  Status last;
  for (uint32_t attempt = 0;; ++attempt) {
    // `sent` distinguishes "the pipe broke before the request left"
    // (always safe to retry) from "the request may have executed"
    // (safe only for idempotent methods).
    bool sent = false;
    if (stream_ == nullptr) {
      last = ReconnectLocked();
    } else {
      last = Status::OK();
    }
    if (last.ok()) {
      sent = true;
      last = stream_->SendFrame(request);
      if (last.ok()) {
        Result<std::string> reply = stream_->RecvFrame();
        if (reply.ok()) {
          std::string_view in = *reply;
          Status status;
          if (!DecodeStatusFrom(&in, &status)) {
            return Status::Corruption("malformed reply status");
          }
          // An Unavailable reply carrying a varint body is the
          // server's load-shed refusal with a retry-after-ms hint. The
          // request was rejected *before* execution, so re-sending is
          // safe even for mutations — the stream stays up and the
          // retry waits at least the hinted backoff.
          uint32_t retry_after_ms = 0;
          if (status.IsUnavailable() && !in.empty() &&
              GetVarint32(&in, &retry_after_ms)) {
            if (attempt >= options_.max_retries) return status;
            NEPTUNE_METRIC_COUNT("rpc.client.shed_retries", 1);
            span.Annotate("shed_retry=1");
            uint64_t delay = std::max<uint64_t>(retry_after_ms, 1);
            // Full jitter in [delay/2, delay] spreads the herd of shed
            // clients back out.
            delay = delay / 2 + rng_.Uniform(delay / 2 + 1);
            time_->SleepMicros(delay * 1000);
            continue;
          }
          if (flagged && IsUnknownMethodReply(status)) {
            // A pre-tracing server balked at the flagged method byte;
            // the request never executed, so re-sending plain is safe
            // (even for mutations). Remember the downgrade so every
            // later call on this client skips the extension.
            trace_wire_ok_.store(false, std::memory_order_relaxed);
            NEPTUNE_METRIC_COUNT("rpc.client.trace_downgrades", 1);
            span.Annotate("trace_wire=downgraded");
            request.clear();
            request.push_back(static_cast<char>(method));
            request.append(args);
            flagged = false;
            continue;
          }
          NEPTUNE_RETURN_IF_ERROR(status);
          return std::string(in);
        }
        last = reply.status();
      }
      // The connection is no longer in a known state (a partial frame
      // may be stranded in either direction): drop it.
      stream_.reset();
    }
    if (last.IsDeadlineExceeded()) {
      NEPTUNE_METRIC_COUNT("rpc.client.deadline_exceeded", 1);
    }
    if (!IsTransportError(last)) return last;
    if (sent && !IsIdempotent(method)) return last;
    if (attempt >= options_.max_retries) return last;
    NEPTUNE_METRIC_COUNT("rpc.client.retries", 1);
    span.Annotate("retry=" + std::to_string(attempt + 1));
    // Shared jittered-exponential policy (common/backoff.h) keeps
    // reconnect storms spread out.
    time_->SleepMicros(backoff.DelayForAttemptMs(static_cast<int>(attempt)) *
                       1000);
  }
}

// ---------------------------------------------------------- pipeline

struct RemoteHam::PendingCall::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;      // transport/decode failure, or OK
  std::string reply;  // the reply payload (id stripped) when OK

  void Fulfill(Status s, std::string r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (done) return;
      done = true;
      status = std::move(s);
      reply = std::move(r);
    }
    cv.notify_all();
  }

  // Blocks for the reply frame; returns it with the status header
  // still in place.
  Result<std::string> WaitRaw() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done; });
    if (!status.ok()) return status;
    return std::move(reply);
  }
};

Result<std::string> RemoteHam::PendingCall::Wait() {
  if (state_ == nullptr) {
    return Status::InvalidArgument("PendingCall already waited on");
  }
  auto state = std::move(state_);
  NEPTUNE_ASSIGN_OR_RETURN(std::string raw, state->WaitRaw());
  std::string_view in = raw;
  Status status;
  if (!DecodeStatusFrom(&in, &status)) {
    return Status::Corruption("malformed reply status");
  }
  NEPTUNE_RETURN_IF_ERROR(status);
  return std::string(in);
}

// One connection generation. Writers serialize on `mu` (SendFrame is
// not otherwise thread-safe); the receiver thread takes `mu` only
// briefly to match a reply to its id. A transport failure marks the
// generation broken; the next call builds a fresh one.
struct RemoteHam::PipelineConn {
  std::mutex mu;
  std::condition_variable cv;  // slot free / probe settled / broken
  std::unique_ptr<FrameStream> stream;
  bool confirmed = false;  // a tagged reply has been parsed
  bool broken = false;
  Status error;
  uint64_t next_id = 1;
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall::State>> inflight;
  // Framed requests waiting for the sender thread. Appending here
  // under mu (same hold as the id registration) keeps the wire order
  // equal to the registration order.
  std::string outbuf;
  std::condition_variable send_cv;
  bool sender_stop = false;

  // Caller holds mu. Fails everything in flight, wakes everyone.
  void BreakLocked(const Status& status) {
    if (!broken) {
      broken = true;
      error = status;
      if (stream != nullptr) stream->Close();
    }
    auto failed = std::move(inflight);
    inflight.clear();
    cv.notify_all();
    send_cv.notify_all();
    mu.unlock();  // Fulfill takes per-pending locks; drop ours first
    for (auto& [id, pending] : failed) {
      pending->Fulfill(status, "");
    }
    mu.lock();
  }
};

RemoteHam::~RemoteHam() {
  {
    std::lock_guard<std::mutex> lock(pmu_);
    if (pconn_ != nullptr) {
      std::lock_guard<std::mutex> clock(pconn_->mu);
      pconn_->sender_stop = true;
      pconn_->send_cv.notify_all();
      if (pconn_->stream != nullptr) pconn_->stream->Close();
    }
  }
  if (receiver_.joinable()) receiver_.join();
  if (sender_.joinable()) sender_.join();
}

void RemoteHam::SenderMain(std::shared_ptr<PipelineConn> conn) {
  std::string out;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->send_cv.wait(lock, [&] {
        return conn->sender_stop || conn->broken || !conn->outbuf.empty();
      });
      if (conn->sender_stop || conn->broken) return;
      out.clear();
      out.swap(conn->outbuf);
    }
    Status sent = conn->stream->SendBytes(out);
    if (!sent.ok()) {
      std::unique_lock<std::mutex> lock(conn->mu);
      if (!conn->broken) conn->BreakLocked(sent);
      return;
    }
  }
}

void RemoteHam::ReceiverMain(std::shared_ptr<PipelineConn> conn) {
  for (;;) {
    Result<std::string> frame = conn->stream->RecvFrame();
    std::unique_lock<std::mutex> lock(conn->mu);
    if (!frame.ok()) {
      conn->BreakLocked(frame.status());
      return;
    }
    std::string_view in = *frame;
    if (!conn->confirmed) {
      // Probe phase: an old server answers the tagged probe with an
      // UNtagged "unknown method" error. Only that exact shape
      // triggers the downgrade; anything else must be a tagged reply.
      std::string_view untagged = *frame;
      Status status;
      if (DecodeStatusFrom(&untagged, &status) &&
          IsUnknownMethodReply(status)) {
        pipeline_wire_ok_.store(false, std::memory_order_relaxed);
        NEPTUNE_METRIC_COUNT("rpc.client.pipeline_downgrades", 1);
        conn->BreakLocked(status);
        return;
      }
    }
    uint64_t id = 0;
    if (!GetVarint64(&in, &id)) {
      conn->BreakLocked(Status::Corruption("malformed reply id"));
      return;
    }
    conn->confirmed = true;
    std::shared_ptr<PendingCall::State> pending;
    auto it = conn->inflight.find(id);
    if (it != conn->inflight.end()) {
      pending = std::move(it->second);
      conn->inflight.erase(it);
    }
    conn->cv.notify_all();  // a slot freed; the probe may have settled
    lock.unlock();
    // A reply for an unknown id (already failed locally) is dropped.
    if (pending != nullptr) pending->Fulfill(Status::OK(), std::string(in));
  }
}

Result<std::shared_ptr<RemoteHam::PendingCall::State>>
RemoteHam::EnqueueTagged(Method method, std::string_view args, bool* sent) {
  *sent = false;
  std::shared_ptr<PipelineConn> conn;
  {
    std::lock_guard<std::mutex> lock(pmu_);
    bool need_fresh = pconn_ == nullptr;
    if (!need_fresh) {
      std::lock_guard<std::mutex> clock(pconn_->mu);
      need_fresh = pconn_->broken;
    }
    if (need_fresh) {
      // The previous generation's receiver and sender exit as soon as
      // its stream breaks (BreakLocked wakes both); neither touches
      // pmu_, so joining under it is safe.
      if (receiver_.joinable()) receiver_.join();
      if (sender_.joinable()) sender_.join();
      auto fresh = std::make_shared<PipelineConn>();
      NEPTUNE_ASSIGN_OR_RETURN(fresh->stream, Dial());
      NEPTUNE_RETURN_IF_ERROR(fresh->stream->SetTimeouts(
          options_.send_timeout_ms, options_.recv_timeout_ms));
      if (pconn_ != nullptr) NEPTUNE_METRIC_COUNT("rpc.client.reconnects", 1);
      pconn_ = fresh;
      receiver_ = std::thread([this, fresh] { ReceiverMain(fresh); });
      sender_ = std::thread([this, fresh] { SenderMain(fresh); });
    }
    conn = pconn_;
  }

  const uint32_t max_inflight = std::max<uint32_t>(options_.max_inflight, 1);
  std::unique_lock<std::mutex> lock(conn->mu);
  // Until the probe's reply proves the server understands request ids,
  // exactly one request rides the connection.
  conn->cv.wait(lock, [&] {
    if (conn->broken) return true;
    if (!conn->confirmed) return conn->inflight.empty();
    return conn->inflight.size() < max_inflight;
  });
  if (conn->broken) return conn->error;

  uint64_t id;
  const uint64_t override_id =
      next_id_override_.exchange(0, std::memory_order_relaxed);
  if (override_id != 0) conn->next_id = override_id;
  do {
    id = conn->next_id++;
    if (conn->next_id == 0) conn->next_id = 1;  // ids wrap, skipping 0
  } while (id == 0 || conn->inflight.count(id) != 0);

  std::string request;
  uint8_t flags = static_cast<uint8_t>(method) | kRequestIdFlag;
  TraceContext trace_ctx = ScopedSpan::CurrentContext();
  const bool traced =
      trace_ctx.valid() && trace_wire_ok_.load(std::memory_order_relaxed);
  if (traced) flags |= kTraceContextFlag;
  request.reserve(1 + 17 + 10 + args.size());
  request.push_back(static_cast<char>(flags));
  if (traced) EncodeTraceContextTo(trace_ctx, &request);
  PutVarint64(&request, id);
  request.append(args);

  if (request.size() > conn->stream->max_frame_bytes()) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(request.size()) +
        " bytes exceeds limit of " +
        std::to_string(conn->stream->max_frame_bytes()));
  }
  auto pending = std::make_shared<PendingCall::State>();
  conn->inflight.emplace(id, pending);
  *sent = true;
  // Hand the framed request to the sender thread: a burst of calls
  // coalesces into one send() syscall, and a send failure surfaces as
  // BreakLocked failing every pending call (this one included).
  AppendFrame("", request, &conn->outbuf);
  conn->send_cv.notify_one();
  return pending;
}

Result<std::string> RemoteHam::CallPipelined(Method method,
                                             std::string_view args) {
  ScopedSpan span(ClientSpanNameId(method));
  Status last;
  for (uint32_t attempt = 0;; ++attempt) {
    bool sent = false;
    auto pending = EnqueueTagged(method, args, &sent);
    Result<std::string> raw =
        pending.ok() ? (*pending)->WaitRaw() : pending.status();
    if (raw.ok()) {
      std::string_view in = *raw;
      Status status;
      if (!DecodeStatusFrom(&in, &status)) {
        return Status::Corruption("malformed reply status");
      }
      // Load-shed refusal: rejected before execution, so re-send after
      // the hinted backoff (same as the sync path).
      uint32_t retry_after_ms = 0;
      if (status.IsUnavailable() && !in.empty() &&
          GetVarint32(&in, &retry_after_ms)) {
        if (attempt >= options_.max_retries) return status;
        NEPTUNE_METRIC_COUNT("rpc.client.shed_retries", 1);
        span.Annotate("shed_retry=1");
        uint64_t delay = std::max<uint64_t>(retry_after_ms, 1);
        {
          std::lock_guard<std::mutex> lock(mu_);
          delay = delay / 2 + rng_.Uniform(delay / 2 + 1);
        }
        time_->SleepMicros(delay * 1000);
        continue;
      }
      NEPTUNE_RETURN_IF_ERROR(status);
      return std::string(in);
    }
    last = raw.status();
    if (IsUnknownMethodReply(last) &&
        !pipeline_wire_ok_.load(std::memory_order_relaxed)) {
      // The probe met a pre-pipelining server; the request never
      // executed, so re-sending one-in-flight is safe for any method.
      span.Annotate("pipeline=downgraded");
      return CallSync(method, args);
    }
    if (last.IsDeadlineExceeded()) {
      NEPTUNE_METRIC_COUNT("rpc.client.deadline_exceeded", 1);
    }
    if (!IsTransportError(last)) return last;
    if (sent && !IsIdempotent(method)) return last;
    if (attempt >= options_.max_retries) return last;
    NEPTUNE_METRIC_COUNT("rpc.client.retries", 1);
    span.Annotate("retry=" + std::to_string(attempt + 1));
    uint64_t delay_ms;
    {
      // rng_ is guarded by mu_; the shared policy only computes the
      // delay, so the sleep happens outside the lock.
      std::lock_guard<std::mutex> lock(mu_);
      Backoff backoff(options_.backoff_initial_ms, options_.backoff_max_ms,
                      &rng_);
      delay_ms = backoff.DelayForAttemptMs(static_cast<int>(attempt));
    }
    time_->SleepMicros(delay_ms * 1000);
  }
}

RemoteHam::PendingCall RemoteHam::CallAsync(Method method,
                                            std::string_view args) {
  PendingCall call;
  call.state_ = std::make_shared<PendingCall::State>();
  if (options_.pipeline &&
      pipeline_wire_ok_.load(std::memory_order_relaxed)) {
    bool sent = false;
    auto pending = EnqueueTagged(method, args, &sent);
    if (pending.ok()) {
      call.state_ = *pending;
      return call;
    }
    call.state_->Fulfill(pending.status(), "");
    return call;
  }
  // No pipeline: execute synchronously and hand back the answer,
  // re-framing it the way a tagged reply would look (status + body) so
  // Wait() decodes both shapes identically.
  Result<std::string> reply = CallSync(method, args);
  if (!reply.ok()) {
    call.state_->Fulfill(reply.status(), "");
  } else {
    std::string framed;
    EncodeStatusTo(Status::OK(), &framed);
    framed.append(*reply);
    call.state_->Fulfill(Status::OK(), std::move(framed));
  }
  return call;
}

Status RemoteHam::Ping() {
  Result<std::string> reply = Call(Method::kPing, "neptune");
  if (!reply.ok()) return reply.status();
  if (*reply != "neptune") {
    return Status::NetworkError("ping echo mismatch");
  }
  return Status::OK();
}

Result<MetricsSnapshot> RemoteHam::GetServerStatistics() {
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetServerStatistics, ""));
  std::string_view in = reply;
  MetricsSnapshot out;
  if (!MetricsSnapshot::DecodeFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<RemoteHam::StatisticsDelta> RemoteHam::GetServerStatisticsDelta(
    uint32_t window_seconds) {
  std::string args;
  PutVarint64(&args, window_seconds);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetServerStatisticsDelta, args));
  std::string_view in = reply;
  StatisticsDelta out;
  if (!GetVarint64(&in, &out.elapsed_us) ||
      !MetricsSnapshot::DecodeFrom(&in, &out.snapshot)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<Trace>> RemoteHam::GetRecentTraces() {
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetRecentTraces, ""));
  std::string_view in = reply;
  std::vector<Trace> out;
  if (!DecodeTracesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<Span>> RemoteHam::GetSlowOps() {
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kGetSlowOps, ""));
  std::string_view in = reply;
  std::vector<Span> out;
  if (!DecodeSpansFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<RemoteHam::OpenNodeItem>> RemoteHam::OpenNodes(
    Context ctx, const std::vector<ham::NodeIndex>& nodes, ham::Time time,
    const std::vector<ham::AttributeIndex>& attrs) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  EncodeIndexVecTo(attrs, &args);
  EncodeIndexVecTo(nodes, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kOpenNodes, args));
  std::string_view in = reply;
  uint64_t count = 0;
  if (!GetVarint64(&in, &count) || count != nodes.size()) {
    return Status::Corruption(kTruncatedReply);
  }
  std::vector<OpenNodeItem> out(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!DecodeStatusFrom(&in, &out[i].status)) {
      return Status::Corruption(kTruncatedReply);
    }
    if (out[i].status.ok() &&
        !DecodeOpenNodeResultFrom(&in, &out[i].result)) {
      return Status::Corruption(kTruncatedReply);
    }
  }
  return out;
}

Result<std::vector<RemoteHam::AttributeFetchItem>>
RemoteHam::GetAttributeValuesBatch(Context ctx, ham::Time time,
                                   const std::vector<AttributeFetch>& fetches) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  PutVarint64(&args, fetches.size());
  for (const AttributeFetch& f : fetches) {
    PutBool(&args, f.is_link);
    PutVarint64(&args, f.entity);
    PutVarint64(&args, f.attr);
  }
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetAttributeValuesBatch, args));
  std::string_view in = reply;
  uint64_t count = 0;
  if (!GetVarint64(&in, &count) || count != fetches.size()) {
    return Status::Corruption(kTruncatedReply);
  }
  std::vector<AttributeFetchItem> out(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!DecodeStatusFrom(&in, &out[i].status)) {
      return Status::Corruption(kTruncatedReply);
    }
    if (out[i].status.ok()) {
      std::string_view value;
      if (!GetLengthPrefixed(&in, &value)) {
        return Status::Corruption(kTruncatedReply);
      }
      out[i].value.assign(value);
    }
  }
  return out;
}

Result<RemoteHam::LinearizeAndFetchResult> RemoteHam::LinearizeAndFetch(
    Context ctx, ham::NodeIndex start, ham::Time time,
    const std::string& node_pred, const std::string& link_pred,
    const std::vector<ham::AttributeIndex>& node_attrs,
    const std::vector<ham::AttributeIndex>& link_attrs) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, start);
  PutVarint64(&args, time);
  PutLengthPrefixed(&args, node_pred);
  PutLengthPrefixed(&args, link_pred);
  EncodeIndexVecTo(node_attrs, &args);
  EncodeIndexVecTo(link_attrs, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kLinearizeAndFetch, args));
  std::string_view in = reply;
  LinearizeAndFetchResult out;
  uint64_t count = 0;
  if (!DecodeSubGraphFrom(&in, &out.graph) || !GetVarint64(&in, &count) ||
      count != out.graph.nodes.size()) {
    return Status::Corruption(kTruncatedReply);
  }
  out.contents.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    NodeContentsItem& item = out.contents[i];
    if (!DecodeStatusFrom(&in, &item.status)) {
      return Status::Corruption(kTruncatedReply);
    }
    if (item.status.ok()) {
      std::string_view contents;
      if (!GetLengthPrefixed(&in, &contents) ||
          !GetVarint64(&in, &item.version_time)) {
        return Status::Corruption(kTruncatedReply);
      }
      item.contents.assign(contents);
    }
  }
  return out;
}

Result<ham::CreateGraphResult> RemoteHam::CreateGraph(
    const std::string& directory, uint32_t protections) {
  std::string args;
  PutLengthPrefixed(&args, directory);
  PutVarint32(&args, protections);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kCreateGraph, args));
  std::string_view in = reply;
  ham::CreateGraphResult out;
  if (!GetVarint64(&in, &out.project) ||
      !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::DestroyGraph(ham::ProjectId project,
                               const std::string& directory) {
  std::string args;
  PutVarint64(&args, project);
  PutLengthPrefixed(&args, directory);
  return Call(Method::kDestroyGraph, args).status();
}

Result<Context> RemoteHam::OpenGraph(ham::ProjectId project,
                                     const std::string& machine,
                                     const std::string& directory) {
  std::string args;
  PutVarint64(&args, project);
  PutLengthPrefixed(&args, machine);
  PutLengthPrefixed(&args, directory);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kOpenGraph, args));
  std::string_view in = reply;
  Context ctx;
  if (!GetVarint64(&in, &ctx.session)) {
    return Status::Corruption(kTruncatedReply);
  }
  if (follower_ != nullptr) {
    // Shadow session for routed reads. Failure (follower down, graph
    // not yet synced there) just disables routing for this session.
    const std::string fdir = FollowerPath(directory);
    Result<Context> fctx = follower_->OpenGraph(project, machine, fdir);
    if (fctx.ok()) {
      std::lock_guard<std::mutex> lock(fmu_);
      follower_sessions_[ctx.session] =
          FollowerSession{fctx->session, fdir, false};
    } else {
      NEPTUNE_METRIC_COUNT("repl.client.follower_open_failed", 1);
    }
  }
  return ctx;
}

Status RemoteHam::CloseGraph(Context ctx) {
  uint64_t shadow = 0;
  {
    std::lock_guard<std::mutex> lock(fmu_);
    auto it = follower_sessions_.find(ctx.session);
    if (it != follower_sessions_.end()) {
      shadow = it->second.follower_session;
      follower_sessions_.erase(it);
    }
  }
  if (shadow != 0 && follower_ != nullptr) {
    (void)follower_->CloseGraph(Context{shadow});  // best-effort
  }
  std::string args;
  PutContext(&args, ctx);
  return Call(Method::kCloseGraph, args).status();
}

Status RemoteHam::BeginTransaction(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  Status status = Call(Method::kBeginTransaction, args).status();
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(fmu_);
    auto it = follower_sessions_.find(ctx.session);
    if (it != follower_sessions_.end()) it->second.in_txn = true;
  }
  return status;
}

Status RemoteHam::CommitTransaction(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  Status status = Call(Method::kCommitTransaction, args).status();
  {
    std::lock_guard<std::mutex> lock(fmu_);
    auto it = follower_sessions_.find(ctx.session);
    if (it != follower_sessions_.end()) it->second.in_txn = false;
  }
  return status;
}

Status RemoteHam::AbortTransaction(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  Status status = Call(Method::kAbortTransaction, args).status();
  {
    std::lock_guard<std::mutex> lock(fmu_);
    auto it = follower_sessions_.find(ctx.session);
    if (it != follower_sessions_.end()) it->second.in_txn = false;
  }
  return status;
}

// ------------------------------------------------- follower routing

bool RemoteHam::FollowerReadContext(Context ctx, Context* fctx) {
  if (follower_ == nullptr) return false;
  std::string directory;
  {
    std::lock_guard<std::mutex> lock(fmu_);
    auto it = follower_sessions_.find(ctx.session);
    if (it == follower_sessions_.end() || it->second.in_txn) return false;
    fctx->session = it->second.follower_session;
    directory = it->second.directory;
  }
  return FollowerFresh(directory);
}

std::string RemoteHam::FollowerPath(const std::string& directory) const {
  const std::string& from = options_.follower_remap_from;
  if (from.empty()) return directory;
  if (directory == from) return options_.follower_remap_to;
  if (directory.size() > from.size() &&
      directory.compare(0, from.size(), from) == 0 &&
      directory[from.size()] == '/') {
    return options_.follower_remap_to + directory.substr(from.size());
  }
  return directory;
}

bool RemoteHam::FollowerFresh(const std::string& directory) {
  const uint64_t now = time_->NowMicros();
  {
    std::lock_guard<std::mutex> lock(fmu_);
    if (follower_status_us_ != 0 &&
        now - follower_status_us_ <
            options_.follower_status_ttl_ms * 1000) {
      return follower_fresh_;
    }
  }
  Result<ham::ReplNodeStatus> status = follower_->ReplStatus(directory);
  const bool fresh =
      status.ok() && status->follower &&
      status->lag_bytes <= options_.follower_max_lag_bytes &&
      status->behind_ms <= options_.follower_max_behind_ms;
  if (!fresh) NEPTUNE_METRIC_COUNT("repl.client.stale_follower", 1);
  std::lock_guard<std::mutex> lock(fmu_);
  follower_status_us_ = now;
  follower_fresh_ = fresh;
  return fresh;
}

Result<ham::AddNodeResult> RemoteHam::AddNode(Context ctx, bool keep_history) {
  std::string args;
  PutContext(&args, ctx);
  PutBool(&args, keep_history);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kAddNode, args));
  std::string_view in = reply;
  ham::AddNodeResult out;
  if (!GetVarint64(&in, &out.node) || !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::DeleteNode(Context ctx, ham::NodeIndex node) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  return Call(Method::kDeleteNode, args).status();
}

Result<ham::AddLinkResult> RemoteHam::AddLink(Context ctx,
                                              const ham::LinkPt& from,
                                              const ham::LinkPt& to) {
  std::string args;
  PutContext(&args, ctx);
  EncodeLinkPtTo(from, &args);
  EncodeLinkPtTo(to, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kAddLink, args));
  std::string_view in = reply;
  ham::AddLinkResult out;
  if (!GetVarint64(&in, &out.link) || !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::AddLinkResult> RemoteHam::CopyLink(Context ctx,
                                               ham::LinkIndex link,
                                               ham::Time time,
                                               bool copy_source,
                                               const ham::LinkPt& other) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  PutBool(&args, copy_source);
  EncodeLinkPtTo(other, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kCopyLink, args));
  std::string_view in = reply;
  ham::AddLinkResult out;
  if (!GetVarint64(&in, &out.link) || !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::DeleteLink(Context ctx, ham::LinkIndex link) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  return Call(Method::kDeleteLink, args).status();
}

Result<ham::SubGraph> RemoteHam::LinearizeGraph(
    Context ctx, ham::NodeIndex start, ham::Time time,
    const std::string& node_pred, const std::string& link_pred,
    const std::vector<ham::AttributeIndex>& node_attrs,
    const std::vector<ham::AttributeIndex>& link_attrs) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.LinearizeGraph(c, start, time, node_pred, link_pred,
                                     node_attrs, link_attrs);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, start);
  PutVarint64(&args, time);
  PutLengthPrefixed(&args, node_pred);
  PutLengthPrefixed(&args, link_pred);
  EncodeIndexVecTo(node_attrs, &args);
  EncodeIndexVecTo(link_attrs, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kLinearizeGraph, args));
  std::string_view in = reply;
  ham::SubGraph out;
  if (!DecodeSubGraphFrom(&in, &out)) return Status::Corruption(kTruncatedReply);
  return out;
}

Result<ham::SubGraph> RemoteHam::GetGraphQuery(
    Context ctx, ham::Time time, const std::string& node_pred,
    const std::string& link_pred,
    const std::vector<ham::AttributeIndex>& node_attrs,
    const std::vector<ham::AttributeIndex>& link_attrs) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.GetGraphQuery(c, time, node_pred, link_pred, node_attrs,
                                    link_attrs);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  PutLengthPrefixed(&args, node_pred);
  PutLengthPrefixed(&args, link_pred);
  EncodeIndexVecTo(node_attrs, &args);
  EncodeIndexVecTo(link_attrs, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetGraphQuery, args));
  std::string_view in = reply;
  ham::SubGraph out;
  if (!DecodeSubGraphFrom(&in, &out)) return Status::Corruption(kTruncatedReply);
  return out;
}

Result<ham::QueryExplain> RemoteHam::GetGraphQueryExplained(
    Context ctx, ham::Time time, const std::string& node_pred,
    const std::string& link_pred,
    const std::vector<ham::AttributeIndex>& node_attrs,
    const std::vector<ham::AttributeIndex>& link_attrs,
    const ham::QueryOptions& options) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  PutLengthPrefixed(&args, node_pred);
  PutLengthPrefixed(&args, link_pred);
  EncodeIndexVecTo(node_attrs, &args);
  EncodeIndexVecTo(link_attrs, &args);
  uint8_t flags = 0;
  if (options.force_scan) flags |= 1;
  if (options.verify) flags |= 2;
  args.push_back(static_cast<char>(flags));
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetGraphQueryExplained, args));
  std::string_view in = reply;
  ham::QueryExplain out;
  if (!DecodeQueryExplainFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::OpenNodeResult> RemoteHam::OpenNode(
    Context ctx, ham::NodeIndex node, ham::Time time,
    const std::vector<ham::AttributeIndex>& attrs) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.OpenNode(c, node, time, attrs);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, time);
  EncodeIndexVecTo(attrs, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kOpenNode, args));
  std::string_view in = reply;
  ham::OpenNodeResult out;
  if (!DecodeOpenNodeResultFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::ModifyNode(
    Context ctx, ham::NodeIndex node, ham::Time expected_time,
    const std::string& contents,
    const std::vector<ham::AttachmentUpdate>& attachments,
    const std::string& explanation) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, expected_time);
  PutLengthPrefixed(&args, contents);
  EncodeAttachmentUpdatesTo(attachments, &args);
  PutLengthPrefixed(&args, explanation);
  return Call(Method::kModifyNode, args).status();
}

Result<ham::Time> RemoteHam::GetNodeTimeStamp(Context ctx,
                                              ham::NodeIndex node) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeTimeStamp, args));
  std::string_view in = reply;
  ham::Time time = 0;
  if (!GetVarint64(&in, &time)) return Status::Corruption(kTruncatedReply);
  return time;
}

Status RemoteHam::ChangeNodeProtection(Context ctx, ham::NodeIndex node,
                                       uint32_t protections) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint32(&args, protections);
  return Call(Method::kChangeNodeProtection, args).status();
}

Result<ham::NodeVersions> RemoteHam::GetNodeVersions(Context ctx,
                                                     ham::NodeIndex node) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.GetNodeVersions(c, node);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeVersions, args));
  std::string_view in = reply;
  ham::NodeVersions out;
  if (!DecodeNodeVersionsFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<delta::Difference>> RemoteHam::GetNodeDifferences(
    Context ctx, ham::NodeIndex node, ham::Time t1, ham::Time t2) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, t1);
  PutVarint64(&args, t2);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeDifferences, args));
  std::string_view in = reply;
  std::vector<delta::Difference> out;
  if (!DecodeDifferencesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::LinkEndResult> RemoteHam::GetToNode(Context ctx,
                                                ham::LinkIndex link,
                                                ham::Time time) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.GetToNode(c, link, time);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kGetToNode, args));
  std::string_view in = reply;
  ham::LinkEndResult out;
  if (!GetVarint64(&in, &out.node) || !GetVarint64(&in, &out.version_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::LinkEndResult> RemoteHam::GetFromNode(Context ctx,
                                                  ham::LinkIndex link,
                                                  ham::Time time) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.GetFromNode(c, link, time);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetFromNode, args));
  std::string_view in = reply;
  ham::LinkEndResult out;
  if (!GetVarint64(&in, &out.node) || !GetVarint64(&in, &out.version_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<ham::AttributeEntry>> RemoteHam::GetAttributes(
    Context ctx, ham::Time time) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.GetAttributes(c, time);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetAttributes, args));
  std::string_view in = reply;
  std::vector<ham::AttributeEntry> out;
  if (!DecodeAttributeEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<std::string>> RemoteHam::GetAttributeValues(
    Context ctx, ham::AttributeIndex attr, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, attr);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetAttributeValues, args));
  std::string_view in = reply;
  std::vector<std::string> out;
  if (!DecodeStringVecFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::AttributeIndex> RemoteHam::GetAttributeIndex(
    Context ctx, const std::string& name) {
  std::string args;
  PutContext(&args, ctx);
  PutLengthPrefixed(&args, name);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetAttributeIndex, args));
  std::string_view in = reply;
  ham::AttributeIndex attr = 0;
  if (!GetVarint64(&in, &attr)) return Status::Corruption(kTruncatedReply);
  return attr;
}

Status RemoteHam::SetNodeAttributeValue(Context ctx, ham::NodeIndex node,
                                        ham::AttributeIndex attr,
                                        const std::string& value) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, attr);
  PutLengthPrefixed(&args, value);
  return Call(Method::kSetNodeAttributeValue, args).status();
}

Status RemoteHam::DeleteNodeAttribute(Context ctx, ham::NodeIndex node,
                                      ham::AttributeIndex attr) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, attr);
  return Call(Method::kDeleteNodeAttribute, args).status();
}

Result<std::string> RemoteHam::GetNodeAttributeValue(Context ctx,
                                                     ham::NodeIndex node,
                                                     ham::AttributeIndex attr,
                                                     ham::Time time) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.GetNodeAttributeValue(c, node, attr, time);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, attr);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeAttributeValue, args));
  std::string_view in = reply;
  std::string_view value;
  if (!GetLengthPrefixed(&in, &value)) {
    return Status::Corruption(kTruncatedReply);
  }
  return std::string(value);
}

Result<std::vector<ham::AttributeValueEntry>> RemoteHam::GetNodeAttributes(
    Context ctx, ham::NodeIndex node, ham::Time time) {
  if (auto routed = TryFollower(ctx, [&](auto& target, Context c) {
        return target.GetNodeAttributes(c, node, time);
      })) {
    return std::move(*routed);
  }
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeAttributes, args));
  std::string_view in = reply;
  std::vector<ham::AttributeValueEntry> out;
  if (!DecodeAttributeValueEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::SetLinkAttributeValue(Context ctx, ham::LinkIndex link,
                                        ham::AttributeIndex attr,
                                        const std::string& value) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, attr);
  PutLengthPrefixed(&args, value);
  return Call(Method::kSetLinkAttributeValue, args).status();
}

Status RemoteHam::DeleteLinkAttribute(Context ctx, ham::LinkIndex link,
                                      ham::AttributeIndex attr) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, attr);
  return Call(Method::kDeleteLinkAttribute, args).status();
}

Result<std::string> RemoteHam::GetLinkAttributeValue(Context ctx,
                                                     ham::LinkIndex link,
                                                     ham::AttributeIndex attr,
                                                     ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, attr);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetLinkAttributeValue, args));
  std::string_view in = reply;
  std::string_view value;
  if (!GetLengthPrefixed(&in, &value)) {
    return Status::Corruption(kTruncatedReply);
  }
  return std::string(value);
}

Result<std::vector<ham::AttributeValueEntry>> RemoteHam::GetLinkAttributes(
    Context ctx, ham::LinkIndex link, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetLinkAttributes, args));
  std::string_view in = reply;
  std::vector<ham::AttributeValueEntry> out;
  if (!DecodeAttributeValueEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::SetGraphDemonValue(Context ctx, ham::Event event,
                                     const std::string& demon) {
  std::string args;
  PutContext(&args, ctx);
  args.push_back(static_cast<char>(event));
  PutLengthPrefixed(&args, demon);
  return Call(Method::kSetGraphDemonValue, args).status();
}

Result<std::vector<ham::DemonEntry>> RemoteHam::GetGraphDemons(
    Context ctx, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetGraphDemons, args));
  std::string_view in = reply;
  std::vector<ham::DemonEntry> out;
  if (!DecodeDemonEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::SetNodeDemon(Context ctx, ham::NodeIndex node,
                               ham::Event event, const std::string& demon) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  args.push_back(static_cast<char>(event));
  PutLengthPrefixed(&args, demon);
  return Call(Method::kSetNodeDemon, args).status();
}

Result<std::vector<ham::DemonEntry>> RemoteHam::GetNodeDemons(
    Context ctx, ham::NodeIndex node, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeDemons, args));
  std::string_view in = reply;
  std::vector<ham::DemonEntry> out;
  if (!DecodeDemonEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::ContextInfo> RemoteHam::CreateContext(Context ctx,
                                                  const std::string& name) {
  std::string args;
  PutContext(&args, ctx);
  PutLengthPrefixed(&args, name);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kCreateContext, args));
  std::string_view in = reply;
  ham::ContextInfo out;
  std::string_view out_name;
  if (!GetVarint64(&in, &out.thread) || !GetLengthPrefixed(&in, &out_name) ||
      !GetVarint64(&in, &out.branched_at)) {
    return Status::Corruption(kTruncatedReply);
  }
  out.name.assign(out_name);
  return out;
}

Result<Context> RemoteHam::OpenContext(Context ctx, ham::ThreadId thread) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, thread);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kOpenContext, args));
  std::string_view in = reply;
  Context out;
  if (!GetVarint64(&in, &out.session)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::MergeContext(Context ctx, ham::ThreadId source, bool force) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, source);
  PutBool(&args, force);
  return Call(Method::kMergeContext, args).status();
}

Result<std::vector<ham::ContextInfo>> RemoteHam::ListContexts(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kListContexts, args));
  std::string_view in = reply;
  std::vector<ham::ContextInfo> out;
  if (!DecodeContextInfosFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::Checkpoint(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  return Call(Method::kCheckpoint, args).status();
}

Result<ham::GraphStats> RemoteHam::GetStats(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kGetStats, args));
  std::string_view in = reply;
  ham::GraphStats out;
  if (!DecodeStatsFrom(&in, &out)) return Status::Corruption(kTruncatedReply);
  return out;
}

Result<ham::ThreadId> RemoteHam::ContextThread(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kContextThread, args));
  std::string_view in = reply;
  ham::ThreadId thread = 0;
  if (!GetVarint64(&in, &thread)) return Status::Corruption(kTruncatedReply);
  return thread;
}

Result<ham::ReplFetchResult> RemoteHam::ReplFetch(
    const ham::ReplFetchRequest& request) {
  std::string args;
  EncodeReplFetchRequestTo(request, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kReplFetch, args));
  std::string_view in = reply;
  ham::ReplFetchResult out;
  if (!DecodeReplFetchResultFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::ReplNodeStatus> RemoteHam::ReplStatus(
    const std::string& directory) {
  std::string args;
  PutLengthPrefixed(&args, directory);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kReplStatus, args));
  std::string_view in = reply;
  ham::ReplNodeStatus out;
  if (!DecodeReplNodeStatusFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<std::string>> RemoteHam::ReplListGraphs(
    const std::string& root) {
  std::string args;
  PutLengthPrefixed(&args, root);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kReplListGraphs, args));
  std::string_view in = reply;
  std::vector<std::string> out;
  if (!DecodeStringVecFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<uint64_t> RemoteHam::Promote() {
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kReplPromote, ""));
  std::string_view in = reply;
  uint64_t term = 0;
  if (!GetVarint64(&in, &term)) return Status::Corruption(kTruncatedReply);
  return term;
}

}  // namespace rpc
}  // namespace neptune

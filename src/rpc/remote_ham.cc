#include "rpc/remote_ham.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <thread>

#include "common/coding.h"
#include "common/trace.h"

namespace neptune {
namespace rpc {

namespace {

using ham::Context;

constexpr char kTruncatedReply[] = "truncated reply";

void PutContext(std::string* out, Context ctx) {
  PutVarint64(out, ctx.session);
}

void PutBool(std::string* out, bool v) { out->push_back(v ? 1 : 0); }

// Failures of the pipe itself, as opposed to answers from the server.
bool IsTransportError(const Status& status) {
  return status.IsNetworkError() || status.IsUnavailable() ||
         status.IsDeadlineExceeded();
}

// Per-method client span names ("rpc.client.openNode"), pre-interned
// for all 256 method bytes (same idiom as the server's MethodCounter).
uint32_t ClientSpanNameId(Method method) {
  static std::array<uint32_t, 256>* names = [] {
    auto* table = new std::array<uint32_t, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = Tracer::Instance().InternName(
          std::string("rpc.client.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*names)[static_cast<uint8_t>(method)];
}

// A pre-tracing server answers a trace-flagged method byte with this
// Corruption message (see Server::HandleRequest's default case); the
// request was never executed, so the client may downgrade and re-send.
bool IsUnknownMethodReply(const Status& status) {
  return status.IsCorruption() &&
         status.message().rfind("malformed request: unknown method", 0) == 0;
}

}  // namespace

RemoteHam::RemoteHam(std::string host, uint16_t port, const Options& options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(options.retry_seed != 0
               ? options.retry_seed
               : static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this))) {}

Result<std::unique_ptr<RemoteHam>> RemoteHam::Connect(const std::string& host,
                                                      uint16_t port) {
  return Connect(host, port, Options());
}

Result<std::unique_ptr<RemoteHam>> RemoteHam::Connect(const std::string& host,
                                                      uint16_t port,
                                                      const Options& options) {
  auto client =
      std::unique_ptr<RemoteHam>(new RemoteHam(host, port, options));
  // The ping both verifies liveness and performs the initial connect
  // (with the same retry/backoff policy every later call gets).
  NEPTUNE_RETURN_IF_ERROR(client->Ping());
  return client;
}

Status RemoteHam::ReconnectLocked() {
  NEPTUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<FrameStream> stream,
      FrameStream::Connect(host_, port_, options_.connect_timeout_ms));
  NEPTUNE_RETURN_IF_ERROR(
      stream->SetTimeouts(options_.send_timeout_ms, options_.recv_timeout_ms));
  stream_ = std::move(stream);
  NEPTUNE_METRIC_COUNT("rpc.client.reconnects", 1);
  return Status::OK();
}

Result<std::string> RemoteHam::Call(Method method, std::string_view args) {
  // The client half of the request's trace: the server parents its
  // spans under this one via the propagated context, so the gap
  // between this span and the server's is wire + queueing time.
  ScopedSpan span(ClientSpanNameId(method));

  std::string request;
  request.reserve(1 + args.size());
  request.push_back(static_cast<char>(method));
  request.append(args);

  std::lock_guard<std::mutex> lock(mu_);
  // Prepend the trace-context extension when this call is being
  // traced and the server is not known to predate the extension.
  bool flagged = false;
  if (span.active() && trace_wire_ok_.load(std::memory_order_relaxed)) {
    const TraceContext ctx = ScopedSpan::CurrentContext();
    if (ctx.valid()) {
      std::string ext;
      ext.reserve(1 + 17 + args.size());
      ext.push_back(static_cast<char>(static_cast<uint8_t>(method) |
                                      kTraceContextFlag));
      EncodeTraceContextTo(ctx, &ext);
      ext.append(args);
      request = std::move(ext);
      flagged = true;
    }
  }

  Status last;
  for (uint32_t attempt = 0;; ++attempt) {
    // `sent` distinguishes "the pipe broke before the request left"
    // (always safe to retry) from "the request may have executed"
    // (safe only for idempotent methods).
    bool sent = false;
    if (stream_ == nullptr) {
      last = ReconnectLocked();
    } else {
      last = Status::OK();
    }
    if (last.ok()) {
      sent = true;
      last = stream_->SendFrame(request);
      if (last.ok()) {
        Result<std::string> reply = stream_->RecvFrame();
        if (reply.ok()) {
          std::string_view in = *reply;
          Status status;
          if (!DecodeStatusFrom(&in, &status)) {
            return Status::Corruption("malformed reply status");
          }
          // An Unavailable reply carrying a varint body is the
          // server's load-shed refusal with a retry-after-ms hint. The
          // request was rejected *before* execution, so re-sending is
          // safe even for mutations — the stream stays up and the
          // retry waits at least the hinted backoff.
          uint32_t retry_after_ms = 0;
          if (status.IsUnavailable() && !in.empty() &&
              GetVarint32(&in, &retry_after_ms)) {
            if (attempt >= options_.max_retries) return status;
            NEPTUNE_METRIC_COUNT("rpc.client.shed_retries", 1);
            span.Annotate("shed_retry=1");
            uint64_t delay = std::max<uint64_t>(retry_after_ms, 1);
            // Full jitter in [delay/2, delay] spreads the herd of shed
            // clients back out.
            delay = delay / 2 + rng_.Uniform(delay / 2 + 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
            continue;
          }
          if (flagged && IsUnknownMethodReply(status)) {
            // A pre-tracing server balked at the flagged method byte;
            // the request never executed, so re-sending plain is safe
            // (even for mutations). Remember the downgrade so every
            // later call on this client skips the extension.
            trace_wire_ok_.store(false, std::memory_order_relaxed);
            NEPTUNE_METRIC_COUNT("rpc.client.trace_downgrades", 1);
            span.Annotate("trace_wire=downgraded");
            request.clear();
            request.push_back(static_cast<char>(method));
            request.append(args);
            flagged = false;
            continue;
          }
          NEPTUNE_RETURN_IF_ERROR(status);
          return std::string(in);
        }
        last = reply.status();
      }
      // The connection is no longer in a known state (a partial frame
      // may be stranded in either direction): drop it.
      stream_.reset();
    }
    if (last.IsDeadlineExceeded()) {
      NEPTUNE_METRIC_COUNT("rpc.client.deadline_exceeded", 1);
    }
    if (!IsTransportError(last)) return last;
    if (sent && !IsIdempotent(method)) return last;
    if (attempt >= options_.max_retries) return last;
    NEPTUNE_METRIC_COUNT("rpc.client.retries", 1);
    span.Annotate("retry=" + std::to_string(attempt + 1));
    uint64_t delay = options_.backoff_initial_ms;
    for (uint32_t i = 0; i < attempt && delay < options_.backoff_max_ms; ++i) {
      delay *= 2;
    }
    delay = std::min<uint64_t>(delay, options_.backoff_max_ms);
    if (delay > 0) {
      // Full jitter in [delay/2, delay] keeps reconnect storms spread out.
      delay = delay / 2 + rng_.Uniform(delay / 2 + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

Status RemoteHam::Ping() {
  Result<std::string> reply = Call(Method::kPing, "neptune");
  if (!reply.ok()) return reply.status();
  if (*reply != "neptune") {
    return Status::NetworkError("ping echo mismatch");
  }
  return Status::OK();
}

Result<MetricsSnapshot> RemoteHam::GetServerStatistics() {
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetServerStatistics, ""));
  std::string_view in = reply;
  MetricsSnapshot out;
  if (!MetricsSnapshot::DecodeFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<Trace>> RemoteHam::GetRecentTraces() {
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetRecentTraces, ""));
  std::string_view in = reply;
  std::vector<Trace> out;
  if (!DecodeTracesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<Span>> RemoteHam::GetSlowOps() {
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kGetSlowOps, ""));
  std::string_view in = reply;
  std::vector<Span> out;
  if (!DecodeSpansFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::CreateGraphResult> RemoteHam::CreateGraph(
    const std::string& directory, uint32_t protections) {
  std::string args;
  PutLengthPrefixed(&args, directory);
  PutVarint32(&args, protections);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kCreateGraph, args));
  std::string_view in = reply;
  ham::CreateGraphResult out;
  if (!GetVarint64(&in, &out.project) ||
      !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::DestroyGraph(ham::ProjectId project,
                               const std::string& directory) {
  std::string args;
  PutVarint64(&args, project);
  PutLengthPrefixed(&args, directory);
  return Call(Method::kDestroyGraph, args).status();
}

Result<Context> RemoteHam::OpenGraph(ham::ProjectId project,
                                     const std::string& machine,
                                     const std::string& directory) {
  std::string args;
  PutVarint64(&args, project);
  PutLengthPrefixed(&args, machine);
  PutLengthPrefixed(&args, directory);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kOpenGraph, args));
  std::string_view in = reply;
  Context ctx;
  if (!GetVarint64(&in, &ctx.session)) {
    return Status::Corruption(kTruncatedReply);
  }
  return ctx;
}

Status RemoteHam::CloseGraph(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  return Call(Method::kCloseGraph, args).status();
}

Status RemoteHam::BeginTransaction(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  return Call(Method::kBeginTransaction, args).status();
}

Status RemoteHam::CommitTransaction(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  return Call(Method::kCommitTransaction, args).status();
}

Status RemoteHam::AbortTransaction(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  return Call(Method::kAbortTransaction, args).status();
}

Result<ham::AddNodeResult> RemoteHam::AddNode(Context ctx, bool keep_history) {
  std::string args;
  PutContext(&args, ctx);
  PutBool(&args, keep_history);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kAddNode, args));
  std::string_view in = reply;
  ham::AddNodeResult out;
  if (!GetVarint64(&in, &out.node) || !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::DeleteNode(Context ctx, ham::NodeIndex node) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  return Call(Method::kDeleteNode, args).status();
}

Result<ham::AddLinkResult> RemoteHam::AddLink(Context ctx,
                                              const ham::LinkPt& from,
                                              const ham::LinkPt& to) {
  std::string args;
  PutContext(&args, ctx);
  EncodeLinkPtTo(from, &args);
  EncodeLinkPtTo(to, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kAddLink, args));
  std::string_view in = reply;
  ham::AddLinkResult out;
  if (!GetVarint64(&in, &out.link) || !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::AddLinkResult> RemoteHam::CopyLink(Context ctx,
                                               ham::LinkIndex link,
                                               ham::Time time,
                                               bool copy_source,
                                               const ham::LinkPt& other) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  PutBool(&args, copy_source);
  EncodeLinkPtTo(other, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kCopyLink, args));
  std::string_view in = reply;
  ham::AddLinkResult out;
  if (!GetVarint64(&in, &out.link) || !GetVarint64(&in, &out.creation_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::DeleteLink(Context ctx, ham::LinkIndex link) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  return Call(Method::kDeleteLink, args).status();
}

Result<ham::SubGraph> RemoteHam::LinearizeGraph(
    Context ctx, ham::NodeIndex start, ham::Time time,
    const std::string& node_pred, const std::string& link_pred,
    const std::vector<ham::AttributeIndex>& node_attrs,
    const std::vector<ham::AttributeIndex>& link_attrs) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, start);
  PutVarint64(&args, time);
  PutLengthPrefixed(&args, node_pred);
  PutLengthPrefixed(&args, link_pred);
  EncodeIndexVecTo(node_attrs, &args);
  EncodeIndexVecTo(link_attrs, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kLinearizeGraph, args));
  std::string_view in = reply;
  ham::SubGraph out;
  if (!DecodeSubGraphFrom(&in, &out)) return Status::Corruption(kTruncatedReply);
  return out;
}

Result<ham::SubGraph> RemoteHam::GetGraphQuery(
    Context ctx, ham::Time time, const std::string& node_pred,
    const std::string& link_pred,
    const std::vector<ham::AttributeIndex>& node_attrs,
    const std::vector<ham::AttributeIndex>& link_attrs) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  PutLengthPrefixed(&args, node_pred);
  PutLengthPrefixed(&args, link_pred);
  EncodeIndexVecTo(node_attrs, &args);
  EncodeIndexVecTo(link_attrs, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetGraphQuery, args));
  std::string_view in = reply;
  ham::SubGraph out;
  if (!DecodeSubGraphFrom(&in, &out)) return Status::Corruption(kTruncatedReply);
  return out;
}

Result<ham::OpenNodeResult> RemoteHam::OpenNode(
    Context ctx, ham::NodeIndex node, ham::Time time,
    const std::vector<ham::AttributeIndex>& attrs) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, time);
  EncodeIndexVecTo(attrs, &args);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kOpenNode, args));
  std::string_view in = reply;
  ham::OpenNodeResult out;
  if (!DecodeOpenNodeResultFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::ModifyNode(
    Context ctx, ham::NodeIndex node, ham::Time expected_time,
    const std::string& contents,
    const std::vector<ham::AttachmentUpdate>& attachments,
    const std::string& explanation) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, expected_time);
  PutLengthPrefixed(&args, contents);
  EncodeAttachmentUpdatesTo(attachments, &args);
  PutLengthPrefixed(&args, explanation);
  return Call(Method::kModifyNode, args).status();
}

Result<ham::Time> RemoteHam::GetNodeTimeStamp(Context ctx,
                                              ham::NodeIndex node) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeTimeStamp, args));
  std::string_view in = reply;
  ham::Time time = 0;
  if (!GetVarint64(&in, &time)) return Status::Corruption(kTruncatedReply);
  return time;
}

Status RemoteHam::ChangeNodeProtection(Context ctx, ham::NodeIndex node,
                                       uint32_t protections) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint32(&args, protections);
  return Call(Method::kChangeNodeProtection, args).status();
}

Result<ham::NodeVersions> RemoteHam::GetNodeVersions(Context ctx,
                                                     ham::NodeIndex node) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeVersions, args));
  std::string_view in = reply;
  ham::NodeVersions out;
  if (!DecodeNodeVersionsFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<delta::Difference>> RemoteHam::GetNodeDifferences(
    Context ctx, ham::NodeIndex node, ham::Time t1, ham::Time t2) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, t1);
  PutVarint64(&args, t2);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeDifferences, args));
  std::string_view in = reply;
  std::vector<delta::Difference> out;
  if (!DecodeDifferencesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::LinkEndResult> RemoteHam::GetToNode(Context ctx,
                                                ham::LinkIndex link,
                                                ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kGetToNode, args));
  std::string_view in = reply;
  ham::LinkEndResult out;
  if (!GetVarint64(&in, &out.node) || !GetVarint64(&in, &out.version_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::LinkEndResult> RemoteHam::GetFromNode(Context ctx,
                                                  ham::LinkIndex link,
                                                  ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetFromNode, args));
  std::string_view in = reply;
  ham::LinkEndResult out;
  if (!GetVarint64(&in, &out.node) || !GetVarint64(&in, &out.version_time)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<ham::AttributeEntry>> RemoteHam::GetAttributes(
    Context ctx, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetAttributes, args));
  std::string_view in = reply;
  std::vector<ham::AttributeEntry> out;
  if (!DecodeAttributeEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<std::vector<std::string>> RemoteHam::GetAttributeValues(
    Context ctx, ham::AttributeIndex attr, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, attr);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetAttributeValues, args));
  std::string_view in = reply;
  std::vector<std::string> out;
  if (!DecodeStringVecFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::AttributeIndex> RemoteHam::GetAttributeIndex(
    Context ctx, const std::string& name) {
  std::string args;
  PutContext(&args, ctx);
  PutLengthPrefixed(&args, name);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetAttributeIndex, args));
  std::string_view in = reply;
  ham::AttributeIndex attr = 0;
  if (!GetVarint64(&in, &attr)) return Status::Corruption(kTruncatedReply);
  return attr;
}

Status RemoteHam::SetNodeAttributeValue(Context ctx, ham::NodeIndex node,
                                        ham::AttributeIndex attr,
                                        const std::string& value) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, attr);
  PutLengthPrefixed(&args, value);
  return Call(Method::kSetNodeAttributeValue, args).status();
}

Status RemoteHam::DeleteNodeAttribute(Context ctx, ham::NodeIndex node,
                                      ham::AttributeIndex attr) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, attr);
  return Call(Method::kDeleteNodeAttribute, args).status();
}

Result<std::string> RemoteHam::GetNodeAttributeValue(Context ctx,
                                                     ham::NodeIndex node,
                                                     ham::AttributeIndex attr,
                                                     ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, attr);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeAttributeValue, args));
  std::string_view in = reply;
  std::string_view value;
  if (!GetLengthPrefixed(&in, &value)) {
    return Status::Corruption(kTruncatedReply);
  }
  return std::string(value);
}

Result<std::vector<ham::AttributeValueEntry>> RemoteHam::GetNodeAttributes(
    Context ctx, ham::NodeIndex node, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeAttributes, args));
  std::string_view in = reply;
  std::vector<ham::AttributeValueEntry> out;
  if (!DecodeAttributeValueEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::SetLinkAttributeValue(Context ctx, ham::LinkIndex link,
                                        ham::AttributeIndex attr,
                                        const std::string& value) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, attr);
  PutLengthPrefixed(&args, value);
  return Call(Method::kSetLinkAttributeValue, args).status();
}

Status RemoteHam::DeleteLinkAttribute(Context ctx, ham::LinkIndex link,
                                      ham::AttributeIndex attr) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, attr);
  return Call(Method::kDeleteLinkAttribute, args).status();
}

Result<std::string> RemoteHam::GetLinkAttributeValue(Context ctx,
                                                     ham::LinkIndex link,
                                                     ham::AttributeIndex attr,
                                                     ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, attr);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetLinkAttributeValue, args));
  std::string_view in = reply;
  std::string_view value;
  if (!GetLengthPrefixed(&in, &value)) {
    return Status::Corruption(kTruncatedReply);
  }
  return std::string(value);
}

Result<std::vector<ham::AttributeValueEntry>> RemoteHam::GetLinkAttributes(
    Context ctx, ham::LinkIndex link, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, link);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetLinkAttributes, args));
  std::string_view in = reply;
  std::vector<ham::AttributeValueEntry> out;
  if (!DecodeAttributeValueEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::SetGraphDemonValue(Context ctx, ham::Event event,
                                     const std::string& demon) {
  std::string args;
  PutContext(&args, ctx);
  args.push_back(static_cast<char>(event));
  PutLengthPrefixed(&args, demon);
  return Call(Method::kSetGraphDemonValue, args).status();
}

Result<std::vector<ham::DemonEntry>> RemoteHam::GetGraphDemons(
    Context ctx, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetGraphDemons, args));
  std::string_view in = reply;
  std::vector<ham::DemonEntry> out;
  if (!DecodeDemonEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::SetNodeDemon(Context ctx, ham::NodeIndex node,
                               ham::Event event, const std::string& demon) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  args.push_back(static_cast<char>(event));
  PutLengthPrefixed(&args, demon);
  return Call(Method::kSetNodeDemon, args).status();
}

Result<std::vector<ham::DemonEntry>> RemoteHam::GetNodeDemons(
    Context ctx, ham::NodeIndex node, ham::Time time) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, node);
  PutVarint64(&args, time);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kGetNodeDemons, args));
  std::string_view in = reply;
  std::vector<ham::DemonEntry> out;
  if (!DecodeDemonEntriesFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Result<ham::ContextInfo> RemoteHam::CreateContext(Context ctx,
                                                  const std::string& name) {
  std::string args;
  PutContext(&args, ctx);
  PutLengthPrefixed(&args, name);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kCreateContext, args));
  std::string_view in = reply;
  ham::ContextInfo out;
  std::string_view out_name;
  if (!GetVarint64(&in, &out.thread) || !GetLengthPrefixed(&in, &out_name) ||
      !GetVarint64(&in, &out.branched_at)) {
    return Status::Corruption(kTruncatedReply);
  }
  out.name.assign(out_name);
  return out;
}

Result<Context> RemoteHam::OpenContext(Context ctx, ham::ThreadId thread) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, thread);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kOpenContext, args));
  std::string_view in = reply;
  Context out;
  if (!GetVarint64(&in, &out.session)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::MergeContext(Context ctx, ham::ThreadId source, bool force) {
  std::string args;
  PutContext(&args, ctx);
  PutVarint64(&args, source);
  PutBool(&args, force);
  return Call(Method::kMergeContext, args).status();
}

Result<std::vector<ham::ContextInfo>> RemoteHam::ListContexts(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kListContexts, args));
  std::string_view in = reply;
  std::vector<ham::ContextInfo> out;
  if (!DecodeContextInfosFrom(&in, &out)) {
    return Status::Corruption(kTruncatedReply);
  }
  return out;
}

Status RemoteHam::Checkpoint(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  return Call(Method::kCheckpoint, args).status();
}

Result<ham::GraphStats> RemoteHam::GetStats(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply, Call(Method::kGetStats, args));
  std::string_view in = reply;
  ham::GraphStats out;
  if (!DecodeStatsFrom(&in, &out)) return Status::Corruption(kTruncatedReply);
  return out;
}

Result<ham::ThreadId> RemoteHam::ContextThread(Context ctx) {
  std::string args;
  PutContext(&args, ctx);
  NEPTUNE_ASSIGN_OR_RETURN(std::string reply,
                           Call(Method::kContextThread, args));
  std::string_view in = reply;
  ham::ThreadId thread = 0;
  if (!GetVarint64(&in, &thread)) return Status::Corruption(kTruncatedReply);
  return thread;
}

}  // namespace rpc
}  // namespace neptune

// Readiness notification for the RPC event loop: a thin portable
// abstraction over epoll(7) with a poll(2) fallback, in the spirit of
// the nonblocking-socket event loops CAD-era servers were built on.
// Every registered fd is always watched for readability; writability
// is opted in per fd while a connection has buffered output.
//
// The epoll backend is used on Linux; the poll backend everywhere
// else, and on Linux when NEPTUNE_RPC_FORCE_POLL is set in the
// environment (so tests exercise the fallback on any platform).

#ifndef NEPTUNE_RPC_POLLER_H_
#define NEPTUNE_RPC_POLLER_H_

#include <memory>
#include <vector>

#include "common/result.h"

namespace neptune {
namespace rpc {

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    // Error/hangup on the fd; the owner should read until failure and
    // tear the connection down.
    bool error = false;
  };

  // Picks the best backend for this platform (see file comment).
  static std::unique_ptr<Poller> Create();

  virtual ~Poller() = default;

  // "epoll" or "poll", for logs and tests.
  virtual const char* name() const = 0;

  // Registers `fd` for readability (always) and, when `want_write`,
  // writability. An fd must be added at most once.
  virtual Status Add(int fd, bool want_write) = 0;

  // Changes the writability interest of a registered fd.
  virtual Status Update(int fd, bool want_write) = 0;

  // Deregisters the fd. Safe to call for an fd that was never added.
  virtual void Remove(int fd) = 0;

  // Waits up to `timeout_ms` (-1 = forever) and appends ready fds to
  // `out` (which is cleared first). Returns the number of events; 0 on
  // timeout. EINTR is ridden out internally.
  virtual Result<int> Wait(int timeout_ms, std::vector<Event>* out) = 0;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_POLLER_H_

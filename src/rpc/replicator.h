// Replicator: the follower half of WAL-shipping replication.
//
// One background thread tails a primary server with long-poll
// replFetch calls and feeds the raw WAL frames into a local follower
// Ham (ReplicaApply / ReplicaInstallSnapshot / ReplicaRoll). The
// cursor per graph is (term, epoch, offset); the fetch request carrying
// it doubles as the follower's ack, which is what the primary's lag
// gauge measures.
//
// Robustness contract (ROADMAP item 3):
//   - transport failures reconnect with jittered exponential backoff
//     and resume from the durable local offset;
//   - a follower too far behind (its generation checkpointed away) is
//     told kSnapshot and resyncs instead of failing;
//   - a torn/corrupt streamed chunk applies its valid prefix and
//     re-fetches; repeated zero-progress strikes at one offset force a
//     snapshot resync;
//   - a primary whose term is older than ours (we were promoted, or we
//     follow a newer primary) is refused: its late appends never land.

#ifndef NEPTUNE_RPC_REPLICATOR_H_
#define NEPTUNE_RPC_REPLICATOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/random.h"
#include "ham/ham.h"
#include "rpc/remote_ham.h"

namespace neptune {
namespace rpc {

class Replicator {
 public:
  struct Options {
    // Graph root on the primary (a store directory, or a tree of
    // them); relative paths from replListGraphs are joined to it.
    std::string primary_root;
    // Local directory the follower mirrors the tree into.
    std::string local_root;
    // Long-poll budget per fetch once caught up.
    uint64_t poll_wait_ms = 500;
    uint64_t max_bytes = 1 << 20;
    // Reconnect/backoff policy after a failed cycle.
    uint32_t backoff_initial_ms = 50;
    uint32_t backoff_max_ms = 5000;
    // How often the graph list is refreshed from the primary.
    uint64_t list_refresh_ms = 2000;
    uint64_t seed = 0;            // backoff jitter; 0 = derive
    std::string follower_id;      // "" = derived from local_root
    // Zero-progress corrupt chunks at one offset before forcing a
    // snapshot resync.
    uint32_t max_corrupt_strikes = 3;
    // Clock for backoff sleeps and the list-refresh cadence. nullptr =
    // the process-wide real clock.
    TimeSource* time_source = nullptr;
    // When false, fetches never ask the primary to long-poll
    // (wait_ms = 0) and a caught-up cycle reports poll_wait_ms as the
    // delay before the next one. The simulation harness uses this to
    // pace replication from the virtual clock instead of parking a
    // server thread in a condition-variable wait.
    bool long_poll = true;
  };

  // `ham` must be a follower-mode engine (HamOptions::follower_mode);
  // `primary` is a connected client for the primary server. Neither is
  // owned; both must outlive the replicator.
  Replicator(ham::Ham* ham, RemoteHam* primary, Options options);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  void Start();
  // Stops the tail loop and joins the thread. Idempotent; also called
  // by the destructor. After a promotion the loop exits on its own
  // (the engine stops being a follower), but Stop() still joins it.
  void Stop();

  // One refresh+tail pass over every known graph, without sleeping.
  // Returns the suggested delay in ms before the next cycle (0 = run
  // again immediately), or -1 when the loop is done (stopped, or the
  // engine was promoted out of follower mode). Main() wraps this with
  // SleepOrStop; the simulation harness calls it directly and paces
  // the cycles on the virtual clock.
  int64_t RunCycle();

  // Per-graph cursor snapshot, keyed by the relative path from
  // replListGraphs ("" = the root itself is the store).
  struct Progress {
    uint64_t term = 0;
    uint64_t epoch = 0;
    uint64_t offset = 0;
    uint64_t chunks_applied = 0;
    uint64_t resyncs = 0;
    uint64_t rolls = 0;
    uint64_t stale_primary_rejects = 0;
    bool caught_up = false;  // drained to the primary's committed end
  };
  Progress progress(const std::string& rel) const;
  // True when every known graph has drained at least once.
  bool AllCaughtUp() const;
  // Total cycles that ended in an error + backoff (tests).
  uint64_t error_cycles() const;

  // Test hook: runs on every fetched kTail payload before it is
  // applied, simulating corruption on the wire.
  std::function<void(std::string*)> chunk_mutator_for_test;

 private:
  struct Cursor {
    Progress p;
    bool initialized = false;
    uint32_t strikes = 0;
    bool force_snapshot = false;
  };

  void Main();
  // One fetch/apply cycle for one graph. Returns false when the cycle
  // failed and the loop should back off.
  bool TailOne(const std::string& rel, Cursor* cursor);
  // Refreshes the repl.apply_lag_us gauge (virtual-time aware): zero
  // while every graph is drained, otherwise time since it last was.
  void UpdateApplyLag();
  Status RefreshGraphList();
  // Seeds a cursor from the local store (resume) or at zero (bootstrap).
  void InitCursor(const std::string& local_dir, Cursor* cursor);
  bool SleepOrStop(uint64_t ms);

  std::string LocalDir(const std::string& rel) const;
  std::string PrimaryDir(const std::string& rel) const;

  ham::Ham* const ham_;
  RemoteHam* const primary_;
  const Options options_;
  TimeSource* time_;
  std::string follower_id_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::map<std::string, Cursor> cursors_;
  std::vector<std::string> graphs_;
  uint64_t error_cycles_ = 0;
  uint64_t last_list_us_ = 0;
  // Touched only by the cycle-running thread (see backoff_).
  uint64_t last_caught_up_us_ = 0;
  Random rng_;
  // Shared jittered-exponential policy (common/backoff.h); touched
  // only by the tail loop's thread (or the sim's single thread).
  neptune::Backoff backoff_;

  std::thread thread_;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_REPLICATOR_H_

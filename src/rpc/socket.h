// Thin POSIX TCP wrappers used by the Neptune server and client:
// a connected stream that sends/receives whole frames, and a listener.

#ifndef NEPTUNE_RPC_SOCKET_H_
#define NEPTUNE_RPC_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "rpc/wire.h"

namespace neptune {
namespace rpc {

// A connected TCP stream exchanging CRC-framed payloads. The framing
// methods are virtual so the simulation harness can substitute an
// in-memory transport (sim::SimFrameStream) under unmodified clients
// and servers; this base class is the real-socket implementation.
class FrameStream {
 public:
  explicit FrameStream(int fd) : fd_(fd) {}
  virtual ~FrameStream();

  FrameStream(const FrameStream&) = delete;
  FrameStream& operator=(const FrameStream&) = delete;

  // Connects to host:port (IPv4 dotted quad or "localhost"). With
  // `connect_timeout_ms` > 0 the attempt fails with kDeadlineExceeded
  // once the budget is spent instead of waiting for the kernel's.
  static Result<std::unique_ptr<FrameStream>> Connect(
      const std::string& host, uint16_t port, int connect_timeout_ms = 0);

  // Arms SO_SNDTIMEO/SO_RCVTIMEO so a send/recv stuck longer than the
  // budget fails with kDeadlineExceeded (0 = block forever). A deadline
  // expiry can strand a partial frame on the wire, so the caller must
  // treat the stream as dead afterwards.
  virtual Status SetTimeouts(int send_timeout_ms, int recv_timeout_ms);

  // Caps the accepted frame size (both directions) and the bytes this
  // stream will buffer for an incomplete inbound frame. 0 keeps the
  // process-wide kMaxFrameBytes default.
  void SetLimits(uint32_t max_frame_bytes, size_t max_buffered_bytes);

  // Sends one framed payload; kInvalidArgument (without sending
  // anything) if the payload exceeds the frame limit.
  virtual Status SendFrame(std::string_view payload);

  // Sends bytes that are already framed (see AppendFrame) — one write
  // path for a batch of frames, so a pipelined burst costs one syscall.
  virtual Status SendBytes(std::string_view bytes);

  uint32_t max_frame_bytes() const { return max_frame_bytes_; }

  // Blocks for the next complete frame. Unavailable("connection
  // closed") on orderly EOF between frames; kDeadlineExceeded when a
  // recv timeout is armed and expires.
  virtual Result<std::string> RecvFrame();

  // Shuts the connection down, unblocking a send/recv in progress on
  // another thread. The fd itself is released by the destructor, which
  // must not run until those threads are done with the stream.
  virtual void Close();

  // Half-close: stops reads (a blocked RecvFrame sees EOF, and the peer
  // eventually notices we stopped consuming) while replies in flight
  // can still be sent. This is how the server drains connections.
  virtual void CloseRead();

 protected:
  // Subclasses (in-memory transports) pass fd = -1; the destructor
  // skips the close() for them.
  const int fd_;
  std::atomic<bool> closed_{false};
  uint32_t max_frame_bytes_ = kMaxFrameBytes;
  FrameDecoder decoder_;
  std::vector<std::string> pending_;
};

class Listener {
 public:
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds and listens on 127.0.0.1:`port` (0 = ephemeral).
  static Result<std::unique_ptr<Listener>> Bind(uint16_t port);

  uint16_t port() const { return port_; }

  // The listening descriptor, so an event loop can wait for readiness.
  int fd() const { return fd_; }

  // Puts the listening socket in nonblocking mode; AcceptFd() then
  // returns kDeadlineExceeded instead of blocking when no connection
  // is pending.
  Status SetNonblocking();

  // Accepts one connection and returns its raw fd, already nonblocking
  // and TCP_NODELAY. kDeadlineExceeded means "nothing pending right
  // now (or transient resource exhaustion) — wait for readiness and
  // try again"; NetworkError after Shutdown(). The caller owns the fd.
  Result<int> AcceptFd();

  // Blocks for the next connection; NetworkError after Shutdown().
  Result<std::unique_ptr<FrameStream>> Accept();

  // Unblocks Accept(); the socket is closed by the destructor, which
  // must not run until the accepting thread is done.
  void Shutdown();

 private:
  Listener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  const int fd_;
  std::atomic<bool> shut_down_{false};
  uint16_t port_;
};

}  // namespace rpc
}  // namespace neptune

#endif  // NEPTUNE_RPC_SOCKET_H_

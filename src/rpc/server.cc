#include "rpc/server.h"

#include <array>

#include "common/coding.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace neptune {
namespace rpc {

namespace {

using ham::Context;

// Per-method request counters, resolved once for all 256 method bytes
// so the per-request path never takes the registry lock. Unknown bytes
// all share the "rpc.request.unknown" counter.
Counter* MethodCounter(Method method) {
  static std::array<Counter*, 256>* counters = [] {
    auto* table = new std::array<Counter*, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = MetricsRegistry::Instance().GetCounter(
          std::string("rpc.request.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*counters)[static_cast<uint8_t>(method)];
}

// Per-method server span names ("rpc.server.openNode"), pre-interned
// for all 256 method bytes like MethodCounter above.
uint32_t ServerSpanNameId(Method method) {
  static std::array<uint32_t, 256>* names = [] {
    auto* table = new std::array<uint32_t, 256>();
    for (int i = 0; i < 256; ++i) {
      (*table)[i] = Tracer::Instance().InternName(
          std::string("rpc.server.") + MethodName(static_cast<Method>(i)));
    }
    return table;
  }();
  return (*names)[static_cast<uint8_t>(method)];
}

// Decode helpers that fail by returning false; the dispatcher turns
// that into a Corruption reply.
bool GetContext(std::string_view* in, Context* ctx) {
  return GetVarint64(in, &ctx->session);
}

bool GetString(std::string_view* in, std::string* out) {
  std::string_view s;
  if (!GetLengthPrefixed(in, &s)) return false;
  out->assign(s);
  return true;
}

bool GetBool(std::string_view* in, bool* out) {
  if (in->empty()) return false;
  *out = in->front() != 0;
  in->remove_prefix(1);
  return true;
}

bool GetEvent(std::string_view* in, ham::Event* out) {
  if (in->empty()) return false;
  *out = static_cast<ham::Event>(in->front());
  in->remove_prefix(1);
  return true;
}

std::string BadRequest(std::string_view what) {
  std::string reply;
  EncodeStatusTo(Status::Corruption("malformed request: " + std::string(what)),
                 &reply);
  return reply;
}

// Builds a reply from a Status-only operation.
std::string StatusReply(const Status& status) {
  std::string reply;
  EncodeStatusTo(status, &reply);
  return reply;
}

// Builds a reply from a Result<T> plus a result encoder.
template <typename T, typename Encoder>
std::string ResultReply(const Result<T>& result, Encoder encode) {
  std::string reply;
  EncodeStatusTo(result.ok() ? Status::OK() : result.status(), &reply);
  if (result.ok()) encode(*result, &reply);
  return reply;
}

}  // namespace

Server::~Server() { Stop(); }

Result<uint16_t> Server::Start(uint16_t port) {
  // Pre-register the overload metrics so stats show the rows at zero.
  MetricsRegistry::Instance().GetGauge("server.inflight");
  MetricsRegistry::Instance().GetCounter("server.shed");
  MetricsRegistry::Instance().GetCounter("server.connections.reaped");
  NEPTUNE_ASSIGN_OR_RETURN(listener_, Listener::Bind(port));
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  NEPTUNE_LOG(Info) << "event=listening addr=127.0.0.1:" << port_;
  return port_;
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  if (listener_ != nullptr) listener_->Shutdown();
  // Graceful drain: half-close every connection so a blocked RecvFrame
  // sees EOF and no new request can arrive, while a request already
  // being handled still gets its reply sent before the thread exits.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& stream : streams_) stream->CloseRead();
  }
  NEPTUNE_METRIC_COUNT("rpc.server.drains", 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  // Every connection thread is done; now the fds can be fully closed.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& stream : streams_) stream->Close();
  streams_.clear();
}

void Server::AcceptLoop() {
  // Listener::Accept rides out EINTR/ECONNABORTED and fd exhaustion
  // itself (the same taxonomy the PR 3 client loops use), so a hostile
  // connection flood cannot permanently kill this loop; any error that
  // does surface here is fatal (or Shutdown()).
  while (!stopping_) {
    auto stream = listener_->Accept();
    if (!stream.ok()) {
      if (!stopping_) {
        NEPTUNE_LOG(Warn) << "event=accept_failed code="
                          << StatusCodeToString(stream.status().code())
                          << " detail=\"" << stream.status().message() << "\"";
      }
      return;
    }
    const size_t buffered =
        options_.max_conn_buffered_bytes > 0
            ? options_.max_conn_buffered_bytes
            : static_cast<size_t>(options_.max_frame_bytes) + (64u << 10);
    (*stream)->SetLimits(options_.max_frame_bytes, buffered);
    if (options_.idle_timeout_ms > 0) {
      // An expired recv deadline is how idle connections are detected
      // and reaped in ServeConnection.
      (*stream)->SetTimeouts(0, options_.idle_timeout_ms);
    }
    FrameStream* raw = stream->get();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    streams_.push_back(std::move(*stream));
    threads_.emplace_back([this, raw] { ServeConnection(raw); });
  }
}

bool Server::ShouldShed(Method method, int inflight) const {
  if (inflight <= options_.shed_inflight_requests) return false;
  // Always admitted: operations that shrink the server's obligations
  // (finishing or abandoning a transaction, closing a session) and the
  // two diagnostics an operator needs during an overload event.
  switch (method) {
    case Method::kCommitTransaction:
    case Method::kAbortTransaction:
    case Method::kCloseGraph:
    case Method::kPing:
    case Method::kGetServerStatistics:
    case Method::kGetRecentTraces:
    case Method::kGetSlowOps:
      return false;
    default:
      break;
  }
  if (inflight > options_.max_inflight_requests) return true;  // hard cap
  // Between the high-water mark and the cap: shed only the
  // non-transactional read traffic; writers keep their progress.
  return IsIdempotent(method);
}

void Server::ServeConnection(FrameStream* stream) {
  NEPTUNE_METRIC_COUNT("rpc.connections.accepted", 1);
  static Gauge* active =
      MetricsRegistry::Instance().GetGauge("rpc.connections.active");
  static Gauge* inflight_gauge =
      MetricsRegistry::Instance().GetGauge("server.inflight");
  active->Increment();
  std::set<uint64_t> sessions;
  // No stopping_ gate here: Stop() half-closes the stream, so the next
  // RecvFrame returns EOF — but a request already received is finished
  // and its reply sent first (graceful drain).
  while (true) {
    Result<std::string> request = stream->RecvFrame();
    if (!request.ok()) {
      const Status& status = request.status();
      if (status.IsDeadlineExceeded() && options_.idle_timeout_ms > 0) {
        // The connection sat silent past the idle budget: reap it.
        // Sessions (and any open transaction) are cleaned up below
        // exactly as for a disconnect.
        NEPTUNE_METRIC_COUNT("server.connections.reaped", 1);
        NEPTUNE_LOG(Info) << "event=connection_reaped idle_ms="
                          << options_.idle_timeout_ms;
      } else if (status.IsInvalidArgument() || status.IsCorruption()) {
        // Protocol abuse (oversized length prefix, CRC mismatch): tell
        // the peer why before hanging up. Framing may be out of sync,
        // so the connection itself cannot survive.
        NEPTUNE_LOG(Warn) << "event=protocol_error code="
                          << StatusCodeToString(status.code())
                          << " detail=\"" << status.message() << "\"";
        (void)stream->SendFrame(StatusReply(status));
      }
      break;  // disconnect, drain, reap, or corruption
    }
    NEPTUNE_METRIC_COUNT("rpc.bytes_in", request->size());
    // Trace-context extension: a flagged method byte is followed by the
    // caller's trace context; strip both so HandleRequest sees the
    // plain encoding. A server configured like a pre-tracing build
    // answers exactly as one would: "unknown method <flagged byte>".
    TraceContext remote_ctx;
    std::string reply;
    bool malformed = false;
    if (!request->empty() &&
        (static_cast<uint8_t>(request->front()) & kTraceContextFlag) != 0) {
      const int flagged = static_cast<uint8_t>(request->front());
      if (!options_.accept_trace_context) {
        reply = BadRequest("unknown method " + std::to_string(flagged));
        malformed = true;
      } else {
        std::string_view rest(*request);
        rest.remove_prefix(1);
        if (!DecodeTraceContextFrom(&rest, &remote_ctx)) {
          reply = BadRequest("trace context");
          malformed = true;
        } else {
          std::string stripped;
          stripped.reserve(1 + rest.size());
          stripped.push_back(
              static_cast<char>(flagged & ~kTraceContextFlag));
          stripped.append(rest);
          *request = std::move(stripped);
        }
      }
    }
    if (!malformed) {
      const int inflight =
          inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
      inflight_gauge->Increment();
      const Method method =
          request->empty() ? Method{0} : static_cast<Method>(request->front());
      // Root span for this request's server-side work. It adopts the
      // client's context when one arrived, self-roots otherwise.
      ScopedSpan span(ServerSpanNameId(method), remote_ctx);
      bool shed;
      {
        NEPTUNE_TRACE_SPAN(admission, "rpc.server.admission");
        shed = ShouldShed(method, inflight);
      }
      if (shed) {
        NEPTUNE_METRIC_COUNT("server.shed", 1);
        if (span.active()) {
          span.Annotate("shed=1 inflight=" + std::to_string(inflight));
        }
        // The request was refused before execution, so the client may
        // re-send ANY method safely; the varint after the status header
        // is the suggested backoff (RemoteHam honors it).
        EncodeStatusTo(Status::Unavailable("server overloaded (" +
                                           std::to_string(inflight) +
                                           " requests in flight); retry"),
                       &reply);
        PutVarint32(&reply, options_.retry_after_ms);
      } else {
        reply = HandleRequest(*request, &sessions);
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      inflight_gauge->Decrement();
    }
    NEPTUNE_METRIC_COUNT("rpc.bytes_out", reply.size());
    if (!stream->SendFrame(reply).ok()) break;
  }
  active->Decrement();
  // A vanished client releases everything it held (crash recovery for
  // its open transaction happens via CloseGraph's abort path).
  for (uint64_t session : sessions) {
    ham_->CloseGraph(Context{session});
  }
  // Hang up and release the fd now, not at Stop(): when the server
  // initiated the break (protocol abuse, idle reap) the peer is still
  // waiting and must see FIN, and a long-lived server must not hold a
  // descriptor per client it ever served. Close() is idempotent, so
  // the Stop() drain racing us is harmless.
  stream->Close();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = streams_.begin(); it != streams_.end(); ++it) {
    if (it->get() == stream) {
      streams_.erase(it);
      break;
    }
  }
}

std::string Server::HandleRequest(std::string_view in,
                                  std::set<uint64_t>* sessions) {
  if (in.empty()) return BadRequest("empty");
  const Method method = static_cast<Method>(in.front());
  in.remove_prefix(1);
  NEPTUNE_METRIC_TIMED(timer, "rpc.request_latency");
  NEPTUNE_METRIC_COUNT("rpc.requests", 1);
  MethodCounter(method)->Increment();

  Context ctx;
  switch (method) {
    case Method::kPing: {
      std::string reply = StatusReply(Status::OK());
      reply.append(in);  // echo
      return reply;
    }

    case Method::kCreateGraph: {
      std::string directory;
      uint32_t protections = 0;
      if (!GetString(&in, &directory) || !GetVarint32(&in, &protections)) {
        return BadRequest("createGraph");
      }
      return ResultReply(ham_->CreateGraph(directory, protections),
                         [](const ham::CreateGraphResult& r, std::string* out) {
                           PutVarint64(out, r.project);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDestroyGraph: {
      uint64_t project = 0;
      std::string directory;
      if (!GetVarint64(&in, &project) || !GetString(&in, &directory)) {
        return BadRequest("destroyGraph");
      }
      return StatusReply(ham_->DestroyGraph(project, directory));
    }
    case Method::kOpenGraph: {
      uint64_t project = 0;
      std::string machine;
      std::string directory;
      if (!GetVarint64(&in, &project) || !GetString(&in, &machine) ||
          !GetString(&in, &directory)) {
        return BadRequest("openGraph");
      }
      Result<Context> opened = ham_->OpenGraph(project, machine, directory);
      if (opened.ok()) sessions->insert(opened->session);
      return ResultReply(opened, [](const Context& c, std::string* out) {
        PutVarint64(out, c.session);
      });
    }
    case Method::kCloseGraph: {
      if (!GetContext(&in, &ctx)) return BadRequest("closeGraph");
      Status status = ham_->CloseGraph(ctx);
      if (status.ok()) sessions->erase(ctx.session);
      return StatusReply(status);
    }

    case Method::kBeginTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("begin");
      return StatusReply(ham_->BeginTransaction(ctx));
    }
    case Method::kCommitTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("commit");
      return StatusReply(ham_->CommitTransaction(ctx));
    }
    case Method::kAbortTransaction: {
      if (!GetContext(&in, &ctx)) return BadRequest("abort");
      return StatusReply(ham_->AbortTransaction(ctx));
    }

    case Method::kAddNode: {
      bool archive = false;
      if (!GetContext(&in, &ctx) || !GetBool(&in, &archive)) {
        return BadRequest("addNode");
      }
      return ResultReply(ham_->AddNode(ctx, archive),
                         [](const ham::AddNodeResult& r, std::string* out) {
                           PutVarint64(out, r.node);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDeleteNode: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("deleteNode");
      }
      return StatusReply(ham_->DeleteNode(ctx, node));
    }
    case Method::kAddLink: {
      ham::LinkPt from;
      ham::LinkPt to;
      if (!GetContext(&in, &ctx) || !DecodeLinkPtFrom(&in, &from) ||
          !DecodeLinkPtFrom(&in, &to)) {
        return BadRequest("addLink");
      }
      return ResultReply(ham_->AddLink(ctx, from, to),
                         [](const ham::AddLinkResult& r, std::string* out) {
                           PutVarint64(out, r.link);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kCopyLink: {
      uint64_t link = 0;
      uint64_t time = 0;
      bool copy_source = false;
      ham::LinkPt other;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link) ||
          !GetVarint64(&in, &time) || !GetBool(&in, &copy_source) ||
          !DecodeLinkPtFrom(&in, &other)) {
        return BadRequest("copyLink");
      }
      return ResultReply(ham_->CopyLink(ctx, link, time, copy_source, other),
                         [](const ham::AddLinkResult& r, std::string* out) {
                           PutVarint64(out, r.link);
                           PutVarint64(out, r.creation_time);
                         });
    }
    case Method::kDeleteLink: {
      uint64_t link = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link)) {
        return BadRequest("deleteLink");
      }
      return StatusReply(ham_->DeleteLink(ctx, link));
    }

    case Method::kLinearizeGraph:
    case Method::kGetGraphQuery: {
      uint64_t start = 0;
      uint64_t time = 0;
      std::string node_pred;
      std::string link_pred;
      std::vector<uint64_t> node_attrs;
      std::vector<uint64_t> link_attrs;
      if (!GetContext(&in, &ctx)) return BadRequest("query");
      if (method == Method::kLinearizeGraph && !GetVarint64(&in, &start)) {
        return BadRequest("linearize start");
      }
      if (!GetVarint64(&in, &time) || !GetString(&in, &node_pred) ||
          !GetString(&in, &link_pred) ||
          !DecodeIndexVecFrom(&in, &node_attrs) ||
          !DecodeIndexVecFrom(&in, &link_attrs)) {
        return BadRequest("query args");
      }
      Result<ham::SubGraph> result =
          method == Method::kLinearizeGraph
              ? ham_->LinearizeGraph(ctx, start, time, node_pred, link_pred,
                                     node_attrs, link_attrs)
              : ham_->GetGraphQuery(ctx, time, node_pred, link_pred,
                                    node_attrs, link_attrs);
      return ResultReply(result, EncodeSubGraphTo);
    }

    case Method::kOpenNode: {
      uint64_t node = 0;
      uint64_t time = 0;
      std::vector<uint64_t> attrs;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &time) || !DecodeIndexVecFrom(&in, &attrs)) {
        return BadRequest("openNode");
      }
      return ResultReply(ham_->OpenNode(ctx, node, time, attrs),
                         EncodeOpenNodeResultTo);
    }
    case Method::kModifyNode: {
      uint64_t node = 0;
      uint64_t expected = 0;
      std::string contents;
      std::vector<ham::AttachmentUpdate> attachments;
      std::string explanation;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &expected) || !GetString(&in, &contents) ||
          !DecodeAttachmentUpdatesFrom(&in, &attachments) ||
          !GetString(&in, &explanation)) {
        return BadRequest("modifyNode");
      }
      return StatusReply(ham_->ModifyNode(ctx, node, expected, contents,
                                          attachments, explanation));
    }
    case Method::kGetNodeTimeStamp: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("getNodeTimeStamp");
      }
      return ResultReply(ham_->GetNodeTimeStamp(ctx, node),
                         [](const ham::Time& t, std::string* out) {
                           PutVarint64(out, t);
                         });
    }
    case Method::kChangeNodeProtection: {
      uint64_t node = 0;
      uint32_t protections = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint32(&in, &protections)) {
        return BadRequest("changeNodeProtection");
      }
      return StatusReply(ham_->ChangeNodeProtection(ctx, node, protections));
    }
    case Method::kGetNodeVersions: {
      uint64_t node = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node)) {
        return BadRequest("getNodeVersions");
      }
      return ResultReply(ham_->GetNodeVersions(ctx, node),
                         EncodeNodeVersionsTo);
    }
    case Method::kGetNodeDifferences: {
      uint64_t node = 0;
      uint64_t t1 = 0;
      uint64_t t2 = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &t1) || !GetVarint64(&in, &t2)) {
        return BadRequest("getNodeDifferences");
      }
      return ResultReply(ham_->GetNodeDifferences(ctx, node, t1, t2),
                         EncodeDifferencesTo);
    }

    case Method::kGetToNode:
    case Method::kGetFromNode: {
      uint64_t link = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &link) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getEndNode");
      }
      Result<ham::LinkEndResult> result =
          method == Method::kGetToNode ? ham_->GetToNode(ctx, link, time)
                                       : ham_->GetFromNode(ctx, link, time);
      return ResultReply(result,
                         [](const ham::LinkEndResult& r, std::string* out) {
                           PutVarint64(out, r.node);
                           PutVarint64(out, r.version_time);
                         });
    }

    case Method::kGetAttributes: {
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time)) {
        return BadRequest("getAttributes");
      }
      return ResultReply(ham_->GetAttributes(ctx, time),
                         EncodeAttributeEntriesTo);
    }
    case Method::kGetAttributeValues: {
      uint64_t attr = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &attr) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getAttributeValues");
      }
      return ResultReply(ham_->GetAttributeValues(ctx, attr, time),
                         EncodeStringVecTo);
    }
    case Method::kGetAttributeIndex: {
      std::string name;
      if (!GetContext(&in, &ctx) || !GetString(&in, &name)) {
        return BadRequest("getAttributeIndex");
      }
      return ResultReply(ham_->GetAttributeIndex(ctx, name),
                         [](const ham::AttributeIndex& a, std::string* out) {
                           PutVarint64(out, a);
                         });
    }

    case Method::kSetNodeAttributeValue:
    case Method::kSetLinkAttributeValue: {
      uint64_t target = 0;
      uint64_t attr = 0;
      std::string value;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr) || !GetString(&in, &value)) {
        return BadRequest("setAttributeValue");
      }
      Status status =
          method == Method::kSetNodeAttributeValue
              ? ham_->SetNodeAttributeValue(ctx, target, attr, value)
              : ham_->SetLinkAttributeValue(ctx, target, attr, value);
      return StatusReply(status);
    }
    case Method::kDeleteNodeAttribute:
    case Method::kDeleteLinkAttribute: {
      uint64_t target = 0;
      uint64_t attr = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr)) {
        return BadRequest("deleteAttribute");
      }
      Status status = method == Method::kDeleteNodeAttribute
                          ? ham_->DeleteNodeAttribute(ctx, target, attr)
                          : ham_->DeleteLinkAttribute(ctx, target, attr);
      return StatusReply(status);
    }
    case Method::kGetNodeAttributeValue:
    case Method::kGetLinkAttributeValue: {
      uint64_t target = 0;
      uint64_t attr = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &attr) || !GetVarint64(&in, &time)) {
        return BadRequest("getAttributeValue");
      }
      Result<std::string> result =
          method == Method::kGetNodeAttributeValue
              ? ham_->GetNodeAttributeValue(ctx, target, attr, time)
              : ham_->GetLinkAttributeValue(ctx, target, attr, time);
      return ResultReply(result, [](const std::string& v, std::string* out) {
        PutLengthPrefixed(out, v);
      });
    }
    case Method::kGetNodeAttributes:
    case Method::kGetLinkAttributes: {
      uint64_t target = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &target) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getAttributes(node/link)");
      }
      Result<std::vector<ham::AttributeValueEntry>> result =
          method == Method::kGetNodeAttributes
              ? ham_->GetNodeAttributes(ctx, target, time)
              : ham_->GetLinkAttributes(ctx, target, time);
      return ResultReply(result, EncodeAttributeValueEntriesTo);
    }

    case Method::kSetGraphDemonValue: {
      ham::Event event;
      std::string demon;
      if (!GetContext(&in, &ctx) || !GetEvent(&in, &event) ||
          !GetString(&in, &demon)) {
        return BadRequest("setGraphDemonValue");
      }
      return StatusReply(ham_->SetGraphDemonValue(ctx, event, demon));
    }
    case Method::kGetGraphDemons: {
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &time)) {
        return BadRequest("getGraphDemons");
      }
      return ResultReply(ham_->GetGraphDemons(ctx, time), EncodeDemonEntriesTo);
    }
    case Method::kSetNodeDemon: {
      uint64_t node = 0;
      ham::Event event;
      std::string demon;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetEvent(&in, &event) || !GetString(&in, &demon)) {
        return BadRequest("setNodeDemon");
      }
      return StatusReply(ham_->SetNodeDemon(ctx, node, event, demon));
    }
    case Method::kGetNodeDemons: {
      uint64_t node = 0;
      uint64_t time = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &node) ||
          !GetVarint64(&in, &time)) {
        return BadRequest("getNodeDemons");
      }
      return ResultReply(ham_->GetNodeDemons(ctx, node, time),
                         EncodeDemonEntriesTo);
    }

    case Method::kCreateContext: {
      std::string name;
      if (!GetContext(&in, &ctx) || !GetString(&in, &name)) {
        return BadRequest("createContext");
      }
      return ResultReply(ham_->CreateContext(ctx, name),
                         [](const ham::ContextInfo& info, std::string* out) {
                           PutVarint64(out, info.thread);
                           PutLengthPrefixed(out, info.name);
                           PutVarint64(out, info.branched_at);
                         });
    }
    case Method::kOpenContext: {
      uint64_t thread = 0;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &thread)) {
        return BadRequest("openContext");
      }
      Result<Context> opened = ham_->OpenContext(ctx, thread);
      if (opened.ok()) sessions->insert(opened->session);
      return ResultReply(opened, [](const Context& c, std::string* out) {
        PutVarint64(out, c.session);
      });
    }
    case Method::kMergeContext: {
      uint64_t source = 0;
      bool force = false;
      if (!GetContext(&in, &ctx) || !GetVarint64(&in, &source) ||
          !GetBool(&in, &force)) {
        return BadRequest("mergeContext");
      }
      return StatusReply(ham_->MergeContext(ctx, source, force));
    }
    case Method::kListContexts: {
      if (!GetContext(&in, &ctx)) return BadRequest("listContexts");
      return ResultReply(ham_->ListContexts(ctx), EncodeContextInfosTo);
    }

    case Method::kCheckpoint: {
      if (!GetContext(&in, &ctx)) return BadRequest("checkpoint");
      return StatusReply(ham_->Checkpoint(ctx));
    }
    case Method::kGetStats: {
      if (!GetContext(&in, &ctx)) return BadRequest("getStats");
      return ResultReply(ham_->GetStats(ctx), EncodeStatsTo);
    }
    case Method::kContextThread: {
      if (!GetContext(&in, &ctx)) return BadRequest("contextThread");
      return ResultReply(ham_->ContextThread(ctx),
                         [](const ham::ThreadId& t, std::string* out) {
                           PutVarint64(out, t);
                         });
    }

    case Method::kGetServerStatistics: {
      // Server-wide, so no Context: any client may ask, even before it
      // has opened a graph.
      std::string reply = StatusReply(Status::OK());
      MetricsRegistry::Instance().Snapshot().EncodeTo(&reply);
      return reply;
    }
    case Method::kGetRecentTraces: {
      // Server-wide like getServerStatistics.
      std::string reply = StatusReply(Status::OK());
      EncodeTracesTo(Tracer::Instance().RecentTraces(), &reply);
      return reply;
    }
    case Method::kGetSlowOps: {
      std::string reply = StatusReply(Status::OK());
      EncodeSpansTo(Tracer::Instance().SlowOps(), &reply);
      return reply;
    }
  }
  return BadRequest("unknown method " +
                    std::to_string(static_cast<int>(method)));
}

}  // namespace rpc
}  // namespace neptune
